# Provide GTest::gtest_main.
#
# Resolution order:
#   1. An installed GoogleTest (find_package) — fastest, no rebuild.
#   2. FetchContent. When a vendored checkout is present (either
#      third_party/googletest in this repo or the distro source package
#      at /usr/src/googletest), it is used as the FetchContent source
#      so configuration works offline; otherwise the pinned release
#      tarball is downloaded.

include_guard(GLOBAL)

find_package(GTest QUIET)
if(GTest_FOUND)
  message(STATUS "Clio: using installed GoogleTest (${GTEST_INCLUDE_DIRS})")
  return()
endif()

include(FetchContent)

set(_clio_gtest_vendored "")
foreach(candidate
    "${CMAKE_SOURCE_DIR}/third_party/googletest"
    "/usr/src/googletest")
  if(EXISTS "${candidate}/CMakeLists.txt")
    set(_clio_gtest_vendored "${candidate}")
    break()
  endif()
endforeach()

if(_clio_gtest_vendored AND NOT DEFINED FETCHCONTENT_SOURCE_DIR_GOOGLETEST)
  message(STATUS "Clio: using vendored GoogleTest at ${_clio_gtest_vendored}")
  set(FETCHCONTENT_SOURCE_DIR_GOOGLETEST "${_clio_gtest_vendored}"
    CACHE PATH "Vendored GoogleTest source" FORCE)
endif()

# Pinned release; only reached over the network when no install and no
# vendored copy exists.
FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)

# Never let gtest's flags leak (and keep gtest off our -Werror diet).
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
