# Run the determinism gtest suite in fresh processes with the same
# CLIO_SEED, each dumping its recorded run statistics (final data
# digest, retry/NACK/fault counters, end time, per-op latencies) to a
# file via CLIO_STATS_OUT; fail unless every dump is identical.
#
# Three runs: two on the default timing-wheel event queue (same-engine
# reproducibility), one with CLIO_EVENT_QUEUE=heap (the reference
# binary-heap engine must replay the byte-identical history — this is
# what makes the wheel rewrite provably behavior-preserving).
#
# Usage: cmake -DTEST_BINARY=... -DWORK_DIR=... -P determinism.cmake

if(NOT TEST_BINARY OR NOT WORK_DIR)
  message(FATAL_ERROR "determinism.cmake needs -DTEST_BINARY and -DWORK_DIR")
endif()

set(seed 20220228) # ASPLOS'22 session day; any fixed value works.

foreach(run 1 2 3)
  set(stats_file "${WORK_DIR}/determinism_run${run}.stats")
  file(REMOVE "${stats_file}")
  if(run EQUAL 3)
    set(engine heap)
  else()
    set(engine wheel)
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      CLIO_SEED=${seed}
      CLIO_STATS_OUT=${stats_file}
      CLIO_EVENT_QUEUE=${engine}
      ${TEST_BINARY} --gtest_brief=1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "determinism run ${run} (${engine}) exited with ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS "${stats_file}")
    message(FATAL_ERROR
      "determinism run ${run} produced no stats dump at ${stats_file}")
  endif()
endforeach()

foreach(run 2 3)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/determinism_run1.stats"
      "${WORK_DIR}/determinism_run${run}.stats"
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    file(READ "${WORK_DIR}/determinism_run1.stats" run1)
    file(READ "${WORK_DIR}/determinism_run${run}.stats" runN)
    message(FATAL_ERROR
      "determinism violated: runs 1 and ${run} with CLIO_SEED=${seed} "
      "recorded different stats.\n--- run 1 ---\n${run1}\n"
      "--- run ${run} ---\n${runN}")
  endif()
endforeach()
message(STATUS
  "determinism OK: wheel x2 and heap runs recorded identical stats")
