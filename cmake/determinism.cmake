# Run the determinism gtest suite twice in fresh processes with the
# same CLIO_SEED, each dumping its recorded run statistics (final data
# digest, retry/NACK/fault counters, end time, per-op latencies) to a
# file via CLIO_STATS_OUT; fail unless the two dumps are identical.
#
# Usage: cmake -DTEST_BINARY=... -DWORK_DIR=... -P determinism.cmake

if(NOT TEST_BINARY OR NOT WORK_DIR)
  message(FATAL_ERROR "determinism.cmake needs -DTEST_BINARY and -DWORK_DIR")
endif()

set(seed 20220228) # ASPLOS'22 session day; any fixed value works.

foreach(run 1 2)
  set(stats_file "${WORK_DIR}/determinism_run${run}.stats")
  file(REMOVE "${stats_file}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      CLIO_SEED=${seed}
      CLIO_STATS_OUT=${stats_file}
      ${TEST_BINARY} --gtest_brief=1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "determinism run ${run} exited with ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS "${stats_file}")
    message(FATAL_ERROR
      "determinism run ${run} produced no stats dump at ${stats_file}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    "${WORK_DIR}/determinism_run1.stats"
    "${WORK_DIR}/determinism_run2.stats"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ "${WORK_DIR}/determinism_run1.stats" run1)
  file(READ "${WORK_DIR}/determinism_run2.stats" run2)
  message(FATAL_ERROR
    "determinism violated: two runs with CLIO_SEED=${seed} recorded "
    "different stats.\n--- run 1 ---\n${run1}\n--- run 2 ---\n${run2}")
endif()
message(STATUS "determinism OK: both runs recorded identical stats")
