# Header self-containment check: every public header under src/ must
# compile as its own translation unit (all of its includes in place),
# so an API refactor cannot silently leave a header depending on its
# includer's context. Each header gets a generated one-line stub TU;
# they build as part of ALL and as an explicit CI target.

file(GLOB_RECURSE CLIO_PUBLIC_HEADERS
  RELATIVE ${CMAKE_SOURCE_DIR}/src
  CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.hh)

set(_stub_dir ${CMAKE_BINARY_DIR}/header_selfcheck)
set(_stubs "")
foreach(header IN LISTS CLIO_PUBLIC_HEADERS)
  string(REPLACE "/" "_" _stub_name ${header})
  string(REGEX REPLACE "\\.hh$" ".cc" _stub_name ${_stub_name})
  set(_stub ${_stub_dir}/${_stub_name})
  # Include twice so a missing include guard fails too.
  set(_content "#include \"${header}\"\n#include \"${header}\"\n")
  set(_old "")
  if(EXISTS ${_stub})
    file(READ ${_stub} _old)
  endif()
  if(NOT _old STREQUAL _content)
    file(WRITE ${_stub} ${_content})
  endif()
  list(APPEND _stubs ${_stub})
endforeach()

add_library(clio_header_selfcheck OBJECT ${_stubs})
target_include_directories(clio_header_selfcheck
  PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(clio_header_selfcheck PRIVATE clio_warnings)
