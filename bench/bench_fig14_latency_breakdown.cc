/**
 * @file
 * Fig. 14: CBoard-side latency breakdown for 4 B / 1 KB reads and
 * writes: wire serialization, on-board interconnect/DMA setup, TLB
 * lookup, TLB-miss DRAM fetch, and the data DRAM access. Values come
 * from the same calibrated constants the simulator charges, plus a
 * measured cross-check of the end-to-end totals.
 */

#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

struct Breakdown
{
    double wire_ns;
    double interconn_ns;
    double tlb_hit_ns;
    double tlb_miss_ns;
    double ddr_ns;
};

Breakdown
breakdown(const ModelConfig &cfg, std::uint64_t size, bool is_write,
          bool tlb_miss)
{
    Breakdown b{};
    // Serialization of the payload-bearing direction at the MN port.
    const std::uint64_t wire_bytes = size + kPacketHeaderBytes;
    b.wire_ns = ticksToNs(wire_bytes *
                          ticksPerByte(cfg.net.link_bandwidth_bps)) +
                ticksToNs(cfg.fast_path.mac_latency);
    b.interconn_ns = ticksToNs(is_write ? cfg.fast_path.dma_write_setup
                                        : cfg.fast_path.dma_read_setup) +
                     ticksToNs((cfg.fast_path.parse_cycles +
                                cfg.fast_path.respond_cycles) *
                               cfg.fast_path.cycle);
    b.tlb_hit_ns = ticksToNs(cfg.fast_path.tlb_lookup_cycles *
                             cfg.fast_path.cycle);
    b.tlb_miss_ns = tlb_miss ? ticksToNs(cfg.dram.access_latency) : 0;
    b.ddr_ns = ticksToNs(cfg.dram.access_latency) +
               ticksToNs(size * ticksPerByte(cfg.dram.bandwidth_bps));
    return b;
}

/** Measured on-board time for a warm request (cross-check). */
double
measuredNs(const ModelConfig &cfg, std::uint64_t size, bool is_write)
{
    Cluster cluster(cfg, 1, 1);
    CBoard &mn = cluster.mn(0);
    const ProcId pid = 7;
    const std::uint64_t page = cfg.page_table.page_size;
    std::uint64_t vpn = 1;
    while (mn.pageTable().freeSlotsInBucket(pid, vpn) == 0)
        vpn++;
    mn.pageTable().insert(pid, vpn, kPermReadWrite);
    mn.pageTable().bindFrame(pid, vpn, 0);

    RequestMsg req;
    req.type = is_write ? MsgType::kWrite : MsgType::kRead;
    req.pid = pid;
    req.addr = vpn * page;
    req.size = size;
    req.data.assign(is_write ? size : 0, 0xEE);
    ResponseMsg resp;
    req.req_id = 1;
    mn.serviceFastPath(req, 0, resp); // warm TLB
    req.req_id = 2;
    ResponseMsg resp2;
    const Tick start = 10 * kMicrosecond;
    const Tick done = mn.serviceFastPath(req, start, resp2);
    return ticksToNs(done - start);
}

} // namespace

int
main()
{
    bench::banner("Fig. 14", "CBoard latency breakdown (ns) per "
                             "component");
    const auto cfg = ModelConfig::prototype();
    bench::header({"request", "WireDelay", "InterConn", "TLBHit",
                   "TLBMiss", "DDRAccess", "fastpath(meas)"});
    struct Case
    {
        const char *name;
        std::uint64_t size;
        bool is_write;
        bool tlb_miss;
    };
    for (const Case &c :
         {Case{"R-4B", 4, false, false}, Case{"R-4B-miss", 4, false, true},
          Case{"R-1KB", 1024, false, false},
          Case{"W-4B", 4, true, false},
          Case{"W-1KB", 1024, true, false}}) {
        const Breakdown b = breakdown(cfg, c.size, c.is_write,
                                      c.tlb_miss);
        bench::row(c.name, {b.wire_ns, b.interconn_ns, b.tlb_hit_ns,
                            b.tlb_miss_ns, b.ddr_ns,
                            measuredNs(cfg, c.size, c.is_write)});
    }
    bench::note("expected shape: DDR access and wire serialization "
                "dominate, growing with size; TLB miss adds exactly "
                "one DRAM access (paper Fig. 14).");
    return 0;
}
