/**
 * @file
 * Fig. 12: Allocation / free latency vs size — Clio's VA allocation
 * (slow path) vs RDMA MR registration (pinned and ODP). Clio also
 * shows the eager-physical variant (Clio-Alloc-Phys).
 */

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

struct ClioAllocSample
{
    double alloc_ms;
    double free_ms;
    double alloc_phys_ms;
};

ClioAllocSample
clioAlloc(std::uint64_t bytes)
{
    auto cfg = ModelConfig::prototype();
    cfg.mn_phys_bytes = 8 * GiB; // room for the 1424 MB point
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    EventQueue &eq = cluster.eventQueue();

    ClioAllocSample out{};
    {
        const Tick t0 = eq.now();
        const VirtAddr a = client.ralloc(bytes).value_or(0);
        out.alloc_ms =
            ticksToUs(eq.now() - t0) / 1000.0;
        const Tick t1 = eq.now();
        client.rfree(a);
        out.free_ms = ticksToUs(eq.now() - t1) / 1000.0;
    }
    {
        const Tick t0 = eq.now();
        const VirtAddr a = client.ralloc(bytes, kPermReadWrite, true).value_or(0);
        out.alloc_phys_ms = ticksToUs(eq.now() - t0) / 1000.0;
        client.rfree(a);
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 12", "Allocation / registration latency (ms) "
                             "vs size");
    auto cfg = ModelConfig::prototype();
    bench::header({"size(MB)", "RDMA-Reg", "RDMA-Dereg", "RDMA-Reg-ODP",
                   "RDMA-Dereg-ODP", "Clio-Alloc", "Clio-Free",
                   "Clio-Alloc-Phys"});
    for (std::uint64_t mb : {4u, 16u, 64u, 256u, 512u, 1424u}) {
        RdmaMemoryNode node(cfg, 8 * GiB, 51);
        Tick reg = 0;
        auto mr = node.registerMr(mb * MiB, false, reg);
        const Tick dereg = node.deregisterMr(*mr);
        Tick reg_odp = 0;
        auto mr_odp = node.registerMr(mb * MiB, true, reg_odp);
        const Tick dereg_odp = node.deregisterMr(*mr_odp);
        const auto clio = clioAlloc(mb * MiB);
        bench::row(std::to_string(mb),
                   {ticksToUs(reg) / 1000.0, ticksToUs(dereg) / 1000.0,
                    ticksToUs(reg_odp) / 1000.0,
                    ticksToUs(dereg_odp) / 1000.0, clio.alloc_ms,
                    clio.free_ms, clio.alloc_phys_ms});
    }
    bench::note("expected shape: Clio VA allocation well below RDMA "
                "pinned registration at every size; both grow with "
                "size; ODP registration flat but pays 16.8 ms faults "
                "later (paper Fig. 12).");
    return 0;
}
