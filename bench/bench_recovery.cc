/**
 * @file
 * Self-healing MTTR: crash-to-redundancy latency of the health plane.
 *
 * The control plane (cluster/health.hh) promises automatic recovery:
 * lease-based detection declares a silent MN dead, the controller
 * picks a replacement and drives a chunked copy from the surviving
 * replica, and the region is fully redundant again with zero client
 * involvement. This bench measures that pipeline end to end and
 * splits the mean time to repair into its two phases:
 *
 *   detection  = kDead event - crash instant   (lease expiry)
 *   resync     = kResyncCompleted - kResyncStarted (chunked copy)
 *   MTTR       = kResyncCompleted - crash instant
 *
 * Two sweeps, both on a 1-CN / 3-MN cluster with a replicated region
 * (primary + backup; the third MN is the standby the controller
 * drafts):
 *   - resync chunk size at the default 20 us heartbeat: bigger chunks
 *     amortize per-op overhead but serialize longer on the wire;
 *   - heartbeat period at the default 256 KiB chunk, scaling the
 *     suspect/dead leases with the period (3x / 7.5x, the default
 *     ratios): faster beacons buy faster detection for more control
 *     traffic.
 *
 * Output: aligned-column text plus JSON ("clio.bench_recovery.v1", no
 * timestamps) to CLIO_BENCH_JSON_OUT or ./BENCH_recovery.json. Smoke
 * mode (CLIO_BENCH_SMOKE=1, the bench-smoke ctest) shrinks the region
 * and the sweeps — announced explicitly so reduced data is never
 * mistaken for the real sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "clib/replication.hh"
#include "cluster/cluster.hh"
#include "cluster/health.hh"
#include "harness.hh"

namespace clio {
namespace {

struct PointResult
{
    std::string sweep;          ///< "chunk" or "heartbeat"
    std::uint64_t chunk_bytes = 0;
    Tick heartbeat_period = 0;
    std::uint64_t region_bytes = 0;
    bool recovered = false;
    double detect_us = 0.0;
    double resync_us = 0.0;
    double mttr_us = 0.0;
    /** Chunk copy reads issued against the surviving replica. */
    std::uint64_t copy_reads = 0;
};

double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** One crash-and-heal episode; everything below is pure simulation. */
PointResult
runRecovery(const std::string &sweep, std::uint64_t chunk_bytes,
            Tick heartbeat_period, std::uint64_t region_bytes)
{
    PointResult r;
    r.sweep = sweep;
    r.chunk_bytes = chunk_bytes;
    r.heartbeat_period = heartbeat_period;
    r.region_bytes = region_bytes;

    auto cfg = ModelConfig::prototype();
    cfg.health.enabled = true;
    cfg.health.heartbeat_period = heartbeat_period;
    // Keep the default lease ratios (20/60/150 us) as the period
    // scales, so detection latency tracks the beacon rate.
    cfg.health.suspect_after = 3 * heartbeat_period;
    cfg.health.dead_after =
        7 * heartbeat_period + heartbeat_period / 2;
    cfg.clib.resync_chunk_bytes = chunk_bytes;

    Cluster cluster(cfg, 1, 3);
    ClioClient &client = cluster.createClient(0);
    HealthPlane *hp = cluster.health();
    EventQueue &eq = cluster.eventQueue();

    ReplicatedRegion region(client, region_bytes,
                            cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    if (!region.ok())
        return r;
    // Seed real data so the copy moves every byte of the region.
    std::uint64_t pattern = 0x5EED0001;
    for (std::uint64_t off = 0; off + 8 <= region_bytes;
         off += 64 * KiB) {
        pattern = pattern * 2862933555777941757ull + off;
        region.write(off, &pattern, 8);
    }
    eq.runUntilTime(eq.now() + 200 * kMicrosecond);

    const std::uint64_t reads_before = cluster.mn(1).stats().reads;
    const Tick crash_at = eq.now();
    cluster.crashMn(0);

    // Run until the controller reports the copy done (cap well past
    // any plausible repair: lease + full-region serialization + slack).
    const Tick cap = crash_at + cfg.health.dead_after +
                     200 * kMillisecond;
    while (eq.now() < cap) {
        eq.runUntilTime(eq.now() + kMillisecond);
        if (hp->stats().resyncs_completed > 0)
            break;
    }

    Tick dead_at = 0, started_at = 0, completed_at = 0;
    for (const HealthEvent &e : hp->events()) {
        if (e.at < crash_at)
            continue;
        if (e.kind == HealthEvent::Kind::kDead && dead_at == 0)
            dead_at = e.at;
        else if (e.kind == HealthEvent::Kind::kResyncStarted &&
                 started_at == 0)
            started_at = e.at;
        else if (e.kind == HealthEvent::Kind::kResyncCompleted &&
                 completed_at == 0)
            completed_at = e.at;
    }
    if (dead_at == 0 || started_at == 0 || completed_at == 0 ||
        !region.fullyRedundant())
        return r; // recovered stays false

    r.recovered = true;
    r.detect_us = ticksToUs(dead_at - crash_at);
    r.resync_us = ticksToUs(completed_at - started_at);
    r.mttr_us = ticksToUs(completed_at - crash_at);
    r.copy_reads = cluster.mn(1).stats().reads - reads_before;
    return r;
}

void
writeJson(const std::vector<PointResult> &results, bool smoke)
{
    const char *env = std::getenv("CLIO_BENCH_JSON_OUT");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_recovery.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"clio.bench_recovery.v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < results.size(); i++) {
        const PointResult &r = results[i];
        std::fprintf(
            f,
            "    {\"sweep\": \"%s\", \"chunk_kib\": %llu, "
            "\"heartbeat_us\": %.1f, \"region_mib\": %llu, "
            "\"recovered\": %s, \"detect_us\": %.3f, "
            "\"resync_us\": %.3f, \"mttr_us\": %.3f, "
            "\"copy_reads\": %llu}%s\n",
            r.sweep.c_str(),
            static_cast<unsigned long long>(r.chunk_bytes / KiB),
            ticksToUs(r.heartbeat_period),
            static_cast<unsigned long long>(r.region_bytes / MiB),
            r.recovered ? "true" : "false", r.detect_us, r.resync_us,
            r.mttr_us, static_cast<unsigned long long>(r.copy_reads),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::note("JSON written to " + path);
}

} // namespace
} // namespace clio

int
main()
{
    using namespace clio;

    bench::banner("recovery",
                  "self-healing MTTR: lease detection + controller "
                  "resync after an MN crash (no client heal call)");
    const bool smoke = bench::smokeMode();
    if (smoke)
        bench::note("smoke mode: reduced region and sweep points");

    const std::uint64_t region_bytes = smoke ? 1 * MiB : 4 * MiB;
    std::vector<std::uint64_t> chunks =
        smoke ? std::vector<std::uint64_t>{64 * KiB, 256 * KiB}
              : std::vector<std::uint64_t>{64 * KiB, 128 * KiB,
                                           256 * KiB, 512 * KiB,
                                           1 * MiB};
    std::vector<Tick> periods =
        smoke ? std::vector<Tick>{20 * kMicrosecond, 40 * kMicrosecond}
              : std::vector<Tick>{10 * kMicrosecond, 20 * kMicrosecond,
                                  40 * kMicrosecond,
                                  80 * kMicrosecond};

    std::vector<PointResult> results;

    bench::header({"chunk", "detect_us", "resync_us", "mttr_us",
                   "copy_reads"});
    for (const std::uint64_t chunk : chunks) {
        PointResult r = runRecovery("chunk", chunk, 20 * kMicrosecond,
                                    region_bytes);
        results.push_back(r);
        bench::row(std::to_string(chunk / KiB) + " KiB",
                   {r.detect_us, r.resync_us, r.mttr_us,
                    static_cast<double>(r.copy_reads)});
    }

    bench::header({"heartbeat", "detect_us", "resync_us", "mttr_us",
                   "copy_reads"});
    for (const Tick period : periods) {
        PointResult r =
            runRecovery("heartbeat", 256 * KiB, period, region_bytes);
        results.push_back(r);
        bench::row(std::to_string(period / kMicrosecond) + " us",
                   {r.detect_us, r.resync_us, r.mttr_us,
                    static_cast<double>(r.copy_reads)});
    }

    int failures = 0;
    for (const PointResult &r : results) {
        if (!r.recovered)
            failures++;
    }
    if (failures > 0) {
        bench::note(std::to_string(failures) +
                    " point(s) did NOT recover — investigate");
        return 1;
    }
    bench::note("detection tracks the lease (~dead_after); the copy "
                "scales with region size and chunking overhead");

    writeJson(results, smoke);
    return 0;
}
