/**
 * @file
 * Ablation: page-table overprovisioning factor (§4.2 chose 2x).
 *
 * More slots absorb hash skew (fewer allocation retries) but cost
 * DRAM. This bench sweeps the factor and reports retries at 90%
 * utilization for 1/10/100-page allocations plus the table's memory
 * cost as a fraction of physical memory — the trade the paper
 * settled at 2x.
 */

#include <string>

#include "harness.hh"
#include "pagetable/hash_page_table.hh"
#include "valloc/va_allocator.hh"

using namespace clio;

namespace {

constexpr std::uint64_t kPage = 4 * MiB;
constexpr std::uint64_t kPhys = 2 * GiB;

double
retriesAt90(double factor, std::uint64_t alloc_pages)
{
    HashPageTable pt(kPhys, kPage, 8, factor);
    VaAllocator va(kPage, 1ull << 40);
    const std::uint64_t fill =
        static_cast<std::uint64_t>(0.9 * (kPhys / kPage));
    for (std::uint64_t i = 0; i < fill; i++) {
        auto res = va.allocate(1 + static_cast<ProcId>(i % 4), kPage,
                               kPermReadWrite, pt, 200000);
        if (!res)
            return -1;
        for (auto vpn : res->vpns)
            pt.insert(1 + static_cast<ProcId>(i % 4), vpn,
                      kPermReadWrite);
    }
    double total = 0;
    const int probes = static_cast<int>(bench::iters(25));
    for (int i = 0; i < probes; i++) {
        auto res = va.allocate(9, alloc_pages * kPage, kPermReadWrite,
                               pt, 200000);
        if (!res)
            return -1;
        for (auto vpn : res->vpns)
            pt.insert(9, vpn, kPermReadWrite);
        total += res->retries;
        auto freed = va.free(9, res->addr);
        for (auto vpn : freed->vpns)
            pt.remove(9, vpn);
    }
    return total / probes;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Page-table overprovisioning: retries at "
                              "90% utilization vs table cost");
    bench::header({"factor", "1 page", "10 pages", "100 pages",
                   "table(%phys)"});
    for (double factor : {1.1, 1.25, 1.5, 2.0, 3.0, 4.0}) {
        HashPageTable pt(kPhys, kPage, 8, factor);
        bench::row(std::to_string(factor).substr(0, 4),
                   {retriesAt90(factor, 1), retriesAt90(factor, 10),
                    retriesAt90(factor, 100),
                    100.0 * static_cast<double>(pt.tableBytes()) /
                        static_cast<double>(kPhys)});
    }
    bench::note("expected: retries collapse as the factor grows while "
                "table cost stays well below 1% of physical memory; "
                "2x (the paper's default) is already in the flat "
                "region for small allocations.");
    return 0;
}
