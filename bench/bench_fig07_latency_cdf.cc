/**
 * @file
 * Fig. 7: Latency CDF of continuous 16 B reads/writes without page
 * faults. Clio's smooth, deterministic pipeline yields a short tail;
 * RDMA's host-memory interaction produces a visibly longer one.
 */

#include <cstdio>

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

LatencyHistogram
clioHistogram(bool is_write)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint8_t buf[16] = {};
    client.rwrite(addr, buf, 16); // warm

    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(3000);
    for (std::uint64_t i = 0; i < samples; i++) {
        const Tick t0 = cluster.eventQueue().now();
        if (is_write)
            client.rwrite(addr, buf, 16);
        else
            client.rread(addr, buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return hist;
}

LatencyHistogram
rdmaHistogram(bool is_write)
{
    RdmaMemoryNode node(ModelConfig::prototype(), 1 * GiB, 31);
    Tick lat = 0;
    auto mr = node.registerMr(4 * MiB, false, lat);
    QpId qp = node.createQp();
    std::uint8_t buf[16] = {};
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(3000);
    for (std::uint64_t i = 0; i < samples; i++) {
        auto res = is_write ? node.write(qp, *mr, 0, buf, 16)
                            : node.read(qp, *mr, 0, buf, 16);
        hist.record(res.latency);
    }
    return hist;
}

} // namespace

int
main()
{
    bench::banner("Fig. 7", "Latency CDF of 16 B ops (us at given "
                            "percentile), no page faults");
    auto clio_r = clioHistogram(false);
    auto clio_w = clioHistogram(true);
    auto rdma_r = rdmaHistogram(false);
    auto rdma_w = rdmaHistogram(true);

    bench::header({"percentile", "Clio-Read", "Clio-Write", "RDMA-Read",
                   "RDMA-Write"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
        char label[16];
        std::snprintf(label, sizeof(label), "p%.1f", p);
        bench::row(label, {ticksToUs(clio_r.percentile(p)),
                           ticksToUs(clio_w.percentile(p)),
                           ticksToUs(rdma_r.percentile(p)),
                           ticksToUs(rdma_w.percentile(p))});
    }
    bench::row("max", {ticksToUs(clio_r.max()), ticksToUs(clio_w.max()),
                       ticksToUs(rdma_r.max()),
                       ticksToUs(rdma_w.max())});
    bench::note("expected shape: Clio ~2.5 us median with p99 close to "
                "median (deterministic pipeline); RDMA has the longer "
                "tail (paper Fig. 7).");
    return 0;
}
