/**
 * @file
 * Offload runtime crossover: chained MN-side pipelines vs CN-driven
 * batched access, plus the per-offload FPGA resource and energy
 * accounting the registry keeps for Fig. 21/22.
 *
 * Three strategies over the same remote radix tree:
 *   chained  one rcall_chain per max_chain_depth levels: chase stages
 *            linked MN-side (reply bytes patched into the next
 *            stage's start address), so a depth-D search costs
 *            ceil(D / max_chain_depth) round trips;
 *   looped   one rcall per level (the pre-chaining extend path):
 *            D round trips, each shipping one 32-byte node;
 *   batched  CN-driven bulk access (the RDMA-style plan): download
 *            the whole node arena in one large read and traverse
 *            locally. One round trip, but the payload is the entire
 *            structure — nodes * 32 bytes on the wire.
 *
 * Two sweeps locate the crossover:
 *   - chain depth (key length) at a fixed tree population: batched
 *     pays the same bulk download regardless of depth, so shallow
 *     searches favor it while depth >= 3 chains win;
 *   - tree population at a fixed depth: the batched payload grows
 *     linearly with the tree while the chained plan stays one small
 *     round trip.
 * A dataframe section measures the select->aggregate chain (one bound
 * plan) against the two-rcall offload plan and the CN-only plan.
 *
 * The accounting section drives every migrated offload (pointer-chase,
 * df-select, df-aggregate, clio-kv) on one board and reports each
 * one's registry stats together with its LUT/BRAM share (LUT
 * replicated per engine, BRAM shared — energy/resources.hh) and the
 * engine-busy energy (Fig. 21 model).
 *
 * Output: aligned-column text plus JSON ("clio.bench_offload.v1", no
 * timestamps) to CLIO_BENCH_JSON_OUT or ./BENCH_offload.json. Smoke
 * mode (CLIO_BENCH_SMOKE=1, the bench-smoke ctest) shrinks trees and
 * sweeps — announced explicitly so reduced data is never mistaken for
 * the real sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/dataframe.hh"
#include "apps/kv_store.hh"
#include "apps/radix_tree.hh"
#include "cluster/cluster.hh"
#include "energy/energy.hh"
#include "energy/resources.hh"
#include "harness.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace clio {
namespace {

constexpr std::uint32_t kChaseId = 3;
constexpr std::uint32_t kSelectId = 4;
constexpr std::uint32_t kAggId = 5;
constexpr std::uint32_t kKvId = 6;

std::string
randomKey(Rng &rng, std::size_t len)
{
    std::string key;
    for (std::size_t c = 0; c < len; c++)
        key.push_back(static_cast<char>('a' + rng.uniformInt(26)));
    return key;
}

// -------------------------------------------------------------------
// Radix sweeps: chained vs looped vs CN-batched
// -------------------------------------------------------------------

struct ChasePoint
{
    std::string sweep; ///< "depth" or "elements"
    std::uint64_t depth = 0;
    std::uint64_t entries = 0;
    std::uint64_t nodes = 0;
    double chained_us = 0;
    double looped_us = 0;
    double batched_us = 0;
    /** Round trips one search costs under each strategy. */
    double chained_rtts = 0;
    double looped_rtts = 0;
    bool ok = false;
};

/** Local traversal of a downloaded arena image (the CN-driven plan's
 * compute half; its simulated cost is the bulk read). */
std::uint64_t
traverseImage(const std::vector<std::uint8_t> &image, VirtAddr base,
              const std::string &key)
{
    struct NodeImage
    {
        std::uint64_t next, child_head, ch, value;
    };
    auto at = [&](VirtAddr addr) {
        NodeImage img;
        std::memcpy(&img, image.data() + (addr - base), sizeof(img));
        return img;
    };
    NodeImage img = at(base); // root is the first node
    for (char c : key) {
        VirtAddr child = img.child_head;
        bool found = false;
        while (child) {
            img = at(child);
            if (img.ch == static_cast<std::uint64_t>(
                              static_cast<std::uint8_t>(c))) {
                found = true;
                break;
            }
            child = img.next;
        }
        if (!found)
            return 0;
    }
    return img.value;
}

ChasePoint
runChase(const std::string &sweep, std::uint64_t depth,
         std::uint64_t entries)
{
    ChasePoint p;
    p.sweep = sweep;
    p.depth = depth;
    p.entries = entries;

    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        PointerChaseOffload::descriptor(kChaseId),
        std::make_shared<PointerChaseOffload>(), client.pid());

    Rng rng(depth * 1000003 + entries);
    std::vector<std::pair<std::string, std::uint64_t>> kvs;
    kvs.reserve(entries);
    for (std::uint64_t i = 0; i < entries; i++)
        kvs.emplace_back(randomKey(rng, depth), i + 1);
    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), kChaseId,
                         (entries * depth + 64) * 40);
    if (!tree.bulkLoad(kvs))
        return p;
    p.nodes = tree.nodeCount();

    EventQueue &eq = cluster.eventQueue();
    LatencyHistogram chained, looped, batched;
    std::uint64_t chained_calls = 0, looped_calls = 0;
    std::vector<std::uint8_t> image(tree.arenaUsed());

    // Warm the board: fault in and TLB-fill every arena page, and run
    // one search per strategy, so the measured loop is steady-state —
    // whichever strategy ran first would otherwise pay all the cold
    // misses for the others.
    if (client.rread(tree.arenaBase(), image.data(), image.size()) !=
        Status::kOk)
        return p;
    tree.searchChained(kvs.front().first);
    tree.searchOffload(kvs.front().first);

    const std::uint64_t searches = bench::iters(24);
    for (std::uint64_t i = 0; i < searches; i++) {
        const auto &key = kvs[rng.uniformInt(kvs.size())].first;

        Tick t0 = eq.now();
        const auto rc = tree.searchChained(key);
        chained.record(eq.now() - t0);
        chained_calls += rc.offload_calls;

        t0 = eq.now();
        const auto rl = tree.searchOffload(key);
        looped.record(eq.now() - t0);
        looped_calls += rl.offload_calls;

        // CN-driven batched plan: one bulk download, local chase.
        t0 = eq.now();
        if (client.rread(tree.arenaBase(), image.data(),
                         image.size()) != Status::kOk)
            return p;
        batched.record(eq.now() - t0);
        const std::uint64_t rb =
            traverseImage(image, tree.arenaBase(), key);

        if (!rc.value || !rl.value || *rc.value != *rl.value ||
            rb != *rc.value)
            return p; // strategies disagree -> p.ok stays false
    }
    p.chained_us = ticksToUs(chained.median());
    p.looped_us = ticksToUs(looped.median());
    p.batched_us = ticksToUs(batched.median());
    p.chained_rtts = static_cast<double>(chained_calls) /
                     static_cast<double>(searches);
    p.looped_rtts = static_cast<double>(looped_calls) /
                    static_cast<double>(searches);
    p.ok = true;
    return p;
}

// -------------------------------------------------------------------
// Dataframe: chained select->aggregate vs two rcalls vs CN-only
// -------------------------------------------------------------------

struct DfPoint
{
    int select_pct = 0;
    std::uint64_t rows = 0;
    double chained_us = 0;
    double offload_us = 0;
    double cn_us = 0;
    double chained_net_kib = 0;
    double cn_net_kib = 0;
    bool ok = false;
};

DfPoint
runDf(int select_pct, std::uint64_t rows)
{
    DfPoint p;
    p.select_pct = select_pct;
    p.rows = rows;

    Cluster cluster(ModelConfig::prototype(), 1, 1, 8 * GiB);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        SelectOffload::descriptor(kSelectId),
        std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        AggregateOffload::descriptor(kAggId),
        std::make_shared<AggregateOffload>(), client.pid());

    Rng rng(select_pct);
    std::vector<std::uint8_t> col_a(rows);
    std::vector<std::int64_t> col_b(rows);
    for (std::uint64_t i = 0; i < rows; i++) {
        col_a[i] = rng.chance(select_pct / 100.0) ? 1 : 0;
        col_b[i] = static_cast<std::int64_t>(rng.uniformInt(100));
    }
    ClioDataFrame df(client, cluster.mn(0).nodeId(), kSelectId, kAggId);
    if (!df.load(col_a, col_b))
        return p;

    EventQueue &eq = cluster.eventQueue();
    // Steady-state warmup (cold page faults would bill the first plan).
    if (!df.runOffloadChained(1).ok || !df.runOffload(1).ok ||
        !df.runAtCn(1).ok)
        return p;
    Tick t0 = eq.now();
    const auto chained = df.runOffloadChained(1);
    p.chained_us = ticksToUs(eq.now() - t0);
    t0 = eq.now();
    const auto offload = df.runOffload(1);
    p.offload_us = ticksToUs(eq.now() - t0);
    t0 = eq.now();
    const auto local = df.runAtCn(1);
    p.cn_us = ticksToUs(eq.now() - t0);

    p.chained_net_kib =
        static_cast<double>(chained.net_bytes) / KiB;
    p.cn_net_kib = static_cast<double>(local.net_bytes) / KiB;
    p.ok = chained.ok && offload.ok && local.ok &&
           chained.selected == local.selected &&
           chained.selected == offload.selected;
    return p;
}

// -------------------------------------------------------------------
// Per-offload resource + energy accounting (Fig. 21/22 wiring)
// -------------------------------------------------------------------

struct OffloadRow
{
    std::uint32_t id = 0;
    std::string name;
    double lut_pct = 0;
    double bram_pct = 0;
    std::uint64_t calls = 0;
    std::uint64_t chain_stages = 0;
    double busy_us = 0;
    double energy_mj = 0;
};

struct Accounting
{
    std::uint32_t engines = 0;
    double total_lut_pct = 0;
    double total_bram_pct = 0;
    double engine_busy_us = 0;
    double engine_wait_us = 0;
    double engine_energy_mj = 0;
    std::vector<OffloadRow> rows;
    bool ok = false;
};

/** One board hosting every migrated offload, driven by a small mixed
 * workload so the registry stats are live numbers, not zeros. */
Accounting
runAccounting()
{
    Accounting acc;
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    CBoard &mn = cluster.mn(0);
    mn.registerOffloadShared(PointerChaseOffload::descriptor(kChaseId),
                             std::make_shared<PointerChaseOffload>(),
                             client.pid());
    mn.registerOffloadShared(SelectOffload::descriptor(kSelectId),
                             std::make_shared<SelectOffload>(),
                             client.pid());
    mn.registerOffloadShared(AggregateOffload::descriptor(kAggId),
                             std::make_shared<AggregateOffload>(),
                             client.pid());
    mn.registerOffload(ClioKvOffload::descriptor(kKvId),
                       std::make_shared<ClioKvOffload>(1024));

    Rng rng(2022);
    // Radix searches (chained + looped).
    std::vector<std::pair<std::string, std::uint64_t>> kvs;
    for (std::uint64_t i = 0; i < 200; i++)
        kvs.emplace_back(randomKey(rng, 6), i + 1);
    RemoteRadixTree tree(client, mn.nodeId(), kChaseId, 2 * MiB);
    if (!tree.bulkLoad(kvs))
        return acc;
    for (int i = 0; i < 8; i++) {
        tree.searchChained(kvs[rng.uniformInt(kvs.size())].first);
        tree.searchOffload(kvs[rng.uniformInt(kvs.size())].first);
    }
    // One chained dataframe query.
    std::vector<std::uint8_t> col_a(4096);
    std::vector<std::int64_t> col_b(4096);
    for (std::size_t i = 0; i < col_a.size(); i++) {
        col_a[i] = rng.chance(0.1) ? 1 : 0;
        col_b[i] = static_cast<std::int64_t>(rng.uniformInt(100));
    }
    ClioDataFrame df(client, mn.nodeId(), kSelectId, kAggId);
    if (!df.load(col_a, col_b) || !df.runOffloadChained(1).ok)
        return acc;
    // KV traffic: singles plus a chained mget batch.
    ClioKvClient kv(client, {mn.nodeId()}, kKvId);
    std::vector<std::string> keys;
    for (int i = 0; i < 32; i++) {
        keys.push_back("key-" + std::to_string(i));
        if (!kv.put(keys.back(), "value-" + std::to_string(i)))
            return acc;
    }
    for (const auto &v : kv.mget(keys)) {
        if (!v)
            return acc;
    }

    const OffloadRuntime &rt = mn.offloadRuntime();
    acc.engines = rt.scheduler().engineCount();
    const auto util =
        offloadUtilization(rt.registry().descriptors(), acc.engines);
    const auto &stats = rt.scheduler().stats();
    acc.engine_busy_us = ticksToUs(stats.busy_ticks);
    acc.engine_wait_us = ticksToUs(stats.wait_ticks);
    acc.engine_energy_mj = offloadEnergyMj(cfg.energy, stats.busy_ticks);
    acc.total_lut_pct = util.front().lut_pct;
    acc.total_bram_pct = util.front().bram_pct;
    for (const auto &[id, entry] : rt.registry().entries()) {
        OffloadRow row;
        row.id = id;
        row.name = entry.desc.name;
        for (const auto &u : util) {
            if (u.name == entry.desc.name) {
                row.lut_pct = u.lut_pct;
                row.bram_pct = u.bram_pct;
            }
        }
        row.calls = entry.stats.calls;
        row.chain_stages = entry.stats.chain_stages;
        const Tick busy = entry.stats.cost.total();
        row.busy_us = ticksToUs(busy);
        row.energy_mj = offloadEnergyMj(cfg.energy, busy);
        if (row.calls + row.chain_stages == 0)
            return acc; // an offload the workload never exercised
        acc.rows.push_back(row);
    }
    acc.ok = acc.rows.size() == 4 && stats.busy_ticks > 0;
    return acc;
}

// -------------------------------------------------------------------
// JSON
// -------------------------------------------------------------------

void
writeJson(const std::vector<ChasePoint> &chase,
          const std::vector<DfPoint> &df, const Accounting &acc,
          std::uint64_t crossover_depth,
          std::uint64_t crossover_entries, bool smoke)
{
    const char *env = std::getenv("CLIO_BENCH_JSON_OUT");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_offload.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"clio.bench_offload.v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"engines\": %u,\n", acc.engines);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < chase.size(); i++) {
        const ChasePoint &p = chase[i];
        std::fprintf(
            f,
            "    {\"sweep\": \"%s\", \"depth\": %llu, "
            "\"entries\": %llu, \"nodes\": %llu, "
            "\"chained_us\": %.3f, \"looped_us\": %.3f, "
            "\"cn_batched_us\": %.3f, \"chained_rtts\": %.2f, "
            "\"looped_rtts\": %.2f, \"ok\": %s}%s\n",
            p.sweep.c_str(), static_cast<unsigned long long>(p.depth),
            static_cast<unsigned long long>(p.entries),
            static_cast<unsigned long long>(p.nodes), p.chained_us,
            p.looped_us, p.batched_us, p.chained_rtts, p.looped_rtts,
            p.ok ? "true" : "false",
            i + 1 < chase.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"dataframe\": [\n");
    for (std::size_t i = 0; i < df.size(); i++) {
        const DfPoint &p = df[i];
        std::fprintf(
            f,
            "    {\"select_pct\": %d, \"rows\": %llu, "
            "\"chained_us\": %.3f, \"offload_us\": %.3f, "
            "\"cn_us\": %.3f, \"chained_net_kib\": %.1f, "
            "\"cn_net_kib\": %.1f, \"ok\": %s}%s\n",
            p.select_pct, static_cast<unsigned long long>(p.rows),
            p.chained_us, p.offload_us, p.cn_us, p.chained_net_kib,
            p.cn_net_kib, p.ok ? "true" : "false",
            i + 1 < df.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"crossover\": {\"chained_beats_cn_depth\": "
                 "%llu, \"chained_beats_cn_entries\": %llu},\n",
                 static_cast<unsigned long long>(crossover_depth),
                 static_cast<unsigned long long>(crossover_entries));
    std::fprintf(f, "  \"offloads\": [\n");
    for (std::size_t i = 0; i < acc.rows.size(); i++) {
        const OffloadRow &r = acc.rows[i];
        std::fprintf(
            f,
            "    {\"id\": %u, \"name\": \"%s\", \"lut_pct\": %.2f, "
            "\"bram_pct\": %.2f, \"calls\": %llu, "
            "\"chain_stages\": %llu, \"busy_us\": %.3f, "
            "\"energy_mj\": %.6f}%s\n",
            r.id, r.name.c_str(), r.lut_pct, r.bram_pct,
            static_cast<unsigned long long>(r.calls),
            static_cast<unsigned long long>(r.chain_stages), r.busy_us,
            r.energy_mj, i + 1 < acc.rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"engine_totals\": {\"lut_pct\": %.2f, "
                 "\"bram_pct\": %.2f, \"busy_us\": %.3f, "
                 "\"wait_us\": %.3f, \"energy_mj\": %.6f}\n}\n",
                 acc.total_lut_pct, acc.total_bram_pct,
                 acc.engine_busy_us, acc.engine_wait_us,
                 acc.engine_energy_mj);
    std::fclose(f);
    bench::note("JSON written to " + path);
}

} // namespace
} // namespace clio

int
main()
{
    using namespace clio;

    bench::banner("offload",
                  "chained MN-side pipelines vs CN-driven batched "
                  "access, with per-offload FPGA resource and energy "
                  "accounting");
    const bool smoke = bench::smokeMode();
    if (smoke)
        bench::note("smoke mode: reduced trees, rows, and sweeps");

    std::vector<ChasePoint> chase;

    // Depth sweep: same populated tree scale, deeper and deeper keys.
    const std::uint64_t depth_entries = smoke ? 192 : 768;
    const std::vector<std::uint64_t> depths =
        smoke ? std::vector<std::uint64_t>{1, 3, 8}
              : std::vector<std::uint64_t>{1, 2, 3, 4, 6, 8, 12, 16};
    bench::header({"depth", "chained_us", "looped_us", "batched_us",
                   "chain_rtts"});
    for (const std::uint64_t d : depths) {
        ChasePoint p = runChase("depth", d, depth_entries);
        chase.push_back(p);
        bench::row(std::to_string(d), {p.chained_us, p.looped_us,
                                       p.batched_us, p.chained_rtts});
    }

    // Element sweep at a fixed depth: the batched download grows with
    // the tree; the chained plan does not.
    const std::uint64_t sweep_depth = 4;
    const std::vector<std::uint64_t> element_counts =
        smoke ? std::vector<std::uint64_t>{64, 512}
              : std::vector<std::uint64_t>{32, 64, 128, 256, 512, 1024,
                                           2048};
    bench::header({"entries", "chained_us", "looped_us", "batched_us",
                   "nodes"});
    for (const std::uint64_t n : element_counts) {
        ChasePoint p = runChase("elements", sweep_depth, n);
        chase.push_back(p);
        bench::row(std::to_string(n),
                   {p.chained_us, p.looped_us, p.batched_us,
                    static_cast<double>(p.nodes)});
    }

    // Dataframe: the select->aggregate chain saves one round trip over
    // the two-rcall plan; the CN plan ships whole columns.
    std::vector<DfPoint> df;
    bench::header({"select(%)", "chained_us", "offload_us", "cn_us",
                   "net_kib"});
    for (int pct : {5, 40}) {
        DfPoint p = runDf(pct, smoke ? 8000 : 120000);
        df.push_back(p);
        bench::row(std::to_string(pct),
                   {p.chained_us, p.offload_us, p.cn_us,
                    p.chained_net_kib});
    }

    Accounting acc = runAccounting();
    bench::header({"offload", "LUT(%)", "BRAM(%)", "calls+stages",
                   "busy_us", "energy_mj"});
    for (const OffloadRow &r : acc.rows) {
        bench::row(r.name,
                   {r.lut_pct, r.bram_pct,
                    static_cast<double>(r.calls + r.chain_stages),
                    r.busy_us, r.energy_mj});
    }

    // ---- Acceptance checks -----------------------------------------
    int failures = 0;
    for (const ChasePoint &p : chase) {
        if (!p.ok)
            failures++;
    }
    for (const DfPoint &p : df) {
        if (!p.ok)
            failures++;
    }
    if (!acc.ok)
        failures++;

    // The headline crossover: the shallowest depth-sweep point where
    // the chained pipeline beats the CN-driven batched download, and
    // the smallest element count where it does.
    std::uint64_t crossover_depth = 0, crossover_entries = 0;
    for (const ChasePoint &p : chase) {
        if (!p.ok || p.chained_us >= p.batched_us)
            continue;
        if (p.sweep == "depth" &&
            (crossover_depth == 0 || p.depth < crossover_depth))
            crossover_depth = p.depth;
        if (p.sweep == "elements" &&
            (crossover_entries == 0 || p.entries < crossover_entries))
            crossover_entries = p.entries;
    }
    bool depth3_win = false;
    for (const ChasePoint &p : chase) {
        if (p.sweep == "depth" && p.ok && p.depth >= 3 &&
            p.chained_us < p.batched_us && p.chained_us < p.looped_us)
            depth3_win = true;
    }
    if (!depth3_win) {
        bench::note("FAIL: no depth >= 3 point where the chained "
                    "pipeline beats both CN-batched and looped plans");
        failures++;
    }
    for (const DfPoint &p : df) {
        if (p.ok && p.chained_us > p.offload_us) {
            bench::note("FAIL: chained dataframe plan slower than the "
                        "two-rcall plan at select=" +
                        std::to_string(p.select_pct) + "%");
            failures++;
        }
    }
    if (failures > 0) {
        bench::note(std::to_string(failures) + " check(s) failed");
        return 1;
    }
    bench::note("expected shape: batched wins only shallow/small "
                "structures (one cheap download); from depth >= 3 the "
                "chained plan's one small round trip per "
                "max_chain_depth levels wins, and its lead grows with "
                "tree size");

    writeJson(chase, df, acc, crossover_depth, crossover_entries,
              smoke);
    return 0;
}
