/**
 * @file
 * Fig. 5: PTE and MR scalability.
 *
 * Clio: a 4 TB-class MN maps N huge pages (many VAs onto a small
 * physical space, like the paper's stress test); random 16 B reads
 * show two stable latency levels — TLB hit below the (small
 * prototype) TLB size, TLB miss = exactly one extra DRAM access
 * above it — and never fail up to 2^20 pages (4 TB).
 *
 * RDMA: a single big MR exercises the MTT (PTE) cache (CX3-class 256
 * and CX5-class 4096 entries); many small MRs exercise the MPT cache
 * and hit the hard 2^18 registration limit.
 */

#include <string>
#include <vector>

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr double kFailed = -1.0;

/** Clio median read latency with n_pages mapped PTEs. */
double
clioLatencyUs(std::uint64_t n_pages)
{
    auto cfg = ModelConfig::prototype();
    cfg.mn_phys_bytes = 8 * TiB; // page table sized for the sweep
    cfg.fast_path.tlb_entries = 16; // the small prototype TLB
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    CBoard &mn = cluster.mn(0);

    // Pre-map N pages directly (the paper maps a huge VA range onto a
    // small physical space; translation work is what is measured).
    // Like the slow-path allocator, skip any vpn whose bucket is full
    // (the overflow-free invariant: VAs are *chosen* to fit, §4.2).
    const std::uint64_t page = cfg.page_table.page_size;
    const ProcId pid = client.pid();
    std::vector<std::uint64_t> vpns;
    vpns.reserve(n_pages);
    for (std::uint64_t vpn = 1; vpns.size() < n_pages; vpn++) {
        if (mn.pageTable().freeSlotsInBucket(pid, vpn) == 0)
            continue;
        mn.pageTable().insert(pid, vpn, kPermReadWrite);
        mn.pageTable().bindFrame(pid, vpn,
                                 (vpns.size() % 512) * page);
        vpns.push_back(vpn);
    }
    client.noteRegion(page, (vpns.back() + 1) * page, mn.nodeId());

    LatencyHistogram hist;
    std::uint8_t buf[16];
    Rng rng(7);
    const std::uint64_t reads = bench::iters(400);
    for (std::uint64_t i = 0; i < reads; i++) {
        const std::uint64_t vpn = vpns[rng.uniformInt(vpns.size())];
        const Tick t0 = cluster.eventQueue().now();
        client.rread(vpn * page, buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.median());
}

/** RDMA median read latency: one MR of n_pages host pages. */
double
rdmaPteLatencyUs(std::uint64_t n_pages, std::uint32_t pte_cache)
{
    auto cfg = ModelConfig::prototype();
    cfg.rdma.pte_cache_entries = pte_cache;
    RdmaMemoryNode node(cfg, 32 * GiB, 3);
    Tick lat = 0;
    auto mr =
        node.registerMr(n_pages * RdmaMemoryNode::kHostPage, false, lat);
    if (!mr)
        return kFailed;
    QpId qp = node.createQp();
    LatencyHistogram hist;
    std::uint8_t buf[16];
    Rng rng(11);
    // Steady-state warmup: touch the working set once so a cache-
    // resident set measures hits, not compulsory misses.
    const std::uint64_t warm =
        std::min<std::uint64_t>(n_pages, 2ull * pte_cache);
    for (std::uint64_t p = 0; p < warm; p++)
        node.read(qp, *mr, p * RdmaMemoryNode::kHostPage, buf, 16);
    const std::uint64_t reads = bench::iters(400);
    for (std::uint64_t i = 0; i < reads; i++) {
        const std::uint64_t off =
            rng.uniformInt(n_pages) * RdmaMemoryNode::kHostPage;
        hist.record(node.read(qp, *mr, off, buf, 16).latency);
    }
    return ticksToUs(hist.median());
}

/** RDMA median read latency across n_mrs one-page MRs. */
double
rdmaMrLatencyUs(std::uint64_t n_mrs, std::uint32_t mr_cache)
{
    auto cfg = ModelConfig::prototype();
    cfg.rdma.mr_cache_entries = mr_cache;
    RdmaMemoryNode node(cfg, 32 * GiB, 5);
    std::vector<MrId> mrs;
    Tick lat = 0;
    for (std::uint64_t i = 0; i < n_mrs; i++) {
        auto mr = node.registerMr(RdmaMemoryNode::kHostPage, false, lat);
        if (!mr)
            return kFailed; // beyond the 2^18 hard limit
        mrs.push_back(*mr);
    }
    QpId qp = node.createQp();
    LatencyHistogram hist;
    std::uint8_t buf[16];
    Rng rng(13);
    const std::uint64_t warm =
        std::min<std::uint64_t>(mrs.size(), 2ull * mr_cache);
    for (std::uint64_t i = 0; i < warm; i++)
        node.read(qp, mrs[i], 0, buf, 16);
    const std::uint64_t reads = bench::iters(400);
    for (std::uint64_t i = 0; i < reads; i++) {
        const MrId mr = mrs[rng.uniformInt(mrs.size())];
        hist.record(node.read(qp, mr, 0, buf, 16).latency);
    }
    return ticksToUs(hist.median());
}

} // namespace

int
main()
{
    bench::banner("Fig. 5", "PTE and MR scalability: 16 B read median "
                            "latency (us) vs mapped-entry count "
                            "(-1 = system fails)");
    bench::header({"log2(entries)", "Clio", "RDMA-PTE", "RDMA-PTE-CX5",
                   "RDMA-MR", "RDMA-MR-CX5"});
    // Smoke mode stops at 2^14 entries; the >=2^16 points dominate
    // runtime (mapping 2^20 pages, registering 2^19 MRs).
    const int max_order = bench::smokeMode() ? 14 : 20;
    for (int order : {0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
        if (order > max_order)
            continue;
        const std::uint64_t n = 1ull << order;
        // Clio pages are 4 MB: cap the sweep at 2^20 pages (4 TB).
        const double clio = clioLatencyUs(n);
        // Cap MR enumeration at 2^19 to demonstrate the 2^18 failure
        // without burning time far beyond it.
        const double mr_small =
            n <= (1ull << 19) ? rdmaMrLatencyUs(n, 256) : kFailed;
        const double mr_big =
            n <= (1ull << 19) ? rdmaMrLatencyUs(n, 2048) : kFailed;
        bench::row("2^" + std::to_string(order),
                   {clio, rdmaPteLatencyUs(n, 256),
                    rdmaPteLatencyUs(n, 4096), mr_small, mr_big});
    }
    bench::note("expected shape: Clio shows two flat levels (TLB hit "
                "vs miss = +1 DRAM access) and never fails; RDMA "
                "degrades past each cache size and MR registration "
                "fails beyond 2^18 (paper Fig. 5).");
    return 0;
}
