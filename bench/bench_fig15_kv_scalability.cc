/**
 * @file
 * Fig. 15: Clio-KV throughput vs number of MNs (YCSB A/B/C).
 *
 * Keys are partitioned across MNs by the CN-side load balancer; with
 * more MNs the aggregate throughput scales until the CN side
 * saturates (paper Fig. 15).
 */

#include <memory>
#include <vector>

#include "apps/kv_store.hh"
#include "apps/runner.hh"
#include "apps/ycsb.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kOffloadId = 1;
constexpr std::uint64_t kKeys = 2000;
constexpr int kOpsPerClient = 400;
constexpr int kClients = 8;
constexpr std::uint32_t kValueBytes = 1024;

double
mops(std::uint32_t num_mns, YcsbWorkload workload)
{
    Cluster cluster(ModelConfig::prototype(), 2, num_mns);
    std::vector<NodeId> mns;
    for (std::uint32_t m = 0; m < num_mns; m++) {
        cluster.mn(m).registerOffload(kOffloadId,
                                      std::make_shared<ClioKvOffload>());
        mns.push_back(cluster.mn(m).nodeId());
    }

    // Preload via one client.
    ClioClient &loader = cluster.createClient(0);
    ClioKvClient load_kv(loader, mns, kOffloadId);
    const std::string value(kValueBytes, 'v');
    const std::uint64_t keys = bench::iters(kKeys);
    for (std::uint64_t k = 0; k < keys; k++)
        load_kv.put(YcsbGenerator::keyString(k), value);

    // Concurrent clients in closed loop over async offload calls.
    struct ClientState
    {
        ClioClient *client;
        std::unique_ptr<YcsbGenerator> gen;
        std::vector<NodeId> mns;
        int remaining = static_cast<int>(bench::iters(kOpsPerClient));
    };
    std::vector<std::unique_ptr<ClientState>> states;
    ClosedLoopRunner runner(cluster.eventQueue());
    for (int c = 0; c < kClients; c++) {
        auto st = std::make_unique<ClientState>();
        st->client = &cluster.createClient(
            static_cast<std::uint32_t>(c % 2));
        st->gen = std::make_unique<YcsbGenerator>(
            keys, workload, true, 0.99,
            static_cast<std::uint64_t>(c) * 7 + 1);
        st->mns = mns;
        states.push_back(std::move(st));
    }
    std::uint64_t completed = 0;
    for (auto &stp : states) {
        ClientState *st = stp.get();
        const std::string val = value;
        runner.addActor([st, val, &completed]() -> ActorStep {
            if (st->remaining-- <= 0)
                return ActorStep::done();
            completed++;
            const YcsbOp op = st->gen->next();
            const std::string key =
                YcsbGenerator::keyString(op.key_index);
            const NodeId mn =
                st->mns[ClioKvOffload::hashKey(key) % st->mns.size()];
            auto arg = op.is_set ? kvEncode(KvOp::kPut, key, val)
                                 : kvEncode(KvOp::kGet, key);
            return ActorStep::wait(st->client->offloadAsync(
                mn, kOffloadId, std::move(arg), kValueBytes + 64));
        });
    }
    const Tick elapsed = runner.run();
    return static_cast<double>(completed) / ticksToSeconds(elapsed) /
           1e6;
}

} // namespace

int
main()
{
    bench::banner("Fig. 15", "Clio-KV throughput (MOPS) vs number of "
                             "MNs, YCSB A/B/C, zipf 0.99, 1 KB values");
    bench::header({"MNs", "Workload-A", "Workload-B", "Workload-C"});
    for (std::uint32_t mns : {1u, 2u, 3u, 4u}) {
        bench::row(std::to_string(mns),
                   {mops(mns, YcsbWorkload::kA),
                    mops(mns, YcsbWorkload::kB),
                    mops(mns, YcsbWorkload::kC)});
    }
    bench::note("expected shape: throughput grows with MNs until the "
                "CN-side port saturates (paper Fig. 15).");
    return 0;
}
