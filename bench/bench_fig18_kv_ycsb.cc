/**
 * @file
 * Fig. 18: Key-value store latency under YCSB A/B/C — Clio-KV (full
 * simulated stack, extend-path offload) vs Clover, HERD, and HERD on
 * BlueField (latency-profile models), zipf 0.99, 1 KB values.
 */

#include <memory>
#include <string>

#include "apps/kv_store.hh"
#include "apps/ycsb.hh"
#include "baselines/systems.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kOffloadId = 1;
constexpr std::uint64_t kKeys = 2000;
constexpr std::uint32_t kValueBytes = 1024;
constexpr int kOps = 1200;

double
clioKvUs(YcsbWorkload workload)
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    cluster.mn(0).registerOffload(kOffloadId,
                                  std::make_shared<ClioKvOffload>());
    ClioClient &client = cluster.createClient(0);
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kOffloadId);
    const std::string value(kValueBytes, 'y');
    const std::uint64_t keys = bench::iters(kKeys);
    for (std::uint64_t k = 0; k < keys; k++)
        kv.put(YcsbGenerator::keyString(k), value);

    YcsbGenerator gen(keys, workload);
    LatencyHistogram hist;
    const std::uint64_t ops = bench::iters(kOps);
    for (std::uint64_t i = 0; i < ops; i++) {
        const YcsbOp op = gen.next();
        const std::string key = YcsbGenerator::keyString(op.key_index);
        const Tick t0 = cluster.eventQueue().now();
        if (op.is_set)
            kv.put(key, value);
        else
            kv.get(key);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.percentile(50));
}

/** Latency-model systems: issue the same op mix. */
template <typename GetFn, typename SetFn>
double
modelUs(YcsbWorkload workload, GetFn &&get, SetFn &&set)
{
    YcsbGenerator gen(bench::iters(kKeys), workload);
    LatencyHistogram hist;
    const std::uint64_t ops = bench::iters(kOps);
    for (std::uint64_t i = 0; i < ops; i++) {
        const YcsbOp op = gen.next();
        hist.record(op.is_set ? set(kValueBytes) : get(kValueBytes));
    }
    return ticksToUs(hist.percentile(50));
}

} // namespace

int
main()
{
    bench::banner("Fig. 18", "KV store YCSB latency (median us), zipf "
                             "0.99, 1 KB values");
    const auto cfg = ModelConfig::prototype();
    CloverModel clover(cfg);
    HerdModel herd(cfg, false);
    HerdModel herd_bf(cfg, true);

    bench::header({"workload", "Clio", "Clover", "HERD", "HERD-BF"});
    for (auto w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC}) {
        bench::row(
            ycsbName(w),
            {clioKvUs(w),
             modelUs(
                 w, [&](std::uint64_t n) { return clover.readLatency(n); },
                 [&](std::uint64_t n) {
                     // Clover set: allocate + write + pointer update.
                     return clover.writeLatency(n) +
                            clover.readLatency(32);
                 }),
             modelUs(
                 w, [&](std::uint64_t n) { return herd.getLatency(n); },
                 [&](std::uint64_t n) { return herd.putLatency(n); }),
             modelUs(
                 w,
                 [&](std::uint64_t n) { return herd_bf.getLatency(n); },
                 [&](std::uint64_t n) { return herd_bf.putLatency(n); })});
    }
    bench::note("expected shape: Clio-KV best or close to HERD; "
                "HERD-BF worst (chip crossing); Clover hurt by "
                "multi-RTT sets (paper Fig. 18).");
    return 0;
}
