/**
 * @file
 * Fig. 13: VA-allocation retry count vs physical memory utilization —
 * the cost side of the overflow-free page table trade (§4.2). This is
 * a direct algorithmic reproduction: the real allocator against the
 * real hash page table geometry (4 MB pages, 8-slot buckets, 2x
 * overprovisioning).
 */

#include <string>
#include <vector>

#include "harness.hh"
#include "pagetable/hash_page_table.hh"
#include "valloc/va_allocator.hh"

using namespace clio;

namespace {

constexpr std::uint64_t kPage = 4 * MiB;
constexpr std::uint64_t kPhys = 2 * GiB; // 512 frames, paper prototype

/** Average retries for `alloc_pages`-page allocations measured at a
 * target utilization (probe allocations are freed right back so they
 * do not change utilization). */
double
retriesAt(double utilization, std::uint64_t alloc_pages)
{
    HashPageTable pt(kPhys, kPage, 8, 2.0);
    VaAllocator va(kPage, 1ull << 40);
    const std::uint64_t total_frames = kPhys / kPage;

    // Fill to the target utilization with single-page allocations
    // from several processes (the steady-state population).
    const auto target =
        static_cast<std::uint64_t>(utilization * total_frames);
    for (std::uint64_t i = 0; i < target; i++) {
        const ProcId pid = 1 + static_cast<ProcId>(i % 4);
        auto res = va.allocate(pid, kPage, kPermReadWrite, pt, 100000);
        if (!res)
            return -1; // table full before target
        for (auto vpn : res->vpns)
            pt.insert(pid, vpn, kPermReadWrite);
    }

    // Probe: measure retries of fresh allocations at this fill level.
    double total_retries = 0;
    const int probes = static_cast<int>(bench::iters(30));
    for (int i = 0; i < probes; i++) {
        const ProcId pid = 9;
        auto res = va.allocate(pid, alloc_pages * kPage, kPermReadWrite,
                               pt, 100000);
        if (!res)
            return -1;
        for (auto vpn : res->vpns)
            pt.insert(pid, vpn, kPermReadWrite);
        total_retries += res->retries;
        auto freed = va.free(pid, res->addr);
        for (auto vpn : freed->vpns)
            pt.remove(pid, vpn);
    }
    return total_retries / probes;
}

} // namespace

int
main()
{
    bench::banner("Fig. 13", "Average VA-allocation retries vs physical "
                             "memory utilization (2 GB MN, 4 MB pages, "
                             "K=8, 2x slots)");
    bench::header({"util(%)", "1 page", "10 pages", "100 pages"});
    for (int pct : {0, 25, 50, 75, 90, 95, 99}) {
        bench::row(std::to_string(pct),
                   {retriesAt(pct / 100.0, 1), retriesAt(pct / 100.0, 10),
                    retriesAt(pct / 100.0, 100)});
    }
    bench::note("expected shape: zero retries below ~50% utilization; "
                "tens of retries near full, worst for multi-page "
                "allocations (paper Fig. 13: <= ~60).");
    return 0;
}
