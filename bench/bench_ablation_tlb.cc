/**
 * @file
 * Ablation: on-chip TLB capacity (§4.2 / Fig. 5's two latency levels).
 *
 * Sweeps the TLB size against a zipfian page working set and reports
 * hit rate and median read latency — quantifying the "a CBoard could
 * use a larger TLB if optimal performance is desired" remark.
 */

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/rng.hh"

using namespace clio;

namespace {

struct Result
{
    double hit_rate;
    double median_us;
};

Result
sweep(std::uint32_t tlb_entries)
{
    auto cfg = ModelConfig::prototype();
    cfg.fast_path.tlb_entries = tlb_entries;
    cfg.mn_phys_bytes = 32 * GiB;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    CBoard &mn = cluster.mn(0);

    // 4096-page working set, zipf-popular (a consolidated MN serving
    // many tenants has a much bigger footprint than any TLB).
    const std::uint64_t pages = 4096;
    const std::uint64_t page = cfg.page_table.page_size;
    const ProcId pid = client.pid();
    std::vector<std::uint64_t> vpns;
    for (std::uint64_t vpn = 1; vpns.size() < pages; vpn++) {
        if (mn.pageTable().freeSlotsInBucket(pid, vpn) == 0)
            continue;
        mn.pageTable().insert(pid, vpn, kPermReadWrite);
        mn.pageTable().bindFrame(pid, vpn,
                                 (vpns.size() % 1024) * page);
        vpns.push_back(vpn);
    }
    client.noteRegion(page, (vpns.back() + 1) * page, mn.nodeId());

    ZipfianGenerator zipf(pages, 0.9, tlb_entries);
    std::uint8_t buf[16];
    const std::uint64_t reads = bench::iters(2000);
    // Warm.
    for (std::uint64_t i = 0; i < reads; i++)
        client.rread(vpns[zipf.next()] * page, buf, 16);
    mn.tlb().resetStats();
    LatencyHistogram hist;
    for (std::uint64_t i = 0; i < reads; i++) {
        const Tick t0 = cluster.eventQueue().now();
        client.rread(vpns[zipf.next()] * page, buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    Result out;
    out.hit_rate =
        static_cast<double>(mn.tlb().hits()) /
        static_cast<double>(mn.tlb().hits() + mn.tlb().misses());
    out.median_us = ticksToUs(hist.median());
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "TLB capacity vs hit rate and median "
                              "16 B read latency (4096-page zipf "
                              "working set)");
    bench::header({"TLB entries", "hit rate", "median(us)"});
    for (std::uint32_t entries : {16u, 64u, 256u, 1024u, 4096u}) {
        auto r = sweep(entries);
        bench::row(std::to_string(entries), {r.hit_rate, r.median_us});
    }
    bench::note("expected: latency steps between the Fig. 5 hit/miss "
                "levels as the hit rate climbs; a TLB covering the "
                "hot set recovers the TLB-hit latency.");
    return 0;
}
