/**
 * @file
 * Fig. 9: On-board goodput vs request size.
 *
 * An FPGA-side traffic generator drives the fast path directly
 * (bypassing the 10 Gbps port), measuring the pipeline's intrinsic
 * throughput: >110 Gbps for large requests; reads below writes at
 * small sizes because of the non-pipelined DMA IP's setup cost.
 */

#include <cstring>
#include <vector>

#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

double
onboardGbps(std::uint64_t req_bytes, bool is_write)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 1);
    CBoard &mn = cluster.mn(0);
    const ProcId pid = 0x42;

    // Map a working buffer directly (traffic generator setup).
    const std::uint64_t page = cfg.page_table.page_size;
    for (std::uint64_t vpn = 1; vpn <= 16; vpn++) {
        if (mn.pageTable().freeSlotsInBucket(pid, vpn) == 0)
            continue;
        mn.pageTable().insert(pid, vpn, kPermReadWrite);
        mn.pageTable().bindFrame(pid, vpn, (vpn - 1) * page);
    }

    std::vector<std::uint8_t> payload(req_bytes, 0xCD);
    RequestMsg req;
    req.type = is_write ? MsgType::kWrite : MsgType::kRead;
    req.pid = pid;
    req.addr = page;
    req.size = req_bytes;
    if (is_write)
        req.data = payload;

    // Back-to-back requests at the pipeline head; the generator keeps
    // the pipeline fed (ready = previous completion is NOT required —
    // II=1 means a new request enters as soon as the pipeline accepts
    // it, so feed with ready=0 and let occupancy modeling spread them).
    const std::uint64_t requests = bench::iters(3000);
    Tick last_done = 0;
    std::uint64_t served = 0;
    for (std::uint64_t i = 0; i < requests; i++) {
        ResponseMsg resp;
        req.req_id = static_cast<ReqId>(i + 1);
        req.orig_req_id = req.req_id;
        req.addr = page + (static_cast<std::uint64_t>(i) * req_bytes) %
                              (8 * page);
        const Tick done = mn.serviceFastPath(req, 0, resp);
        if (resp.status != Status::kOk)
            return -1;
        last_done = done;
        served += req_bytes;
    }
    return static_cast<double>(served) * 8.0 /
           ticksToSeconds(last_done) / 1e9;
}

} // namespace

int
main()
{
    bench::banner("Fig. 9", "On-board goodput (Gbps) vs request size "
                            "(FPGA traffic generator, no port cap)");
    bench::header({"size(B)", "Read", "Write"});
    for (std::uint64_t sz : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                             8192u}) {
        bench::row(std::to_string(sz),
                   {onboardGbps(sz, false), onboardGbps(sz, true)});
    }
    bench::note("expected shape: both exceed 110 Gbps at large sizes "
                "(512-bit datapath at 250 MHz = 128 Gbps ceiling); "
                "read < write at small sizes due to DMA setup cost "
                "(paper Fig. 9).");
    return 0;
}
