/**
 * @file
 * Fig. 21: Energy per YCSB request (mJ), CN + MN split, for Clio,
 * Clover, HERD, and HERD-BF. Energy = node power x runtime /
 * requests; runtimes come from each system's simulated/modeled
 * latency under the same workload.
 */

#include <memory>
#include <string>

#include "apps/kv_store.hh"
#include "apps/ycsb.hh"
#include "baselines/systems.hh"
#include "cluster/cluster.hh"
#include "energy/energy.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kOffloadId = 1;
constexpr std::uint64_t kKeys = 1000;
constexpr std::uint32_t kValueBytes = 1024;
constexpr int kOps = 800;

Tick
clioRuntime(YcsbWorkload workload)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    cluster.mn(0).registerOffload(kOffloadId,
                                  std::make_shared<ClioKvOffload>());
    ClioClient &client = cluster.createClient(0);
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kOffloadId);
    const std::string value(kValueBytes, 'e');
    const std::uint64_t keys = bench::iters(kKeys);
    for (std::uint64_t k = 0; k < keys; k++)
        kv.put(YcsbGenerator::keyString(k), value);

    YcsbGenerator gen(keys, workload);
    const Tick t0 = cluster.eventQueue().now();
    const std::uint64_t ops = bench::iters(kOps);
    for (std::uint64_t i = 0; i < ops; i++) {
        const YcsbOp op = gen.next();
        const std::string key = YcsbGenerator::keyString(op.key_index);
        if (op.is_set)
            kv.put(key, value);
        else
            kv.get(key);
    }
    return cluster.eventQueue().now() - t0;
}

template <typename GetFn, typename SetFn>
Tick
modelRuntime(YcsbWorkload workload, GetFn &&get, SetFn &&set)
{
    YcsbGenerator gen(bench::iters(kKeys), workload);
    Tick total = 0;
    const std::uint64_t ops = bench::iters(kOps);
    for (std::uint64_t i = 0; i < ops; i++) {
        const YcsbOp op = gen.next();
        total += op.is_set ? set(kValueBytes) : get(kValueBytes);
    }
    return total;
}

} // namespace

int
main()
{
    bench::banner("Fig. 21", "Energy per request (mJ) under YCSB "
                             "A/B/C: total = CN share + MN share");
    const auto cfg = ModelConfig::prototype();
    CloverModel clover(cfg);
    HerdModel herd(cfg, false);
    HerdModel herd_bf(cfg, true);

    bench::header({"workload", "Clio", "Clio-CN", "Clover", "Clover-CN",
                   "HERD", "HERD-CN", "HERD-BF", "HERD-BF-CN"});
    const std::uint64_t ops = bench::iters(kOps);
    for (auto w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC}) {
        const Tick t_clio = clioRuntime(w);
        const Tick t_clover = modelRuntime(
            w, [&](std::uint64_t n) { return clover.readLatency(n); },
            [&](std::uint64_t n) {
                return clover.writeLatency(n) + clover.readLatency(32);
            });
        const Tick t_herd = modelRuntime(
            w, [&](std::uint64_t n) { return herd.getLatency(n); },
            [&](std::uint64_t n) { return herd.putLatency(n); });
        const Tick t_herd_bf = modelRuntime(
            w, [&](std::uint64_t n) { return herd_bf.getLatency(n); },
            [&](std::uint64_t n) { return herd_bf.putLatency(n); });

        const auto e_clio = perRequestEnergy(cfg.energy,
                                             SystemKind::kClio, t_clio,
                                             ops);
        const auto e_clover = perRequestEnergy(
            cfg.energy, SystemKind::kClover, t_clover, ops);
        const auto e_herd = perRequestEnergy(cfg.energy,
                                             SystemKind::kHerd, t_herd,
                                             ops);
        const auto e_bf = perRequestEnergy(
            cfg.energy, SystemKind::kHerdBluefield, t_herd_bf, ops);
        bench::row(ycsbName(w),
                   {e_clio.total(), e_clio.cn_mj, e_clover.total(),
                    e_clover.cn_mj, e_herd.total(), e_herd.cn_mj,
                    e_bf.total(), e_bf.cn_mj});
    }
    bench::note("expected shape: Clio lowest; Clover slightly higher "
                "(CN-heavy); HERD 1.6-3x Clio; HERD-BF the most "
                "(slowest runtime) — paper Fig. 21.");
    return 0;
}
