/**
 * @file
 * Fig. 22: FPGA resource utilization — Clio's modules (estimated from
 * the configured TLB/buffer/datapath sizes, calibrated to the paper's
 * synthesis report) against published network-stack-only systems.
 */

#include "energy/resources.hh"
#include "harness.hh"

using namespace clio;

int
main()
{
    bench::banner("Fig. 22", "FPGA utilization (% of a ZCU106-class "
                             "device: 504K LUTs, 4.75 MB BRAM)");
    bench::header({"module", "LUT(%)", "BRAM(%)"});
    for (const auto &row : comparisonUtilization())
        bench::row(row.name, {row.lut_pct, row.bram_pct});
    for (const auto &row : clioUtilization(ModelConfig::prototype()))
        bench::row(row.name, {row.lut_pct, row.bram_pct});
    bench::note("expected shape: whole-Clio (VirtMem + NetStack + "
                "vendor IPs) uses fewer resources than StRoM or Tonic "
                "network stacks alone; the Go-Back-N reference "
                "transport alone outweighs Clio's deployed NetStack "
                "(paper Fig. 22).");
    return 0;
}
