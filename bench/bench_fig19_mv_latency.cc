/**
 * @file
 * Fig. 19: Clio-MV object read/write latency vs number of CNs
 * concurrently accessing one MN, 16 B objects, 50% read (random
 * versions) / 50% append, uniform and zipfian object popularity.
 * Array-based version storage makes reads of any version equal cost.
 */

#include <memory>
#include <vector>

#include "apps/mv_store.hh"
#include "apps/runner.hh"
#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/rng.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kOffloadId = 2;
constexpr std::uint32_t kValueBytes = 16;
constexpr std::uint32_t kObjects = 256;
constexpr int kOpsPerCn = 250;

struct Result
{
    double read_us;
    double write_us;
};

Result
mvLatency(std::uint32_t cns, bool zipf)
{
    Cluster cluster(ModelConfig::prototype(), cns, 1);
    cluster.mn(0).registerOffload(
        kOffloadId,
        std::make_shared<ClioMvOffload>(kValueBytes, kObjects, 512));
    const NodeId mn = cluster.mn(0).nodeId();

    // Setup: create objects and seed one version each.
    ClioClient &setup_client = cluster.createClient(0);
    ClioMvClient setup(setup_client, mn, kOffloadId, kValueBytes);
    std::vector<std::uint64_t> ids;
    const std::string value(kValueBytes, 'm');
    for (std::uint32_t i = 0; i < kObjects; i++) {
        auto id = setup.create();
        if (!id)
            return {-1, -1};
        setup.append(*id, value);
        ids.push_back(*id);
    }

    struct CnState
    {
        std::unique_ptr<ClioClient> client_owner; // from cluster
        ClioClient *client;
        std::unique_ptr<Rng> rng;
        std::unique_ptr<ZipfianGenerator> zipfgen;
        int remaining = static_cast<int>(bench::iters(kOpsPerCn));
        Tick op_start = 0;
        bool last_was_set = false;
    };
    auto read_hist = std::make_shared<LatencyHistogram>();
    auto write_hist = std::make_shared<LatencyHistogram>();
    ClosedLoopRunner runner(cluster.eventQueue());
    std::vector<std::unique_ptr<CnState>> states;
    for (std::uint32_t c = 0; c < cns; c++) {
        auto st = std::make_unique<CnState>();
        st->client = &cluster.createClient(c);
        st->rng = std::make_unique<Rng>(c * 31 + 7);
        st->zipfgen = std::make_unique<ZipfianGenerator>(kObjects, 0.99,
                                                         c * 17 + 3);
        states.push_back(std::move(st));
    }
    EventQueue &eq = cluster.eventQueue();
    for (auto &stp : states) {
        CnState *st = stp.get();
        runner.addActor([st, &eq, &ids, zipf, value, mn, read_hist,
                         write_hist]() -> ActorStep {
            if (st->op_start) {
                (st->last_was_set ? *write_hist : *read_hist)
                    .record(eq.now() - st->op_start);
            }
            if (st->remaining-- <= 0)
                return ActorStep::done();
            const std::uint64_t idx =
                zipf ? st->zipfgen->next()
                     : st->rng->uniformInt(ids.size());
            const std::uint64_t id = ids[idx];
            st->op_start = eq.now();
            st->last_was_set = st->rng->chance(0.5);
            std::vector<std::uint8_t> arg =
                st->last_was_set
                    ? mvEncode(MvOp::kAppend, id, 0, value)
                    : mvEncode(MvOp::kReadLatest, id);
            return ActorStep::wait(st->client->offloadAsync(
                mn, kOffloadId, std::move(arg), kValueBytes + 48));
        });
    }
    runner.run();
    return {ticksToUs(read_hist->median()),
            ticksToUs(write_hist->median())};
}

} // namespace

int
main()
{
    bench::banner("Fig. 19", "Clio-MV object read/write latency "
                             "(median us), 16 B objects, 50R/50W");
    bench::header({"CNs", "Read-Uniform", "Write-Uniform", "Read-Zipf",
                   "Write-Zipf"});
    for (std::uint32_t cns : {1u, 2u, 3u, 4u}) {
        auto uni = mvLatency(cns, false);
        auto zip = mvLatency(cns, true);
        bench::row(std::to_string(cns), {uni.read_us, uni.write_us,
                                         zip.read_us, zip.write_us});
    }
    bench::note("expected shape: read and write latencies are nearly "
                "identical and stable across CNs and popularity "
                "distributions (array-based versions, paper Fig. 19).");
    return 0;
}
