/**
 * @file
 * Ablation: the async free-page buffer (§4.3).
 *
 * Clio's page-fault handler pulls pre-generated physical frames from a
 * hardware FIFO the ARM refills in the background; without it, every
 * fault would wait for a slow-path allocation. This bench measures
 * fault-heavy write latency across buffer capacities, including the
 * degenerate size-1 buffer (nearly synchronous allocation).
 */

#include <string>

#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

struct Result
{
    double median_us;
    double p99_us;
    double underflow_rate;
};

Result
faultStorm(std::uint32_t buffer_pages)
{
    auto cfg = ModelConfig::prototype();
    cfg.slow_path.async_buffer_pages = buffer_pages;
    cfg.mn_phys_bytes = 8 * GiB; // plenty of frames to fault in
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);

    // Touch 256 fresh pages back to back: every write faults.
    const std::uint64_t page = cfg.page_table.page_size;
    const VirtAddr addr = client.ralloc(300 * page).value_or(0);
    LatencyHistogram hist;
    std::uint64_t v = 7;
    const std::uint64_t faults = bench::iters(256);
    for (std::uint64_t i = 0; i < faults; i++) {
        const Tick t0 = cluster.eventQueue().now();
        client.rwrite(addr + static_cast<std::uint64_t>(i) * page, &v,
                      sizeof(v));
        hist.record(cluster.eventQueue().now() - t0);
    }
    Result out;
    out.median_us = ticksToUs(hist.median());
    out.p99_us = ticksToUs(hist.p99());
    out.underflow_rate = 0; // underflows tracked below
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Async free-page buffer size vs "
                              "fault-heavy 8 B write latency (us)");
    bench::header({"buffer(pages)", "median", "p99"});
    for (std::uint32_t pages : {1u, 2u, 8u, 32u, 64u, 256u}) {
        auto r = faultStorm(pages);
        bench::row(std::to_string(pages), {r.median_us, r.p99_us});
    }
    bench::note("expected: small buffers push the slow-path refill "
                "onto the critical path (tail grows); the paper's "
                "design keeps faults at fast-path cost with a "
                "modest buffer.");
    return 0;
}
