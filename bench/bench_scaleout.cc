/**
 * @file
 * Scale-out sweep: process count 10^3 -> 10^6 over a leaf/spine fabric.
 *
 * The paper's core scalability claim (§2, Fig. 4) is that Clio's
 * connection-less, per-process-stateless design keeps latency flat as
 * the process population grows, where RDMA's per-connection (QPC) and
 * per-page (MTT) NIC caches thrash. This bench pushes the claim past
 * the paper's 1000-process testbed to a million simulated processes
 * spread over a multi-rack cluster (4 -> 64 racks, one CN + one MN per
 * rack, shard-map placement):
 *  - every process is REAL: it gets a global PID, a home MN from the
 *    rack-aware shard map, a granted VA region, and a live PTE at its
 *    MN (populate=false, so untouched data pages cost nothing);
 *  - a fixed sample of issuers then measures 16 B read latency, so
 *    measured ops ride on top of the full resident population;
 *  - the RDMA baseline round-robins the same population as QPs over
 *    one memory node and spreads offsets one host page per process,
 *    thrashing both the QPC and MTT caches as N grows.
 *
 * Output: aligned-column text plus JSON ("clio.bench_scaleout.v1", no
 * timestamps) to CLIO_BENCH_JSON_OUT or ./BENCH_scaleout.json. Smoke
 * mode (CLIO_BENCH_SMOKE=1, the bench-smoke ctest) shrinks the sweep
 * and the issuer sample — announced explicitly so reduced data is
 * never mistaken for the real sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/stats.hh"

namespace clio {
namespace {

struct SweepPoint
{
    std::uint32_t procs = 0;
    std::uint32_t racks = 0;
};

struct PointResult
{
    SweepPoint point;
    std::uint32_t issuers = 0;
    std::uint64_t ops = 0;
    double clio_p50_us = 0.0;
    double clio_p99_us = 0.0;
    double clio_mean_us = 0.0;
    double rdma_p50_us = 0.0;
    double rdma_mean_us = 0.0;
    std::uint64_t cross_rack = 0;
};

/** Issuer sample size: every process issues below the cap; above it a
 * fixed stride-spread sample measures on top of the full population. */
std::uint32_t
issuerSample(std::uint32_t procs)
{
    const std::uint32_t cap = bench::smokeMode() ? 256u : 1024u;
    return std::min(procs, cap);
}

/** Clio side of one sweep point: full population, sampled issuers. */
void
runClio(PointResult &r)
{
    const std::uint32_t procs = r.point.procs;
    auto cfg = ModelConfig::prototype();

    ClusterSpec spec;
    spec.racks = r.point.racks;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    // Size each MN so its hash page table (slots ~ 2x physical pages)
    // comfortably holds one PTE per resident process; the backing
    // store is sparse, so unwritten capacity is free host-side.
    const std::uint64_t per_mn =
        (procs + r.point.racks - 1) / r.point.racks;
    spec.mn_phys_bytes = std::max<std::uint64_t>(
        2 * GiB, 2 * per_mn * cfg.page_table.page_size);
    Cluster cluster(cfg, spec);

    const std::uint32_t issuers = issuerSample(procs);
    const std::uint32_t stride = procs / issuers;
    std::vector<ClioClient *> sampled;
    std::vector<VirtAddr> addrs;
    sampled.reserve(issuers);
    addrs.reserve(issuers);

    // The resident population: every process allocates one page of
    // remote memory at its shard-map home MN. Only sampled issuers
    // ever touch data, so physical frames stay proportional to the
    // sample, while PTE/VA/controller state scales with `procs`.
    for (std::uint32_t p = 0; p < procs; p++) {
        ClioClient &c = cluster.createClient(p % r.point.racks);
        const VirtAddr a = c.ralloc(4 * KiB).value_or(0);
        if (sampled.size() < issuers && p == stride * sampled.size()) {
            std::uint64_t v = p;
            c.rwrite(a, &v, sizeof(v)); // fault + warm
            sampled.push_back(&c);
            addrs.push_back(a);
        }
    }

    LatencyHistogram hist;
    std::uint8_t buf[16] = {};
    const std::uint64_t ops = bench::iters(20000);
    cluster.network().resetStats();
    for (std::uint64_t i = 0; i < ops; i++) {
        const std::size_t p = static_cast<std::size_t>(i) % issuers;
        const Tick t0 = cluster.eventQueue().now();
        sampled[p]->rread(addrs[p], buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    r.issuers = issuers;
    r.ops = ops;
    r.clio_p50_us = ticksToUs(hist.median());
    r.clio_p99_us = ticksToUs(hist.p99());
    r.clio_mean_us = hist.mean() / static_cast<double>(kMicrosecond);
    r.cross_rack = cluster.network().stats().cross_rack;
}

/** RDMA side: same population as QPs, one host page per process. */
void
runRdma(PointResult &r)
{
    const std::uint32_t procs = r.point.procs;
    auto cfg = ModelConfig::prototype();
    RdmaMemoryNode node(cfg, 2 * GiB, 99);
    Tick lat = 0;
    auto mr = node.registerMr(1 * GiB, false, lat);
    clio_assert(mr.has_value(), "RDMA MR registration failed");
    const std::uint64_t mr_pages = (1 * GiB) / RdmaMemoryNode::kHostPage;

    std::vector<QpId> qps;
    qps.reserve(procs);
    for (std::uint32_t p = 0; p < procs; p++)
        qps.push_back(node.createQp());

    LatencyHistogram hist;
    std::uint8_t buf[16] = {};
    Rng rng(7);
    const std::uint64_t ops = bench::iters(20000);
    for (std::uint64_t i = 0; i < ops; i++) {
        // Uniform process choice: each op is some process' next
        // access, touching its own QP and its own host page.
        const std::uint64_t p = rng.uniformInt(procs);
        const std::uint64_t off =
            (p % mr_pages) * RdmaMemoryNode::kHostPage;
        auto res = node.read(qps[p], *mr, off, buf, 16);
        hist.record(res.latency);
    }
    r.rdma_p50_us = ticksToUs(hist.median());
    r.rdma_mean_us = hist.mean() / static_cast<double>(kMicrosecond);
}

void
writeJson(const std::vector<PointResult> &results, bool smoke)
{
    const char *env = std::getenv("CLIO_BENCH_JSON_OUT");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_scaleout.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    double p50_min = 0.0, p50_max = 0.0;
    for (const PointResult &r : results) {
        if (p50_min == 0.0 || r.clio_p50_us < p50_min)
            p50_min = r.clio_p50_us;
        if (r.clio_p50_us > p50_max)
            p50_max = r.clio_p50_us;
    }
    std::fprintf(f, "{\n  \"schema\": \"clio.bench_scaleout.v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < results.size(); i++) {
        const PointResult &r = results[i];
        std::fprintf(
            f,
            "    {\"procs\": %u, \"racks\": %u, \"issuers\": %u, "
            "\"ops\": %llu, \"clio_p50_us\": %.3f, \"clio_p99_us\": "
            "%.3f, \"clio_mean_us\": %.3f, \"rdma_p50_us\": %.3f, "
            "\"rdma_mean_us\": %.3f, \"cross_rack_packets\": %llu}%s\n",
            r.point.procs, r.point.racks, r.issuers,
            static_cast<unsigned long long>(r.ops), r.clio_p50_us,
            r.clio_p99_us, r.clio_mean_us, r.rdma_p50_us,
            r.rdma_mean_us,
            static_cast<unsigned long long>(r.cross_rack),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"clio_p50_max_over_min\": %.3f\n}\n",
                 p50_min > 0.0 ? p50_max / p50_min : 0.0);
    std::fclose(f);
    bench::note("JSON written to " + path);
}

} // namespace
} // namespace clio

int
main()
{
    using namespace clio;

    bench::banner("scale-out",
                  "16 B read latency vs resident process count, "
                  "multi-rack leaf/spine cluster (beyond Fig. 4)");
    std::vector<SweepPoint> sweep;
    if (bench::smokeMode()) {
        bench::note("smoke mode: reduced sweep (<= 4000 processes, "
                    "<= 256 sampled issuers); run the binary directly "
                    "for the 10^3 -> 10^6 sweep");
        sweep = {{1000, 4}, {4000, 8}};
    } else {
        sweep = {{1000, 4}, {10000, 8}, {100000, 16}, {1000000, 64}};
    }

    std::vector<PointResult> results;
    bench::header({"processes", "racks", "Clio-p50", "Clio-p99",
                   "RDMA-p50", "RDMA-mean"});
    for (const SweepPoint &pt : sweep) {
        PointResult r;
        r.point = pt;
        runClio(r);
        runRdma(r);
        results.push_back(r);
        bench::row(std::to_string(pt.procs),
                   {static_cast<double>(pt.racks), r.clio_p50_us,
                    r.clio_p99_us, r.rdma_p50_us, r.rdma_mean_us});
    }

    writeJson(results, bench::smokeMode());
    bench::note("expected shape: Clio p50 flat (connection-less, "
                "rack-local shard placement) while RDMA rises as QPC "
                "and MTT caches thrash (paper Fig. 4 at cluster "
                "scale).");
    return 0;
}
