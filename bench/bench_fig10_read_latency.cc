/**
 * @file
 * Fig. 10: Read latency vs request size across six systems: Clio
 * (full simulated stack), Clover, native RDMA, HERD, HERD on
 * BlueField, and LegoOS.
 */

#include "baselines/rdma.hh"
#include "baselines/systems.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

double
clioReadUs(std::uint64_t size)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);
    std::vector<std::uint8_t> buf(size, 1);
    client.rwrite(addr, buf.data(), size); // warm
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++) {
        const Tick t0 = cluster.eventQueue().now();
        client.rread(addr, buf.data(), size);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.median());
}

double
rdmaReadUs(std::uint64_t size)
{
    RdmaMemoryNode node(ModelConfig::prototype(), 1 * GiB, 41);
    Tick lat = 0;
    auto mr = node.registerMr(16 * MiB, false, lat);
    QpId qp = node.createQp();
    std::vector<std::uint8_t> buf(size);
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++)
        hist.record(node.read(qp, *mr, 0, buf.data(), size).latency);
    return ticksToUs(hist.median());
}

template <typename F>
double
medianUs(F &&sample)
{
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++)
        hist.record(sample());
    return ticksToUs(hist.median());
}

} // namespace

int
main()
{
    bench::banner("Fig. 10", "Read latency (median us) vs request size");
    const auto cfg = ModelConfig::prototype();
    CloverModel clover(cfg);
    HerdModel herd(cfg, false);
    HerdModel herd_bf(cfg, true);
    LegoOsModel lego(cfg);

    bench::header({"size(B)", "Clio", "Clover", "RDMA", "HERD-BF",
                   "HERD", "LegoOS"});
    for (std::uint64_t sz : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
        bench::row(std::to_string(sz),
                   {clioReadUs(sz), //
                    medianUs([&] { return clover.readLatency(sz); }),
                    rdmaReadUs(sz),
                    medianUs([&] { return herd_bf.getLatency(sz); }),
                    medianUs([&] { return herd.getLatency(sz); }),
                    medianUs([&] { return lego.readLatency(sz); })});
    }
    bench::note("expected shape: Clio close to RDMA/HERD; HERD-BF "
                "worst (chip crossing); LegoOS ~2x Clio at small "
                "sizes (paper Fig. 10).");
    return 0;
}
