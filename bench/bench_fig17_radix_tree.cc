/**
 * @file
 * Fig. 17: Radix tree search latency vs tree size — Clio's pointer-
 * chasing offload (one round trip per level) against an RDMA-style
 * traversal (one round trip per visited node).
 */

#include <memory>
#include <string>
#include <vector>

#include "apps/radix_tree.hh"
#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/rng.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kChaseId = 3;
constexpr int kKeyLen = 8;

std::string
randomKey(Rng &rng)
{
    std::string key;
    for (int c = 0; c < kKeyLen; c++)
        key.push_back(static_cast<char>('a' + rng.uniformInt(26)));
    return key;
}

struct Sample
{
    double clio_us;
    double rdma_us;
};

Sample
searchLatency(std::uint64_t entries)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        kChaseId, std::make_shared<PointerChaseOffload>(), client.pid());
    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), kChaseId,
                         (entries * kKeyLen + 4096) * 48);

    Rng rng(entries ^ 0xABCD);
    std::vector<std::pair<std::string, std::uint64_t>> kvs;
    kvs.reserve(entries);
    for (std::uint64_t i = 0; i < entries; i++)
        kvs.emplace_back(randomKey(rng), i + 1);
    if (!tree.bulkLoad(kvs))
        return {-1, -1};

    // Search existing keys; measure offload path on the simulator and
    // cost the direct path's reads with the RDMA model's per-read
    // latency (one-sided read per visited node).
    RdmaMemoryNode rdma(ModelConfig::prototype(), 1 * GiB, 71);
    Tick reg = 0;
    auto mr = rdma.registerMr(64 * MiB, false, reg);
    QpId qp = rdma.createQp();

    LatencyHistogram clio_hist, rdma_hist;
    std::uint8_t node_buf[32];
    const std::uint64_t searches = bench::iters(60);
    for (std::uint64_t i = 0; i < searches; i++) {
        const auto &key = kvs[rng.uniformInt(kvs.size())].first;
        const Tick t0 = cluster.eventQueue().now();
        auto res = tree.searchOffload(key);
        clio_hist.record(cluster.eventQueue().now() - t0);
        if (!res.value)
            return {-1, -1};
        // The RDMA traversal issues one read per node the direct walk
        // visits.
        auto direct = tree.searchDirect(key);
        Tick rdma_total = 0;
        for (std::uint64_t r = 0; r < direct.remote_reads; r++) {
            rdma_total +=
                rdma.read(qp, *mr, (r * 32) % (32 * MiB), node_buf, 32)
                    .latency;
        }
        rdma_hist.record(rdma_total);
    }
    return {ticksToUs(clio_hist.median()),
            ticksToUs(rdma_hist.median())};
}

} // namespace

int
main()
{
    bench::banner("Fig. 17", "Radix tree search latency (median us) vs "
                             "tree entries (8-char keys)");
    bench::header({"entries(K)", "Clio", "RDMA"});
    for (std::uint64_t thousands : {10u, 50u, 100u, 250u, 500u, 1000u}) {
        // Smoke mode shrinks the trees 8x; the shape survives, and the
        // row label reports the size actually measured.
        const std::uint64_t entries = thousands * bench::iters(1000);
        auto s = searchLatency(entries);
        bench::row(std::to_string(entries / 1000), {s.clio_us, s.rdma_us});
    }
    bench::note("expected shape: both grow with tree size (wider "
                "levels), but RDMA grows much faster — one RTT per "
                "visited node vs one offload call per level "
                "(paper Fig. 17).");
    return 0;
}
