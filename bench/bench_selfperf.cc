/**
 * @file
 * Simulator self-performance harness: how fast does the simulator
 * itself run? (Not a paper figure — this tracks the repo's own
 * performance trajectory across commits.)
 *
 * Three figure-representative workloads (Fig. 7 single-client
 * latency, Fig. 4 64-process scalability, Fig. 18 YCSB-A over the KV
 * offload) run twice each, once per event-queue engine — the timing
 * wheel and the reference binary heap — inside one binary. The two
 * engines must execute the identical event sequence, so the harness
 * asserts equal executed-event counts and final simulated ticks
 * before reporting host-side events/sec; any divergence is a
 * determinism bug, not a perf result.
 *
 * A queue-stress microbench isolates the event core: a hold pattern
 * (constant pending population, one schedule per pop) over several
 * population sizes, where the wheel's O(1) schedule/pop separates
 * from the heap's O(log n) + allocation.
 *
 * Output: the usual aligned-column text, plus a machine-readable JSON
 * dump (schema "clio.bench_selfperf.v1") to CLIO_BENCH_JSON_OUT or
 * ./BENCH_selfperf.json. The JSON is deliberately free of timestamps
 * and host identifiers so trajectory diffs across commits are
 * meaningful line diffs; wall-clock numbers are only comparable on
 * one machine.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/kv_store.hh"
#include "apps/ycsb.hh"
#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

using SteadyClock = std::chrono::steady_clock;

/** One engine's measurement of one workload. */
struct EngineRun
{
    std::uint64_t events = 0;   ///< events executed by the timed loop
    double wall_seconds = 0.0;
    Tick final_tick = 0;
    std::uint64_t total_executed = 0; ///< including setup (equivalence)

    double
    eventsPerSec() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(events) / wall_seconds
                   : 0.0;
    }
};

struct WorkloadResult
{
    std::string name;
    std::uint64_t ops = 0;
    EngineRun wheel;
    EngineRun heap;

    double
    speedup() const
    {
        return heap.eventsPerSec() > 0.0
                   ? wheel.eventsPerSec() / heap.eventsPerSec()
                   : 0.0;
    }
};

struct StressResult
{
    std::uint64_t pending = 0;
    std::uint64_t ops = 0;
    double wheel_wall = 0.0;
    double heap_wall = 0.0;

    double opsPerSec(double wall) const
    {
        return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
    }
    double
    speedup() const
    {
        return heap_wall > 0.0 && wheel_wall > 0.0
                   ? heap_wall / wheel_wall
                   : 0.0;
    }
};

/** Scoped CLIO_EVENT_QUEUE override (the queue reads it at
 * construction); restores the caller's value on destruction. */
class EngineGuard
{
  public:
    explicit EngineGuard(const char *engine)
    {
        const char *prev = std::getenv("CLIO_EVENT_QUEUE");
        if (prev != nullptr)
            saved_ = prev;
        had_prev_ = prev != nullptr;
        ::setenv("CLIO_EVENT_QUEUE", engine, 1);
    }

    ~EngineGuard()
    {
        if (had_prev_)
            ::setenv("CLIO_EVENT_QUEUE", saved_.c_str(), 1);
        else
            ::unsetenv("CLIO_EVENT_QUEUE");
    }

  private:
    std::string saved_;
    bool had_prev_ = false;
};

/** Fig. 7 shape: one client, one MN, alternating 16 B reads/writes. */
EngineRun
runFig07(std::uint64_t ops)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint8_t buf[16] = {};
    client.rwrite(addr, buf, 16);

    EngineRun run;
    const std::uint64_t before = cluster.eventQueue().executed();
    const auto t0 = SteadyClock::now();
    for (std::uint64_t i = 0; i < ops; i++) {
        if (i & 1)
            client.rwrite(addr, buf, 16);
        else
            client.rread(addr, buf, 16);
    }
    run.wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    run.total_executed = cluster.eventQueue().executed();
    run.events = run.total_executed - before;
    run.final_tick = cluster.eventQueue().now();
    return run;
}

/** Fig. 4 shape: 64 processes round-robin over 4 MNs. */
EngineRun
runFig04(std::uint64_t ops)
{
    Cluster cluster(ModelConfig::prototype(), 4, 1);
    std::vector<ClioClient *> clients;
    std::vector<VirtAddr> addrs;
    for (std::uint32_t p = 0; p < 64; p++) {
        ClioClient &c = cluster.createClient(p % 4);
        const VirtAddr a = c.ralloc(4 * MiB).value_or(0);
        std::uint64_t v = p;
        c.rwrite(a, &v, sizeof(v));
        clients.push_back(&c);
        addrs.push_back(a);
    }
    std::uint8_t buf[16] = {};

    EngineRun run;
    const std::uint64_t before = cluster.eventQueue().executed();
    const auto t0 = SteadyClock::now();
    for (std::uint64_t i = 0; i < ops; i++) {
        const std::size_t p = i % 64;
        if (i & 1)
            clients[p]->rwrite(addrs[p], buf, 16);
        else
            clients[p]->rread(addrs[p], buf, 16);
    }
    run.wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    run.total_executed = cluster.eventQueue().executed();
    run.events = run.total_executed - before;
    run.final_tick = cluster.eventQueue().now();
    return run;
}

/** Fig. 18 shape: YCSB-A against the KV offload (extend path). */
EngineRun
runFig18(std::uint64_t ops)
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    cluster.mn(0).registerOffload(1, std::make_shared<ClioKvOffload>());
    ClioClient &client = cluster.createClient(0);
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, 1);
    const std::string value(1024, 'y');
    for (std::uint64_t k = 0; k < 2000; k++)
        kv.put(YcsbGenerator::keyString(k), value);
    YcsbGenerator gen(2000, YcsbWorkload::kA);

    EngineRun run;
    const std::uint64_t before = cluster.eventQueue().executed();
    const auto t0 = SteadyClock::now();
    for (std::uint64_t i = 0; i < ops; i++) {
        const YcsbOp op = gen.next();
        const std::string key = YcsbGenerator::keyString(op.key_index);
        if (op.is_set)
            kv.put(key, value);
        else
            kv.get(key);
    }
    run.wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    run.total_executed = cluster.eventQueue().executed();
    run.events = run.total_executed - before;
    run.final_tick = cluster.eventQueue().now();
    return run;
}

WorkloadResult
runWorkload(const std::string &name,
            EngineRun (*fn)(std::uint64_t), std::uint64_t ops)
{
    WorkloadResult result;
    result.name = name;
    result.ops = ops;
    {
        EngineGuard guard("wheel");
        result.wheel = fn(ops);
    }
    {
        EngineGuard guard("heap");
        result.heap = fn(ops);
    }
    // Both engines must have simulated the identical history; a
    // mismatch means an ordering bug, and the perf numbers would be
    // comparing different computations.
    clio_assert(result.wheel.total_executed == result.heap.total_executed,
                "%s: engines diverged: wheel executed %llu, heap %llu",
                name.c_str(),
                static_cast<unsigned long long>(
                    result.wheel.total_executed),
                static_cast<unsigned long long>(
                    result.heap.total_executed));
    clio_assert(result.wheel.final_tick == result.heap.final_tick,
                "%s: engines diverged: wheel end %llu, heap end %llu",
                name.c_str(),
                static_cast<unsigned long long>(result.wheel.final_tick),
                static_cast<unsigned long long>(result.heap.final_tick));
    return result;
}

/**
 * Queue-stress hold pattern: prime `pending` events, then for each of
 * `ops` steps pop one and schedule one replacement, holding the
 * population constant. The delay sequence is pregenerated so both
 * engines do the identical schedule work.
 */
StressResult
runStress(std::uint64_t pending, std::uint64_t ops)
{
    // The delay range scales with the population so event density
    // stays simulator-like (~1 event per 512 ticks; real workloads
    // are sparser still). A fixed narrow range would pile the whole
    // population into a handful of wheel slots — a shape no
    // discrete-event workload produces — and measure sort cost
    // instead of queue cost. Large populations spill past the fine
    // span, exercising the coarse cascade too.
    constexpr std::uint64_t kDelayMask = (1u << 10) - 1;
    const Tick max_delay = std::max<Tick>(1u << 17, pending * 512);
    std::vector<Tick> delays(kDelayMask + 1);
    Rng rng(pending * 7919 + 17);
    for (Tick &d : delays)
        d = rng.uniformRange(64, max_delay);

    StressResult result;
    result.pending = pending;
    result.ops = ops;
    for (int which = 0; which < 2; which++) {
        const bool wheel = which == 0;
        EngineGuard guard(wheel ? "wheel" : "heap");
        EventQueue eq;
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < pending; i++)
            eq.schedule(delays[i & kDelayMask] + i % 97,
                        [&sink] { sink++; });
        const auto t0 = SteadyClock::now();
        for (std::uint64_t i = 0; i < ops; i++) {
            eq.runOne();
            eq.schedule(eq.now() + delays[i & kDelayMask],
                        [&sink] { sink++; });
        }
        const double wall =
            std::chrono::duration<double>(SteadyClock::now() - t0)
                .count();
        clio_assert(sink == ops, "stress executed %llu of %llu ops",
                    static_cast<unsigned long long>(sink),
                    static_cast<unsigned long long>(ops));
        (wheel ? result.wheel_wall : result.heap_wall) = wall;
    }
    return result;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

void
writeJson(const std::vector<WorkloadResult> &workloads,
          const std::vector<StressResult> &stress, bool smoke)
{
    const char *env = std::getenv("CLIO_BENCH_JSON_OUT");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_selfperf.json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"clio.bench_selfperf.v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"workloads\": [\n");
    std::vector<double> wl_speedups;
    for (std::size_t i = 0; i < workloads.size(); i++) {
        const WorkloadResult &w = workloads[i];
        wl_speedups.push_back(w.speedup());
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     w.name.c_str());
        std::fprintf(f, "      \"ops\": %llu,\n",
                     static_cast<unsigned long long>(w.ops));
        for (int e = 0; e < 2; e++) {
            const EngineRun &run = e == 0 ? w.wheel : w.heap;
            std::fprintf(
                f,
                "      \"%s\": {\"events\": %llu, \"wall_seconds\": "
                "%.6f, \"events_per_sec\": %.0f, \"final_tick\": "
                "%llu},\n",
                e == 0 ? "wheel" : "heap",
                static_cast<unsigned long long>(run.events),
                run.wall_seconds, run.eventsPerSec(),
                static_cast<unsigned long long>(run.final_tick));
        }
        std::fprintf(f,
                     "      \"speedup_wheel_over_heap\": %.3f\n    }%s\n",
                     w.speedup(), i + 1 < workloads.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"queue_stress\": [\n");
    std::vector<double> st_speedups;
    for (std::size_t i = 0; i < stress.size(); i++) {
        const StressResult &s = stress[i];
        st_speedups.push_back(s.speedup());
        std::fprintf(
            f,
            "    {\"pending\": %llu, \"ops\": %llu, "
            "\"wheel_ops_per_sec\": %.0f, \"heap_ops_per_sec\": %.0f, "
            "\"speedup_wheel_over_heap\": %.3f}%s\n",
            static_cast<unsigned long long>(s.pending),
            static_cast<unsigned long long>(s.ops),
            s.opsPerSec(s.wheel_wall), s.opsPerSec(s.heap_wall),
            s.speedup(), i + 1 < stress.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"geomean_workload_speedup\": %.3f,\n",
                 geomean(wl_speedups));
    std::fprintf(f, "  \"geomean_queue_stress_speedup\": %.3f\n}\n",
                 geomean(st_speedups));
    std::fclose(f);
    bench::note("JSON written to " + path);
}

} // namespace
} // namespace clio

int
main()
{
    using namespace clio;

    bench::banner("selfperf",
                  "simulator self-performance: timing wheel vs binary "
                  "heap (identical simulated histories)");

    std::vector<WorkloadResult> workloads;
    workloads.push_back(
        runWorkload("fig07", runFig07, bench::iters(200000)));
    workloads.push_back(
        runWorkload("fig04", runFig04, bench::iters(200000)));
    workloads.push_back(
        runWorkload("fig18", runFig18, bench::iters(60000)));

    bench::header({"workload", "wheel Mev/s", "heap Mev/s", "speedup",
                   "events"});
    for (const WorkloadResult &w : workloads)
        bench::row(w.name,
                   {w.wheel.eventsPerSec() / 1e6,
                    w.heap.eventsPerSec() / 1e6, w.speedup(),
                    static_cast<double>(w.wheel.events)});

    std::vector<StressResult> stress;
    for (std::uint64_t pending :
         {std::uint64_t{1} << 10, std::uint64_t{1} << 15,
          std::uint64_t{1} << 18})
        stress.push_back(runStress(pending, bench::iters(2000000)));

    bench::header({"pending", "wheel Mop/s", "heap Mop/s", "speedup"});
    for (const StressResult &s : stress)
        bench::row(std::to_string(s.pending),
                   {s.opsPerSec(s.wheel_wall) / 1e6,
                    s.opsPerSec(s.heap_wall) / 1e6, s.speedup()});

    writeJson(workloads, stress, bench::smokeMode());
    bench::note("wall-clock numbers are host-specific; compare "
                "trajectories on one machine only");
    return 0;
}
