/**
 * @file
 * Ablation: CN-side congestion/incast control (§4.4).
 *
 * Twelve clients on three CNs blast 1 KB reads at one MN (incast).
 * With the delay-based cwnd + incast iwnd enabled, tail latency stays
 * bounded; with both effectively disabled, the switch queue toward
 * the CNs grows and the tail stretches. MNs hold no congestion state
 * in either case — the control lives entirely at CNs.
 */

#include <memory>
#include <vector>

#include "apps/runner.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

struct Result
{
    double median_us;
    double p99_us;
    double p999_us;
    double goodput_gbps;
    double retries;
};

Result
incast(bool control_enabled)
{
    auto cfg = ModelConfig::prototype();
    // A realistic shallow-buffered switch without PFC: overflowing
    // the output queue drops packets (the case the paper's CN-side
    // control exists to avoid triggering).
    cfg.net.lossless = false;
    cfg.net.switch_queue_packets = 96;
    if (!control_enabled) {
        // Disable the knobs: unbounded windows, no decrease.
        cfg.clib.cwnd_init = 4096;
        cfg.clib.cwnd_max = 1e9;
        cfg.clib.cwnd_mult_dec = 1.0;
        cfg.clib.target_rtt = kTickMax / 2;
        cfg.clib.iwnd_bytes = ~0ull >> 1;
        cfg.clib.timeout = 2 * kMillisecond; // avoid retry storms
        cfg.clib.max_retries = 64;
    }
    Cluster cluster(cfg, 3, 1);

    struct Client
    {
        ClioClient *client;
        VirtAddr addr;
        std::vector<std::uint8_t> buf;
        int remaining = static_cast<int>(bench::iters(200));
        Tick issued_at = 0;
        std::vector<Completion> comps;
    };
    auto hist = std::make_shared<LatencyHistogram>();
    ClosedLoopRunner runner(cluster.eventQueue());
    std::vector<std::unique_ptr<Client>> clients;
    for (int c = 0; c < 12; c++) {
        auto st = std::make_unique<Client>();
        st->client = &cluster.createClient(
            static_cast<std::uint32_t>(c % 3));
        st->addr = st->client->ralloc(4 * MiB).value_or(0);
        st->buf.resize(1024);
        st->client->rwrite(st->addr, st->buf.data(), st->buf.size());
        clients.push_back(std::move(st));
    }
    EventQueue &eq = cluster.eventQueue();
    std::uint64_t bytes = 0;
    for (auto &cp : clients) {
        Client *c = cp.get();
        runner.addActor([c, &eq, hist, &bytes]() -> ActorStep {
            // Record the previous batch's per-request latencies from
            // the delivered completion timestamps.
            for (const Completion &comp : c->comps)
                hist->record(comp.completed_at - c->issued_at);
            c->comps.clear();
            if (c->remaining-- <= 0)
                return ActorStep::done();
            bytes += 12 * 1024;
            // Twelve reads in one doorbell: aggressive offered load
            // (12 clients x 12 responses converge on the CN links).
            // Every request records its own end-to-end latency.
            SubmissionBatch batch(*c->client);
            for (int i = 0; i < 12; i++)
                batch.read(c->addr + i * 1024, c->buf.data(), 1024);
            c->issued_at = eq.now();
            return ActorStep::waitAll(std::move(batch), &c->comps);
        });
    }
    const Tick elapsed = runner.run();
    Result out;
    out.median_us = ticksToUs(hist->median());
    out.p99_us = ticksToUs(hist->p99());
    out.p999_us = ticksToUs(hist->percentile(99.9));
    out.goodput_gbps =
        static_cast<double>(bytes) * 8 / ticksToSeconds(elapsed) / 1e9;
    double retries = 0;
    for (std::uint32_t i = 0; i < cluster.cnCount(); i++)
        retries += static_cast<double>(cluster.cn(i).stats().retries);
    out.retries = retries;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Congestion + incast control under a "
                              "12-client incast (batched 1 KB reads)");
    bench::header({"control", "median(us)", "p99(us)", "p99.9(us)",
                   "goodput(Gbps)", "retries"});
    auto on = incast(true);
    bench::row("enabled", {on.median_us, on.p99_us, on.p999_us,
                           on.goodput_gbps, on.retries});
    auto off = incast(false);
    bench::row("disabled", {off.median_us, off.p99_us, off.p999_us,
                            off.goodput_gbps, off.retries});
    bench::note("expected: goodput ties (the link is the bottleneck "
                "either way). With control the queueing moves to the "
                "sender (low median, no loss, no retries); without it "
                "a standing switch queue doubles the median and tail "
                "drops surface as timeout-priced retries at p99.9 — "
                "the behaviour the paper keeps off the MN by placing "
                "all control state at CNs.");
    return 0;
}
