/**
 * @file
 * Fig. 16: Image compression runtime per client vs number of
 * concurrent clients.
 *
 * Clio scales flat: protection is per-process address spaces with no
 * per-client MN state. RDMA needs one MR per client for protected
 * access; past the RNIC's MPT cache the per-client runtime climbs.
 *
 * Workload scaled from the paper's 1000 images to 8 per client to
 * keep the discrete-event simulation tractable; the per-client
 * *shape* across client counts is what the figure shows.
 */

#include <memory>
#include <vector>

#include "apps/image.hh"
#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kImages = 8;
constexpr std::uint32_t kImageBytes = 64 * KiB; // 256x256 grayscale
constexpr Tick kCpuPsPerByte = 500;

/**
 * Per-client runtime (seconds) on Clio with `clients` live clients.
 *
 * Methodology follows the paper's per-client metric: the runtime a
 * client experiences is the sum of its own operation latencies plus
 * its CPU time. Because the CBoard keeps no per-client state, only a
 * bounded probe group needs to actually run concurrently — the other
 * clients merely exist (allocated address spaces at the MN); their
 * count cannot change the probe's latency, which is the point of the
 * figure.
 */
double
clioRuntime(std::uint32_t clients)
{
    Cluster cluster(ModelConfig::prototype(), 4, 2);
    // Register every client's address space (live processes); measure
    // one probe client's own runtime (the per-client metric).
    const std::uint32_t probe_count = 1;
    std::vector<std::unique_ptr<ImageCompressionTask>> tasks;
    for (std::uint32_t c = 0; c < clients; c++) {
        ClioClient &client = cluster.createClient(c % 4);
        if (c < probe_count) {
            tasks.push_back(std::make_unique<ImageCompressionTask>(
                client, kImages, kImageBytes, kCpuPsPerByte, c + 1));
            if (!tasks.back()->setup())
                return -1;
        } else {
            // Non-probe clients still own remote memory at the MN.
            if (!client.ralloc(4 * MiB))
                return -1;
        }
    }
    ClosedLoopRunner runner(cluster.eventQueue());
    for (auto &task : tasks)
        runner.addActor(task->actor());
    const Tick elapsed = runner.run();
    // The probe's elapsed time is the per-client runtime (ms).
    return ticksToUs(elapsed) / 1000.0;
}

/** Per-client runtime on RDMA: each client registers its own MRs
 * (protection), then reads/compresses/writes each image. */
double
rdmaRuntime(std::uint32_t clients)
{
    auto cfg = ModelConfig::prototype();
    // The RDMA baseline's CNs/MN are servers with 40 Gbps RNICs
    // (ConnectX-3, §7 testbed); Clio's prototype ports are 10 Gbps.
    cfg.net.link_bandwidth_bps = 40ull * 1000 * 1000 * 1000;
    RdmaMemoryNode node(cfg, 8 * GiB, 61);
    struct Client
    {
        QpId qp;
        MrId orig;
        MrId comp;
    };
    std::vector<Client> cs;
    Tick reg = 0;
    for (std::uint32_t c = 0; c < clients; c++) {
        auto orig = node.registerMr(kImages * kImageBytes, false, reg);
        auto comp =
            node.registerMr(kImages * kImageBytes * 2, false, reg);
        if (!orig || !comp)
            return -1;
        cs.push_back({node.createQp(), *orig, *comp});
    }
    // Interleaved round-robin processing (concurrent clients); the
    // per-client runtime is the sum of its own op latencies + CPU.
    std::vector<std::uint8_t> img(kImageBytes, 0xAB);
    Tick per_client_total = 0;
    for (std::uint32_t i = 0; i < kImages; i++) {
        for (auto &c : cs) {
            const std::uint64_t off =
                static_cast<std::uint64_t>(i) * kImageBytes;
            Tick t = 0;
            t += node.read(c.qp, c.orig, off, img.data(), kImageBytes)
                     .latency;
            t += kCpuPsPerByte * (kImageBytes + kImageBytes / 3);
            t += node.write(c.qp, c.comp, off * 2, img.data(),
                            kImageBytes / 3)
                     .latency;
            per_client_total += t;
        }
    }
    // Average per-client runtime in milliseconds.
    return ticksToUs(per_client_total / cs.size()) / 1000.0;
}

} // namespace

int
main()
{
    bench::banner("Fig. 16", "Image compression: per-client runtime "
                             "(ms; 8 images of 64 KB each) vs "
                             "concurrent clients");
    bench::header({"clients", "Clio", "RDMA"});
    // Smoke mode stops at 200 clients; larger points only add setup.
    const std::uint32_t max_clients = bench::smokeMode() ? 200 : 800;
    for (std::uint32_t n : {1u, 50u, 100u, 200u, 400u, 600u, 800u}) {
        if (n > max_clients)
            continue;
        bench::row(std::to_string(n), {clioRuntime(n), rdmaRuntime(n)});
    }
    bench::note("expected shape: Clio per-client runtime stays near "
                "flat (shared links aside); RDMA climbs once 2 MRs x "
                "clients exceed the RNIC MR cache (paper Fig. 16).");
    return 0;
}
