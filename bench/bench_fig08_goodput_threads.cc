/**
 * @file
 * Fig. 8: End-to-end goodput of 1 KB requests vs number of client
 * threads, sync and async APIs. Async reaches the 10 Gbps port's
 * ~9.4 Gbps goodput quickly; sync needs more threads.
 */

#include <memory>
#include <vector>

#include "apps/runner.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kReqBytes = 1024;
constexpr int kOpsPerThread = 300;
constexpr int kAsyncWindow = 8;

double
goodputGbps(int threads, bool is_write, bool async_api)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClosedLoopRunner runner(cluster.eventQueue());

    struct ThreadState
    {
        ClioClient *client;
        VirtAddr addr;
        std::vector<std::uint8_t> buf;
        int remaining = static_cast<int>(bench::iters(kOpsPerThread));
        std::size_t window = 0; ///< ops in the submitted batch
    };
    std::vector<std::unique_ptr<ThreadState>> states;

    for (int t = 0; t < threads; t++) {
        auto st = std::make_unique<ThreadState>();
        st->client = &cluster.createClient(0);
        st->addr = st->client->ralloc(8 * MiB).value_or(0);
        st->buf.resize(kReqBytes, 0x77);
        // Warm both pages.
        st->client->rwrite(st->addr, st->buf.data(), kReqBytes);
        st->client->rwrite(st->addr + 4 * MiB, st->buf.data(),
                           kReqBytes);
        states.push_back(std::move(st));
    }

    std::uint64_t bytes_done = 0;
    for (auto &stp : states) {
        ThreadState *st = stp.get();
        runner.addActor([st, is_write, async_api,
                         &bytes_done]() -> ActorStep {
            // Completed window bytes from the previous step.
            bytes_done += kReqBytes * st->window;
            st->window = 0;
            if (st->remaining <= 0)
                return ActorStep::done();
            const int window =
                async_api ? std::min(kAsyncWindow, st->remaining) : 1;
            // One doorbell per window; alternate pages so the batch
            // members are independent (T2).
            SubmissionBatch batch(*st->client);
            for (int i = 0; i < window; i++) {
                const VirtAddr a =
                    st->addr + (i % 2) * 4 * MiB +
                    static_cast<std::uint64_t>(i / 2) * kReqBytes;
                if (is_write)
                    batch.write(a, st->buf.data(), kReqBytes);
                else
                    batch.read(a, st->buf.data(), kReqBytes);
            }
            st->remaining -= window;
            st->window = batch.size();
            // Resume when the whole batch completes.
            return ActorStep::waitAll(std::move(batch));
        });
    }
    const Tick elapsed = runner.run();
    return static_cast<double>(bytes_done) * 8.0 /
           ticksToSeconds(elapsed) / 1e9;
}

} // namespace

int
main()
{
    bench::banner("Fig. 8", "End-to-end goodput (Gbps), 1 KB requests "
                            "vs client threads");
    bench::header({"threads", "Read-Sync", "Write-Sync", "Read-Async",
                   "Write-Async"});
    for (int t : {1, 2, 4, 8, 12, 16}) {
        bench::row(std::to_string(t),
                   {goodputGbps(t, false, false),
                    goodputGbps(t, true, false),
                    goodputGbps(t, false, true),
                    goodputGbps(t, true, true)});
    }
    bench::note("expected shape: async saturates ~9.4 Gbps (10 Gbps "
                "port) with 1-2 threads; sync converges with more "
                "threads (paper Fig. 8).");
    return 0;
}
