/**
 * @file
 * Fig. 11: Write latency vs request size across the same six systems
 * as Fig. 10. Clover is worst: its passive memory nodes force >= 2
 * dependent round trips per write.
 */

#include "baselines/rdma.hh"
#include "baselines/systems.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

double
clioWriteUs(std::uint64_t size)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);
    std::vector<std::uint8_t> buf(size, 2);
    client.rwrite(addr, buf.data(), size); // warm/fault
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++) {
        const Tick t0 = cluster.eventQueue().now();
        client.rwrite(addr, buf.data(), size);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.median());
}

double
rdmaWriteUs(std::uint64_t size)
{
    RdmaMemoryNode node(ModelConfig::prototype(), 1 * GiB, 43);
    Tick lat = 0;
    auto mr = node.registerMr(16 * MiB, false, lat);
    QpId qp = node.createQp();
    std::vector<std::uint8_t> buf(size, 3);
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++)
        hist.record(node.write(qp, *mr, 0, buf.data(), size).latency);
    return ticksToUs(hist.median());
}

template <typename F>
double
medianUs(F &&sample)
{
    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++)
        hist.record(sample());
    return ticksToUs(hist.median());
}

} // namespace

int
main()
{
    bench::banner("Fig. 11", "Write latency (median us) vs request size");
    const auto cfg = ModelConfig::prototype();
    CloverModel clover(cfg);
    HerdModel herd(cfg, false);
    HerdModel herd_bf(cfg, true);
    LegoOsModel lego(cfg);

    bench::header({"size(B)", "Clio", "Clover", "RDMA", "HERD-BF",
                   "HERD", "LegoOS"});
    for (std::uint64_t sz : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
        bench::row(std::to_string(sz),
                   {clioWriteUs(sz),
                    medianUs([&] { return clover.writeLatency(sz); }),
                    rdmaWriteUs(sz),
                    medianUs([&] { return herd_bf.putLatency(sz); }),
                    medianUs([&] { return herd.putLatency(sz); }),
                    medianUs([&] { return lego.writeLatency(sz); })});
    }
    bench::note("expected shape: Clover worst (>= 2 RTT writes); RDMA "
                "fastest (early write ack); Clio competitive "
                "(paper Fig. 11).");
    return 0;
}
