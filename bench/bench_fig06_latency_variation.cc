/**
 * @file
 * Fig. 6: Latency variation — 16 B read/write latency under TLB hit,
 * TLB miss, and first-access page fault, for Clio (prototype + ASIC
 * projection) and RDMA (TLB hit/miss, MR miss, ODP page fault).
 *
 * The paper's headline: Clio's miss costs are one DRAM access and its
 * page fault is 3 pipeline cycles, while RDMA's page fault takes
 * 16.8 ms through the host OS.
 */

#include <vector>

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

enum class ClioState { kTlbHit, kTlbMiss, kPageFault };

double
clioLatencyUs(const ModelConfig &cfg, bool is_write, ClioState state)
{
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    CBoard &mn = cluster.mn(0);
    const std::uint64_t page = cfg.page_table.page_size;

    // Enough pages that kPageFault can fault a fresh page per sample.
    const VirtAddr base = client.ralloc(220 * page).value_or(0);
    std::uint8_t buf[16] = {};
    if (state != ClioState::kPageFault) {
        client.rwrite(base, buf, 16); // bind + warm page 0
    }

    LatencyHistogram hist;
    const std::uint64_t samples = bench::iters(200);
    for (std::uint64_t i = 0; i < samples; i++) {
        VirtAddr target = base;
        if (state == ClioState::kTlbMiss) {
            mn.tlb().invalidate(client.pid(), base / page);
        } else if (state == ClioState::kPageFault) {
            target = base + static_cast<std::uint64_t>(i + 1) * page;
        }
        const Tick t0 = cluster.eventQueue().now();
        if (is_write)
            client.rwrite(target, buf, 16);
        else
            client.rread(target, buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.median());
}

enum class RdmaState { kTlbHit, kTlbMiss, kMrMiss, kPageFault };

double
rdmaLatencyUs(bool is_write, RdmaState state)
{
    auto cfg = ModelConfig::prototype();
    RdmaMemoryNode node(cfg, 8 * GiB, 23);
    QpId qp = node.createQp();
    Tick lat = 0;
    std::uint8_t buf[16] = {};
    LatencyHistogram hist;

    if (state == RdmaState::kPageFault) {
        auto mr = node.registerMr(64 * MiB, true, lat); // ODP
        for (int i = 0; i < 64; i++) {
            const std::uint64_t off = static_cast<std::uint64_t>(i) *
                                      RdmaMemoryNode::kHostPage;
            auto res = is_write ? node.write(qp, *mr, off, buf, 16)
                                : node.read(qp, *mr, off, buf, 16);
            hist.record(res.latency);
        }
        return ticksToUs(hist.median());
    }
    if (state == RdmaState::kMrMiss) {
        // Cycle through more MRs than the MPT cache holds.
        std::vector<MrId> mrs;
        for (std::uint32_t i = 0;
             i < cfg.rdma.mr_cache_entries * 2; i++) {
            mrs.push_back(
                *node.registerMr(RdmaMemoryNode::kHostPage, false, lat));
        }
        const std::uint64_t samples = bench::iters(400);
        for (std::uint64_t i = 0; i < samples; i++) {
            const MrId mr = mrs[static_cast<std::size_t>(i * 37) %
                                mrs.size()];
            auto res = is_write ? node.write(qp, mr, 0, buf, 16)
                                : node.read(qp, mr, 0, buf, 16);
            hist.record(res.latency);
        }
        return ticksToUs(hist.median());
    }
    // TLB (MTT) hit or miss within one big pinned MR.
    auto mr = node.registerMr(4 * GiB, false, lat);
    Rng rng(9);
    const std::uint64_t samples = bench::iters(400);
    for (std::uint64_t i = 0; i < samples; i++) {
        std::uint64_t off = 0;
        if (state == RdmaState::kTlbMiss) {
            off = rng.uniformInt(1024 * 1024) *
                  RdmaMemoryNode::kHostPage; // ~1M pages >> MTT cache
        }
        auto res = is_write ? node.write(qp, *mr, off, buf, 16)
                            : node.read(qp, *mr, off, buf, 16);
        hist.record(res.latency);
    }
    return ticksToUs(hist.median());
}

} // namespace

int
main()
{
    bench::banner("Fig. 6", "TLB miss / page fault latency comparison, "
                            "16 B ops, median us");
    const auto proto = ModelConfig::prototype();
    const auto asic = ModelConfig::asicProjection();
    bench::header({"series", "Read", "Write"});
    bench::row("Clio-ASIC",
               {clioLatencyUs(asic, false, ClioState::kTlbHit),
                clioLatencyUs(asic, true, ClioState::kTlbHit)});
    bench::row("Clio-TLB-hit",
               {clioLatencyUs(proto, false, ClioState::kTlbHit),
                clioLatencyUs(proto, true, ClioState::kTlbHit)});
    bench::row("Clio-TLB-miss",
               {clioLatencyUs(proto, false, ClioState::kTlbMiss),
                clioLatencyUs(proto, true, ClioState::kTlbMiss)});
    bench::row("Clio-pgfault",
               {clioLatencyUs(proto, false, ClioState::kPageFault),
                clioLatencyUs(proto, true, ClioState::kPageFault)});
    bench::row("RDMA-TLB-hit", {rdmaLatencyUs(false, RdmaState::kTlbHit),
                                rdmaLatencyUs(true, RdmaState::kTlbHit)});
    bench::row("RDMA-TLB-miss",
               {rdmaLatencyUs(false, RdmaState::kTlbMiss),
                rdmaLatencyUs(true, RdmaState::kTlbMiss)});
    bench::row("RDMA-MR-miss",
               {rdmaLatencyUs(false, RdmaState::kMrMiss),
                rdmaLatencyUs(true, RdmaState::kMrMiss)});
    bench::row("RDMA-pgfault",
               {rdmaLatencyUs(false, RdmaState::kPageFault),
                rdmaLatencyUs(true, RdmaState::kPageFault)});
    bench::note("expected shape: Clio's miss penalties are small and "
                "bounded (TLB miss = +1 DRAM, fault = +3 cycles); "
                "RDMA's ODP fault is ~16.8 ms = ~16800 us "
                "(paper Fig. 6).");
    return 0;
}
