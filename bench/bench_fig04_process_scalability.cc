/**
 * @file
 * Fig. 4: Process (connection) scalability.
 *
 * Latency of 16 B reads/writes as the number of client processes
 * grows from 1 to 1000. Clio is connection-less, so latency is flat;
 * RDMA keeps per-connection QP state whose on-NIC cache thrashes
 * (two RNIC generations: CX3-class 256-entry and CX5-class 1024-entry
 * QP caches — the problem "persists with newer generations").
 */

#include <cstring>
#include <memory>
#include <vector>

#include "baselines/rdma.hh"
#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

namespace {

/** Median Clio 16 B op latency with `procs` live processes. */
double
clioLatencyUs(std::uint32_t procs, bool is_write)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 4, 1);
    // Full mode creates the real population: every process is a live
    // issuer, exactly the paper's x axis. Smoke mode (CI) samples at
    // most 64 issuers — the clamp is announced in main() so reduced
    // data is never mistaken for the real sweep.
    std::vector<ClioClient *> clients;
    std::vector<VirtAddr> addrs;
    const std::uint32_t live =
        bench::smokeMode() ? std::min<std::uint32_t>(procs, 64) : procs;
    for (std::uint32_t p = 0; p < live; p++) {
        ClioClient &c = cluster.createClient(p % 4);
        const VirtAddr a = c.ralloc(4 * MiB).value_or(0);
        std::uint64_t v = p;
        c.rwrite(a, &v, sizeof(v)); // fault + warm
        clients.push_back(&c);
        addrs.push_back(a);
    }
    LatencyHistogram hist;
    std::uint8_t buf[16] = {};
    const std::uint64_t ops = bench::iters(600);
    for (std::uint64_t i = 0; i < ops; i++) {
        const std::size_t p = static_cast<std::size_t>(i) % live;
        const Tick t0 = cluster.eventQueue().now();
        if (is_write)
            clients[p]->rwrite(addrs[p], buf, 16);
        else
            clients[p]->rread(addrs[p], buf, 16);
        hist.record(cluster.eventQueue().now() - t0);
    }
    return ticksToUs(hist.median());
}

/** Median RDMA 16 B op latency with `procs` QPs round-robined. */
double
rdmaLatencyUs(std::uint32_t procs, bool is_write,
              std::uint32_t qp_cache)
{
    auto cfg = ModelConfig::prototype();
    cfg.rdma.qp_cache_entries = qp_cache;
    RdmaMemoryNode node(cfg, 1 * GiB, 99);
    Tick lat = 0;
    auto mr = node.registerMr(64 * MiB, false, lat);
    std::vector<QpId> qps;
    for (std::uint32_t p = 0; p < procs; p++)
        qps.push_back(node.createQp());
    LatencyHistogram hist;
    std::uint8_t buf[16] = {};
    Rng rng(5);
    const std::uint64_t ops = bench::iters(600);
    for (std::uint64_t i = 0; i < ops; i++) {
        const QpId qp = qps[rng.uniformInt(qps.size())];
        const std::uint64_t off = rng.uniformInt(1024) * 64;
        auto res = is_write ? node.write(qp, *mr, off, buf, 16)
                            : node.read(qp, *mr, off, buf, 16);
        hist.record(res.latency);
    }
    return ticksToUs(hist.median());
}

} // namespace

int
main()
{
    bench::banner("Fig. 4", "Process (connection) scalability: 16 B op "
                            "median latency (us) vs process count");
    if (bench::smokeMode())
        bench::note("smoke mode: Clio issuers sampled (<= 64 live "
                    "processes per point); run the binary directly for "
                    "the full population");
    bench::header({"processes", "Clio-Read", "Clio-Write", "RDMA-Read",
                   "RDMA-Write", "RDMA-Rd-CX5", "RDMA-Wr-CX5"});
    for (std::uint32_t n : {1u, 100u, 200u, 400u, 600u, 800u, 1000u}) {
        bench::row(std::to_string(n),
                   {clioLatencyUs(n, false), clioLatencyUs(n, true),
                    rdmaLatencyUs(n, false, 256),
                    rdmaLatencyUs(n, true, 256),
                    rdmaLatencyUs(n, false, 1024),
                    rdmaLatencyUs(n, true, 1024)});
    }
    bench::note("expected shape: Clio flat (connection-less); RDMA "
                "rises once active QPs exceed the on-NIC cache, for "
                "both RNIC generations (paper Fig. 4).");
    return 0;
}
