#include "harness.hh"

#include <cstdio>
#include <cstdlib>

namespace clio::bench {

bool
smokeMode()
{
    const char *env = std::getenv("CLIO_BENCH_SMOKE");
    return env != nullptr && *env != '\0' && *env != '0';
}

std::uint64_t
iters(std::uint64_t full)
{
    if (!smokeMode())
        return full;
    const std::uint64_t reduced = full / 8;
    return reduced > 0 ? reduced : 1;
}

void
banner(const std::string &fig, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n", fig.c_str(), caption.c_str());
}

void
header(const std::vector<std::string> &cols)
{
    for (std::size_t i = 0; i < cols.size(); i++)
        std::printf(i == 0 ? "%-18s" : "%14s", cols[i].c_str());
    std::printf("\n");
}

void
row(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-18s", label.c_str());
    for (double v : values)
        std::printf("%14.3f", v);
    std::printf("\n");
}

void
note(const std::string &text)
{
    std::printf("  -- %s\n", text.c_str());
}

} // namespace clio::bench
