#include "harness.hh"

#include <cstdio>
#include <cstdlib>

namespace clio::bench {

bool
smokeMode()
{
    const char *env = std::getenv("CLIO_BENCH_SMOKE");
    return env != nullptr && *env != '\0' && *env != '0';
}

std::uint64_t
iters(std::uint64_t full)
{
    if (!smokeMode())
        return full;
    // Divide by 8 but never below 8 (or below `full` itself when the
    // caller asked for fewer): a plain max(full/8, 1) collapses every
    // count under 8 to a single iteration, making distinct smoke
    // workloads indistinguishable.
    const std::uint64_t floor = full < 8 ? full : 8;
    const std::uint64_t reduced = full / 8;
    return reduced > floor ? reduced : floor;
}

void
banner(const std::string &fig, const std::string &caption)
{
    std::printf("\n=== %s: %s ===\n", fig.c_str(), caption.c_str());
}

void
header(const std::vector<std::string> &cols)
{
    for (std::size_t i = 0; i < cols.size(); i++)
        std::printf(i == 0 ? "%-18s" : "%14s", cols[i].c_str());
    std::printf("\n");
}

void
row(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-18s", label.c_str());
    for (double v : values)
        std::printf("%14.3f", v);
    std::printf("\n");
}

void
note(const std::string &text)
{
    std::printf("  -- %s\n", text.c_str());
}

} // namespace clio::bench
