/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Each bench_figNN binary regenerates one table/figure of the paper's
 * evaluation (§7) and prints the same series the paper plots, in a
 * simple aligned-column text format that EXPERIMENTS.md references.
 */

#ifndef CLIO_BENCH_HARNESS_HH
#define CLIO_BENCH_HARNESS_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace clio::bench {

/** Print the figure banner (figure id + caption). */
void banner(const std::string &fig, const std::string &caption);

/** Print a header row of right-aligned 14-char columns. */
void header(const std::vector<std::string> &cols);

/** Print a data row: first cell is the x value label, rest numeric. */
void row(const std::string &label, const std::vector<double> &values);

/** Print a closing note (e.g. paper-shape expectation). */
void note(const std::string &text);

/**
 * Repetition count for a measurement loop: `full` normally, but
 * clamped to max(full / 8, 1) when CLIO_BENCH_SMOKE is set in the
 * environment. The `bench-smoke` ctest label runs every bench with
 * the variable set so the whole label stays fast in CI; run binaries
 * directly (no env var) for full-fidelity figure data.
 */
std::uint64_t iters(std::uint64_t full);

/** True when the reduced-iteration smoke mode is active. */
bool smokeMode();

} // namespace clio::bench

#endif // CLIO_BENCH_HARNESS_HH
