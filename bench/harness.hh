/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Each bench_figNN binary regenerates one table/figure of the paper's
 * evaluation (§7) and prints the same series the paper plots, in a
 * simple aligned-column text format that EXPERIMENTS.md references.
 */

#ifndef CLIO_BENCH_HARNESS_HH
#define CLIO_BENCH_HARNESS_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace clio::bench {

/** Print the figure banner (figure id + caption). */
void banner(const std::string &fig, const std::string &caption);

/** Print a header row of right-aligned 14-char columns. */
void header(const std::vector<std::string> &cols);

/** Print a data row: first cell is the x value label, rest numeric. */
void row(const std::string &label, const std::vector<double> &values);

/** Print a closing note (e.g. paper-shape expectation). */
void note(const std::string &text);

} // namespace clio::bench

#endif // CLIO_BENCH_HARNESS_HH
