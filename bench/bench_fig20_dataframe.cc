/**
 * @file
 * Fig. 20: Select-aggregate-shuffle runtime vs select ratio.
 *
 * Clio runs select+avg at the MN (offloads) and the histogram at the
 * CN; RDMA ships whole columns and computes everything at the CN.
 * At high select ratios the CPU-side plan wins (the FPGA is slower
 * per element and Clio ships nearly as much data); at low ratios the
 * offload plan ships far less and wins (paper Fig. 20).
 */

#include <memory>
#include <string>
#include <vector>

#include "apps/dataframe.hh"
#include "cluster/cluster.hh"
#include "harness.hh"
#include "sim/rng.hh"

using namespace clio;

namespace {

constexpr std::uint32_t kSelectId = 4;
constexpr std::uint32_t kAggId = 5;
constexpr std::uint64_t kRows = 4'000'000;

struct Runtime
{
    double clio_s;
    double cn_s;
};

Runtime
queryRuntime(int select_pct)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1, 8 * GiB);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        kSelectId, std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        kAggId, std::make_shared<AggregateOffload>(), client.pid());

    Rng rng(select_pct);
    const std::uint64_t rows = bench::iters(kRows);
    std::vector<std::uint8_t> col_a(rows);
    std::vector<std::int64_t> col_b(rows);
    for (std::uint64_t i = 0; i < rows; i++) {
        col_a[i] = rng.chance(select_pct / 100.0) ? 1 : 0;
        col_b[i] = static_cast<std::int64_t>(rng.uniformInt(100));
    }
    ClioDataFrame df(client, cluster.mn(0).nodeId(), kSelectId, kAggId);
    if (!df.load(col_a, col_b))
        return {-1, -1};

    EventQueue &eq = cluster.eventQueue();
    Runtime out{};
    Tick t0 = eq.now();
    auto off = df.runOffload(1);
    out.clio_s = ticksToSeconds(eq.now() - t0);
    t0 = eq.now();
    auto local = df.runAtCn(1);
    out.cn_s = ticksToSeconds(eq.now() - t0);
    if (!off.ok || !local.ok || off.selected != local.selected)
        return {-1, -1};
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 20", "Select-aggregate-shuffle runtime "
                             "(seconds, 4M rows) vs select ratio");
    bench::header({"select(%)", "Clio-offload", "CN-only(RDMA)"});
    for (int pct : {80, 40, 20, 10, 5, 2}) {
        auto rt = queryRuntime(pct);
        bench::row(std::to_string(pct), {rt.clio_s, rt.cn_s});
    }
    bench::note("expected shape: the CN-only plan is flat (always "
                "ships both columns); the offload plan shrinks with "
                "the select ratio and crosses below it at low "
                "selectivity (paper Fig. 20).");
    return 0;
}
