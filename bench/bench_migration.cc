/**
 * @file
 * §4.7 migration: move a populated coarse region between MNs and
 * report the modeled duration (the paper measured 1 GB in ~1.3 s on
 * the 10 Gbps prototype) plus data-integrity verification.
 */

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "harness.hh"

using namespace clio;

int
main()
{
    bench::banner("Migration (§4.7)", "Region migration between MNs: "
                                      "duration and integrity");
    auto cfg = ModelConfig::prototype();
    cfg.mn_phys_bytes = 4 * GiB;
    Cluster cluster(cfg, 1, 2);
    ClioClient &client = cluster.createClient(0);

    bench::header({"populated(MB)", "duration(s)", "pages", "verified"});
    // Smoke mode stops after 128 MB; population/verify walks every
    // page, so the 1 GB point dominates the full run's cost.
    const std::uint64_t max_mb = bench::smokeMode() ? 128 : 1024;
    for (std::uint64_t mb : {64u, 256u, 512u, 1024u}) {
        if (mb > max_mb)
            continue;
        const VirtAddr addr = client.ralloc(mb * MiB).value_or(0);
        if (!addr) {
            bench::row(std::to_string(mb), {-1, -1, -1});
            continue;
        }
        // Touch every page so the region is fully populated.
        const std::uint64_t page = cfg.page_table.page_size;
        for (std::uint64_t off = 0; off < mb * MiB; off += page) {
            std::uint64_t v = off ^ 0x5A5A;
            client.rwrite(addr + off, &v, sizeof(v));
        }
        const std::uint32_t src = cluster.mnIndexOf(client.mnFor(addr));
        const VirtAddr region =
            addr / cfg.dist.region_size * cfg.dist.region_size;
        auto report = cluster.migrateRegion(client.pid(), src, region);
        bool verified = report.ok;
        for (std::uint64_t off = 0; verified && off < mb * MiB;
             off += page) {
            std::uint64_t v = 0;
            verified = client.rread(addr + off, &v, sizeof(v)) ==
                           Status::kOk &&
                       v == (off ^ 0x5A5A);
        }
        bench::row(std::to_string(mb),
                   {ticksToSeconds(report.duration),
                    static_cast<double>(report.pages_moved),
                    verified ? 1.0 : 0.0});
        client.rfree(addr);
    }
    bench::note("expected: ~1.3 s for 1 GB at 10 Gbps (paper §4.7), "
                "all reads correct from the new MN.");
    return 0;
}
