/**
 * @file
 * Datacenter network model: a two-tier leaf/spine fabric.
 *
 * Every node (CN NIC or CBoard port) belongs to one rack and connects
 * to that rack's ToR (leaf) switch by a full-duplex link. Racks are
 * joined by aggregation links to a spine: a cross-rack packet
 * traverses source ToR -> uplink -> spine -> downlink -> destination
 * ToR, paying serialization and bounded queueing at each hop. With
 * every node in rack 0 (the default) no aggregation hop exists and
 * the model degenerates to the paper's single-ToR topology (§3.2:
 * CNs and CBoards all connect to one ToR).
 *
 * The model captures the effects the paper's transport design reacts
 * to: per-link serialization (bandwidth), propagation and switching
 * delay, output-queue contention at every switch stage (incast!),
 * random loss/corruption/reordering for fault injection, and optional
 * lossless (PFC-like) back-pressure instead of tail drop.
 *
 * Queue accounting: a packet occupies a switch output queue from its
 * admission until `out_done` — the instant its last byte leaves the
 * output port — NOT until delivery (which additionally includes the
 * final link propagation plus jitter/reorder delay). Occupancy is
 * kept as a per-stage deque of departure times drained lazily, which
 * is equivalent to scheduling one drain event per packet at its
 * `out_done` without the event overhead.
 *
 * Lossless (PFC-like) mode is bounded-queue back-pressure: when an
 * output queue along the path is full at submission time, the packet
 * is held at the source NIC (its `tx_start` is delayed) until the
 * queue has room; stalls are counted in NetStats. Queues never grow
 * unbounded in either mode.
 *
 * Control-plane lane: packets flagged Packet::priority (liveness
 * heartbeats) model an 802.1p-style strict-priority class — they
 * neither wait for nor occupy NIC/switch data queues, so a bulk
 * transfer serializing on a node's link cannot delay its beacons past
 * a failure-detector lease. They still pay serialization, propagation
 * and switching latency, and remain subject to loss, corruption,
 * jitter, reordering, and the chaos fault hook.
 */

#ifndef CLIO_NET_NETWORK_HH
#define CLIO_NET_NETWORK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {

/** Aggregate network statistics (per Network instance). */
struct NetStats
{
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_random = 0;
    std::uint64_t dropped_queue = 0;     ///< ToR output tail drops
    std::uint64_t dropped_agg_queue = 0; ///< uplink/downlink tail drops
    /** Dropped because an endpoint node or rack ToR was marked down
     * (at submission, or at delivery for packets already in flight). */
    std::uint64_t dropped_down = 0;
    /** Dropped by the installed fault hook. */
    std::uint64_t dropped_fault = 0;
    /** Extra deliveries scheduled by the fault hook. */
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t reordered = 0;
    std::uint64_t bytes_delivered = 0;
    /** Packets that crossed the spine (src and dst in different racks). */
    std::uint64_t cross_rack = 0;
    /** Lossless mode: sends whose tx_start was delayed because an
     * output queue along the path was full (PFC-like back-pressure). */
    std::uint64_t pfc_stalls = 0;
    /** Total ticks of back-pressure delay added to tx_start. */
    std::uint64_t pfc_stall_ticks = 0;
    /** Peak ToR output-queue occupancy observed at any packet's
     * arrival at the queue; never exceeds switch_queue_packets in
     * either mode (lossless admission delay / lossy tail drop). */
    std::uint32_t peak_queue_depth = 0;
    /** Packets that took the strict-priority control lane (heartbeats;
     * Packet::priority) and bypassed NIC/switch data queues. */
    std::uint64_t priority_bypass = 0;
};

/** Switch stage a packet is traversing when the fault hook fires. */
enum class NetStage : std::uint8_t {
    kTor,    ///< destination ToR output port (every packet)
    kAggUp,  ///< source rack's uplink toward the spine (cross-rack)
    kAggDown ///< destination rack's downlink from the spine (cross-rack)
};

/** What the fault hook decided for one packet at one stage. */
struct FaultVerdict
{
    bool drop = false;
    bool corrupt = false;
    /** Deliver a second copy of the packet (after reorder_delay). */
    bool duplicate = false;
    /** Extra delivery delay added by this stage. */
    Tick extra_delay = 0;
};

/** The leaf/spine-switched network connecting every node of a cluster. */
class Network
{
  public:
    using RxHandler = std::function<void(Packet)>;

    /**
     * Deterministic fault-injection hook, consulted once per switch
     * stage a packet traverses (kTor always; kAggUp/kAggDown only for
     * cross-rack packets, in path order). When no hook is installed
     * the send path performs exactly the same RNG draws as before, so
     * installing chaos never perturbs fault-free seeds.
     */
    using FaultHook = std::function<FaultVerdict(const Packet &, NetStage)>;

    Network(EventQueue &eq, const NetConfig &cfg, std::uint64_t seed);

    /**
     * Attach a node; returns its NodeId.
     * @param rx   ingress handler invoked at delivery time.
     * @param link_bandwidth_bps 0 = use the config default.
     * @param rack rack (leaf switch) the node's link terminates at.
     */
    NodeId addNode(RxHandler rx, std::uint64_t link_bandwidth_bps = 0,
                   RackId rack = 0);

    /**
     * Transmit a packet from pkt.src to pkt.dst. Serialization starts
     * when the source link is free (and, in lossless mode, when every
     * output queue along the path has room); delivery happens via the
     * event queue after switch traversal (or never, if dropped).
     */
    void send(Packet pkt);

    /**
     * Estimated backlog, in ticks, of the ToR output port that feeds
     * `node`'s ingress link — i.e. how far ahead of now that port's
     * egress is booked (diagnostic / congestion-observability hook).
     * This measures contention at the switch output, not load on the
     * node's own egress link.
     */
    Tick switchEgressBacklog(NodeId node) const;

    /** Rack of a node. */
    RackId rackOf(NodeId node) const;

    /** @{ Failure domains. A down node (dead NIC/board port) or a down
     * rack (dead ToR) drops every packet to or from it — both packets
     * submitted later and packets already in flight at delivery time. */
    void setNodeDown(NodeId node, bool down);
    bool nodeDown(NodeId node) const;
    void setRackDown(RackId rack, bool down);
    bool rackDown(RackId rack) const;
    /** @} */

    /** Install / clear the fault-injection hook. */
    void setFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }
    void clearFaultHook() { fault_hook_ = nullptr; }

    /** Number of racks seen so far (max rack id + 1; >= 1). */
    std::uint32_t rackCount() const
    {
        return static_cast<std::uint32_t>(racks_.size() ? racks_.size()
                                                        : 1);
    }

    const NetStats &stats() const { return stats_; }
    void resetStats() { stats_ = NetStats{}; }

    const NetConfig &config() const { return cfg_; }

  private:
    /**
     * One switch output stage (a ToR output port, a rack uplink, or a
     * rack downlink): when its egress is next idle, plus the departure
     * times of every packet committed to it and not yet departed.
     * `drain.size()` IS the committed occupancy; entries <= now are
     * popped lazily (equivalent to a drain event at each out_done).
     */
    struct Stage
    {
        /** When the stage's egress link becomes idle. */
        Tick free = 0;
        /** Departure (out_done) times of committed packets, FIFO.
         * Non-decreasing because egress serialization is FIFO. */
        std::deque<Tick> drain;
    };

    struct Port
    {
        RxHandler rx;
        std::uint64_t bandwidth_bps;
        /** ticksPerByte(bandwidth_bps), precomputed: serialization is
         * two multiplies per packet instead of two 64-bit divisions. */
        Tick ticks_per_byte;
        /** When the node's egress link becomes idle. */
        Tick tx_free = 0;
        RackId rack = 0;
        /** Marked down by the failure layer (dead NIC / board port). */
        bool down = false;
        /** The ToR output port toward this node. */
        Stage out;
    };

    /** Leaf<->spine plumbing of one rack. */
    struct Rack
    {
        Stage up;   ///< leaf -> spine aggregation link
        Stage down; ///< spine -> leaf aggregation link
        /** Marked down by the failure layer (dead ToR). */
        bool tor_down = false;
    };

    /** Pop departures that already happened (occupancy bookkeeping). */
    static void lazyDrain(Stage &stage, Tick now);
    /** Earliest time `stage` (capacity `cap`) has room for one more
     * committed packet; `now` when it already has room. */
    static Tick admitTime(const Stage &stage, std::uint32_t cap,
                          Tick now);

    /** Schedule one delivery of `pkt` at `deliver` (down-state is
     * re-checked when the event fires, so packets in flight when a
     * node or rack dies are lost, like on real hardware). */
    void scheduleDelivery(Tick deliver, Packet pkt);

    EventQueue &eq_;
    NetConfig cfg_;
    Rng rng_;
    Tick agg_ticks_per_byte_;
    std::vector<Port> ports_;
    std::vector<Rack> racks_;
    FaultHook fault_hook_;
    NetStats stats_;
};

} // namespace clio

#endif // CLIO_NET_NETWORK_HH
