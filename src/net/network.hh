/**
 * @file
 * Datacenter network model: nodes with full-duplex links to one ToR
 * switch (§3.2's topology: CNs and CBoards all connect to a ToR).
 *
 * The model captures the effects the paper's transport design reacts
 * to: per-link serialization (bandwidth), propagation and switching
 * delay, output-queue contention at the switch (incast!), random
 * loss/corruption/reordering for fault injection, and optional
 * lossless (PFC-like) back-pressure instead of tail drop.
 */

#ifndef CLIO_NET_NETWORK_HH
#define CLIO_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {

/** Aggregate network statistics (per Network instance). */
struct NetStats
{
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_random = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t reordered = 0;
    std::uint64_t bytes_delivered = 0;
};

/** The ToR-switched network connecting every node of a cluster. */
class Network
{
  public:
    using RxHandler = std::function<void(Packet)>;

    Network(EventQueue &eq, const NetConfig &cfg, std::uint64_t seed);

    /**
     * Attach a node; returns its NodeId.
     * @param rx   ingress handler invoked at delivery time.
     * @param link_bandwidth_bps 0 = use the config default.
     */
    NodeId addNode(RxHandler rx, std::uint64_t link_bandwidth_bps = 0);

    /**
     * Transmit a packet from pkt.src to pkt.dst. Serialization starts
     * when the source link is free; delivery happens via the event
     * queue after switch traversal (or never, if dropped).
     */
    void send(Packet pkt);

    /** Estimated queueing backlog of a node's ingress link, in ticks
     * (diagnostic / congestion-observability hook). */
    Tick ingressBacklog(NodeId node) const;

    const NetStats &stats() const { return stats_; }
    void resetStats() { stats_ = NetStats{}; }

    const NetConfig &config() const { return cfg_; }

  private:
    struct Port
    {
        RxHandler rx;
        std::uint64_t bandwidth_bps;
        /** ticksPerByte(bandwidth_bps), precomputed: serialization is
         * two multiplies per packet instead of two 64-bit divisions. */
        Tick ticks_per_byte;
        /** When the node's egress link becomes idle. */
        Tick tx_free = 0;
        /** When the switch's output link toward this node is idle. */
        Tick switch_out_free = 0;
        /** Packets currently queued at the switch output. */
        std::uint32_t queue_depth = 0;
    };

    EventQueue &eq_;
    NetConfig cfg_;
    Rng rng_;
    std::vector<Port> ports_;
    NetStats stats_;
};

} // namespace clio

#endif // CLIO_NET_NETWORK_HH
