/**
 * @file
 * Link-layer packet and message abstractions (§4.4, §4.5 T1).
 *
 * A Message is one Clio request or response; CLib splits messages
 * larger than the MTU into multiple link-layer packets, each carrying
 * the full Clio header (sender/receiver, request id, type) plus the
 * byte range of the payload it covers. Because every packet is
 * self-describing, the MN can execute packets in any arrival order
 * (out-of-order data placement) and the CN can reassemble responses.
 */

#ifndef CLIO_NET_PACKET_HH
#define CLIO_NET_PACKET_HH

#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace clio {

/** Base class for anything carried by the network. */
struct Message
{
    virtual ~Message() = default;
};

/** Clio request/response types routed by the CBoard MAT (§3.2). */
enum class MsgType : std::uint8_t {
    kRead,      ///< fast path: byte-granularity read
    kWrite,     ///< fast path: byte-granularity write
    kAtomic,    ///< fast path + sync unit: TAS / FAA / CAS
    kFence,     ///< sync unit: drain inflight, then ack
    kAlloc,     ///< slow path: ralloc
    kFree,      ///< slow path: rfree
    kOffload,   ///< extend path: application offload invocation
    kResponse,  ///< MN -> CN response (matches request id)
    kNack,      ///< MN -> CN: link-layer corruption notice
    kHeartbeat, ///< node -> controller liveness beacon (health plane)
};

/** Per-packet Clio header + payload view (the wire unit). */
struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;
    /** Request id this packet belongs to (response echoes it). */
    ReqId req_id = 0;
    MsgType type = MsgType::kRead;
    /** Part index within the message and total part count. */
    std::uint32_t part = 0;
    std::uint32_t total_parts = 1;
    /** Byte range of the message payload this packet carries. */
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_len = 0;
    /** Bytes on the wire (payload + headers), for serialization time. */
    std::uint32_t wire_bytes = 0;
    /** Set by the link model when the packet got corrupted in flight;
     * the receiver's link layer detects this via checksum. */
    bool corrupted = false;
    /** Strict-priority control-plane lane (802.1p-style): the packet
     * bypasses NIC and switch output queues instead of serializing
     * behind bulk data. Used by liveness heartbeats so a multi-hundred
     * KiB resync chunk on a node's link cannot starve its beacons into
     * a false lease expiry. Loss/corruption/fault hooks still apply. */
    bool priority = false;
    /** The full message, shared by all its packets. */
    std::shared_ptr<const Message> msg;
};

/** Link + Clio header overhead per packet (Ethernet 14+4, IP-ish 20,
 * Clio header 24). */
constexpr std::uint32_t kPacketHeaderBytes = 62;

} // namespace clio

#endif // CLIO_NET_PACKET_HH
