#include "net/network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

Network::Network(EventQueue &eq, const NetConfig &cfg, std::uint64_t seed)
    : eq_(eq), cfg_(cfg), rng_(seed),
      agg_ticks_per_byte_(ticksPerByte(cfg.agg_bandwidth_bps))
{
}

NodeId
Network::addNode(RxHandler rx, std::uint64_t link_bandwidth_bps,
                 RackId rack)
{
    clio_assert(rack < 4096, "implausible rack id %u", rack);
    const NodeId id = static_cast<NodeId>(ports_.size());
    Port port;
    port.rx = std::move(rx);
    port.bandwidth_bps = link_bandwidth_bps ? link_bandwidth_bps
                                            : cfg_.link_bandwidth_bps;
    port.ticks_per_byte = ticksPerByte(port.bandwidth_bps);
    port.rack = rack;
    ports_.push_back(std::move(port));
    if (rack >= racks_.size())
        racks_.resize(rack + 1);
    return id;
}

void
Network::lazyDrain(Stage &stage, Tick now)
{
    while (!stage.drain.empty() && stage.drain.front() <= now)
        stage.drain.pop_front();
}

Tick
Network::admitTime(const Stage &stage, std::uint32_t cap, Tick now)
{
    const std::size_t depth = stage.drain.size();
    if (depth < cap)
        return now;
    // With `depth` packets committed and room for `cap`, this packet
    // may occupy the queue once the (depth - cap + 1)-th departure has
    // happened — i.e. at drain[depth - cap] (0-indexed, FIFO order).
    return std::max(now, stage.drain[depth - cap]);
}

void
Network::setNodeDown(NodeId node, bool down)
{
    clio_assert(node < ports_.size(), "unknown node");
    ports_[node].down = down;
}

bool
Network::nodeDown(NodeId node) const
{
    clio_assert(node < ports_.size(), "unknown node");
    return ports_[node].down;
}

void
Network::setRackDown(RackId rack, bool down)
{
    if (rack >= racks_.size())
        racks_.resize(rack + 1);
    racks_[rack].tor_down = down;
}

bool
Network::rackDown(RackId rack) const
{
    return rack < racks_.size() && racks_[rack].tor_down;
}

void
Network::scheduleDelivery(Tick deliver, Packet pkt)
{
    const NodeId dst_id = pkt.dst;
    eq_.schedule(deliver, [this, dst_id, pkt = std::move(pkt)]() mutable {
        Port &port = ports_[dst_id];
        if (port.down || racks_[port.rack].tor_down) {
            // The endpoint (or its ToR) died while the packet was in
            // flight: the bytes are gone.
            stats_.dropped_down++;
            return;
        }
        stats_.delivered++;
        stats_.bytes_delivered += pkt.wire_bytes;
        if (port.rx)
            port.rx(std::move(pkt));
    });
}

void
Network::send(Packet pkt)
{
    clio_assert(pkt.src < ports_.size() && pkt.dst < ports_.size(),
                "send between unknown nodes %u -> %u", pkt.src, pkt.dst);
    clio_assert(pkt.src != pkt.dst, "loopback packets not modeled");
    stats_.sent++;

    Port &src = ports_[pkt.src];
    Port &dst = ports_[pkt.dst];
    if (src.down || dst.down || racks_[src.rack].tor_down ||
        racks_[dst.rack].tor_down) {
        // Dead endpoint or dead ToR on either side: nothing leaves the
        // NIC (requests to crashed MNs surface as CN-side timeouts).
        stats_.dropped_down++;
        return;
    }
    const Tick now = eq_.now();
    const bool cross_rack = src.rack != dst.rack;
    Rack *src_rack = cross_rack ? &racks_[src.rack] : nullptr;
    Rack *dst_rack = cross_rack ? &racks_[dst.rack] : nullptr;

    // Refresh the occupancy of every stage on the packet's path:
    // departures that already happened free their queue slots.
    lazyDrain(dst.out, now);
    if (cross_rack) {
        lazyDrain(src_rack->up, now);
        lazyDrain(dst_rack->down, now);
    }

    // Control-plane lane: priority packets never wait for, occupy, or
    // advance any data queue (strict-priority preemption; their own
    // serialization still elapses). Everything else — loss, corruption,
    // jitter, reordering, the fault hook — applies identically, and
    // non-priority packets execute the exact same code as before.
    const bool prio = pkt.priority;
    if (prio)
        stats_.priority_bypass++;

    // --- Lossless (PFC-like) back-pressure: if any output queue on
    // the path is full, the packet is held at the source NIC until a
    // slot will have freed — tx_start is delayed, queues stay bounded.
    Tick hold = now;
    if (cfg_.lossless && !prio) {
        hold = std::max(
            hold, admitTime(dst.out, cfg_.switch_queue_packets, now));
        if (cross_rack) {
            hold = std::max(
                hold,
                admitTime(src_rack->up, cfg_.agg_queue_packets, now));
            hold = std::max(
                hold,
                admitTime(dst_rack->down, cfg_.agg_queue_packets, now));
        }
        if (hold > now) {
            stats_.pfc_stalls++;
            stats_.pfc_stall_ticks += hold - now;
        }
    }

    // --- Source NIC egress: serialize onto the host link. ---
    const Tick ser =
        static_cast<Tick>(pkt.wire_bytes) * src.ticks_per_byte;
    const Tick tx_start = prio ? now : std::max(hold, src.tx_free);
    const Tick tx_done = tx_start + ser;
    if (!prio)
        src.tx_free = tx_done;

    // --- In-flight faults. ---
    if (rng_.chance(cfg_.loss_rate)) {
        stats_.dropped_random++;
        return;
    }
    if (rng_.chance(cfg_.corrupt_rate)) {
        pkt.corrupted = true;
        stats_.corrupted++;
    }

    // --- Injected faults (chaos hook), evaluated per traversed stage
    // in path order. Without a hook this path makes no RNG draws.
    bool fault_duplicate = false;
    Tick fault_delay = 0;
    const auto stageFault = [&](NetStage stage) -> bool {
        if (!fault_hook_)
            return false;
        const FaultVerdict v = fault_hook_(pkt, stage);
        if (v.drop) {
            stats_.dropped_fault++;
            return true;
        }
        if (v.corrupt && !pkt.corrupted) {
            pkt.corrupted = true;
            stats_.corrupted++;
        }
        if (v.duplicate)
            fault_duplicate = true;
        fault_delay += v.extra_delay;
        return false;
    };

    // --- Aggregation hops (only when src and dst racks differ). ---
    // source ToR -> uplink serialization -> spine -> downlink
    // serialization -> destination ToR. Queue occupancy at each hop
    // lasts until that hop's departure (out_done), drained lazily.
    Tick at_dst_tor = tx_done + cfg_.link_propagation;
    if (cross_rack) {
        stats_.cross_rack++;
        const Tick agg_ser =
            static_cast<Tick>(pkt.wire_bytes) * agg_ticks_per_byte_;

        // Uplink of the source rack toward the spine.
        if (stageFault(NetStage::kAggUp))
            return;
        if (!cfg_.lossless && !prio &&
            src_rack->up.drain.size() >= cfg_.agg_queue_packets) {
            stats_.dropped_agg_queue++;
            return;
        }
        const Tick up_start =
            prio ? at_dst_tor : std::max(at_dst_tor, src_rack->up.free);
        const Tick up_done = up_start + agg_ser + cfg_.switch_latency;
        if (!prio) {
            src_rack->up.free = up_start + agg_ser;
            src_rack->up.drain.push_back(up_done);
        }

        // Spine output toward the destination rack (its downlink).
        const Tick at_spine = up_done + cfg_.agg_link_propagation;
        if (stageFault(NetStage::kAggDown))
            return;
        if (!cfg_.lossless && !prio &&
            dst_rack->down.drain.size() >= cfg_.agg_queue_packets) {
            stats_.dropped_agg_queue++;
            return;
        }
        const Tick down_start =
            prio ? at_spine : std::max(at_spine, dst_rack->down.free);
        const Tick down_done =
            down_start + agg_ser + cfg_.spine_latency;
        if (!prio) {
            dst_rack->down.free = down_start + agg_ser;
            dst_rack->down.drain.push_back(down_done);
        }

        at_dst_tor = down_done + cfg_.agg_link_propagation;
    }

    // --- Destination ToR output port toward the destination node. ---
    if (stageFault(NetStage::kTor))
        return;
    const Tick out_ser =
        static_cast<Tick>(pkt.wire_bytes) * dst.ticks_per_byte;
    const Tick out_start =
        prio ? at_dst_tor : std::max(at_dst_tor, dst.out.free);

    // Queue occupancy check (incast tail-drop; lossless mode already
    // delayed tx_start above so the queue is guaranteed to have room).
    if (!cfg_.lossless && !prio &&
        dst.out.drain.size() >= cfg_.switch_queue_packets) {
        stats_.dropped_queue++;
        return;
    }
    const Tick out_done = out_start + out_ser + cfg_.switch_latency;
    if (!prio) {
        // The forwarding latency is pipelined: it delays the packet but
        // does not occupy the output port.
        dst.out.free = out_start + out_ser;
        // The packet occupies the output queue until its last byte
        // leaves the port (out_done) — NOT until delivery, which
        // additionally includes the final link propagation plus
        // jitter/reorder delay.
        dst.out.drain.push_back(out_done);
        // Physical occupancy when this packet's bytes reach the queue:
        // committed packets still present at `at_dst_tor` (drain is
        // sorted, FIFO). Bounded by the queue capacity in BOTH modes —
        // in lossless mode because the admission delay above
        // guarantees enough predecessors have departed by the time the
        // packet arrives.
        const auto still_queued =
            dst.out.drain.end() -
            std::upper_bound(dst.out.drain.begin(), dst.out.drain.end(),
                             at_dst_tor);
        stats_.peak_queue_depth =
            std::max(stats_.peak_queue_depth,
                     static_cast<std::uint32_t>(still_queued));
    }

    // --- Final hop to the destination NIC. ---
    Tick deliver = out_done + cfg_.link_propagation + fault_delay;
    if (cfg_.switch_jitter_mean > 0) {
        deliver += static_cast<Tick>(rng_.exponential(
            static_cast<double>(cfg_.switch_jitter_mean)));
    }
    if (rng_.chance(cfg_.reorder_rate)) {
        deliver += cfg_.reorder_delay;
        stats_.reordered++;
    }

    if (fault_duplicate) {
        // A switch duplicated the packet: the copy trails the original
        // by the reorder delay (the protocol must absorb it, T1/T4).
        stats_.duplicated++;
        scheduleDelivery(deliver + cfg_.reorder_delay, pkt);
    }
    scheduleDelivery(deliver, std::move(pkt));
}

Tick
Network::switchEgressBacklog(NodeId node) const
{
    clio_assert(node < ports_.size(), "unknown node");
    const Port &port = ports_[node];
    return port.out.free > eq_.now() ? port.out.free - eq_.now() : 0;
}

RackId
Network::rackOf(NodeId node) const
{
    clio_assert(node < ports_.size(), "unknown node");
    return ports_[node].rack;
}

} // namespace clio
