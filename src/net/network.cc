#include "net/network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

Network::Network(EventQueue &eq, const NetConfig &cfg, std::uint64_t seed)
    : eq_(eq), cfg_(cfg), rng_(seed)
{
}

NodeId
Network::addNode(RxHandler rx, std::uint64_t link_bandwidth_bps)
{
    const NodeId id = static_cast<NodeId>(ports_.size());
    Port port;
    port.rx = std::move(rx);
    port.bandwidth_bps = link_bandwidth_bps ? link_bandwidth_bps
                                            : cfg_.link_bandwidth_bps;
    port.ticks_per_byte = ticksPerByte(port.bandwidth_bps);
    ports_.push_back(std::move(port));
    return id;
}

void
Network::send(Packet pkt)
{
    clio_assert(pkt.src < ports_.size() && pkt.dst < ports_.size(),
                "send between unknown nodes %u -> %u", pkt.src, pkt.dst);
    clio_assert(pkt.src != pkt.dst, "loopback packets not modeled");
    stats_.sent++;

    Port &src = ports_[pkt.src];
    Port &dst = ports_[pkt.dst];

    // --- Source NIC egress: serialize onto the host link. ---
    const Tick now = eq_.now();
    const Tick ser =
        static_cast<Tick>(pkt.wire_bytes) * src.ticks_per_byte;
    const Tick tx_start = std::max(now, src.tx_free);
    const Tick tx_done = tx_start + ser;
    src.tx_free = tx_done;

    // --- In-flight faults. ---
    if (rng_.chance(cfg_.loss_rate)) {
        stats_.dropped_random++;
        return;
    }
    if (rng_.chance(cfg_.corrupt_rate)) {
        pkt.corrupted = true;
        stats_.corrupted++;
    }

    // --- Switch output port toward the destination. ---
    const Tick at_switch = tx_done + cfg_.link_propagation;
    const Tick out_ser =
        static_cast<Tick>(pkt.wire_bytes) * dst.ticks_per_byte;
    const Tick out_start = std::max(at_switch, dst.switch_out_free);

    // Queue occupancy check (incast drops unless lossless).
    if (dst.queue_depth >= cfg_.switch_queue_packets && !cfg_.lossless) {
        stats_.dropped_queue++;
        return;
    }
    dst.queue_depth++;
    // The forwarding latency is pipelined: it delays the packet but
    // does not occupy the output port.
    dst.switch_out_free = out_start + out_ser;
    const Tick out_done =
        out_start + out_ser + cfg_.switch_latency;

    // --- Final hop to the destination NIC. ---
    Tick deliver = out_done + cfg_.link_propagation;
    if (cfg_.switch_jitter_mean > 0) {
        deliver += static_cast<Tick>(rng_.exponential(
            static_cast<double>(cfg_.switch_jitter_mean)));
    }
    if (rng_.chance(cfg_.reorder_rate)) {
        deliver += cfg_.reorder_delay;
        stats_.reordered++;
    }

    const NodeId dst_id = pkt.dst;
    eq_.schedule(deliver, [this, dst_id, pkt = std::move(pkt)]() mutable {
        Port &port = ports_[dst_id];
        clio_assert(port.queue_depth > 0, "queue accounting underflow");
        port.queue_depth--;
        stats_.delivered++;
        stats_.bytes_delivered += pkt.wire_bytes;
        if (port.rx)
            port.rx(std::move(pkt));
    });
}

Tick
Network::ingressBacklog(NodeId node) const
{
    clio_assert(node < ports_.size(), "unknown node");
    const Port &port = ports_[node];
    return port.switch_out_free > eq_.now()
               ? port.switch_out_free - eq_.now()
               : 0;
}

} // namespace clio
