/**
 * @file
 * Developer simulator (§5): "a simple software simulator of CBoard
 * which works with CLib for developers to test their code without the
 * need to run an actual CBoard."
 *
 * DevBoard wraps one CBoard without any network: calls are
 * synchronous, functional, and instantaneous from the caller's
 * perspective, while still exercising the real page table, allocator,
 * permission checks, fault handler, atomics, and offload framework.
 * Application and offload code developed against DevBoard runs
 * unchanged on the full simulated cluster (and, in the paper's world,
 * on the hardware).
 */

#ifndef CLIO_DEVSIM_DEV_BOARD_HH
#define CLIO_DEVSIM_DEV_BOARD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cboard/cboard.hh"
#include "clib/result.hh"
#include "net/network.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace clio {

/** A process handle on the DevBoard. */
class DevProcess;

/** In-process CBoard simulator for application development. */
class DevBoard
{
  public:
    explicit DevBoard(const ModelConfig &cfg = ModelConfig::prototype(),
                      std::uint64_t phys_bytes = 0);

    /** Open a new "process" (fresh global PID / address space). */
    DevProcess openProcess();

    /** Deploy an offload (own address space). */
    void
    registerOffload(std::uint32_t id, std::shared_ptr<Offload> offload)
    {
        board_->registerOffload(id, std::move(offload));
    }

    /** Deploy an offload sharing a process' address space. */
    void registerOffloadShared(std::uint32_t id,
                               std::shared_ptr<Offload> offload,
                               const DevProcess &proc);

    /** Invoke an offload synchronously. */
    Status
    offloadCall(std::uint32_t id, const std::vector<std::uint8_t> &arg,
                std::vector<std::uint8_t> *result = nullptr,
                std::uint64_t *value = nullptr)
    {
        OffloadResult res;
        board_->invokeOffloadLocal(id, arg, res);
        if (result)
            *result = std::move(res.data);
        if (value)
            *value = res.value;
        return res.status;
    }

    CBoard &board() { return *board_; }

  private:
    friend class DevProcess;
    EventQueue eq_;
    Network net_;
    std::unique_ptr<CBoard> board_;
    ProcId next_pid_ = 1;
};

/** Synchronous, functional view of one process' RAS on a DevBoard. */
class DevProcess
{
  public:
    DevProcess(DevBoard &dev, ProcId pid) : dev_(dev), pid_(pid) {}

    ProcId pid() const { return pid_; }

    /** malloc-like remote allocation (same typed result shape as
     * ClioClient::ralloc, so app code moves between the two). */
    Result<VirtAddr>
    ralloc(std::uint64_t size, std::uint8_t perm = kPermReadWrite)
    {
        ResponseMsg resp;
        dev_.board_->slowPathAlloc(pid_, size, perm, resp);
        if (resp.status != Status::kOk)
            return resp.status;
        return resp.value;
    }

    Status
    rfree(VirtAddr addr)
    {
        ResponseMsg resp;
        dev_.board_->slowPathFree(pid_, addr, resp);
        return resp.status;
    }

    Status
    rwrite(VirtAddr addr, const void *src, std::uint64_t len)
    {
        RequestMsg req = makeReq(MsgType::kWrite, addr, len);
        req.data.assign(static_cast<const std::uint8_t *>(src),
                        static_cast<const std::uint8_t *>(src) + len);
        ResponseMsg resp;
        dev_.board_->serviceFastPath(req, dev_.eq_.now(), resp);
        return resp.status;
    }

    Status
    rread(VirtAddr addr, void *dst, std::uint64_t len)
    {
        RequestMsg req = makeReq(MsgType::kRead, addr, len);
        ResponseMsg resp;
        dev_.board_->serviceFastPath(req, dev_.eq_.now(), resp);
        if (resp.status == Status::kOk)
            std::copy(resp.data.begin(), resp.data.end(),
                      static_cast<std::uint8_t *>(dst));
        return resp.status;
    }

  private:
    RequestMsg
    makeReq(MsgType type, VirtAddr addr, std::uint64_t len)
    {
        RequestMsg req;
        req.type = type;
        req.pid = pid_;
        req.addr = addr;
        req.size = len;
        req.req_id = next_req_++;
        req.orig_req_id = req.req_id;
        return req;
    }

    DevBoard &dev_;
    ProcId pid_;
    ReqId next_req_ = 1;
};

} // namespace clio

#endif // CLIO_DEVSIM_DEV_BOARD_HH
