#include "devsim/dev_board.hh"

namespace clio {

DevBoard::DevBoard(const ModelConfig &cfg, std::uint64_t phys_bytes)
    : net_(eq_, cfg.net, cfg.seed + 4242)
{
    board_ = std::make_unique<CBoard>(eq_, net_, cfg, phys_bytes);
}

DevProcess
DevBoard::openProcess()
{
    return DevProcess(*this, next_pid_++);
}

void
DevBoard::registerOffloadShared(std::uint32_t id,
                                std::shared_ptr<Offload> offload,
                                const DevProcess &proc)
{
    board_->registerOffloadShared(id, std::move(offload), proc.pid());
}

} // namespace clio
