/**
 * @file
 * On-chip TLB model (§4.2): a fixed-size content-addressable store of
 * recently used PTEs with LRU replacement. Lookup is a single fast-path
 * cycle; a miss costs exactly one DRAM bucket fetch from the hash page
 * table.
 */

#ifndef CLIO_PAGETABLE_TLB_HH
#define CLIO_PAGETABLE_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "pagetable/pte.hh"
#include "sim/types.hh"

namespace clio {

/** Fixed-capacity fully-associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(std::uint32_t capacity);

    /**
     * Look up (pid, vpn); promotes the entry to MRU on hit.
     * @return cached copy of the PTE, or nullptr on miss. The pointer
     *         stays valid until the next mutating call.
     */
    const Pte *lookup(ProcId pid, std::uint64_t vpn);

    /** Insert (or overwrite) an entry, evicting LRU when full. */
    void insert(const Pte &pte);

    /**
     * Update a cached entry in place if it exists (used when a PTE
     * changes, keeping TLB and page table consistent, §4.2).
     */
    void update(const Pte &pte);

    /** Drop one entry if cached (rfree / remap). */
    void invalidate(ProcId pid, std::uint64_t vpn);

    /** Drop every entry of one process (address space teardown). */
    void invalidateProcess(ProcId pid);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const {
        return static_cast<std::uint32_t>(map_.size());
    }

    /** @{ Hit/miss counters for stats and benches. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** @} */

    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    struct Key
    {
        ProcId pid;
        std::uint64_t vpn;
        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            // Mix pid into the vpn with a 64-bit multiply-shift.
            std::uint64_t x = k.vpn * 0x9E3779B97F4A7C15ull + k.pid;
            x ^= x >> 32;
            return static_cast<std::size_t>(x);
        }
    };

    struct Entry
    {
        Pte pte;
        std::list<Key>::iterator lru_pos;
    };

    std::uint32_t capacity_;
    std::unordered_map<Key, Entry, KeyHash> map_;
    /** Front = MRU, back = LRU. */
    std::list<Key> lru_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace clio

#endif // CLIO_PAGETABLE_TLB_HH
