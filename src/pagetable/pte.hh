/**
 * @file
 * Page table entry layout shared by the hash page table, the TLB, and
 * the slow-path shadow table.
 */

#ifndef CLIO_PAGETABLE_PTE_HH
#define CLIO_PAGETABLE_PTE_HH

#include <cstdint>

#include "sim/types.hh"

namespace clio {

/** Access permission bits carried in each PTE (checked in the fast
 * path together with translation, §3.2). */
enum Perm : std::uint8_t {
    kPermNone = 0,
    kPermRead = 1 << 0,
    kPermWrite = 1 << 1,
    kPermReadWrite = kPermRead | kPermWrite,
};

/**
 * One page table entry. A PTE exists from VA allocation time; it only
 * becomes `present` when the first access faults and the fast path
 * binds a physical frame to it (§4.3).
 */
struct Pte
{
    /** Virtual page number within the process' RAS; part of the key. */
    std::uint64_t vpn = 0;
    /** Base physical address of the bound frame (valid iff present). */
    PhysAddr frame = 0;
    /** Owning process (global PID); part of the hash key. */
    ProcId pid = 0;
    /** Permission bits for this page. */
    std::uint8_t perm = kPermNone;
    /** Slot holds a live entry (allocated VA). */
    bool valid = false;
    /** Physical frame bound (first access already happened). */
    bool present = false;

    bool
    matches(ProcId p, std::uint64_t v) const
    {
        return valid && pid == p && vpn == v;
    }
};

/** The 8-byte fields lead so no alignment padding is wasted: a packed
 * PTE is 24 bytes, so a 4-slot hash bucket (the probe unit of the
 * overflow-free table) spans 1.5 cache lines instead of 2 and a TLB
 * set packs 33% more entries per line. */
static_assert(sizeof(Pte) == 24, "Pte must stay packed to 24 bytes");

} // namespace clio

#endif // CLIO_PAGETABLE_PTE_HH
