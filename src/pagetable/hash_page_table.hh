/**
 * @file
 * Overflow-free hash page table (§4.2, the paper's key data structure).
 *
 * All PTEs from all processes live in a single hash table whose size is
 * proportional to the MN's physical memory (overprovisioned 2x by
 * default). Each bucket holds K slots and is fetched with exactly one
 * DRAM access, which bounds every translation to at most one DRAM
 * access on a TLB miss.
 *
 * Buckets never overflow at run time: the slow-path VA allocator only
 * hands out VA ranges whose pages all fit their buckets (checked at
 * allocation time, retried otherwise — see valloc/). insert() therefore
 * panics on a full bucket: that would mean the allocator invariant was
 * broken, which is a simulator bug, not an expected condition.
 */

#ifndef CLIO_PAGETABLE_HASH_PAGE_TABLE_HH
#define CLIO_PAGETABLE_HASH_PAGE_TABLE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "pagetable/pte.hh"
#include "sim/types.hh"

namespace clio {

/**
 * Jenkins one-at-a-time hash over (pid, vpn), the low-collision hash
 * family the paper cites for its page table.
 */
std::uint64_t jenkinsHash(ProcId pid, std::uint64_t vpn);

/** The single flat hash page table of one MN. */
class HashPageTable
{
  public:
    /**
     * @param phys_bytes   physical memory the MN hosts.
     * @param page_size    configured huge-page size.
     * @param bucket_slots K, slots fetched per DRAM access.
     * @param overprovision total-slot factor over physical pages (2x
     *                      default absorbs most hash skew, §4.2).
     */
    HashPageTable(std::uint64_t phys_bytes, std::uint64_t page_size,
                  std::uint32_t bucket_slots, double overprovision);

    /** Bucket index a (pid, vpn) pair hashes to. */
    std::uint64_t bucketOf(ProcId pid, std::uint64_t vpn) const;

    /**
     * Look up the PTE for (pid, vpn). Models one DRAM bucket fetch.
     * @return pointer into the table, or nullptr when absent.
     */
    Pte *lookup(ProcId pid, std::uint64_t vpn);
    const Pte *lookup(ProcId pid, std::uint64_t vpn) const;

    /**
     * Count free slots remaining in the bucket of (pid, vpn); used by
     * the VA allocator's overflow check.
     */
    std::uint32_t freeSlotsInBucket(ProcId pid, std::uint64_t vpn) const;

    /**
     * Test whether a whole batch of (pid, vpn) pages can be inserted
     * without overflowing any bucket, accounting for multiple pages of
     * the batch landing in the same bucket. Pure check, no mutation.
     */
    bool canInsert(ProcId pid, std::span<const std::uint64_t> vpns) const;

    /**
     * Insert an invalid-but-allocated PTE for (pid, vpn) with the given
     * permissions. Panics if the bucket is full (allocator invariant
     * violated) or the entry already exists.
     */
    void insert(ProcId pid, std::uint64_t vpn, std::uint8_t perm);

    /** Remove the PTE for (pid, vpn); returns the removed entry. */
    Pte remove(ProcId pid, std::uint64_t vpn);

    /** Bind a physical frame, marking the PTE present (page fault). */
    void bindFrame(ProcId pid, std::uint64_t vpn, PhysAddr frame);

    /**
     * Remove every PTE of one process (address-space teardown),
     * invoking `reclaim` with each removed entry so the caller can
     * free bound frames. Linear sweep; not performance critical.
     */
    template <typename Fn>
    void
    removeAllOfPid(ProcId pid, Fn &&reclaim)
    {
        for (auto &pte : slots_) {
            if (pte.valid && pte.pid == pid) {
                reclaim(const_cast<const Pte &>(pte));
                pte = Pte{};
                live_entries_--;
            }
        }
    }

    std::uint64_t bucketCount() const { return bucket_count_; }
    std::uint32_t bucketSlots() const { return bucket_slots_; }
    std::uint64_t totalSlots() const {
        return bucket_count_ * bucket_slots_;
    }
    std::uint64_t liveEntries() const { return live_entries_; }

    /** Total table size in bytes (each slot is 16 B packed, §4.2's
     * "0.4% of physical memory" figure). */
    std::uint64_t tableBytes() const { return totalSlots() * 16; }

    /** Highest bucket fill level observed (test/diagnostic hook). */
    std::uint32_t maxBucketFill() const;

  private:
    std::uint64_t bucket_count_;
    std::uint32_t bucket_slots_;
    std::vector<Pte> slots_;
    std::uint64_t live_entries_ = 0;
};

} // namespace clio

#endif // CLIO_PAGETABLE_HASH_PAGE_TABLE_HH
