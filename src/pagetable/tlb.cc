#include "pagetable/tlb.hh"

#include "sim/logging.hh"

namespace clio {

Tlb::Tlb(std::uint32_t capacity) : capacity_(capacity)
{
    clio_assert(capacity > 0, "TLB capacity must be nonzero");
}

const Pte *
Tlb::lookup(ProcId pid, std::uint64_t vpn)
{
    auto it = map_.find(Key{pid, vpn});
    if (it == map_.end()) {
        misses_++;
        return nullptr;
    }
    hits_++;
    // Promote to MRU.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second.pte;
}

void
Tlb::insert(const Pte &pte)
{
    const Key key{pte.pid, pte.vpn};
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second.pte = pte;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return;
    }
    if (map_.size() >= capacity_) {
        const Key victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{pte, lru_.begin()});
}

void
Tlb::update(const Pte &pte)
{
    auto it = map_.find(Key{pte.pid, pte.vpn});
    if (it != map_.end())
        it->second.pte = pte;
}

void
Tlb::invalidate(ProcId pid, std::uint64_t vpn)
{
    auto it = map_.find(Key{pid, vpn});
    if (it == map_.end())
        return;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
}

void
Tlb::invalidateProcess(ProcId pid)
{
    for (auto it = map_.begin(); it != map_.end();) {
        if (it->first.pid == pid) {
            lru_.erase(it->second.lru_pos);
            it = map_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace clio
