#include "pagetable/hash_page_table.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace clio {

std::uint64_t
jenkinsHash(ProcId pid, std::uint64_t vpn)
{
    // Jenkins one-at-a-time over the 12 key bytes (4 pid + 8 vpn).
    std::uint8_t key[12];
    for (int i = 0; i < 4; i++)
        key[i] = static_cast<std::uint8_t>(pid >> (8 * i));
    for (int i = 0; i < 8; i++)
        key[4 + i] = static_cast<std::uint8_t>(vpn >> (8 * i));

    std::uint64_t hash = 0;
    for (std::uint8_t byte : key) {
        hash += byte;
        hash += hash << 10;
        hash ^= hash >> 6;
    }
    hash += hash << 3;
    hash ^= hash >> 11;
    hash += hash << 15;
    return hash;
}

HashPageTable::HashPageTable(std::uint64_t phys_bytes,
                             std::uint64_t page_size,
                             std::uint32_t bucket_slots,
                             double overprovision)
    : bucket_slots_(bucket_slots)
{
    clio_assert(bucket_slots > 0, "bucket must have at least one slot");
    clio_assert(overprovision >= 1.0, "overprovision factor below 1");
    const std::uint64_t phys_pages =
        std::max<std::uint64_t>(1, phys_bytes / page_size);
    const auto total_slots = static_cast<std::uint64_t>(
        static_cast<double>(phys_pages) * overprovision);
    bucket_count_ =
        std::max<std::uint64_t>(1, (total_slots + bucket_slots - 1) /
                                       bucket_slots);
    slots_.resize(bucket_count_ * bucket_slots_);
}

std::uint64_t
HashPageTable::bucketOf(ProcId pid, std::uint64_t vpn) const
{
    return jenkinsHash(pid, vpn) % bucket_count_;
}

Pte *
HashPageTable::lookup(ProcId pid, std::uint64_t vpn)
{
    const std::uint64_t base = bucketOf(pid, vpn) * bucket_slots_;
    for (std::uint32_t i = 0; i < bucket_slots_; i++) {
        Pte &pte = slots_[base + i];
        if (pte.matches(pid, vpn))
            return &pte;
    }
    return nullptr;
}

const Pte *
HashPageTable::lookup(ProcId pid, std::uint64_t vpn) const
{
    return const_cast<HashPageTable *>(this)->lookup(pid, vpn);
}

std::uint32_t
HashPageTable::freeSlotsInBucket(ProcId pid, std::uint64_t vpn) const
{
    const std::uint64_t base = bucketOf(pid, vpn) * bucket_slots_;
    std::uint32_t free = 0;
    for (std::uint32_t i = 0; i < bucket_slots_; i++) {
        if (!slots_[base + i].valid)
            free++;
    }
    return free;
}

bool
HashPageTable::canInsert(ProcId pid,
                         std::span<const std::uint64_t> vpns) const
{
    // Multiple pages of one candidate range can hash to the same
    // bucket, so count demand per bucket before comparing with supply.
    std::unordered_map<std::uint64_t, std::uint32_t> demand;
    demand.reserve(vpns.size());
    for (std::uint64_t vpn : vpns)
        demand[bucketOf(pid, vpn)]++;
    for (const auto &[bucket, need] : demand) {
        const std::uint64_t base = bucket * bucket_slots_;
        std::uint32_t free = 0;
        for (std::uint32_t i = 0; i < bucket_slots_; i++) {
            if (!slots_[base + i].valid)
                free++;
        }
        if (free < need)
            return false;
    }
    return true;
}

void
HashPageTable::insert(ProcId pid, std::uint64_t vpn, std::uint8_t perm)
{
    const std::uint64_t base = bucketOf(pid, vpn) * bucket_slots_;
    Pte *free_slot = nullptr;
    for (std::uint32_t i = 0; i < bucket_slots_; i++) {
        Pte &pte = slots_[base + i];
        clio_assert(!pte.matches(pid, vpn),
                    "duplicate PTE insert pid=%u vpn=%llu", pid,
                    (unsigned long long)vpn);
        if (!pte.valid && !free_slot)
            free_slot = &pte;
    }
    // A full bucket here means the VA allocator's overflow-free
    // invariant was violated: that is a bug, not a runtime condition.
    clio_assert(free_slot != nullptr,
                "hash bucket overflow pid=%u vpn=%llu (allocator "
                "invariant broken)", pid, (unsigned long long)vpn);
    free_slot->pid = pid;
    free_slot->vpn = vpn;
    free_slot->perm = perm;
    free_slot->frame = 0;
    free_slot->valid = true;
    free_slot->present = false;
    live_entries_++;
}

Pte
HashPageTable::remove(ProcId pid, std::uint64_t vpn)
{
    Pte *pte = lookup(pid, vpn);
    clio_assert(pte != nullptr, "removing absent PTE pid=%u vpn=%llu",
                pid, (unsigned long long)vpn);
    Pte out = *pte;
    *pte = Pte{};
    live_entries_--;
    return out;
}

void
HashPageTable::bindFrame(ProcId pid, std::uint64_t vpn, PhysAddr frame)
{
    Pte *pte = lookup(pid, vpn);
    clio_assert(pte != nullptr, "binding frame to absent PTE");
    clio_assert(!pte->present, "rebinding an already-present PTE");
    pte->frame = frame;
    pte->present = true;
}

std::uint32_t
HashPageTable::maxBucketFill() const
{
    std::uint32_t max_fill = 0;
    for (std::uint64_t b = 0; b < bucket_count_; b++) {
        std::uint32_t fill = 0;
        for (std::uint32_t i = 0; i < bucket_slots_; i++) {
            if (slots_[b * bucket_slots_ + i].valid)
                fill++;
        }
        max_fill = std::max(max_fill, fill);
    }
    return max_fill;
}

} // namespace clio
