#include "cluster/shard_map.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

namespace {

/** splitmix64 finalizer: cheap, well-mixed, platform-independent. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ShardMap::ShardMap(std::uint32_t vnodes_per_mn) : vnodes_(vnodes_per_mn)
{
    clio_assert(vnodes_ > 0, "shard map needs at least one vnode per MN");
}

std::uint64_t
ShardMap::keyHash(ProcId pid, std::uint64_t region_index)
{
    return mix64((static_cast<std::uint64_t>(pid) << 24) ^ region_index);
}

void
ShardMap::addMn(std::uint32_t mn_idx, RackId rack)
{
    for (const auto &[mn, r] : members_)
        clio_assert(mn != mn_idx, "MN %u already in the shard map",
                    mn_idx);
    members_.emplace_back(mn_idx, rack);
    ring_.reserve(ring_.size() + vnodes_);
    for (std::uint32_t v = 0; v < vnodes_; v++) {
        // Ring points depend only on (mn, replica): re-adding an MN
        // recreates exactly its old points, restoring old placements.
        const std::uint64_t point =
            mix64((static_cast<std::uint64_t>(mn_idx) << 32) | v);
        ring_.push_back(VNode{point, mn_idx});
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const VNode &a, const VNode &b) {
                  return a.point != b.point ? a.point < b.point
                                            : a.mn < b.mn;
              });
    rebuildRackRing(rack);
}

void
ShardMap::removeMn(std::uint32_t mn_idx)
{
    auto member = std::find_if(members_.begin(), members_.end(),
                               [mn_idx](const auto &m) {
                                   return m.first == mn_idx;
                               });
    clio_assert(member != members_.end(), "MN %u not in the shard map",
                mn_idx);
    const RackId rack = member->second;
    members_.erase(member);
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [mn_idx](const VNode &v) {
                                   return v.mn == mn_idx;
                               }),
                ring_.end());
    rebuildRackRing(rack);
}

void
ShardMap::rebuildRackRing(RackId rack)
{
    std::vector<VNode> &sub = rack_rings_[rack];
    sub.clear();
    for (const VNode &v : ring_) {
        if (rackOf(v.mn) == rack)
            sub.push_back(v); // ring_ is sorted, so sub is too
    }
    if (sub.empty())
        rack_rings_.erase(rack);
}

RackId
ShardMap::rackOf(std::uint32_t mn_idx) const
{
    for (const auto &[mn, rack] : members_) {
        if (mn == mn_idx)
            return rack;
    }
    clio_panic("MN %u not in the shard map", mn_idx);
}

std::uint32_t
ShardMap::ownerOf(ProcId pid, std::uint64_t region_index) const
{
    clio_assert(!ring_.empty(), "shard map is empty");
    const std::uint64_t key = keyHash(pid, region_index);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), key,
                               [](const VNode &v, std::uint64_t k) {
                                   return v.point < k;
                               });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around
    return it->mn;
}

std::uint32_t
ShardMap::ownerNear(ProcId pid, std::uint64_t region_index,
                    RackId preferred_rack, std::uint32_t probe) const
{
    clio_assert(!ring_.empty(), "shard map is empty");
    const std::uint64_t key = keyHash(pid, region_index);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), key,
                               [](const VNode &v, std::uint64_t k) {
                                   return v.point < k;
                               });
    std::size_t pos = static_cast<std::size_t>(it - ring_.begin()) %
                      ring_.size();
    std::uint32_t first = ring_[pos].mn;
    std::vector<std::uint32_t> seen;
    seen.reserve(probe);
    for (std::size_t step = 0;
         step < ring_.size() && seen.size() < probe; step++) {
        const std::uint32_t mn = ring_[(pos + step) % ring_.size()].mn;
        if (std::find(seen.begin(), seen.end(), mn) != seen.end())
            continue;
        if (rackOf(mn) == preferred_rack)
            return mn;
        seen.push_back(mn);
    }
    // No preferred-rack MN within `probe` hops: take the key's
    // successor on the rack's own sub-ring, so placement stays
    // rack-local whenever the rack hosts any MN at all.
    auto sub = rack_rings_.find(preferred_rack);
    if (sub != rack_rings_.end()) {
        const std::vector<VNode> &rsub = sub->second;
        auto rit = std::lower_bound(rsub.begin(), rsub.end(), key,
                                    [](const VNode &v, std::uint64_t k) {
                                        return v.point < k;
                                    });
        if (rit == rsub.end())
            rit = rsub.begin();
        return rit->mn;
    }
    return first;
}

} // namespace clio
