#include "cluster/cluster.hh"

#include <algorithm>
#include <set>

#include "cluster/health.hh"
#include "sim/logging.hh"

namespace clio {

Cluster::Cluster(const ModelConfig &cfg, std::uint32_t num_cns,
                 std::uint32_t num_mns, std::uint64_t mn_phys_bytes)
    : cfg_(cfg), eq_(cfg.event_queue_impl),
      net_(eq_, cfg.net, cfg.seed * 7919 + 1)
{
    clio_assert(num_cns > 0 && num_mns > 0, "cluster needs CNs and MNs");
    for (std::uint32_t i = 0; i < num_mns; i++) {
        mns_.push_back(
            std::make_unique<CBoard>(eq_, net_, cfg_, mn_phys_bytes));
        attachMnHooks(i, num_mns > 1);
    }
    for (std::uint32_t i = 0; i < num_cns; i++)
        cns_.push_back(std::make_unique<CNode>(eq_, net_, cfg_));
    if (cfg_.health.enabled)
        health_ = std::make_unique<HealthPlane>(*this);
}

Cluster::Cluster(const ModelConfig &cfg, const ClusterSpec &spec)
    : cfg_(cfg), eq_(cfg.event_queue_impl),
      net_(eq_, cfg.net, cfg.seed * 7919 + 1), sharded_(true),
      shard_map_(spec.shard_vnodes)
{
    clio_assert(spec.racks > 0 && spec.cns_per_rack > 0 &&
                    spec.mns_per_rack > 0,
                "cluster spec needs racks, CNs, and MNs");
    const std::uint32_t total_mns = spec.racks * spec.mns_per_rack;
    // MNs first, then CNs, exactly like the legacy constructor, so
    // node-id assignment stays deterministic across cluster shapes.
    for (RackId rack = 0; rack < spec.racks; rack++) {
        for (std::uint32_t i = 0; i < spec.mns_per_rack; i++) {
            const std::uint32_t idx =
                static_cast<std::uint32_t>(mns_.size());
            mns_.push_back(std::make_unique<CBoard>(
                eq_, net_, cfg_, spec.mn_phys_bytes, rack));
            attachMnHooks(idx, total_mns > 1);
            shard_map_.addMn(idx, rack);
        }
    }
    for (RackId rack = 0; rack < spec.racks; rack++) {
        for (std::uint32_t i = 0; i < spec.cns_per_rack; i++)
            cns_.push_back(
                std::make_unique<CNode>(eq_, net_, cfg_, rack));
    }
    if (cfg_.health.enabled)
        health_ = std::make_unique<HealthPlane>(*this);
}

Cluster::~Cluster() = default;

void
Cluster::attachMnHooks(std::uint32_t mn_idx, bool windowed)
{
    CBoard *board = mns_[mn_idx].get();
    board->setWindowedMode(windowed);
    board->setWindowRequestHook(
        [this, mn_idx](ProcId pid, std::uint64_t size) {
            return grantWindows(pid, mn_idx, size);
        });
}

std::uint32_t
Cluster::mnIndexOf(NodeId node) const
{
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (mns_[i]->nodeId() == node)
            return i;
    }
    clio_panic("node %u is not an MN", node);
}

std::uint32_t
Cluster::leastPressuredMn() const
{
    std::uint32_t best = 0;
    double best_pressure = 2.0;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (!mns_[i]->alive())
            continue;
        const double p = mns_[i]->memoryPressure();
        if (p < best_pressure) {
            best_pressure = p;
            best = i;
        }
    }
    return best;
}

RackId
Cluster::rackOfMn(std::uint32_t i) const
{
    return net_.rackOf(mns_.at(i)->nodeId());
}

void
Cluster::rehomePid(ProcId pid, std::uint32_t new_home)
{
    const std::uint32_t old =
        pid < pid_home_mn_.size() ? pid_home_mn_[pid] : kNoOwner;
    if (old == new_home || old == kNoOwner)
        return;
    // The directory predicts owners for granted regions; changing the
    // home would silently change those predictions. Materialize them
    // into explicit exception entries FIRST — granted regions stay
    // where they physically are, only future grants follow the home.
    const std::uint64_t region = cfg_.dist.region_size;
    for (std::uint64_t ridx = 1; ridx < nextRegionOf(pid); ridx++) {
        const VirtAddr start = ridx * region;
        if (region_owner_.count({pid, start}))
            continue;
        const std::uint32_t owner = regionOwnerIdx(pid, start);
        if (owner != kNoOwner)
            region_owner_[{pid, start}] = owner;
    }
    pid_home_mn_[pid] = new_home;
}

void
Cluster::rehomeAllPids()
{
    if (shard_map_.empty())
        return;
    std::set<ProcId> seen;
    for (const auto &client : clients_) {
        const ProcId pid = client->pid();
        if (!seen.insert(pid).second)
            continue; // shared RAS: the first-created client decides
        const RackId rack = net_.rackOf(client->cnode().nodeId());
        const std::uint32_t want = shard_map_.ownerNear(pid, 0, rack);
        if (pid < pid_home_mn_.size() &&
            pid_home_mn_[pid] != kNoOwner && pid_home_mn_[pid] != want)
            rehomePid(pid, want);
    }
}

void
Cluster::crashMn(std::uint32_t i)
{
    CBoard &board = *mns_.at(i);
    if (!board.alive())
        return;
    board.crash();
    net_.setNodeDown(board.nodeId(), true);
    // With the health plane on, a crash is PHYSICAL only: membership
    // reacts when the controller's lease on the board expires (real
    // detection latency), via onMnDeclaredDead().
    if (health_)
        return;
    if (sharded_) {
        // The dead MN's vnodes leave the ring; affected pids re-probe
        // rack-first among the survivors (consistent hashing keeps
        // every other placement untouched).
        shard_map_.removeMn(i);
        if (!shard_map_.empty())
            rehomeAllPids();
    }
}

void
Cluster::restartMn(std::uint32_t i)
{
    CBoard &board = *mns_.at(i);
    if (board.alive())
        return;
    board.restart();
    net_.setNodeDown(board.nodeId(), false);
    // With the health plane on, membership reacts when the board's
    // beacons reach the controller again (rejoin + epoch fence).
    if (health_)
        return;
    if (sharded_) {
        // Ring points are deterministic in (mn, replica), so re-adding
        // restores the pre-crash placement exactly and re-homed pids
        // move home again.
        shard_map_.addMn(i, rackOfMn(i));
        rehomeAllPids();
    }
}

void
Cluster::onMnDeclaredDead(std::uint32_t i)
{
    if (!sharded_)
        return;
    shard_map_.removeMn(i);
    if (!shard_map_.empty())
        rehomeAllPids();
}

void
Cluster::onMnRejoined(std::uint32_t i)
{
    if (!sharded_)
        return;
    shard_map_.addMn(i, rackOfMn(i));
    rehomeAllPids();
}

void
Cluster::crashCn(std::uint32_t i)
{
    CNode &cn = *cns_.at(i);
    if (!cn.alive())
        return;
    cn.crash();
    net_.setNodeDown(cn.nodeId(), true);
}

void
Cluster::restartCn(std::uint32_t i)
{
    CNode &cn = *cns_.at(i);
    if (cn.alive())
        return;
    cn.restart();
    net_.setNodeDown(cn.nodeId(), false);
}

void
Cluster::killRack(RackId rack)
{
    net_.setRackDown(rack, true);
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (rackOfMn(i) == rack)
            crashMn(i);
    }
}

void
Cluster::restoreRack(RackId rack)
{
    net_.setRackDown(rack, false);
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (rackOfMn(i) == rack)
            restartMn(i);
    }
}

std::uint32_t
Cluster::homeMnOf(ProcId pid) const
{
    clio_assert(sharded_, "home directory only exists in sharded mode");
    clio_assert(pid < pid_home_mn_.size() &&
                    pid_home_mn_[pid] != kNoOwner,
                "pid %u has no directory entry", pid);
    return pid_home_mn_[pid];
}

ClioClient &
Cluster::createClient(std::uint32_t cn_index)
{
    const ProcId pid = next_pid_++;
    std::uint32_t home;
    if (sharded_) {
        // Shard-map placement: a process' home MN is the ring owner
        // of its key, preferring an MN in the CN's own rack (§4.7
        // scaled out). The directory keeps 4 bytes per process.
        const RackId rack = net_.rackOf(cns_.at(cn_index)->nodeId());
        home = shard_map_.ownerNear(pid, 0, rack);
        if (pid >= pid_home_mn_.size()) {
            pid_home_mn_.resize(
                std::max<std::size_t>(pid + 1, pid_home_mn_.size() * 2),
                kNoOwner);
        }
        pid_home_mn_[pid] = home;
    } else {
        home = rr_next_mn_;
        rr_next_mn_ = (rr_next_mn_ + 1) % mns_.size();
    }
    auto client = std::make_unique<ClioClient>(
        cn(cn_index), pid, mns_[home]->nodeId());
    if (health_)
        client->setReplicaRegistry(health_.get());
    if (sharded_) {
        // Every allocation of the pid lands on its directory MN (a
        // migration rewrites routing via redirectRegion, not here).
        client->setAllocPlacement([this, pid](std::uint64_t) {
            return mns_[pid_home_mn_[pid]]->nodeId();
        });
    } else if (mns_.size() > 1) {
        // Place new allocations on the least-pressured MN (§4.7).
        client->setAllocPlacement([this](std::uint64_t) {
            return mns_[leastPressuredMn()]->nodeId();
        });
    }
    clients_.push_back(std::move(client));
    return *clients_.back();
}

ClioClient &
Cluster::createSharedClient(std::uint32_t cn_index,
                            const ClioClient &base)
{
    // Same global PID: the MN's page table and permissions already
    // cover this process; a second CN simply issues requests for it.
    auto client = std::make_unique<ClioClient>(
        cn(cn_index), base.pid(), base.mnFor(0));
    client->copyRoutingFrom(base);
    if (health_)
        client->setReplicaRegistry(health_.get());
    if (sharded_) {
        const ProcId pid = base.pid();
        client->setAllocPlacement([this, pid](std::uint64_t) {
            return mns_[pid_home_mn_[pid]]->nodeId();
        });
    } else if (mns_.size() > 1) {
        client->setAllocPlacement([this](std::uint64_t) {
            return mns_[leastPressuredMn()]->nodeId();
        });
    }
    clients_.push_back(std::move(client));
    return *clients_.back();
}

std::uint64_t &
Cluster::nextRegionSlot(ProcId pid)
{
    // App pids are sequential from 1 (flat vector); offload pids live
    // at 0xF0000000+ and overflow into the side map.
    constexpr ProcId kDirectLimit = 1u << 28;
    if (pid < kDirectLimit) {
        if (pid >= next_region_.size()) {
            next_region_.resize(
                std::max<std::size_t>(pid + 1, next_region_.size() * 2),
                0);
        }
        return next_region_[pid];
    }
    return next_region_overflow_[pid];
}

std::uint64_t
Cluster::nextRegionOf(ProcId pid) const
{
    constexpr ProcId kDirectLimit = 1u << 28;
    if (pid < kDirectLimit)
        return pid < next_region_.size() ? next_region_[pid] : 0;
    auto it = next_region_overflow_.find(pid);
    return it != next_region_overflow_.end() ? it->second : 0;
}

std::uint32_t
Cluster::regionOwnerIdx(ProcId pid, VirtAddr region_start) const
{
    auto it = region_owner_.find({pid, region_start});
    if (it != region_owner_.end())
        return it->second;
    if (!sharded_)
        return kNoOwner;
    // Prediction: any granted, unmigrated region belongs to the pid's
    // directory home MN.
    const std::uint64_t region = cfg_.dist.region_size;
    const std::uint64_t idx = region_start / region;
    if (idx == 0 || idx >= nextRegionOf(pid) ||
        region_start % region != 0)
        return kNoOwner;
    if (pid >= pid_home_mn_.size() || pid_home_mn_[pid] == kNoOwner)
        return kNoOwner;
    return pid_home_mn_[pid];
}

bool
Cluster::grantWindows(ProcId pid, std::uint32_t mn_idx,
                      std::uint64_t min_bytes)
{
    const std::uint64_t region = cfg_.dist.region_size;
    const std::uint64_t count =
        std::max<std::uint64_t>(1, (min_bytes + region - 1) / region);
    // Region index 0 is skipped so that VA 0 stays unused.
    std::uint64_t &next = nextRegionSlot(pid);
    if (next == 0)
        next = 1;
    const VirtAddr start = next * region;
    next += count;
    mns_[mn_idx]->vaAllocator().addWindow(pid, start, count * region);
    if (sharded_) {
        // O(1) controller state per process: the directory predicts
        // the owner; only off-home grants (replication targets,
        // offload RASes) need explicit entries.
        const std::uint32_t home = pid < pid_home_mn_.size()
                                       ? pid_home_mn_[pid]
                                       : kNoOwner;
        if (mn_idx != home) {
            for (std::uint64_t j = 0; j < count; j++)
                region_owner_[{pid, start + j * region}] = mn_idx;
        }
    } else {
        for (std::uint64_t j = 0; j < count; j++)
            region_owner_[{pid, start + j * region}] = mn_idx;
    }
    return true;
}

MigrationReport
Cluster::migrateRegion(ProcId pid, std::uint32_t src_mn,
                       VirtAddr region_start)
{
    MigrationReport report;
    report.src_mn = src_mn;
    if (mns_.size() < 2 || !mns_[src_mn]->alive())
        return report;

    const std::uint64_t region = cfg_.dist.region_size;
    if (region_start == 0) {
        // Pick the first region of this pid owned by src_mn.
        for (std::uint64_t idx = 1; idx < nextRegionOf(pid); idx++) {
            if (regionOwnerIdx(pid, idx * region) == src_mn) {
                region_start = idx * region;
                break;
            }
        }
        if (region_start == 0)
            return report; // nothing to migrate
    }
    if (regionOwnerIdx(pid, region_start) != src_mn)
        return report;

    // Choose the least pressured destination other than the source.
    std::uint32_t dst_mn = src_mn;
    double best = 2.0;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (i == src_mn || !mns_[i]->alive())
            continue;
        const double p = mns_[i]->memoryPressure();
        if (p < best) {
            best = p;
            dst_mn = i;
        }
    }
    if (dst_mn == src_mn)
        return report;

    CBoard &src = *mns_[src_mn];
    CBoard &dst = *mns_[dst_mn];
    const std::uint64_t page_size = cfg_.page_table.page_size;

    // Extract the allocator state for this region from the source.
    auto regions = src.vaAllocator().extractRegions(pid, region_start,
                                                    region);
    // All vpns the region covers that have live PTEs.
    std::vector<std::uint64_t> vpns;
    for (const auto &r : regions) {
        for (std::uint64_t off = 0; off < r.length; off += page_size)
            vpns.push_back((r.start + off) / page_size);
    }

    // Admission at the destination: overflow-free insert must hold and
    // enough physical frames must exist for the present pages.
    std::uint64_t present_pages = 0;
    for (auto vpn : vpns) {
        const Pte *pte = src.pageTable().lookup(pid, vpn);
        clio_assert(pte, "migrating unallocated vpn");
        if (pte->present)
            present_pages++;
    }
    if (!dst.pageTable().canInsert(pid, vpns) ||
        dst.frames().freeFrames() < present_pages) {
        // Roll back: put the regions back on the source.
        for (const auto &r : regions)
            src.vaAllocator().injectRegion(pid, r);
        return report;
    }

    // Move window + allocator regions.
    src.vaAllocator().removeWindow(pid, region_start, region);
    dst.vaAllocator().addWindow(pid, region_start, region);
    for (const auto &r : regions)
        dst.vaAllocator().injectRegion(pid, r);

    // Move PTEs + page contents.
    std::vector<std::uint8_t> page_buf(page_size);
    for (auto vpn : vpns) {
        Pte pte = src.pageTable().remove(pid, vpn);
        src.tlb().invalidate(pid, vpn);
        dst.pageTable().insert(pid, vpn, pte.perm);
        if (pte.present) {
            auto frame = dst.frames().allocate();
            clio_assert(frame, "admission check guaranteed frames");
            src.memory().read(pte.frame, page_buf.data(), page_size);
            dst.memory().write(*frame, page_buf.data(), page_size);
            dst.pageTable().bindFrame(pid, vpn, *frame);
            src.frames().free(pte.frame);
            report.bytes_moved += page_size;
            report.pages_moved++;
        }
    }

    // Controller bookkeeping + push routing updates to clients. In
    // sharded mode this creates the region's exception entry (it no
    // longer matches the directory prediction).
    region_owner_[{pid, region_start}] = dst_mn;
    for (auto &client : clients_) {
        if (client->pid() == pid)
            client->redirectRegion(region_start, region, dst.nodeId());
    }

    // Modeled duration: region data over the inter-MN link at ~2/3
    // efficiency (the paper measured 1 GB in 1.3 s at 10 Gbps).
    report.duration = static_cast<Tick>(
        static_cast<double>(report.bytes_moved) *
        static_cast<double>(ticksPerByte(cfg_.net.link_bandwidth_bps)) *
        1.5);
    report.ok = true;
    report.region_start = region_start;
    report.dst_mn = dst_mn;
    return report;
}

std::vector<MigrationReport>
Cluster::balancePressure()
{
    std::vector<MigrationReport> reports;
    const double limit = 1.0 - cfg_.dist.pressure_threshold;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        while (mns_[i]->memoryPressure() > limit) {
            // Migrate any region with data away from the hot MN. The
            // exception map alone is not enough in sharded mode (most
            // regions are only predicted), so walk each client's pid.
            MigrationReport done;
            for (const auto &client : clients_) {
                const ProcId pid = client->pid();
                const std::uint64_t region = cfg_.dist.region_size;
                for (std::uint64_t idx = 1; idx < nextRegionOf(pid);
                     idx++) {
                    if (regionOwnerIdx(pid, idx * region) != i)
                        continue;
                    done = migrateRegion(pid, i, idx * region);
                    if (done.ok && done.pages_moved > 0)
                        break;
                    done = MigrationReport{};
                }
                if (done.ok)
                    break;
            }
            if (!done.ok)
                break; // nothing movable
            reports.push_back(done);
        }
    }
    return reports;
}

} // namespace clio
