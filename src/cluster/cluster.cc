#include "cluster/cluster.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

Cluster::Cluster(const ModelConfig &cfg, std::uint32_t num_cns,
                 std::uint32_t num_mns, std::uint64_t mn_phys_bytes)
    : cfg_(cfg), eq_(cfg.event_queue_impl),
      net_(eq_, cfg.net, cfg.seed * 7919 + 1)
{
    clio_assert(num_cns > 0 && num_mns > 0, "cluster needs CNs and MNs");
    for (std::uint32_t i = 0; i < num_mns; i++) {
        mns_.push_back(
            std::make_unique<CBoard>(eq_, net_, cfg_, mn_phys_bytes));
        CBoard *board = mns_.back().get();
        board->setWindowedMode(num_mns > 1);
        board->setWindowRequestHook(
            [this, i](ProcId pid, std::uint64_t size) {
                return grantWindows(pid, i, size);
            });
    }
    for (std::uint32_t i = 0; i < num_cns; i++)
        cns_.push_back(std::make_unique<CNode>(eq_, net_, cfg_));
}

std::uint32_t
Cluster::mnIndexOf(NodeId node) const
{
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (mns_[i]->nodeId() == node)
            return i;
    }
    clio_panic("node %u is not an MN", node);
}

std::uint32_t
Cluster::leastPressuredMn() const
{
    std::uint32_t best = 0;
    double best_pressure = 2.0;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        const double p = mns_[i]->memoryPressure();
        if (p < best_pressure) {
            best_pressure = p;
            best = i;
        }
    }
    return best;
}

ClioClient &
Cluster::createClient(std::uint32_t cn_index)
{
    const ProcId pid = next_pid_++;
    const std::uint32_t home = rr_next_mn_;
    rr_next_mn_ = (rr_next_mn_ + 1) % mns_.size();
    auto client = std::make_unique<ClioClient>(
        cn(cn_index), pid, mns_[home]->nodeId());
    if (mns_.size() > 1) {
        // Place new allocations on the least-pressured MN (§4.7).
        ClioClient *raw = client.get();
        client->setAllocPlacement([this, raw](std::uint64_t) {
            (void)raw;
            return mns_[leastPressuredMn()]->nodeId();
        });
    }
    clients_.push_back(std::move(client));
    return *clients_.back();
}

ClioClient &
Cluster::createSharedClient(std::uint32_t cn_index,
                            const ClioClient &base)
{
    // Same global PID: the MN's page table and permissions already
    // cover this process; a second CN simply issues requests for it.
    auto client = std::make_unique<ClioClient>(
        cn(cn_index), base.pid(), base.mnFor(0));
    client->copyRoutingFrom(base);
    if (mns_.size() > 1) {
        client->setAllocPlacement([this](std::uint64_t) {
            return mns_[leastPressuredMn()]->nodeId();
        });
    }
    clients_.push_back(std::move(client));
    return *clients_.back();
}

bool
Cluster::grantWindows(ProcId pid, std::uint32_t mn_idx,
                      std::uint64_t min_bytes)
{
    const std::uint64_t region = cfg_.dist.region_size;
    const std::uint64_t count =
        std::max<std::uint64_t>(1, (min_bytes + region - 1) / region);
    // Region index 0 is skipped so that VA 0 stays unused.
    std::uint64_t &next = next_region_.try_emplace(pid, 1).first->second;
    const VirtAddr start = next * region;
    next += count;
    mns_[mn_idx]->vaAllocator().addWindow(pid, start, count * region);
    for (std::uint64_t j = 0; j < count; j++)
        region_owner_[{pid, start + j * region}] = mn_idx;
    return true;
}

MigrationReport
Cluster::migrateRegion(ProcId pid, std::uint32_t src_mn,
                       VirtAddr region_start)
{
    MigrationReport report;
    report.src_mn = src_mn;
    if (mns_.size() < 2)
        return report;

    const std::uint64_t region = cfg_.dist.region_size;
    if (region_start == 0) {
        // Pick the first region of this pid owned by src_mn.
        for (const auto &[key, owner] : region_owner_) {
            if (key.first == pid && owner == src_mn) {
                region_start = key.second;
                break;
            }
        }
        if (region_start == 0)
            return report; // nothing to migrate
    }
    auto owner_it = region_owner_.find({pid, region_start});
    if (owner_it == region_owner_.end() || owner_it->second != src_mn)
        return report;

    // Choose the least pressured destination other than the source.
    std::uint32_t dst_mn = src_mn;
    double best = 2.0;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        if (i == src_mn)
            continue;
        const double p = mns_[i]->memoryPressure();
        if (p < best) {
            best = p;
            dst_mn = i;
        }
    }
    if (dst_mn == src_mn)
        return report;

    CBoard &src = *mns_[src_mn];
    CBoard &dst = *mns_[dst_mn];
    const std::uint64_t page_size = cfg_.page_table.page_size;

    // Extract the allocator state for this region from the source.
    auto regions = src.vaAllocator().extractRegions(pid, region_start,
                                                    region);
    // All vpns the region covers that have live PTEs.
    std::vector<std::uint64_t> vpns;
    for (const auto &r : regions) {
        for (std::uint64_t off = 0; off < r.length; off += page_size)
            vpns.push_back((r.start + off) / page_size);
    }

    // Admission at the destination: overflow-free insert must hold and
    // enough physical frames must exist for the present pages.
    std::uint64_t present_pages = 0;
    for (auto vpn : vpns) {
        const Pte *pte = src.pageTable().lookup(pid, vpn);
        clio_assert(pte, "migrating unallocated vpn");
        if (pte->present)
            present_pages++;
    }
    if (!dst.pageTable().canInsert(pid, vpns) ||
        dst.frames().freeFrames() < present_pages) {
        // Roll back: put the regions back on the source.
        for (const auto &r : regions)
            src.vaAllocator().injectRegion(pid, r);
        return report;
    }

    // Move window + allocator regions.
    src.vaAllocator().removeWindow(pid, region_start, region);
    dst.vaAllocator().addWindow(pid, region_start, region);
    for (const auto &r : regions)
        dst.vaAllocator().injectRegion(pid, r);

    // Move PTEs + page contents.
    std::vector<std::uint8_t> page_buf(page_size);
    for (auto vpn : vpns) {
        Pte pte = src.pageTable().remove(pid, vpn);
        src.tlb().invalidate(pid, vpn);
        dst.pageTable().insert(pid, vpn, pte.perm);
        if (pte.present) {
            auto frame = dst.frames().allocate();
            clio_assert(frame, "admission check guaranteed frames");
            src.memory().read(pte.frame, page_buf.data(), page_size);
            dst.memory().write(*frame, page_buf.data(), page_size);
            dst.pageTable().bindFrame(pid, vpn, *frame);
            src.frames().free(pte.frame);
            report.bytes_moved += page_size;
            report.pages_moved++;
        }
    }

    // Controller bookkeeping + push routing updates to clients.
    owner_it->second = dst_mn;
    for (auto &client : clients_) {
        if (client->pid() == pid)
            client->redirectRegion(region_start, region, dst.nodeId());
    }

    // Modeled duration: region data over the inter-MN link at ~2/3
    // efficiency (the paper measured 1 GB in 1.3 s at 10 Gbps).
    report.duration = static_cast<Tick>(
        static_cast<double>(report.bytes_moved) *
        static_cast<double>(ticksPerByte(cfg_.net.link_bandwidth_bps)) *
        1.5);
    report.ok = true;
    report.region_start = region_start;
    report.dst_mn = dst_mn;
    return report;
}

std::vector<MigrationReport>
Cluster::balancePressure()
{
    std::vector<MigrationReport> reports;
    const double limit = 1.0 - cfg_.dist.pressure_threshold;
    for (std::uint32_t i = 0; i < mns_.size(); i++) {
        while (mns_[i]->memoryPressure() > limit) {
            // Migrate any region with data away from the hot MN.
            MigrationReport done;
            for (const auto &[key, owner] : region_owner_) {
                if (owner != i)
                    continue;
                done = migrateRegion(key.first, i, key.second);
                if (done.ok && done.pages_moved > 0)
                    break;
                done = MigrationReport{};
            }
            if (!done.ok)
                break; // nothing movable
            reports.push_back(done);
        }
    }
    return reports;
}

} // namespace clio
