/**
 * @file
 * Cluster wiring + the global controller for distributed MNs (§4.7).
 *
 * A Cluster owns the event queue, the network, N compute nodes and M
 * CBoards, and plays the paper's *global controller* role:
 *  - assigns coarse (1 GB) virtual regions of each process' RAS to
 *    MNs, so VAs from different MNs never collide (two-level
 *    distributed virtual memory management, inherited from LegoOS);
 *  - places new allocations on the least-pressured MN;
 *  - migrates rarely-needed regions away from MNs under memory
 *    pressure (instead of swapping), §4.7.
 */

#ifndef CLIO_CLUSTER_CLUSTER_HH
#define CLIO_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cboard/cboard.hh"
#include "clib/client.hh"
#include "clib/cnode.hh"
#include "cluster/shard_map.hh"
#include "net/network.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace clio {

class HealthPlane;

/**
 * Multi-rack cluster geometry. Each rack gets its own ToR (leaf)
 * switch; racks are joined through the spine (see net/network.hh).
 * With racks == 1 the fabric degenerates to the single-ToR testbed.
 */
struct ClusterSpec
{
    std::uint32_t racks = 1;
    std::uint32_t cns_per_rack = 1;
    std::uint32_t mns_per_rack = 1;
    /** Per-MN DRAM (0 = config default 2 GB). */
    std::uint64_t mn_phys_bytes = 0;
    /** Consistent-hash ring points per MN (shard map smoothness). */
    std::uint32_t shard_vnodes = 64;
};

/** Result of one region migration (bench/reporting). */
struct MigrationReport
{
    bool ok = false;
    VirtAddr region_start = 0;
    std::uint64_t bytes_moved = 0;
    std::uint32_t pages_moved = 0;
    Tick duration = 0;
    std::uint32_t src_mn = 0;
    std::uint32_t dst_mn = 0;
};

/** A simulated Clio deployment: CNs + MNs on one ToR switch. */
class Cluster
{
  public:
    /**
     * Single-rack cluster with the controller's original
     * least-pressured allocation placement.
     * @param mn_phys_bytes per-MN DRAM (0 = config default 2 GB).
     */
    Cluster(const ModelConfig &cfg, std::uint32_t num_cns,
            std::uint32_t num_mns, std::uint64_t mn_phys_bytes = 0);

    /**
     * Multi-rack sharded cluster: nodes are spread over spec.racks
     * racks, and processes are placed over MNs by the consistent-hash
     * shard map with rack-aware preference (a process' home MN is
     * usually in its CN's rack). Region ownership is predicted by the
     * ring + the per-pid directory; only migrations create explicit
     * per-region entries — per-process controller state stays O(1).
     */
    Cluster(const ModelConfig &cfg, const ClusterSpec &spec);

    ~Cluster();

    EventQueue &eventQueue() { return eq_; }
    Network &network() { return net_; }
    const ModelConfig &config() const { return cfg_; }

    std::uint32_t cnCount() const {
        return static_cast<std::uint32_t>(cns_.size());
    }
    std::uint32_t mnCount() const {
        return static_cast<std::uint32_t>(mns_.size());
    }
    CNode &cn(std::uint32_t i) { return *cns_.at(i); }
    CBoard &mn(std::uint32_t i) { return *mns_.at(i); }

    /** MN index of a network node id (panics for CN ids). */
    std::uint32_t mnIndexOf(NodeId node) const;

    /** Shard map in use (empty for single-rack legacy clusters). */
    const ShardMap &shardMap() const { return shard_map_; }

    /** Home MN index the directory assigned to `pid` (sharded mode). */
    std::uint32_t homeMnOf(ProcId pid) const;

    /**
     * Create an application process on CN `cn_index` with a fresh
     * global PID. Allocation placement defaults to round-robin over
     * MNs weighted away from pressured ones.
     */
    ClioClient &createClient(std::uint32_t cn_index);

    std::uint32_t clientCount() const {
        return static_cast<std::uint32_t>(clients_.size());
    }
    ClioClient &client(std::uint32_t i) { return *clients_.at(i); }

    /**
     * Attach another CN's thread/process to an EXISTING remote address
     * space (§3.1: "processes running on different CNs can share
     * memory in the same RAS"). The new client shares `base`'s global
     * PID, sees all its allocations, and must coordinate with Clio's
     * synchronization primitives (rlock / rfence).
     */
    ClioClient &createSharedClient(std::uint32_t cn_index,
                                   const ClioClient &base);

    /** Run the simulation until the queue drains. */
    void run() { eq_.runAll(); }

    /**
     * Migrate one coarse region of `pid` from MN `src` to the least
     * pressured other MN (§4.7). Chooses the first live region when
     * `region_start` is 0. Functional state flips atomically; the
     * report carries the modeled duration (1 GB ≈ 1.3 s at 10 Gbps).
     */
    MigrationReport migrateRegion(ProcId pid, std::uint32_t src_mn,
                                  VirtAddr region_start = 0);

    /**
     * Controller sweep: migrate regions away from any MN whose memory
     * pressure exceeds the configured threshold. @return migrations
     * performed.
     */
    std::vector<MigrationReport> balancePressure();

    /** @{ Failure domains (chaos engine). crashMn() kills the board
     * (volatile state lost) and marks its network port down; in
     * sharded mode the controller reacts like §4.7's global controller
     * would: the dead MN leaves the ring and every pid homed on it is
     * re-homed rack-first onto a surviving MN (already-granted regions
     * keep explicit owner entries, so only NEW allocations move).
     * restartMn() brings the board back EMPTY and re-adds its vnodes
     * to the ring — deterministic points mean placements are restored
     * exactly, so re-homed pids move home again. killRack()/
     * restoreRack() do the same for a whole rack plus its ToR. */
    bool mnAlive(std::uint32_t i) const { return mns_.at(i)->alive(); }
    RackId rackOfMn(std::uint32_t i) const;
    void crashMn(std::uint32_t i);
    void restartMn(std::uint32_t i);
    void killRack(RackId rack);
    void restoreRack(RackId rack);
    /** CN process crash/restart (chaos / health plane). A crashed CN
     * fails its outstanding requests, drops off the fabric, and stops
     * heartbeating; with the health plane on, its lease expiry
     * triggers lock + process GC on the MNs. */
    bool cnAlive(std::uint32_t i) const { return cns_.at(i)->alive(); }
    void crashCn(std::uint32_t i);
    void restartCn(std::uint32_t i);
    /** @} */

    /** @{ Health plane (ModelConfig::health.enabled). When enabled,
     * crashMn()/restartMn() only flip the physical state — membership
     * (ring removal, re-homing, epoch bumps, auto-resync) reacts to
     * the failure DETECTOR's verdicts, with real detection latency.
     * Heartbeats self-reschedule forever, so drive health-enabled
     * simulations with runUntilTime(), not run(). */
    HealthPlane *health() { return health_.get(); }
    bool healthEnabled() const { return health_ != nullptr; }
    /** Controller placement reaction to a detector-declared MN death /
     * rejoin (called by the health plane). */
    void onMnDeclaredDead(std::uint32_t i);
    void onMnRejoined(std::uint32_t i);
    /** @} */

  private:
    /** Controller: hand `min_bytes` of fresh contiguous regions of
     * `pid`'s RAS to MN index `mn_idx`. */
    bool grantWindows(ProcId pid, std::uint32_t mn_idx,
                      std::uint64_t min_bytes);

    /** Least-pressured LIVE MN index. */
    std::uint32_t leastPressuredMn() const;

    /** Move `pid`'s directory home to `new_home`, materializing the
     * directory's owner predictions for already-granted regions into
     * explicit exception entries first (they stay where they are). */
    void rehomePid(ProcId pid, std::uint32_t new_home);

    /** Recompute every client pid's preferred home from the current
     * ring and re-home those whose directory entry differs. */
    void rehomeAllPids();

    /** Wire up an MN's windowed-mode hooks (both constructors). */
    void attachMnHooks(std::uint32_t mn_idx, bool windowed);

    /** Per-pid next free coarse-region index slot (see next_region_). */
    std::uint64_t &nextRegionSlot(ProcId pid);
    /** Read-only peek of the same (0 = pid has no regions yet). */
    std::uint64_t nextRegionOf(ProcId pid) const;

    /** No MN owns the region (unknown pid/region). */
    static constexpr std::uint32_t kNoOwner = ~0u;
    /** Owning MN index of one granted region: the exception map, else
     * (sharded) the pid's directory home — kNoOwner when the region
     * was never granted. */
    std::uint32_t regionOwnerIdx(ProcId pid, VirtAddr region_start) const;

    ModelConfig cfg_;
    EventQueue eq_;
    Network net_;
    std::vector<std::unique_ptr<CBoard>> mns_;
    std::vector<std::unique_ptr<CNode>> cns_;
    std::vector<std::unique_ptr<ClioClient>> clients_;

    ProcId next_pid_ = 1;
    std::uint32_t rr_next_mn_ = 0;

    /** Controller state: per-pid next free coarse-region index, a
     * flat vector indexed by the (sequential) pid — 8 bytes per
     * process instead of a map node. 0 means unassigned; real indices
     * start at 1 so VA 0 stays unused. Offload pids (0xF0000000+)
     * overflow into the side map. */
    std::vector<std::uint64_t> next_region_;
    std::map<ProcId, std::uint64_t> next_region_overflow_;
    /** (pid, region_start) -> owning MN index. In sharded mode this
     * holds only EXCEPTIONS (migrated regions); everything else is
     * predicted by the per-pid directory, keeping region state O(1)
     * per process. Legacy mode records every grant here. */
    std::map<std::pair<ProcId, VirtAddr>, std::uint32_t> region_owner_;

    /** @{ Sharded (multi-rack) placement state. */
    bool sharded_ = false;
    ShardMap shard_map_;
    /** Directory: pid -> home MN index (4 bytes per process). */
    std::vector<std::uint32_t> pid_home_mn_;
    /** @} */

    /** Controller health plane (null unless cfg.health.enabled). */
    std::unique_ptr<HealthPlane> health_;
};

} // namespace clio

#endif // CLIO_CLUSTER_CLUSTER_HH
