#include "cluster/health.hh"

#include <algorithm>
#include <utility>

#include "proto/messages.hh"
#include "sim/logging.hh"

namespace clio {

const char *
to_string(NodeHealth h)
{
    switch (h) {
      case NodeHealth::kAlive:
        return "Alive";
      case NodeHealth::kSuspected:
        return "Suspected";
      case NodeHealth::kDead:
        return "Dead";
    }
    return "?";
}

const char *
to_string(HealthEvent::Kind k)
{
    switch (k) {
      case HealthEvent::Kind::kSuspected:
        return "Suspected";
      case HealthEvent::Kind::kDead:
        return "Dead";
      case HealthEvent::Kind::kRejoined:
        return "Rejoined";
      case HealthEvent::Kind::kSilentRestart:
        return "SilentRestart";
      case HealthEvent::Kind::kResyncStarted:
        return "ResyncStarted";
      case HealthEvent::Kind::kResyncCompleted:
        return "ResyncCompleted";
      case HealthEvent::Kind::kResyncFailed:
        return "ResyncFailed";
    }
    return "?";
}

// ---------------------------------------------------------------------
// FailureDetector
// ---------------------------------------------------------------------

FailureDetector::FailureDetector(Tick suspect_after, Tick dead_after)
    : suspect_after_(suspect_after), dead_after_(dead_after)
{
    clio_assert(suspect_after > 0 && dead_after > suspect_after,
                "lease deadlines must satisfy 0 < suspect < dead");
}

FailureDetector::Entry *
FailureDetector::find(NodeId node)
{
    for (Entry &e : entries_) {
        if (e.node == node)
            return &e;
    }
    return nullptr;
}

const FailureDetector::Entry *
FailureDetector::find(NodeId node) const
{
    for (const Entry &e : entries_) {
        if (e.node == node)
            return &e;
    }
    return nullptr;
}

void
FailureDetector::track(NodeId node, Tick now)
{
    clio_assert(find(node) == nullptr, "node %u tracked twice", node);
    Entry e;
    e.node = node;
    e.last_beacon = now;
    entries_.push_back(e);
}

BeaconOutcome
FailureDetector::onBeacon(NodeId node, std::uint64_t incarnation,
                          Tick now)
{
    Entry *e = find(node);
    if (e == nullptr) {
        track(node, now);
        entries_.back().incarnation = incarnation;
        return BeaconOutcome::kNone;
    }
    BeaconOutcome outcome = BeaconOutcome::kNone;
    if (incarnation > e->incarnation) {
        // The node rebooted since its last beacon. If its lease never
        // expired, the crash+restart fit inside one window — volatile
        // state is gone all the same, so the caller must run the full
        // death + rejoin protocol.
        outcome = e->state == NodeHealth::kDead ? BeaconOutcome::kRejoined
                                                : BeaconOutcome::kRestarted;
    } else if (e->state == NodeHealth::kDead) {
        outcome = BeaconOutcome::kRejoined;
    } else if (e->state == NodeHealth::kSuspected) {
        outcome = BeaconOutcome::kRecovered;
    }
    e->incarnation = incarnation;
    e->last_beacon = now;
    e->state = NodeHealth::kAlive;
    return outcome;
}

std::vector<HealthTransition>
FailureDetector::sweep(Tick now)
{
    std::vector<HealthTransition> out;
    for (Entry &e : entries_) {
        if (e.state == NodeHealth::kAlive &&
            now >= e.last_beacon + suspect_after_) {
            out.push_back(
                {e.node, NodeHealth::kAlive, NodeHealth::kSuspected});
            e.state = NodeHealth::kSuspected;
        }
        if (e.state == NodeHealth::kSuspected &&
            now >= e.last_beacon + dead_after_) {
            out.push_back(
                {e.node, NodeHealth::kSuspected, NodeHealth::kDead});
            e.state = NodeHealth::kDead;
        }
    }
    return out;
}

Tick
FailureDetector::nextDeadline() const
{
    Tick deadline = kNoDeadline;
    for (const Entry &e : entries_) {
        if (e.state == NodeHealth::kAlive)
            deadline = std::min(deadline, e.last_beacon + suspect_after_);
        else if (e.state == NodeHealth::kSuspected)
            deadline = std::min(deadline, e.last_beacon + dead_after_);
    }
    return deadline;
}

NodeHealth
FailureDetector::stateOf(NodeId node) const
{
    const Entry *e = find(node);
    clio_assert(e != nullptr, "node %u is not tracked", node);
    return e->state;
}

Tick
FailureDetector::lastBeacon(NodeId node) const
{
    const Entry *e = find(node);
    clio_assert(e != nullptr, "node %u is not tracked", node);
    return e->last_beacon;
}

// ---------------------------------------------------------------------
// HealthPlane
// ---------------------------------------------------------------------

HealthPlane::HealthPlane(Cluster &cluster)
    : cluster_(cluster), eq_(cluster.eventQueue()),
      net_(cluster.network()), cfg_(cluster.config().health),
      detector_(cfg_.suspect_after, cfg_.dead_after)
{
    clio_assert(cfg_.enabled, "health plane built while disabled");
    clio_assert(cfg_.heartbeat_period > 0, "heartbeat period must be >0");
    // The controller's NIC registers LAST: CN/MN node ids are exactly
    // what they would be without the health plane. It lives in rack 0;
    // chaos schedules that kill rack 0 take the controller with it
    // (tests keep the controller's rack out of the kill set).
    node_ = net_.addNode([this](Packet pkt) { onPacket(std::move(pkt)); });

    // Phase-stagger the beacons so they never synchronize into a burst
    // at the controller's link.
    const std::uint32_t total = cluster_.mnCount() + cluster_.cnCount();
    const Tick stagger =
        std::max<Tick>(1, cfg_.heartbeat_period / (total + 1));
    std::uint32_t slot = 0;
    for (std::uint32_t i = 0; i < cluster_.mnCount(); i++) {
        CBoard &mn = cluster_.mn(i);
        members_[mn.nodeId()] = {true, i};
        detector_.track(mn.nodeId(), eq_.now());
        mn.startHeartbeats(node_, cfg_.heartbeat_period, ++slot * stagger);
    }
    for (std::uint32_t i = 0; i < cluster_.cnCount(); i++) {
        CNode &cn = cluster_.cn(i);
        members_[cn.nodeId()] = {false, i};
        detector_.track(cn.nodeId(), eq_.now());
        cn.setEpoch(epoch_);
        // Fenced CNs re-fetch the epoch from the controller — a
        // control-plane RPC modeled as instantaneous.
        cn.setEpochRefresh([this] { return epoch_; });
        cn.startHeartbeats(node_, cfg_.heartbeat_period, ++slot * stagger);
    }
    scheduleCheck();
}

void
HealthPlane::onPacket(Packet pkt)
{
    if (pkt.type != MsgType::kHeartbeat)
        return; // stray traffic (e.g. a chaos-duplicated data packet)
    const auto &hb = static_cast<const HeartbeatMsg &>(*pkt.msg);
    stats_.beacons++;
    const BeaconOutcome outcome =
        detector_.onBeacon(hb.node, hb.incarnation, eq_.now());
    switch (outcome) {
      case BeaconOutcome::kNone:
      case BeaconOutcome::kRecovered:
        break;
      case BeaconOutcome::kRejoined:
        onNodeRejoined(hb.node);
        break;
      case BeaconOutcome::kRestarted:
        stats_.silent_restarts++;
        logEvent(HealthEvent::Kind::kSilentRestart, hb.node);
        onNodeDead(hb.node);
        onNodeRejoined(hb.node);
        break;
    }
    // The beacon moved its sender's lease deadline out.
    scheduleCheck();
}

void
HealthPlane::scheduleCheck()
{
    const Tick deadline = detector_.nextDeadline();
    if (deadline == FailureDetector::kNoDeadline)
        return; // nothing tracked is alive; beacons will re-arm us
    const std::uint64_t gen = ++check_gen_;
    const Tick when = std::max(deadline, eq_.now());
    eq_.schedule(when, [this, gen] {
        if (gen != check_gen_)
            return; // superseded by a later beacon/reschedule
        runSweep();
    });
}

void
HealthPlane::runSweep()
{
    for (const HealthTransition &t : detector_.sweep(eq_.now())) {
        if (t.to == NodeHealth::kSuspected) {
            stats_.suspects++;
            logEvent(HealthEvent::Kind::kSuspected, t.node);
        } else if (t.to == NodeHealth::kDead) {
            onNodeDead(t.node);
        }
    }
    scheduleCheck();
}

void
HealthPlane::onNodeDead(NodeId node)
{
    const auto it = members_.find(node);
    clio_assert(it != members_.end(), "death of unknown node %u", node);
    // Every membership change bumps the epoch, whether or not anything
    // downstream reacts: epochs order VIEWS, not repairs.
    epoch_++;
    stats_.deaths++;
    logEvent(HealthEvent::Kind::kDead, node);
    if (it->second.first) {
        stats_.mn_deaths++;
        onMnDead(it->second.second, node);
    } else {
        stats_.cn_deaths++;
        onCnDead(node);
    }
}

void
HealthPlane::onNodeRejoined(NodeId node)
{
    const auto it = members_.find(node);
    clio_assert(it != members_.end(), "rejoin of unknown node %u", node);
    epoch_++;
    stats_.rejoins++;
    logEvent(HealthEvent::Kind::kRejoined, node);
    if (it->second.first) {
        // Fence the rejoined board at the rejoin epoch: requests from
        // CNs still holding the pre-death view bounce (kEpochFenced)
        // instead of landing in the zombie's empty address space.
        CBoard &board = cluster_.mn(it->second.second);
        board.setEpochFence(epoch_);
        cluster_.onMnRejoined(it->second.second);
    }
    // A rejoined CN restarts with epoch 0 and refreshes on first fence.
}

void
HealthPlane::onMnDead(std::uint32_t mn_index, NodeId node)
{
    // Controller placement reacts first (ring removal + re-homing)...
    cluster_.onMnDeclaredDead(mn_index);
    // ...then replica repair: mark dead replicas and queue resyncs, in
    // region registration order.
    for (RegionEntry &e : entries_) {
        ReplicatedRegion *r = e.region;
        r->markMnDead(node);
        if (r->degraded() && !r->bothDead() && !r->resyncActive() &&
            !e.queued)
            queueResync(e);
    }
    pumpResyncQueue();
}

void
HealthPlane::onCnDead(NodeId node)
{
    // Lease-based GC of what the dead CN's processes left on MNs.
    // First the locks: surviving sharers must be able to acquire them.
    for (std::uint32_t i = 0; i < cluster_.mnCount(); i++) {
        CBoard &mn = cluster_.mn(i);
        if (mn.alive())
            stats_.locks_reclaimed += mn.releaseLocksOwnedBy(node);
    }
    // Then per-process state, but only for pids that lived EXCLUSIVELY
    // on the dead CN — a pid shared with a surviving CN (shared RAS)
    // is still in use.
    std::map<ProcId, bool> exclusive;
    for (std::uint32_t i = 0; i < cluster_.clientCount(); i++) {
        ClioClient &c = cluster_.client(i);
        const bool on_dead = c.cnode().nodeId() == node;
        auto [slot, inserted] = exclusive.emplace(c.pid(), on_dead);
        if (!inserted)
            slot->second = slot->second && on_dead;
    }
    for (const auto &[pid, exclusively_dead] : exclusive) {
        if (!exclusively_dead)
            continue;
        for (std::uint32_t i = 0; i < cluster_.mnCount(); i++) {
            CBoard &mn = cluster_.mn(i);
            if (mn.alive())
                mn.destroyProcess(pid);
        }
        stats_.procs_destroyed++;
    }
}

// ---------------------------------------------------------------------
// Replica registry + resync orchestration
// ---------------------------------------------------------------------

void
HealthPlane::addRegion(ReplicatedRegion *region)
{
    RegionEntry e;
    e.region = region;
    e.id = next_region_id_++;
    entries_.push_back(e);
}

void
HealthPlane::removeRegion(ReplicatedRegion *region)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->region != region)
            continue;
        const std::uint64_t id = it->id;
        entries_.erase(it);
        for (auto p = pending_.begin(); p != pending_.end();)
            p = (*p == id) ? pending_.erase(p) : std::next(p);
        return;
    }
}

HealthPlane::RegionEntry *
HealthPlane::findEntry(std::uint64_t id)
{
    for (RegionEntry &e : entries_) {
        if (e.id == id)
            return &e;
    }
    return nullptr;
}

void
HealthPlane::queueResync(RegionEntry &entry)
{
    entry.queued = true;
    pending_.push_back(entry.id);
}

void
HealthPlane::pumpResyncQueue()
{
    while (active_resyncs_ < cfg_.max_concurrent_resyncs &&
           !pending_.empty()) {
        const std::uint64_t id = pending_.front();
        pending_.pop_front();
        RegionEntry *e = findEntry(id);
        if (e == nullptr)
            continue; // region destroyed while queued
        ReplicatedRegion *r = e->region;
        // A region whose owning CN is down belongs to a dead process;
        // nothing to repair for it (a restarted process re-creates its
        // own regions).
        if (!r->degraded() || r->bothDead() || r->resyncActive() ||
            !r->client().cnode().alive()) {
            e->queued = false;
            continue;
        }
        const NodeId replacement = pickReplacement(*r, id);
        if (replacement == 0) {
            // No candidate MN right now (e.g. a whole rack is down):
            // retry after the backoff. The entry stays queued.
            deferRequeue(id);
            continue;
        }
        const bool started = r->beginResync(
            replacement,
            [this, id](bool success) { onResyncDone(id, success); });
        if (!started) {
            e->queued = false;
            continue;
        }
        active_resyncs_++;
        stats_.resyncs_started++;
        logEvent(HealthEvent::Kind::kResyncStarted, replacement, id);
    }
}

void
HealthPlane::onResyncDone(std::uint64_t region_id, bool success)
{
    clio_assert(active_resyncs_ > 0, "resync completion underflow");
    active_resyncs_--;
    RegionEntry *e = findEntry(region_id);
    if (success) {
        stats_.resyncs_completed++;
        logEvent(HealthEvent::Kind::kResyncCompleted, 0, region_id);
        if (e != nullptr)
            e->queued = false;
    } else {
        stats_.resyncs_failed++;
        logEvent(HealthEvent::Kind::kResyncFailed, 0, region_id);
        if (e != nullptr && e->region->degraded() &&
            !e->region->bothDead())
            deferRequeue(region_id); // still repairable: keep it queued
        else if (e != nullptr)
            e->queued = false;
    }
    pumpResyncQueue();
}

void
HealthPlane::deferRequeue(std::uint64_t region_id)
{
    stats_.resyncs_deferred++;
    eq_.scheduleAfter(cfg_.reheal_backoff, [this, region_id] {
        RegionEntry *e = findEntry(region_id);
        if (e == nullptr || !e->queued)
            return; // destroyed or repaired meanwhile
        pending_.push_back(region_id);
        pumpResyncQueue();
    });
}

NodeId
HealthPlane::pickReplacement(const ReplicatedRegion &region,
                             std::uint64_t region_id) const
{
    const bool primary_dead = !region.primaryAlive();
    const NodeId survivor =
        primary_dead ? region.backupMn() : region.primaryMn();
    const NodeId dead = primary_dead ? region.primaryMn()
                                     : region.backupMn();
    const RackId rack = net_.rackOf(dead);
    // Prefer the shard ring: rack-aware, deterministic, and salted by
    // the stable region id so concurrent repairs spread over MNs.
    const ShardMap &ring = cluster_.shardMap();
    if (!ring.empty()) {
        for (std::uint32_t probe = 0; probe < 8; probe++) {
            const std::uint32_t idx = ring.ownerNear(
                static_cast<ProcId>(region_id + probe), 0, rack);
            CBoard &mn = cluster_.mn(idx);
            if (mn.alive() && mn.nodeId() != survivor)
                return mn.nodeId();
        }
    }
    // Fallback (legacy clusters / exhausted probes): deterministic
    // index scan, same-rack first.
    for (int pass = 0; pass < 2; pass++) {
        for (std::uint32_t i = 0; i < cluster_.mnCount(); i++) {
            CBoard &mn = cluster_.mn(i);
            if (!mn.alive() || mn.nodeId() == survivor)
                continue;
            if (pass == 0 && net_.rackOf(mn.nodeId()) != rack)
                continue;
            return mn.nodeId();
        }
    }
    return 0;
}

void
HealthPlane::logEvent(HealthEvent::Kind kind, NodeId node,
                      std::uint64_t region_id)
{
    HealthEvent e;
    e.kind = kind;
    e.at = eq_.now();
    e.node = node;
    e.region_id = region_id;
    events_.push_back(e);
}

} // namespace clio
