/**
 * @file
 * Consistent-hash shard map: which MN serves a (pid, region) key.
 *
 * The global controller (§4.7) must place the regions of millions of
 * processes over many MNs without keeping per-process routing state
 * proportional to the region count. A consistent-hash ring does this
 * with O(vnodes * MNs) state total:
 *  - every MN contributes `vnodes_per_mn` points on a 64-bit ring;
 *  - a key (pid, region index) is hashed onto the ring and owned by
 *    the next point clockwise;
 *  - adding/removing an MN only remaps the keys adjacent to its
 *    points (~1/M of the keyspace), so a grown cluster keeps almost
 *    every existing placement — pinned by the stability unit tests.
 *
 * Rack awareness: ownerNear() walks the first few distinct MNs
 * clockwise from the key and prefers one in the caller's rack; when
 * none of them is, it falls back to the caller rack's own sub-ring
 * (the same ring restricted to that rack's MNs), so a process gets
 * rack-local memory whenever its rack hosts any MN at all, while keys
 * still spread uniformly and deterministically (no RNG, no global
 * state). Only a rack with no MNs left spills to remote ones.
 *
 * All hashing is an explicit splitmix64 — std::hash is implementation
 * defined and would break cross-platform determinism of placements.
 */

#ifndef CLIO_CLUSTER_SHARD_MAP_HH
#define CLIO_CLUSTER_SHARD_MAP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** Placement of (pid, region) keys over MN indices. */
class ShardMap
{
  public:
    /** @param vnodes_per_mn ring points per MN; more points smooth
     * the load split at the cost of a larger (still tiny) ring. */
    explicit ShardMap(std::uint32_t vnodes_per_mn = 64);

    /** Add MN `mn_idx` (in rack `rack`) to the ring. */
    void addMn(std::uint32_t mn_idx, RackId rack);

    /** Remove an MN; keys it owned fall to their next ring successor. */
    void removeMn(std::uint32_t mn_idx);

    bool empty() const { return members_.empty(); }
    std::uint32_t mnCount() const
    {
        return static_cast<std::uint32_t>(members_.size());
    }

    /** Owning MN of a key, ignoring racks (pure ring successor). */
    std::uint32_t ownerOf(ProcId pid, std::uint64_t region_index) const;

    /**
     * Rack-aware owner: among the first `probe` distinct MNs clockwise
     * from the key, pick the first in `preferred_rack`; when none is,
     * fall back to the key's successor on `preferred_rack`'s sub-ring
     * (rack-local whenever the rack has MNs), and only to the plain
     * ring successor for a rack with no MNs. Deterministic for a given
     * ring + key + rack.
     */
    std::uint32_t ownerNear(ProcId pid, std::uint64_t region_index,
                            RackId preferred_rack,
                            std::uint32_t probe = 4) const;

    /** Rack an MN registered with. */
    RackId rackOf(std::uint32_t mn_idx) const;

  private:
    struct VNode
    {
        std::uint64_t point;
        std::uint32_t mn;
    };

    static std::uint64_t keyHash(ProcId pid, std::uint64_t region_index);

    /** Rebuild a rack's sub-ring from `ring_` (add/remove paths). */
    void rebuildRackRing(RackId rack);

    /** Ring points sorted by `point`. */
    std::vector<VNode> ring_;
    /** Per-rack restriction of `ring_` (rack-local fallback lookups). */
    std::map<RackId, std::vector<VNode>> rack_rings_;
    /** (mn_idx, rack) membership list. */
    std::vector<std::pair<std::uint32_t, RackId>> members_;
    std::uint32_t vnodes_;
};

} // namespace clio

#endif // CLIO_CLUSTER_SHARD_MAP_HH
