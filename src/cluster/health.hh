/**
 * @file
 * Controller-resident health plane: lease-based failure detection,
 * epoch-fenced membership, and automatic re-replication.
 *
 * The paper keeps MNs transportless and pushes all policy to the
 * global controller (§4.7); this layer gives that controller a
 * liveness view. Every CN and CBoard emits periodic heartbeat packets
 * through the simulated fabric — rack kills, congestion, and chaos
 * fault windows genuinely delay or drop them — and the controller runs
 * a lease protocol over their arrival times:
 *
 *   alive --(no beacon for suspect_after)--> suspected
 *   suspected --(no beacon for dead_after)--> dead
 *   suspected --(beacon)--> alive            (late but live)
 *   dead --(beacon)--> alive + REJOIN        (restart or partition heal)
 *
 * A beacon whose incarnation (restart count) jumped is a crash+restart
 * that fit inside one lease window: the controller treats it as a
 * death immediately followed by a rejoin even though no deadline
 * expired — the node's volatile state is gone either way.
 *
 * Membership changes bump a monotonically increasing epoch. CNs stamp
 * every request attempt with the epoch they last observed; a rejoined
 * MN gets an epoch fence equal to the rejoin epoch, so requests from
 * CNs that have not yet learned of the membership change bounce with
 * kEpochFenced instead of silently landing in a zombie's empty address
 * space (split-brain prevention). Fenced CNs refresh their epoch from
 * the controller (a control-plane RPC, modeled as instantaneous) and
 * retry.
 *
 * On declaring an MN dead the controller walks its replica registry
 * (populated by ReplicatedRegion construction), marks affected
 * replicas dead, and drives automatic re-replication: a rack-aware
 * replacement is chosen via the shard ring, and the surviving copy is
 * streamed over as ordinary simulator events (ReplicatedRegion::
 * beginResync), at most HealthConfig::max_concurrent_resyncs at a
 * time. Reads stay on the survivor during the copy (degraded mode);
 * the region counts as fully redundant only when the last chunk
 * lands. On declaring a CN dead the controller GCs what the dead
 * processes left behind on MNs: force-releases their locks and tears
 * down per-process state for pids that lived exclusively on that CN.
 *
 * Everything here is deterministic: detector entries are kept in
 * registration order, the resync queue is FIFO with ids (never
 * pointers) as keys, and replacement probing is salted by the stable
 * region id.
 */

#ifndef CLIO_CLUSTER_HEALTH_HH
#define CLIO_CLUSTER_HEALTH_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "clib/replication.hh"
#include "cluster/cluster.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace clio {

/** Lease state of one tracked node. */
enum class NodeHealth : std::uint8_t { kAlive, kSuspected, kDead };

const char *to_string(NodeHealth h);

/** What a beacon arrival meant for its sender's lease. */
enum class BeaconOutcome : std::uint8_t
{
    kNone,      ///< routine beacon from an alive node
    kRecovered, ///< suspected -> alive (late but within the lease)
    kRejoined,  ///< dead -> alive (restart, or a partition healed)
    /** Incarnation jumped while the lease never expired: the node
     * crashed and rebooted inside one window. Death + rejoin. */
    kRestarted,
};

/** One detector state transition (sweep output / test introspection). */
struct HealthTransition
{
    NodeId node = 0;
    NodeHealth from = NodeHealth::kAlive;
    NodeHealth to = NodeHealth::kAlive;
};

/**
 * The lease-based failure detector: a pure, clock-driven state
 * machine (no I/O, no RNG) so it can be property-tested standalone.
 * Entries are stored in registration order — iteration order, and
 * therefore transition order within one sweep, is deterministic.
 */
class FailureDetector
{
  public:
    /** No pending deadline (every tracked node is dead). */
    static constexpr Tick kNoDeadline = ~Tick{0};

    FailureDetector(Tick suspect_after, Tick dead_after);

    /** Start tracking `node`, alive, lease anchored at `now`. */
    void track(NodeId node, Tick now);

    /** Record a beacon from `node` arriving at `now`. Untracked nodes
     * are tracked implicitly. */
    BeaconOutcome onBeacon(NodeId node, std::uint64_t incarnation,
                           Tick now);

    /**
     * Apply every lease expiry up to and including `now`, in
     * registration order. A node silent past both deadlines yields two
     * transitions (alive->suspected, suspected->dead) in one sweep.
     * Deadlines are inclusive: a node whose last beacon landed at t is
     * suspected exactly at t + suspect_after and dead exactly at
     * t + dead_after.
     */
    std::vector<HealthTransition> sweep(Tick now);

    /** Earliest future tick at which some node's state would change
     * were no more beacons to arrive (kNoDeadline when none). */
    Tick nextDeadline() const;

    NodeHealth stateOf(NodeId node) const;
    Tick lastBeacon(NodeId node) const;
    std::size_t tracked() const { return entries_.size(); }

  private:
    struct Entry
    {
        NodeId node = 0;
        Tick last_beacon = 0;
        std::uint64_t incarnation = 0;
        NodeHealth state = NodeHealth::kAlive;
    };

    Entry *find(NodeId node);
    const Entry *find(NodeId node) const;

    Tick suspect_after_;
    Tick dead_after_;
    /** Registration order (deterministic sweeps). */
    std::vector<Entry> entries_;
};

/** Counters for the whole plane. */
struct HealthStats
{
    std::uint64_t beacons = 0;
    std::uint64_t suspects = 0;
    std::uint64_t deaths = 0;
    std::uint64_t mn_deaths = 0;
    std::uint64_t cn_deaths = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t silent_restarts = 0;
    std::uint64_t locks_reclaimed = 0;
    std::uint64_t procs_destroyed = 0;
    std::uint64_t resyncs_started = 0;
    std::uint64_t resyncs_completed = 0;
    std::uint64_t resyncs_failed = 0;
    /** Resyncs pushed to the backoff path (no candidate MN yet, or a
     * failed attempt awaiting retry). */
    std::uint64_t resyncs_deferred = 0;
};

/** One timestamped plane event (bench MTTR extraction / tests). */
struct HealthEvent
{
    enum class Kind : std::uint8_t
    {
        kSuspected,
        kDead,
        kRejoined,
        kSilentRestart,
        kResyncStarted,
        kResyncCompleted,
        kResyncFailed,
    };
    Kind kind = Kind::kSuspected;
    Tick at = 0;
    /** Node the event concerns (0 for pure resync events). */
    NodeId node = 0;
    /** Region the event concerns (0 for node events). */
    std::uint64_t region_id = 0;
};

const char *to_string(HealthEvent::Kind k);

/**
 * The controller health plane. Constructed by Cluster (at the end of
 * its constructor, so the controller's network node id comes after
 * every CN and MN and existing node-id assignment is untouched) when
 * ModelConfig::health.enabled is set.
 *
 * Note: heartbeats self-reschedule forever, so a health-enabled
 * simulation never drains — drive it with runUntilTime()/runUntil(),
 * not Cluster::run().
 */
class HealthPlane : public ReplicaRegistry
{
  public:
    explicit HealthPlane(Cluster &cluster);

    /** Current membership epoch (starts at 1; every death, rejoin, and
     * silent restart bumps it). */
    std::uint64_t epoch() const { return epoch_; }

    /** Controller's network node id (heartbeat destination). */
    NodeId nodeId() const { return node_; }

    const FailureDetector &detector() const { return detector_; }
    const HealthStats &stats() const { return stats_; }
    const std::vector<HealthEvent> &events() const { return events_; }
    std::uint32_t activeResyncs() const { return active_resyncs_; }
    std::size_t regionCount() const { return entries_.size(); }

    /** @{ ReplicaRegistry (called by ReplicatedRegion). */
    void addRegion(ReplicatedRegion *region) override;
    void removeRegion(ReplicatedRegion *region) override;
    /** @} */

  private:
    struct RegionEntry
    {
        ReplicatedRegion *region = nullptr;
        /** Stable sequential id: queue key and replacement-probe salt
         * (pointers would leak allocator nondeterminism). */
        std::uint64_t id = 0;
        /** In pending_ or waiting on a backoff requeue. */
        bool queued = false;
    };

    void onPacket(Packet pkt);
    /** Run detector expiries due now and act on the transitions. */
    void runSweep();
    /** (Re)arm the deadline-driven sweep event. */
    void scheduleCheck();

    void onNodeDead(NodeId node);
    void onNodeRejoined(NodeId node);
    void onMnDead(std::uint32_t mn_index, NodeId node);
    void onCnDead(NodeId node);

    RegionEntry *findEntry(std::uint64_t id);
    void queueResync(RegionEntry &entry);
    /** Start queued resyncs while slots remain under the cap. */
    void pumpResyncQueue();
    void onResyncDone(std::uint64_t region_id, bool success);
    /** Put a still-queued region back on pending_ after the backoff. */
    void deferRequeue(std::uint64_t region_id);
    /** Rack-aware replacement MN for a degraded region (0 = none). */
    NodeId pickReplacement(const ReplicatedRegion &region,
                           std::uint64_t region_id) const;

    void logEvent(HealthEvent::Kind kind, NodeId node,
                  std::uint64_t region_id = 0);

    Cluster &cluster_;
    EventQueue &eq_;
    Network &net_;
    HealthConfig cfg_;
    NodeId node_ = 0;
    FailureDetector detector_;
    std::uint64_t epoch_ = 1;

    /** node id -> (is_mn, index into the cluster's mns_/cns_). */
    std::map<NodeId, std::pair<bool, std::uint32_t>> members_;

    /** Registration order; ids are never reused. */
    std::vector<RegionEntry> entries_;
    std::uint64_t next_region_id_ = 1;
    /** FIFO of region ids awaiting a resync slot. */
    std::deque<std::uint64_t> pending_;
    std::uint32_t active_resyncs_ = 0;

    /** Generation guard: every scheduleCheck() supersedes older
     * pending sweep events. */
    std::uint64_t check_gen_ = 0;

    HealthStats stats_;
    std::vector<HealthEvent> events_;
};

} // namespace clio

#endif // CLIO_CLUSTER_HEALTH_HH
