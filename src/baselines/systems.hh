/**
 * @file
 * Latency-profile models of the paper's remaining comparison systems
 * (§7.1, Figs. 10/11/18/21):
 *
 *  - LegoOS: a software memory node — RDMA-style networking plus a
 *    thread-pool + software hash-table virtual memory system. ~2x
 *    Clio's small-request latency; data path peaks at 77 Gbps.
 *  - Clover: passive disaggregated memory (PDM). No MN processing:
 *    reads are one RTT, writes need >= 2 RTTs to provide consistency
 *    without MN-side logic, and CNs carry extra management work.
 *  - HERD: an RPC-over-RDMA key-value system running on a server CPU
 *    at the MN.
 *  - HERD-BF: HERD on a BlueField SmartNIC, dominated by the crossing
 *    between the ConnectX NIC chip and the ARM chip.
 *
 * These are timing models (they return latencies); the comparison
 * benches drive them with the same workloads as Clio.
 */

#ifndef CLIO_BASELINES_SYSTEMS_HH
#define CLIO_BASELINES_SYSTEMS_HH

#include "baselines/rdma.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {

/** LegoOS-style software MN (§2.2, §7.1). */
class LegoOsModel
{
  public:
    LegoOsModel(const ModelConfig &cfg, std::uint64_t seed = 11);

    /** One remote read of `len` bytes (TLB-warm steady state). */
    Tick readLatency(std::uint64_t len);
    /** One remote write of `len` bytes. */
    Tick writeLatency(std::uint64_t len);
    /** Peak data-path throughput (the paper measured 77 Gbps). */
    double peakGbps() const;

  private:
    Tick access(std::uint64_t len, bool is_write);

    ModelConfig cfg_;
    Rng rng_;
};

/** Clover-style passive disaggregated memory (§2.3, §7.1). */
class CloverModel
{
  public:
    CloverModel(const ModelConfig &cfg, std::uint64_t seed = 13);

    /** Read: one RTT to raw memory (occasionally chases a version
     * pointer, costing another RTT). */
    Tick readLatency(std::uint64_t len);
    /** Write: >= 2 RTTs (out-of-place write + metadata update). */
    Tick writeLatency(std::uint64_t len);

  private:
    ModelConfig cfg_;
    Rng rng_;
};

/** HERD-style RPC key-value node, on a CPU or a BlueField. */
class HerdModel
{
  public:
    /** @param bluefield run the RPC handlers on a BlueField SmartNIC
     *  (adds the NIC-chip <-> ARM-chip crossing both ways). */
    HerdModel(const ModelConfig &cfg, bool bluefield,
              std::uint64_t seed = 17);

    /** RPC get returning `len` bytes. */
    Tick getLatency(std::uint64_t len);
    /** RPC put of `len` bytes. */
    Tick putLatency(std::uint64_t len);

    bool bluefield() const { return bluefield_; }

  private:
    Tick rpc(std::uint64_t request_bytes, std::uint64_t response_bytes);

    ModelConfig cfg_;
    bool bluefield_;
    Rng rng_;
};

} // namespace clio

#endif // CLIO_BASELINES_SYSTEMS_HH
