/**
 * @file
 * RDMA baseline: a server-based memory node behind an RNIC (§2.2).
 *
 * This models the mechanisms the paper blames for RDMA's scalability
 * and tail problems, so the comparison benches reproduce Figs. 4-6,
 * 10-12 and 16-17 from the same causes:
 *  - per-connection QP contexts cached on-NIC; more active QPs than
 *    the cache holds -> host PCIe fetches on the data path (Fig. 4);
 *  - MTT/MPT (PTE and MR metadata) caches with the same behaviour,
 *    and a hard registration limit of 2^18 MRs (Fig. 5);
 *  - slow ODP page faults through the host OS: 16.8 ms (Fig. 6);
 *  - MR registration/deregistration costs that grow with size and
 *    dominate when applications need many protected regions
 *    (Fig. 12, Fig. 16);
 *  - a heavier latency tail than Clio's deterministic pipeline
 *    (host DRAM jitter + occasional multi-10s-of-us stalls, Fig. 7).
 *
 * The model is functional: registered memory carries real bytes, so
 * application-level comparisons (image compression, radix tree) read
 * back exactly what they wrote.
 */

#ifndef CLIO_BASELINES_RDMA_HH
#define CLIO_BASELINES_RDMA_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/physical_memory.hh"
#include "net/packet.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {

/** Identifier types for the RDMA model. */
using QpId = std::uint32_t;
using MrId = std::uint32_t;

/** Outcome of one RDMA verb. */
struct RdmaVerbResult
{
    bool ok = false;
    /** End-to-end latency of the verb. */
    Tick latency = 0;
    /** Did the RNIC take a QP/MR/PTE cache miss or a page fault? */
    bool qp_miss = false;
    bool mr_miss = false;
    bool pte_miss = false;
    bool page_fault = false;
};

/** LRU id cache standing in for on-NIC QP/MPT/MTT caches. */
class NicCache
{
  public:
    explicit NicCache(std::uint32_t capacity);

    /** Touch an id: true = hit. Miss inserts it (evicting LRU). */
    bool touch(std::uint64_t id);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::uint32_t capacity_;
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** One RDMA-reachable memory node (host server + RNIC). */
class RdmaMemoryNode
{
  public:
    RdmaMemoryNode(const ModelConfig &cfg, std::uint64_t phys_bytes,
                   std::uint64_t seed = 1);

    /** Create a reliable connection (queue pair). */
    QpId createQp();

    /**
     * Register a memory region of `size` bytes.
     * @param odp on-demand paging: cheap registration, page faults on
     *        first access (vs pinned: expensive registration, no
     *        faults).
     * @param[out] latency registration cost.
     * @return nullopt when out of memory or beyond the 2^18 MR limit.
     */
    std::optional<MrId> registerMr(std::uint64_t size, bool odp,
                                   Tick &latency);

    /** Deregister; returns the cost. */
    Tick deregisterMr(MrId mr);

    /** One-sided READ of [offset, offset+len) within an MR. */
    RdmaVerbResult read(QpId qp, MrId mr, std::uint64_t offset, void *dst,
                        std::uint64_t len);

    /** One-sided WRITE. */
    RdmaVerbResult write(QpId qp, MrId mr, std::uint64_t offset,
                         const void *src, std::uint64_t len);

    std::uint64_t mrCount() const { return mrs_.size(); }
    const RdmaConfig &config() const { return cfg_.rdma; }

    /** Host page size used for MTT entries (4 KB huge pages are NOT
     * the default here; the paper contrasts against standard pages,
     * with hugepage pinning as the common workaround). */
    static constexpr std::uint64_t kHostPage = 4 * KiB;

  private:
    struct Mr
    {
        std::uint64_t base = 0; ///< pinned base in host memory
        std::uint64_t size = 0;
        bool odp = false;
        /** ODP: which pages have been faulted in. */
        std::unordered_set<std::uint64_t> present;
    };

    /** Common verb path: connection + MR + per-page MTT + DRAM. */
    RdmaVerbResult verb(QpId qp, MrId mr, std::uint64_t offset,
                        std::uint64_t len, bool is_write);

    ModelConfig cfg_;
    Rng rng_;
    PhysicalMemory memory_;
    std::uint64_t bump_ = 0; ///< pinned-region bump allocator
    std::uint32_t next_qp_ = 1;
    std::uint32_t next_mr_ = 1;
    std::unordered_map<MrId, Mr> mrs_;

    NicCache qp_cache_;
    NicCache mr_cache_;
    NicCache pte_cache_;

    /** RNIC wire/processing occupancy for throughput effects. */
    Tick nic_free_ = 0;
};

/** Round-trip wire time helper shared by all baseline models:
 * serialization of both directions + propagation + switch, matching
 * the Network model's fixed costs (no queueing). */
Tick wireRoundTrip(const NetConfig &net, std::uint64_t request_bytes,
                   std::uint64_t response_bytes);

} // namespace clio

#endif // CLIO_BASELINES_RDMA_HH
