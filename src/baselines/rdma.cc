#include "baselines/rdma.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

Tick
wireRoundTrip(const NetConfig &net, std::uint64_t request_bytes,
              std::uint64_t response_bytes)
{
    const Tick per_byte = ticksPerByte(net.link_bandwidth_bps);
    const Tick one_way_fixed =
        2 * net.link_propagation + net.switch_latency;
    return 2 * one_way_fixed +
           static_cast<Tick>(request_bytes + kPacketHeaderBytes) *
               per_byte +
           static_cast<Tick>(response_bytes + kPacketHeaderBytes) *
               per_byte;
}

NicCache::NicCache(std::uint32_t capacity) : capacity_(capacity)
{
    clio_assert(capacity > 0, "NIC cache capacity must be nonzero");
}

bool
NicCache::touch(std::uint64_t id)
{
    auto it = map_.find(id);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_++;
        return true;
    }
    misses_++;
    if (map_.size() >= capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(id);
    map_[id] = lru_.begin();
    return false;
}

RdmaMemoryNode::RdmaMemoryNode(const ModelConfig &cfg,
                               std::uint64_t phys_bytes,
                               std::uint64_t seed)
    : cfg_(cfg), rng_(seed), memory_(phys_bytes),
      qp_cache_(cfg.rdma.qp_cache_entries),
      mr_cache_(cfg.rdma.mr_cache_entries),
      pte_cache_(cfg.rdma.pte_cache_entries)
{
}

QpId
RdmaMemoryNode::createQp()
{
    return next_qp_++;
}

std::optional<MrId>
RdmaMemoryNode::registerMr(std::uint64_t size, bool odp, Tick &latency)
{
    if (mrs_.size() >= cfg_.rdma.max_mrs) {
        // Fig. 5: "RDMA fails to run beyond 2^18 MRs".
        latency = 0;
        return std::nullopt;
    }
    const std::uint64_t pages = (size + kHostPage - 1) / kHostPage;
    if (!odp) {
        if (bump_ + pages * kHostPage > memory_.capacity()) {
            latency = 0;
            return std::nullopt; // pinned memory exhausted
        }
    }
    Mr mr;
    mr.size = size;
    mr.odp = odp;
    if (odp) {
        latency = cfg_.rdma.mr_register_odp;
        mr.base = bump_; // reserved lazily; model keeps it simple
        bump_ += pages * kHostPage;
    } else {
        latency = cfg_.rdma.mr_register_base +
                  cfg_.rdma.mr_register_per_page * pages;
        mr.base = bump_;
        bump_ += pages * kHostPage;
        // Pinned pages are present from the start.
    }
    const MrId id = next_mr_++;
    mrs_.emplace(id, std::move(mr));
    return id;
}

Tick
RdmaMemoryNode::deregisterMr(MrId mr_id)
{
    auto it = mrs_.find(mr_id);
    clio_assert(it != mrs_.end(), "deregistering unknown MR");
    const std::uint64_t pages =
        (it->second.size + kHostPage - 1) / kHostPage;
    const bool odp = it->second.odp;
    mrs_.erase(it);
    if (odp)
        return cfg_.rdma.mr_deregister_base / 2;
    return cfg_.rdma.mr_deregister_base +
           cfg_.rdma.mr_deregister_per_page * pages;
}

RdmaVerbResult
RdmaMemoryNode::verb(QpId qp, MrId mr_id, std::uint64_t offset,
                     std::uint64_t len, bool is_write)
{
    RdmaVerbResult res;
    auto it = mrs_.find(mr_id);
    if (it == mrs_.end() || offset + len > it->second.size)
        return res; // not ok
    Mr &mr = it->second;

    const RdmaConfig &rc = cfg_.rdma;
    // Requester-side post + wire + responder RNIC processing.
    Tick t = 100 * kNanosecond; // post WQE / doorbell
    t += wireRoundTrip(cfg_.net, is_write ? len : 16,
                       is_write ? 16 : len);
    t += 2 * rc.nic_processing;

    // Connection context lookup: a QPC miss drags in the connection
    // context, WQE state, and protection info — several dependent
    // PCIe round trips (why Fig. 4's degradation is steep).
    if (!qp_cache_.touch(qp)) {
        res.qp_miss = true;
        t += 3 * rc.pcie_dram_access;
    }
    // MR metadata (MPT) lookup.
    if (!mr_cache_.touch(0x100000000ull + mr_id)) {
        res.mr_miss = true;
        t += rc.pcie_dram_access;
    }
    // MTT (page translation) lookups, one per covered host page.
    const std::uint64_t first_page = (mr.base + offset) / kHostPage;
    const std::uint64_t last_page =
        (mr.base + offset + len - 1) / kHostPage;
    for (std::uint64_t p = first_page; p <= last_page; p++) {
        if (res.mr_miss) {
            // Under MPT thrash the MR context keeps getting evicted
            // by other tenants' traffic while a long transfer is in
            // flight, so its protection state is re-fetched per page
            // segment ("many accesses involve a slow read to host
            // main memory", §7.2 / Fig. 16).
            t += rc.pcie_dram_access;
        }
        if (!pte_cache_.touch(0x200000000ull + p)) {
            res.pte_miss = true;
            t += rc.pcie_dram_access;
        }
        if (mr.odp && !mr.present.count(p)) {
            // ODP page fault: RNIC interrupts the host OS (§2.2:
            // 14100x slower than a no-fault access).
            res.page_fault = true;
            mr.present.insert(p);
            t += rc.odp_page_fault;
        }
    }

    // Host DRAM access over PCIe (reads must reach DRAM; writes are
    // acked early by the RNIC, §7.1).
    const Tick dram = cfg_.dram.server_access_latency +
                      static_cast<Tick>(len) *
                          ticksPerByte(cfg_.dram.bandwidth_bps);
    if (!is_write || !rc.write_early_ack)
        t += dram;

    // Host-memory-system jitter and rare long stalls (tail, Fig. 7).
    t += static_cast<Tick>(
        rng_.exponential(static_cast<double>(rc.host_jitter_mean)));
    if (rng_.chance(rc.tail_stall_prob))
        t += rc.tail_stall;

    // Functional data movement.
    const std::uint64_t pa = mr.base + offset;
    res.ok = true;
    res.latency = t;
    (void)pa;
    return res;
}

RdmaVerbResult
RdmaMemoryNode::read(QpId qp, MrId mr_id, std::uint64_t offset, void *dst,
                     std::uint64_t len)
{
    RdmaVerbResult res = verb(qp, mr_id, offset, len, false);
    if (res.ok) {
        const Mr &mr = mrs_.at(mr_id);
        memory_.read(mr.base + offset, dst, len);
    }
    return res;
}

RdmaVerbResult
RdmaMemoryNode::write(QpId qp, MrId mr_id, std::uint64_t offset,
                      const void *src, std::uint64_t len)
{
    RdmaVerbResult res = verb(qp, mr_id, offset, len, true);
    if (res.ok) {
        Mr &mr = mrs_.at(mr_id);
        memory_.write(mr.base + offset, src, len);
    }
    return res;
}

} // namespace clio
