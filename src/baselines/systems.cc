#include "baselines/systems.hh"

namespace clio {

// ---------------------------------------------------------------------
// LegoOS
// ---------------------------------------------------------------------

LegoOsModel::LegoOsModel(const ModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
}

Tick
LegoOsModel::access(std::uint64_t len, bool is_write)
{
    const BaselineConfig &bc = cfg_.baselines;
    // RDMA-style wire + NIC processing on both ends.
    Tick t = wireRoundTrip(cfg_.net, is_write ? len : 16,
                           is_write ? 16 : len);
    t += 2 * cfg_.rdma.nic_processing;
    // Software virtual memory system: thread-pool dispatch + hash
    // lookup + permission check, the LegoOS bottleneck (§2.2).
    t += bc.legoos_sw_request;
    // Server DRAM, throughput-capped at the measured 77 Gbps.
    t += cfg_.dram.server_access_latency +
         static_cast<Tick>(len) * ticksPerByte(bc.legoos_peak_bps);
    // Software handling adds scheduling jitter.
    t += static_cast<Tick>(rng_.exponential(
        static_cast<double>(200 * kNanosecond)));
    return t;
}

Tick
LegoOsModel::readLatency(std::uint64_t len)
{
    return access(len, false);
}

Tick
LegoOsModel::writeLatency(std::uint64_t len)
{
    return access(len, true);
}

double
LegoOsModel::peakGbps() const
{
    return static_cast<double>(cfg_.baselines.legoos_peak_bps) / 1e9;
}

// ---------------------------------------------------------------------
// Clover (passive disaggregated memory)
// ---------------------------------------------------------------------

CloverModel::CloverModel(const ModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
}

Tick
CloverModel::readLatency(std::uint64_t len)
{
    const BaselineConfig &bc = cfg_.baselines;
    // Passive memory cannot dereference anything itself: a read is a
    // metadata/header fetch followed by a dependent data fetch (§2.3:
    // multiple round trips for pointer-structured data).
    Tick t = bc.clover_cn_overhead;
    // Index lookup, then the version header, then the data itself —
    // each a dependent one-sided read (Clover's get path).
    t += wireRoundTrip(cfg_.net, 16, 32) + 2 * cfg_.rdma.nic_processing;
    t += wireRoundTrip(cfg_.net, 16, 32) + 2 * cfg_.rdma.nic_processing;
    t += wireRoundTrip(cfg_.net, 16, len) + 2 * cfg_.rdma.nic_processing;
    t += 3 * cfg_.dram.server_access_latency +
         static_cast<Tick>(len) * ticksPerByte(cfg_.dram.bandwidth_bps);
    // Version-chain chase: sometimes the header points at a newer
    // version, costing yet another round trip.
    if (rng_.chance(0.2)) {
        t += wireRoundTrip(cfg_.net, 16, len) +
             2 * cfg_.rdma.nic_processing;
    }
    return t;
}

Tick
CloverModel::writeLatency(std::uint64_t len)
{
    const BaselineConfig &bc = cfg_.baselines;
    // Out-of-place data write, then a metadata/pointer CAS: at least
    // two dependent RTTs because the MN cannot order anything itself.
    Tick t = bc.clover_cn_overhead;
    for (std::uint32_t i = 0; i < bc.clover_write_rtts; i++) {
        const bool data_leg = i == 0;
        t += wireRoundTrip(cfg_.net, data_leg ? len : 24, 16) +
             2 * cfg_.rdma.nic_processing;
    }
    t += cfg_.dram.server_access_latency;
    return t;
}

// ---------------------------------------------------------------------
// HERD / HERD-BF
// ---------------------------------------------------------------------

HerdModel::HerdModel(const ModelConfig &cfg, bool bluefield,
                     std::uint64_t seed)
    : cfg_(cfg), bluefield_(bluefield), rng_(seed)
{
}

Tick
HerdModel::rpc(std::uint64_t request_bytes, std::uint64_t response_bytes)
{
    const BaselineConfig &bc = cfg_.baselines;
    Tick t = wireRoundTrip(cfg_.net, request_bytes, response_bytes);
    t += 2 * cfg_.rdma.nic_processing;
    // RPC handler on the MN.
    t += bc.herd_cpu_handler;
    t += cfg_.dram.server_access_latency;
    if (bluefield_) {
        // Request and response both cross between the ConnectX chip
        // and the ARM chip — the dominant HERD-BF cost (§7.1).
        t += 2 * bc.bluefield_chip_crossing;
        // The wimpy ARM also handles requests more slowly.
        t += 2 * bc.herd_cpu_handler;
    }
    t += static_cast<Tick>(rng_.exponential(
        static_cast<double>(100 * kNanosecond)));
    return t;
}

Tick
HerdModel::getLatency(std::uint64_t len)
{
    return rpc(32, len);
}

Tick
HerdModel::putLatency(std::uint64_t len)
{
    return rpc(len + 32, 32);
}

} // namespace clio
