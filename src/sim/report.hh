/**
 * @file
 * Human-readable cluster reports: dumps every node's counters (CN
 * transport, MN fast/slow path, TLB, network) as an aligned table —
 * the observability layer the benches and examples use to explain
 * what the simulated hardware did.
 */

#ifndef CLIO_SIM_REPORT_HH
#define CLIO_SIM_REPORT_HH

#include <cstdio>
#include <string>

namespace clio {

class Cluster;

/** Render a full cluster status report to `out` (default stdout). */
void printClusterReport(Cluster &cluster, std::FILE *out = stdout);

/** One-line summary: ops, bytes, retries, faults, sim time. */
std::string clusterSummaryLine(Cluster &cluster);

} // namespace clio

#endif // CLIO_SIM_REPORT_HH
