/**
 * @file
 * Fundamental types and unit constants shared by every Clio module.
 *
 * Simulated time is kept in integer picoseconds ("ticks"), which is fine
 * grained enough to express a single 2 GHz ASIC cycle (500 ps) without
 * rounding while still covering >200 days of simulated time in 64 bits.
 */

#ifndef CLIO_SIM_TYPES_HH
#define CLIO_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace clio {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** @{ Time unit constants, all expressed in ticks (picoseconds). */
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;
/** @} */

/** Largest representable tick; used as "never" for timeouts. */
constexpr Tick kTickMax = ~Tick(0);

/** @{ Size constants in bytes. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;
constexpr std::uint64_t TiB = 1024 * GiB;
/** @} */

/** Remote virtual address inside a process' remote address space (RAS). */
using VirtAddr = std::uint64_t;

/** Physical address inside one memory node's on-board DRAM. */
using PhysAddr = std::uint64_t;

/** Global process identifier, unique across all compute nodes (§3.1). */
using ProcId = std::uint32_t;

/** Node identifiers within a cluster. */
using NodeId = std::uint32_t;

/** Rack (leaf/ToR switch) identifier within a multi-rack cluster. */
using RackId = std::uint32_t;

/** Request identifier assigned by CLib; a retry gets a fresh one (§4.5). */
using ReqId = std::uint64_t;

/**
 * Convert ticks to double seconds (for reporting only; simulation logic
 * must stay in integer ticks).
 */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert ticks to double microseconds (reporting only). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert ticks to double nanoseconds (reporting only). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/**
 * Bits-per-second rate converted to ticks per byte, rounding up so that
 * modeled serialization never undershoots the line rate.
 */
constexpr Tick
ticksPerByte(std::uint64_t bits_per_second)
{
    // ticks/byte = (8 bits/byte) * (1e12 ticks/s) / (bits/s)
    return (8 * kSecond + bits_per_second - 1) / bits_per_second;
}

} // namespace clio

#endif // CLIO_SIM_TYPES_HH
