/**
 * @file
 * Discrete-event simulation core.
 *
 * A single EventQueue instance drives one simulated cluster. Components
 * schedule callbacks at absolute or relative simulated times; the queue
 * executes them in (time, insertion order) order, so same-tick events are
 * deterministic FIFO.
 *
 * There is deliberately no cancellation API: events that may become
 * stale (e.g. retransmission timeouts) carry a generation counter in
 * their closure and turn into no-ops when the state has moved on. This
 * keeps the queue a plain binary heap with O(log n) operations.
 */

#ifndef CLIO_SIM_EVENT_QUEUE_HH
#define CLIO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** Minimal event-driven simulation kernel (one per simulated cluster). */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a callback at absolute tick `when` (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    void scheduleAfter(Tick delay, Callback cb) {
        schedule(now_ + delay, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Execute the earliest pending event, advancing simulated time.
     * @retval true an event was executed, false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue drains or `max_events` were executed. */
    void runAll(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run events until the predicate turns true (checked after every
     * event), the queue drains, or `max_events` were executed.
     * @retval true the predicate was satisfied.
     */
    bool runUntil(const std::function<bool()> &pred,
                  std::uint64_t max_events = ~std::uint64_t(0));

    /** Run all events scheduled at or before tick `t`, then set now=t. */
    void runUntilTime(Tick t);

    /** Total events executed since construction (for sanity checks). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace clio

#endif // CLIO_SIM_EVENT_QUEUE_HH
