/**
 * @file
 * Discrete-event simulation core.
 *
 * A single EventQueue instance drives one simulated cluster. Components
 * schedule callbacks at absolute or relative simulated times; the queue
 * executes them in (time, insertion order) order, so same-tick events are
 * deterministic FIFO.
 *
 * There is deliberately no cancellation API: events that may become
 * stale (e.g. retransmission timeouts) carry a generation counter in
 * their closure and turn into no-ops when the state has moved on.
 *
 * Two implementations live behind one facade, selectable per queue:
 *
 *  - kTimingWheel (default): a two-tier timing wheel. The fine wheel
 *    has 4096 slots of 2^15 ticks (~134 us span), sized so data-path
 *    delays — NIC/switch hops, RTTs, even the data-path retry timeout
 *    — land in their final slot with a SINGLE placement, never
 *    cascading. The coarse wheel (4096 slots of 2^27 ticks, ~0.55 s
 *    span) catches slow-path timeouts and other far events with one
 *    extra hop; anything beyond it sits in a small overflow list that
 *    is swept only when the cursor reaches it (a calendar fallback for
 *    arbitrarily far futures). Each wheel tracks slot occupancy with a
 *    64-word bitmap plus a one-word summary, so finding the next
 *    occupied slot is two bit scans. Slot vectors recycle their
 *    capacity and closures are arena'd inline in EventCallback
 *    buffers, so steady-state scheduling performs no allocation.
 *    O(1) schedule, amortized O(1) pop.
 *
 *  - kBinaryHeap: the reference implementation — a binary heap of
 *    std::function events, kept as a baseline for differential tests
 *    and for the self-perf harness to measure the wheel against.
 *
 * Both order events identically, byte-for-byte reproducibly.
 */

#ifndef CLIO_SIM_EVENT_QUEUE_HH
#define CLIO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace clio {

/** Which event-queue engine a queue (or a whole cluster) runs on. */
enum class EventQueueImpl : std::uint8_t
{
    /** Wheel, unless the CLIO_EVENT_QUEUE env var says "heap". */
    kDefault = 0,
    kTimingWheel,
    kBinaryHeap,
};

/** Minimal event-driven simulation kernel (one per simulated cluster). */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kDefault);
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The engine this queue resolved to (never kDefault). */
    EventQueueImpl impl() const { return impl_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a callback at absolute tick `when` (>= now). */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        clio_assert(when >= now_,
                    "scheduling into the past: when=%llu now=%llu",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now_));
        if (impl_ == EventQueueImpl::kTimingWheel) {
            // Construct the closure directly in its arena cell: it is
            // built exactly once and never moves until destruction.
            const std::uint32_t idx = arenaAlloc();
            arenaCell(idx).emplace(std::forward<F>(fn));
            wheelInsert(when, idx);
        } else {
            scheduleHeap(when, Callback(std::forward<F>(fn)));
        }
    }

    /** Schedule a callback `delay` ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Number of pending events. */
    std::size_t pending() const { return count_; }

    /** True if no events remain. */
    bool empty() const { return count_ == 0; }

    /**
     * Execute the earliest pending event, advancing simulated time.
     * @retval true an event was executed, false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue drains or `max_events` were executed. */
    void runAll(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run events until the predicate turns true (checked after every
     * event), the queue drains, or `max_events` were executed.
     * @retval true the predicate was satisfied.
     */
    bool runUntil(const std::function<bool()> &pred,
                  std::uint64_t max_events = ~std::uint64_t(0));

    /** Run all events scheduled at or before tick `t`, then set now=t. */
    void runUntilTime(Tick t);

    /** Total events executed since construction (for sanity checks). */
    std::uint64_t executed() const { return executed_; }

  private:
    // ------------------------------------------------------------
    // Timing wheel: two tiers plus an overflow list. A slot of the
    // fine wheel covers ticks [sn << 15, (sn+1) << 15) for absolute
    // slot number sn; slots are indexed sn mod 4096, and because no
    // pending event is ever behind horizon_ (the wheel cursor), at
    // most one epoch of ambiguity exists and a successor scan from
    // the cursor's index resolves it. The coarse wheel is identical
    // with 2^27-tick slots. Staging a fine slot sorts its events by
    // (when, seq) — a slot spans many ticks — which restores the
    // exact global FIFO order.
    // ------------------------------------------------------------
    static constexpr std::uint32_t kWheelSlotsLog = 12;
    static constexpr std::uint32_t kWheelSlots = 1u << kWheelSlotsLog;
    static constexpr std::uint32_t kSlot0Bits = 15; ///< fine slot width
    static constexpr std::uint32_t kSlot1Bits =
        kSlot0Bits + kWheelSlotsLog; ///< coarse slot width (2^27)

    /**
     * A pending wheel event. The closure itself lives in the arena
     * (cb_idx names its cell), so the record is a trivially copyable
     * 24 bytes and moving it between slots is a plain copy — the
     * closure is constructed once at schedule and never moves again.
     */
    struct WheelEvent
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t cb_idx;
    };

    /** One wheel tier: slot vectors plus a two-level occupancy bitmap
     * (word[i] bit b = slot 64*i+b non-empty; summary bit i =
     * word[i] != 0). */
    struct Wheel
    {
        std::vector<std::vector<WheelEvent>> slots;
        std::uint64_t word[kWheelSlots / 64] = {};
        std::uint64_t summary = 0;

        void
        set(std::uint32_t idx)
        {
            word[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            summary |= std::uint64_t{1} << (idx >> 6);
        }

        void
        clear(std::uint32_t idx)
        {
            word[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            if (word[idx >> 6] == 0)
                summary &= ~(std::uint64_t{1} << (idx >> 6));
        }

        /** First occupied slot index >= `from`, else -1. */
        int successor(std::uint32_t from) const;
        /** First occupied slot index, else -1. */
        int first() const;
    };

    struct HeapEvent
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    void scheduleHeap(Tick when, Callback cb);
    void wheelInsert(Tick when, std::uint32_t cb_idx);
    bool runOneWheel();
    bool runOneHeap();
    void placeEvent(const WheelEvent &ev);
    void readyInsert(const WheelEvent &ev);
    void sweepOverflow();
    void arenaGrow();

    /** Claim a free arena cell, growing by a chunk if none is free. */
    std::uint32_t
    arenaAlloc()
    {
        if (free_cells_.empty())
            arenaGrow();
        const std::uint32_t idx = free_cells_.back();
        free_cells_.pop_back();
        return idx;
    }

    EventCallback &
    arenaCell(std::uint32_t idx)
    {
        return arena_[idx >> kArenaChunkLog][idx & (kArenaChunk - 1)];
    }

    /**
     * Ensure ready_ holds the earliest pending slot's events, staging
     * (and cascading/sweeping) only slots whose base time is <=
     * `bound` so horizon_ never overtakes a bound the caller must
     * stay under.
     * @retval true ready_ has an event (its when may exceed `bound`;
     *         the caller checks), false if nothing due by `bound`.
     */
    bool stageNext(Tick bound);

    EventQueueImpl impl_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t count_ = 0;

    // Wheel state (empty vectors when the heap engine is active).
    static constexpr std::uint32_t kArenaChunkLog = 10;
    static constexpr std::uint32_t kArenaChunk = 1u << kArenaChunkLog;

    /** Wheel cursor: never ahead of any pending event, never behind
     * a staged slot's base; <= now_ at API boundaries. */
    Tick horizon_ = 0;
    Wheel fine_;
    Wheel coarse_;
    /** Events beyond the coarse span, swept when the cursor nears. */
    std::vector<WheelEvent> overflow_;
    Tick overflow_min_ = ~Tick{0};
    /** Absolute fine-slot number of the band ready_ was staged from:
     * schedules landing in this band insert into ready_ directly. */
    std::uint64_t staged_sn_ = 0;
    std::vector<WheelEvent> ready_; ///< staged events, (when, seq) order
    std::size_t ready_pos_ = 0;
    std::vector<std::unique_ptr<EventCallback[]>> arena_;
    std::vector<std::uint32_t> free_cells_;

    // Heap state: a plain binary heap via push_heap/pop_heap.
    std::vector<HeapEvent> heap_;
};

} // namespace clio

#endif // CLIO_SIM_EVENT_QUEUE_HH
