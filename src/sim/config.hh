/**
 * @file
 * Model calibration parameters for the whole simulation.
 *
 * Every latency/bandwidth/capacity constant in the simulator lives here,
 * with the paper section or figure it was calibrated against. Two presets
 * are provided: prototype() models the ZCU106 FPGA prototype evaluated in
 * the paper (250 MHz fast path, 10 Gbps ports), and asicProjection()
 * models the paper's projected ASIC CBoard (2 GHz, faster DRAM path),
 * used for the Clio-ASIC series in Fig. 6.
 */

#ifndef CLIO_SIM_CONFIG_HH
#define CLIO_SIM_CONFIG_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace clio {

/** CBoard fast-path (hardware pipeline) timing, §5 and Fig. 14. */
struct FastPathConfig
{
    /** Clock period: 250 MHz FPGA prototype = 4 ns. */
    Tick cycle = 4 * kNanosecond;
    /** Datapath width in bits; 512 b/cycle gives 128 Gbps at 250 MHz. */
    std::uint32_t datapath_bits = 512;
    /** Cycles to parse an incoming request + MAT routing decision. */
    std::uint32_t parse_cycles = 4;
    /** Cycles for a TLB lookup (CAM, single cycle in the paper). */
    std::uint32_t tlb_lookup_cycles = 1;
    /** Extra cycles for the page-fault handler when a free PA is ready
     * (the paper's "constant three cycles", §4.3). */
    std::uint32_t page_fault_cycles = 3;
    /** Cycles to form and emit a response header. */
    std::uint32_t respond_cycles = 4;
    /** TLB capacity in entries (on-chip CAM, LRU replacement). */
    std::uint32_t tlb_entries = 1024;
    /** Fixed DMA engine setup cost per read request; the paper blames
     * its third-party non-pipelined DMA IP for read throughput being
     * below write throughput at small sizes (Fig. 9). */
    Tick dma_read_setup = 12 * kNanosecond;
    /** Fixed DMA engine setup cost per write request. */
    Tick dma_write_setup = 4 * kNanosecond;
    /** PHY+MAC ingress/egress processing latency (vendor IP). */
    Tick mac_latency = 150 * kNanosecond;
};

/** On-board DRAM timing, §5 ("slow board memory controller"). */
struct DramConfig
{
    /** One random access through the board's memory controller; this is
     * also the TLB-miss penalty (exactly one bucket fetch, §4.2). */
    Tick access_latency = 300 * kNanosecond;
    /** Sequential stream bandwidth of the on-board DRAM. */
    std::uint64_t bandwidth_bps = 150ull * 1000 * 1000 * 1000;
    /** Server DDR access latency, used for the ASIC projection. */
    Tick server_access_latency = 90 * kNanosecond;
};

/** Datacenter Ethernet model (ToR switch + links), §3.2. */
struct NetConfig
{
    /** Link bandwidth; the prototype ports are 10 Gbps SFP+. */
    std::uint64_t link_bandwidth_bps = 10ull * 1000 * 1000 * 1000;
    /** One-way propagation delay per link (NIC-to-switch). */
    Tick link_propagation = 150 * kNanosecond;
    /** Switch forwarding latency (cut-through ToR). */
    Tick switch_latency = 150 * kNanosecond;
    /** Mean exponential queueing jitter added per switch traversal. */
    Tick switch_jitter_mean = 30 * kNanosecond;
    /** Link-layer MTU in bytes. */
    std::uint32_t mtu = 1500;
    /** Per-packet drop probability (PFC keeps this near zero; raised by
     * fault-injection tests). */
    double loss_rate = 0.0;
    /** Per-packet corruption probability (caught by link-layer checksum,
     * triggers a NACK from the MN, §4.4). */
    double corrupt_rate = 0.0;
    /** Probability that a packet is delayed past its successor
     * (models multi-path / arbitration reordering). */
    double reorder_rate = 0.0;
    /** Extra delay applied to a reordered packet. */
    Tick reorder_delay = 2 * kMicrosecond;
    /** Switch output queue capacity in packets; overflow drops (tail
     * drop) unless lossless mode absorbs it. */
    std::uint32_t switch_queue_packets = 256;
    /** Lossless (PFC-like) mode: full queues back-pressure instead of
     * dropping (tx_start is delayed until the path has room). */
    bool lossless = true;

    /** @{ Multi-rack (leaf/spine) topology. These only matter when
     * nodes are spread across racks; the default single-rack cluster
     * never touches an aggregation link and degenerates to the
     * paper's one-ToR testbed (§3.2). */
    /** Leaf<->spine aggregation link bandwidth (uplinks are faster
     * than host links, 4:1 here like common 10G/40G fabrics). */
    std::uint64_t agg_bandwidth_bps = 40ull * 1000 * 1000 * 1000;
    /** One-way propagation delay of an aggregation link (longer runs
     * than the in-rack NIC-to-ToR cabling). */
    Tick agg_link_propagation = 500 * kNanosecond;
    /** Spine switch forwarding latency. */
    Tick spine_latency = 150 * kNanosecond;
    /** Output queue capacity of each uplink/downlink, in packets. */
    std::uint32_t agg_queue_packets = 1024;
    /** @} */
};

/** CN-side CLib + transport, §4.4/§5. */
struct CLibConfig
{
    /** Software overhead on the request path (half of the paper's 250 ns
     * total CLib overhead). */
    Tick send_overhead = 125 * kNanosecond;
    /** Software overhead on the response path. */
    Tick recv_overhead = 125 * kNanosecond;
    /** CN commodity NIC traversal latency per direction. */
    Tick nic_latency = 200 * kNanosecond;
    /** Request retry timeout for data-path ops (TIMEOUT in §4.5).
     * Must exceed target_rtt so delay-based congestion control reacts
     * before spurious retries fire. */
    Tick timeout = 60 * kMicrosecond;
    /** Retry timeout for slow-path (alloc/free), fence, and offload
     * requests, which legitimately take milliseconds (ARM crossings,
     * allocation retries, long offload scans). */
    Tick slow_op_timeout = 200 * kMillisecond;
    /** Max retries before reporting failure to the application. */
    std::uint32_t max_retries = 2;
    /** Exponential backoff base applied before a timeout-triggered
     * retry is retransmitted: attempt k waits retry_backoff * 2^(k-1),
     * capped at slow_op_timeout. NACK/corruption retries resend
     * immediately (the MN is alive, only the packet was bad). 0
     * disables backoff entirely. */
    Tick retry_backoff = 20 * kMicrosecond;
    /** Initial congestion window (outstanding requests per MN). */
    double cwnd_init = 8.0;
    /** Max congestion window. */
    double cwnd_max = 256.0;
    /** AIMD additive increase per acked request. */
    double cwnd_add_step = 0.5;
    /** AIMD multiplicative decrease factor on congestion. */
    double cwnd_mult_dec = 0.7;
    /** RTT above which the delay-based controller signals congestion. */
    Tick target_rtt = 25 * kMicrosecond;
    /** Incast window: max bytes of expected responses outstanding,
     * sized near the bandwidth-delay product of the 10 Gbps port. */
    std::uint64_t iwnd_bytes = 48 * KiB;
    /** Chunk size for replica heal/resync copy streams. Bigger chunks
     * finish resyncs faster but hold the incast window longer against
     * foreground traffic. */
    std::uint64_t resync_chunk_bytes = 256 * KiB;
};

/** Controller health plane: lease-based failure detection, epoch-fenced
 * membership, and automatic re-replication. Off by default — heartbeat
 * packets share the fabric with data traffic, so enabling the plane
 * legitimately perturbs packet-level RNG streams of existing seeds. */
struct HealthConfig
{
    /** Master switch. When false the cluster behaves exactly as before
     * this layer existed (no controller node, no heartbeats, no epoch
     * checks, crash/restart take effect instantly and heals stay
     * client-driven). */
    bool enabled = false;
    /** Interval between liveness beacons from each node. */
    Tick heartbeat_period = 20 * kMicrosecond;
    /** Lease slack before a silent node turns suspected. A node is
     * suspected once now - last_beacon >= suspect_after (deadlines are
     * inclusive: the transition fires exactly at lease expiry). */
    Tick suspect_after = 60 * kMicrosecond;
    /** Lease expiry: a suspected node is declared dead once
     * now - last_beacon >= dead_after (dead_after > suspect_after). */
    Tick dead_after = 150 * kMicrosecond;
    /** Max replica resyncs the controller drives concurrently; further
     * repairs queue so recovery traffic can't flatten foreground p99. */
    std::uint32_t max_concurrent_resyncs = 2;
    /** Backoff before re-attempting a resync whose source died or
     * whose chunk ops failed mid-copy. */
    Tick reheal_backoff = 50 * kMicrosecond;
};

/** CBoard slow path (ARM SoC) timing, §4.2/§4.3/§5 and Fig. 12/13. */
struct SlowPathConfig
{
    /** One FPGA<->ARM interconnect crossing (the paper measured 40 us
     * on the ZCU106). */
    Tick interconnect_crossing = 40 * kMicrosecond;
    /** Fixed cost of a VA allocation attempt in the ARM allocator
     * (tree search + hash tests), excluding retries. */
    Tick valloc_base = 10 * kMicrosecond;
    /** Incremental VA allocation cost per page (hash + shadow PTE). */
    Tick valloc_per_page = 600 * kNanosecond;
    /** Cost of one allocation retry after a hash overflow (§4.2:
     * "roughly 0.5 ms per retry"). */
    Tick valloc_retry = 500 * kMicrosecond;
    /** Cost of pre-generating one free physical page (background). */
    Tick palloc_per_page = 2 * kMicrosecond;
    /** Capacity of the async free-page buffer the fast path pulls from
     * (§4.3). */
    std::uint32_t async_buffer_pages = 64;
    /** VA free cost per page. */
    Tick vfree_per_page = 300 * kNanosecond;
};

/** Hash page table geometry, §4.2. */
struct PageTableConfig
{
    /** Default page size: 4 MB huge pages. */
    std::uint64_t page_size = 4 * MiB;
    /** Slots per hash bucket (a whole bucket is one DRAM fetch). */
    std::uint32_t bucket_slots = 8;
    /** Page-table overprovisioning factor: total slots = factor *
     * (physical pages). The paper defaults to 2x. */
    double overprovision = 2.0;
};

/** Dedup buffer for retried non-idempotent ops, §4.5 T4. */
struct DedupConfig
{
    /** Buffer capacity = 3 * TIMEOUT * bandwidth ("30 KB in our
     * setting"); expressed directly in entries here. */
    std::uint32_t entries = 512;
};

/** RNIC model for the RDMA baseline, §2.2 and Figs. 4-6, 12. */
struct RdmaConfig
{
    /** Base one-way NIC processing (send or receive side). */
    Tick nic_processing = 350 * kNanosecond;
    /** Host DRAM access from the RNIC over PCIe (cache-miss penalty). */
    Tick pcie_dram_access = 900 * kNanosecond;
    /** QP connection-context cache capacity (entries). */
    std::uint32_t qp_cache_entries = 256;
    /** PTE cache (MTT) capacity. */
    std::uint32_t pte_cache_entries = 4096;
    /** MR metadata cache (MPT) capacity. */
    std::uint32_t mr_cache_entries = 256;
    /** Hard limit: registration fails beyond 2^18 MRs (Fig. 5). */
    std::uint64_t max_mrs = 1ull << 18;
    /** ODP page fault cost: interrupt + host OS handling; the paper
     * measured 16.8 ms end to end. */
    Tick odp_page_fault = Tick(16800) * kMicrosecond;
    /** MR registration fixed cost. */
    Tick mr_register_base = 40 * kMicrosecond;
    /** MR registration per-4KB-page cost (pinning + MTT update). */
    Tick mr_register_per_page = 9 * kNanosecond;
    /** MR deregistration costs. */
    Tick mr_deregister_base = 30 * kMicrosecond;
    Tick mr_deregister_per_page = 5 * kNanosecond;
    /** ODP registration is cheap (no pinning) but faults later. */
    Tick mr_register_odp = 25 * kMicrosecond;
    /** RNIC replies to a write before data reaches DRAM (§7.1 suspects
     * this optimization); reads must wait for host DRAM. */
    bool write_early_ack = true;
    /** Heavier tail than Clio: mean of the exponential jitter the host
     * memory system adds to each RNIC DRAM access. */
    Tick host_jitter_mean = 120 * kNanosecond;
    /** Probability of a long-tail stall (host cache/TLB interference). */
    double tail_stall_prob = 0.0015;
    /** Duration of such a stall. */
    Tick tail_stall = 60 * kMicrosecond;
};

/** Latency profiles for the remaining baseline systems (§7.1). */
struct BaselineConfig
{
    /** LegoOS software MN: per-request software handling cost on top of
     * RDMA-ish networking (hash lookup + thread-pool dispatch). */
    Tick legoos_sw_request = 2500 * kNanosecond;
    /** LegoOS peak data-path throughput (the paper measured 77 Gbps). */
    std::uint64_t legoos_peak_bps = 77ull * 1000 * 1000 * 1000;
    /** HERD RPC handler cost on a server CPU core. */
    Tick herd_cpu_handler = 2500 * kNanosecond;
    /** BlueField: crossing between the ConnectX chip and the ARM chip
     * (each direction), the dominant HERD-BF overhead. */
    Tick bluefield_chip_crossing = 1800 * kNanosecond;
    /** Clover-style PDM: extra round trips for writes (>= 2 RTT). */
    std::uint32_t clover_write_rtts = 2;
    /** Clover CN-side management cost per op (allocation metadata,
     * version chasing). */
    Tick clover_cn_overhead = 300 * kNanosecond;
};

/** Extend-path offload runtime (§4.6): engine count, chain limits,
 * dispatch overhead. */
struct OffloadConfig
{
    /** Replicated offload engines the scheduler arbitrates; each
     * invocation (or whole chained plan) occupies one engine for its
     * modeled duration. Overridable via CLIO_OFFLOAD_ENGINES. */
    std::uint32_t engines = 2;
    /** Max stages a chained plan may carry (kChainTooDeep beyond). */
    std::uint32_t max_chain_depth = 16;
    /** Fast-path cycles to decode + dispatch one invocation or chain
     * stage (MAT match, descriptor fetch, arg staging). */
    std::uint32_t dispatch_cycles = 8;
};

/** Node-level power draw for the energy model (Fig. 21, §7.3). */
struct EnergyConfig
{
    /** Whole compute-node server under load. */
    double cn_server_watts = 250.0;
    /** One CBoard (FPGA + ARM + DRAM, measured ~25 W class). */
    double cboard_watts = 25.0;
    /** A server-based MN (CPU MN for HERD / LegoOS). */
    double mn_server_watts = 150.0;
    /** BlueField SmartNIC MN (card + its host share). */
    double bluefield_watts = 75.0;
    /** A passive raw-memory node (Clover-style, DRAM + slim NIC). */
    double passive_mn_watts = 40.0;
    /** Per-active-core fraction attribution for CN-side accounting. */
    double cn_core_fraction = 0.5;
    /** Marginal draw of one busy offload engine (synthesized logic
     * active on the FPGA fabric), attributed per engine-busy time. */
    double offload_engine_watts = 1.5;
};

/** Distributed-MN management, §4.7. */
struct DistributedConfig
{
    /** Region granularity the global controller assigns (1 GB). */
    std::uint64_t region_size = 1 * GiB;
    /** Free-memory fraction below which an MN migrates regions away. */
    double pressure_threshold = 0.10;
};

/** Top-level bundle of every model parameter. */
struct ModelConfig
{
    FastPathConfig fast_path;
    DramConfig dram;
    NetConfig net;
    CLibConfig clib;
    SlowPathConfig slow_path;
    PageTableConfig page_table;
    DedupConfig dedup;
    OffloadConfig offload;
    RdmaConfig rdma;
    BaselineConfig baselines;
    EnergyConfig energy;
    DistributedConfig dist;
    HealthConfig health;

    /** Physical memory per MN; the ZCU106 boards carry 2 GB. */
    std::uint64_t mn_phys_bytes = 2 * GiB;

    /** Master RNG seed; derived streams add fixed offsets. */
    std::uint64_t seed = 42;

    /** Event-queue engine driving the cluster (kDefault resolves to
     * the timing wheel unless CLIO_EVENT_QUEUE=heap is set). Both
     * engines order events identically; kBinaryHeap exists for
     * differential testing and as the self-perf baseline. */
    EventQueueImpl event_queue_impl = EventQueueImpl::kDefault;

    /** The FPGA prototype configuration evaluated in the paper. */
    static ModelConfig prototype();

    /** The paper's ASIC projection: 2 GHz fast path, server-class DDR,
     * 100 Gbps ports (Fig. 6 "Clio-ASIC"). */
    static ModelConfig asicProjection();

    /** Fast-path bytes per cycle. */
    std::uint64_t
    datapathBytesPerCycle() const
    {
        return fast_path.datapath_bits / 8;
    }

    /** Fast-path peak bandwidth in bits per second. */
    std::uint64_t
    fastPathPeakBps() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(fast_path.datapath_bits) *
            (static_cast<double>(kSecond) /
             static_cast<double>(fast_path.cycle)));
    }
};

} // namespace clio

#endif // CLIO_SIM_CONFIG_HH
