/**
 * @file
 * Move-only type-erased `void()` callable sized for event closures.
 *
 * std::function heap-allocates any capture larger than two pointers,
 * which on the simulator's hot path means one malloc/free per scheduled
 * event. EventCallback instead carries a 104-byte inline buffer — large
 * enough for every closure the simulator schedules (the biggest, the
 * network delivery closure with an in-flight Packet, is 88 bytes) — and
 * erases behavior behind a static three-entry vtable. Closures that do
 * exceed the buffer, or that cannot be relocated with a nothrow move,
 * fall back to a heap box, so correctness never depends on the size
 * budget.
 */

#ifndef CLIO_SIM_CALLBACK_HH
#define CLIO_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace clio {

/** Type-erased single-owner event closure (see file comment). */
class EventCallback
{
  public:
    /** Inline capture budget: Tick + seq + this = 128-byte events. */
    static constexpr std::size_t kInlineBytes = 104;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "EventCallback requires a void() callable");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = boxedOps<Fn>();
        }
    }

    EventCallback(EventCallback &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { destroy(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    /** Destroy any held closure and construct `fn` in place, so a
     * recycled cell (e.g. an event-queue arena slot) takes a new
     * closure with zero intermediate moves. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        destroy();
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = boxedOps<Fn>();
        }
    }

    /** Destroy the held closure, returning to the empty state. */
    void
    reset()
    {
        destroy();
    }

    /** True if `Fn` is stored in the inline buffer (exposed for tests). */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct into `dst` from `src`, then destroy `src`. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static const Ops *
    inlineOps()
    {
        static constexpr Ops ops{
            [](void *self) { (*static_cast<Fn *>(self))(); },
            [](void *dst, void *src) {
                Fn *from = static_cast<Fn *>(src);
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            },
            [](void *self) { static_cast<Fn *>(self)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    boxedOps()
    {
        static constexpr Ops ops{
            [](void *self) { (**static_cast<Fn **>(self))(); },
            [](void *dst, void *src) {
                ::new (dst) Fn *(*static_cast<Fn **>(src));
            },
            [](void *self) { delete *static_cast<Fn **>(self); },
        };
        return &ops;
    }

    void
    destroy()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace clio

#endif // CLIO_SIM_CALLBACK_HH
