/**
 * @file
 * Statistics collection: log-linear latency histograms with percentile
 * queries (HDR-histogram style) and simple throughput accounting.
 */

#ifndef CLIO_SIM_STATS_HH
#define CLIO_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace clio {

/**
 * Fixed-memory histogram of tick values with ~1.6% value resolution.
 *
 * Values are bucketed log-linearly: the exponent selects a power-of-two
 * band and the next kSubBucketBits bits select a linear sub-bucket, like
 * HdrHistogram. Percentile queries return the upper edge of the bucket
 * containing the requested rank, so reported percentiles never
 * under-state the latency.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one sample. */
    void record(Tick value);

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    Tick min() const { return count_ ? min_ : 0; }
    Tick max() const { return max_; }
    double mean() const;

    /**
     * Value at percentile p in [0, 100]. p = 0 reports the exact
     * minimum; other percentiles report the upper edge of the bucket
     * holding the requested rank, clamped to the exact maximum (so a
     * query never understates a latency and never exceeds max()).
     * An empty histogram reports 0 for every p.
     */
    Tick percentile(double p) const;

    Tick median() const { return percentile(50.0); }
    Tick p99() const { return percentile(99.0); }

    /**
     * Sampled CDF with `points` evenly spaced percentile steps, as
     * (value, cumulative fraction) pairs — e.g. for Fig. 7.
     */
    std::vector<std::pair<Tick, double>> cdf(int points = 100) const;

  private:
    static constexpr int kSubBucketBits = 6;
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kBands = 64 - kSubBucketBits;

    static int bucketIndex(Tick value);
    static Tick bucketUpperEdge(int index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_;
    Tick min_;
    Tick max_;
    double sum_;
    /** Occupied-bucket bounds [lo_, hi_]: percentile and cdf queries
     * scan only this range instead of all kBands * kSubBuckets
     * buckets (the occupied range of a real latency distribution is
     * a handful of cache lines). Empty histogram: lo_ > hi_. */
    int lo_;
    int hi_;
};

/** Accumulates bytes moved over simulated time and reports Gbps. */
class ThroughputMeter
{
  public:
    void
    record(std::uint64_t bytes)
    {
        bytes_ += bytes;
        ops_ += 1;
    }

    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t ops() const { return ops_; }

    /** Goodput in Gbps over the elapsed tick interval. */
    double
    gbps(Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(bytes_) * 8.0 /
               ticksToSeconds(elapsed) / 1e9;
    }

    /** Million operations per second over the elapsed interval. */
    double
    mops(Tick elapsed) const
    {
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(ops_) / ticksToSeconds(elapsed) / 1e6;
    }

    void
    reset()
    {
        bytes_ = 0;
        ops_ = 0;
    }

  private:
    std::uint64_t bytes_ = 0;
    std::uint64_t ops_ = 0;
};

} // namespace clio

#endif // CLIO_SIM_STATS_HH
