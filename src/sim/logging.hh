/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, warn()/inform()
 * for status messages that never stop the simulation.
 */

#ifndef CLIO_SIM_LOGGING_HH
#define CLIO_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace clio {

namespace detail {

[[noreturn]] void terminateAbort(const char *kind, const std::string &msg,
                                 const char *file, int line);
[[noreturn]] void terminateExit(const char *kind, const std::string &msg,
                                const char *file, int line);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** True once warnQuiet(true) was called; silences warn() in tests. */
extern bool warnings_suppressed;

/** Suppress (or re-enable) warn() output, e.g. in noisy tests. */
void warnQuiet(bool quiet);

/** Emit a warning (something works, but not as well as it should). */
void warnMsg(const std::string &msg);

/** Emit an informational status message. */
void informMsg(const std::string &msg);

} // namespace clio

/**
 * panic: an invariant of the simulator itself was violated. Aborts so a
 * core dump / debugger can inspect the state.
 */
#define clio_panic(...)                                                   \
    ::clio::detail::terminateAbort(                                       \
        "panic", ::clio::detail::strfmt(__VA_ARGS__), __FILE__, __LINE__)

/**
 * fatal: the simulation cannot continue because of a user-level error
 * (bad configuration, invalid arguments). Exits with status 1.
 */
#define clio_fatal(...)                                                   \
    ::clio::detail::terminateExit(                                        \
        "fatal", ::clio::detail::strfmt(__VA_ARGS__), __FILE__, __LINE__)

/** Check an internal invariant; panics with the condition text if false. */
#define clio_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::clio::detail::terminateAbort(                               \
                "assert(" #cond ")",                                      \
                ::clio::detail::strfmt(__VA_ARGS__), __FILE__, __LINE__); \
        }                                                                 \
    } while (0)

#endif // CLIO_SIM_LOGGING_HH
