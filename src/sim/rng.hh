/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component (link loss, workload generators, latency
 * jitter) draws from its own seeded Rng instance so that simulations are
 * reproducible regardless of module evaluation order.
 */

#ifndef CLIO_SIM_RNG_HH
#define CLIO_SIM_RNG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace clio {

/**
 * Master seed for a simulation run: the value of the CLIO_SEED
 * environment variable when set (parsed as an unsigned integer),
 * otherwise `fallback`. ModelConfig presets route their default seed
 * through this, so `CLIO_SEED=7 ./bench_fig07_latency_cdf` reruns a
 * whole figure under a different (still deterministic) seed without
 * recompiling, and the `determinism` ctest can pin two fresh processes
 * to one seed.
 */
std::uint64_t defaultSeed(std::uint64_t fallback);

/**
 * xoshiro256** generator: tiny, fast, and high quality; preferable to
 * std::mt19937 here because its state is 4 words and copies are cheap.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that small seeds still diverge quickly. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound must be nonzero). */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Exponentially distributed value with the given mean, clamped to
     * [0, 20*mean] to avoid pathological tails in timing jitter.
     */
    double exponential(double mean);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian integer generator over [0, n) with skew theta, matching the
 * YCSB generator used in the paper's §7.2 (theta = 0.99 by default).
 *
 * Uses the Gray/Jim standard rejection-free formula with precomputed
 * zeta values; generation is O(1) per sample.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed);

    /** Next zipf-distributed item index in [0, n). */
    std::uint64_t next();

    std::uint64_t itemCount() const { return n_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    Rng rng_;
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace clio

#endif // CLIO_SIM_RNG_HH
