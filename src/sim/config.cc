#include "sim/config.hh"

#include <cstdlib>

#include "sim/rng.hh"

namespace clio {

ModelConfig
ModelConfig::prototype()
{
    // The defaults in the struct definitions *are* the ZCU106 prototype.
    ModelConfig cfg;
    cfg.seed = defaultSeed(cfg.seed);
    if (const char *env = std::getenv("CLIO_OFFLOAD_ENGINES")) {
        const unsigned long engines = std::strtoul(env, nullptr, 10);
        if (engines > 0)
            cfg.offload.engines = static_cast<std::uint32_t>(engines);
    }
    return cfg;
}

ModelConfig
ModelConfig::asicProjection()
{
    ModelConfig cfg = prototype();
    // 2 GHz ASIC clock (§7.1 latency-variation projection).
    cfg.fast_path.cycle = 500 * kPicosecond;
    // Server-grade DDR controller instead of the slow board controller.
    cfg.dram.access_latency = cfg.dram.server_access_latency;
    cfg.dram.bandwidth_bps = 400ull * 1000 * 1000 * 1000;
    // ASIC-integrated MAC instead of vendor FPGA IP.
    cfg.fast_path.mac_latency = 60 * kNanosecond;
    // Hardened DMA engines lose the FPGA IP setup penalty.
    cfg.fast_path.dma_read_setup = 4 * kNanosecond;
    cfg.fast_path.dma_write_setup = 2 * kNanosecond;
    // 100 Gbps ports on the target CBoard (R3).
    cfg.net.link_bandwidth_bps = 100ull * 1000 * 1000 * 1000;
    return cfg;
}

} // namespace clio
