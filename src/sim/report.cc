#include "sim/report.hh"

#include <cinttypes>

#include "cluster/cluster.hh"

namespace clio {

void
printClusterReport(Cluster &cluster, std::FILE *out)
{
    std::fprintf(out, "=== cluster report @ %.3f ms simulated ===\n",
                 ticksToUs(cluster.eventQueue().now()) / 1000.0);

    const NetStats &net = cluster.network().stats();
    std::fprintf(out,
                 "network: sent=%" PRIu64 " delivered=%" PRIu64
                 " dropped=%" PRIu64 " corrupted=%" PRIu64
                 " reordered=%" PRIu64 " bytes=%" PRIu64 "\n",
                 net.sent, net.delivered,
                 net.dropped_random + net.dropped_queue, net.corrupted,
                 net.reordered, net.bytes_delivered);

    for (std::uint32_t i = 0; i < cluster.cnCount(); i++) {
        const CNodeStats &cn = cluster.cn(i).stats();
        std::fprintf(out,
                     "CN%-2u: requests=%" PRIu64 " responses=%" PRIu64
                     " retries=%" PRIu64 " timeouts=%" PRIu64
                     " nacks=%" PRIu64 " failures=%" PRIu64
                     " rtt_p50=%.2fus rtt_p99=%.2fus\n",
                     i, cn.requests, cn.responses, cn.retries,
                     cn.timeouts, cn.nacks, cn.failures,
                     ticksToUs(cluster.cn(i).rttHistogram().median()),
                     ticksToUs(cluster.cn(i).rttHistogram().p99()));
    }
    for (std::uint32_t i = 0; i < cluster.mnCount(); i++) {
        CBoard &mn = cluster.mn(i);
        const CBoardStats &st = mn.stats();
        std::fprintf(out,
                     "MN%-2u: reads=%" PRIu64 " writes=%" PRIu64
                     " atomics=%" PRIu64 " allocs=%" PRIu64
                     " frees=%" PRIu64 " offloads=%" PRIu64
                     " faults=%" PRIu64 " tlb_hit=%.1f%%"
                     " pressure=%.0f%% pt_fill=%" PRIu64 "/%" PRIu64
                     "\n",
                     i, st.reads, st.writes, st.atomics, st.allocs,
                     st.frees, st.offload_calls, st.page_faults,
                     mn.tlb().hits() + mn.tlb().misses()
                         ? 100.0 * static_cast<double>(mn.tlb().hits()) /
                               static_cast<double>(mn.tlb().hits() +
                                                   mn.tlb().misses())
                         : 0.0,
                     100.0 * mn.memoryPressure(),
                     mn.pageTable().liveEntries(),
                     mn.pageTable().totalSlots());
    }
}

std::string
clusterSummaryLine(Cluster &cluster)
{
    std::uint64_t reads = 0, writes = 0, faults = 0, retries = 0;
    for (std::uint32_t i = 0; i < cluster.mnCount(); i++) {
        reads += cluster.mn(i).stats().reads;
        writes += cluster.mn(i).stats().writes;
        faults += cluster.mn(i).stats().page_faults;
    }
    for (std::uint32_t i = 0; i < cluster.cnCount(); i++)
        retries += cluster.cn(i).stats().retries;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 " reads, %" PRIu64 " writes, %" PRIu64
                  " faults, %" PRIu64 " retries in %.3f ms",
                  reads, writes, faults, retries,
                  ticksToUs(cluster.eventQueue().now()) / 1000.0);
    return buf;
}

} // namespace clio
