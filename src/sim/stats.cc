#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace clio {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(kBands) * kSubBuckets, 0),
      count_(0), min_(kTickMax), max_(0), sum_(0.0)
{
}

int
LatencyHistogram::bucketIndex(Tick value)
{
    if (value < kSubBuckets) {
        // Band 0 is exact: one bucket per value below kSubBuckets.
        return static_cast<int>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int band = msb - kSubBucketBits + 1;
    const int sub =
        static_cast<int>((value >> (msb - kSubBucketBits)) &
                         (kSubBuckets - 1));
    // Bands above 0 use the sub-bucket field; the leading 1 bit is
    // implicit, so `sub` covers [0, kSubBuckets).
    int index = band * kSubBuckets + sub;
    const int last = kBands * kSubBuckets - 1;
    return index > last ? last : index;
}

Tick
LatencyHistogram::bucketUpperEdge(int index)
{
    const int band = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    if (band == 0)
        return static_cast<Tick>(sub);
    const int msb = band + kSubBucketBits - 1;
    const Tick base = Tick(1) << msb;
    const Tick step = Tick(1) << (msb - kSubBucketBits);
    return base + step * static_cast<Tick>(sub + 1) - 1;
}

void
LatencyHistogram::record(Tick value)
{
    buckets_[static_cast<std::size_t>(bucketIndex(value))]++;
    count_++;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); i++)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = kTickMax;
    max_ = 0;
    sum_ = 0.0;
}

double
LatencyHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Tick
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    clio_assert(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    const std::uint64_t target = rank == 0 ? 1 : rank;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); i++) {
        seen += buckets_[i];
        if (seen >= target) {
            const Tick edge = bucketUpperEdge(static_cast<int>(i));
            // Never report beyond the true max.
            return std::min(edge, max_);
        }
    }
    return max_;
}

std::vector<std::pair<Tick, double>>
LatencyHistogram::cdf(int points) const
{
    std::vector<std::pair<Tick, double>> out;
    if (count_ == 0)
        return out;
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 1; i <= points; i++) {
        const double frac = static_cast<double>(i) / points;
        out.emplace_back(percentile(frac * 100.0), frac);
    }
    return out;
}

} // namespace clio
