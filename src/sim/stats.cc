#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace clio {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(kBands) * kSubBuckets, 0),
      count_(0), min_(kTickMax), max_(0), sum_(0.0),
      lo_(kBands * kSubBuckets), hi_(-1)
{
}

int
LatencyHistogram::bucketIndex(Tick value)
{
    if (value < kSubBuckets) {
        // Band 0 is exact: one bucket per value below kSubBuckets.
        return static_cast<int>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int band = msb - kSubBucketBits + 1;
    const int sub =
        static_cast<int>((value >> (msb - kSubBucketBits)) &
                         (kSubBuckets - 1));
    // Bands above 0 use the sub-bucket field; the leading 1 bit is
    // implicit, so `sub` covers [0, kSubBuckets).
    int index = band * kSubBuckets + sub;
    const int last = kBands * kSubBuckets - 1;
    return index > last ? last : index;
}

Tick
LatencyHistogram::bucketUpperEdge(int index)
{
    const int band = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    if (band == 0)
        return static_cast<Tick>(sub);
    const int msb = band + kSubBucketBits - 1;
    const Tick base = Tick(1) << msb;
    const Tick step = Tick(1) << (msb - kSubBucketBits);
    return base + step * static_cast<Tick>(sub + 1) - 1;
}

void
LatencyHistogram::record(Tick value)
{
    const int index = bucketIndex(value);
    buckets_[static_cast<std::size_t>(index)]++;
    count_++;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
    lo_ = std::min(lo_, index);
    hi_ = std::max(hi_, index);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0) {
        // Nothing to add; in particular other.min_ (kTickMax sentinel)
        // and other.max_ (0) must not touch our extremes.
        return;
    }
    for (int i = other.lo_; i <= other.hi_; i++)
        buckets_[static_cast<std::size_t>(i)] +=
            other.buckets_[static_cast<std::size_t>(i)];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    lo_ = std::min(lo_, other.lo_);
    hi_ = std::max(hi_, other.hi_);
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = kTickMax;
    max_ = 0;
    sum_ = 0.0;
    lo_ = kBands * kSubBuckets;
    hi_ = -1;
}

double
LatencyHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Tick
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    clio_assert(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    if (p == 0.0) {
        // The 0th percentile is the smallest sample, exactly; the
        // bucket edge would overstate it (single-sample histograms
        // included).
        return min_;
    }
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    const std::uint64_t target = rank == 0 ? 1 : rank;
    std::uint64_t seen = 0;
    for (int i = lo_; i <= hi_; i++) {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen >= target) {
            const Tick edge = bucketUpperEdge(i);
            // Never report beyond the true max.
            return std::min(edge, max_);
        }
    }
    return max_;
}

std::vector<std::pair<Tick, double>>
LatencyHistogram::cdf(int points) const
{
    std::vector<std::pair<Tick, double>> out;
    if (count_ == 0)
        return out;
    out.reserve(static_cast<std::size_t>(points));
    // Single pass: the per-point rank targets are nondecreasing, so
    // one walk over the occupied buckets serves every point (the old
    // implementation rescanned the whole bucket array per point).
    int bucket = lo_;
    std::uint64_t seen = buckets_[static_cast<std::size_t>(lo_)];
    for (int i = 1; i <= points; i++) {
        const double frac = static_cast<double>(i) / points;
        const double p = frac * 100.0;
        const auto rank = static_cast<std::uint64_t>(
            std::ceil(p / 100.0 * static_cast<double>(count_)));
        const std::uint64_t target = rank == 0 ? 1 : rank;
        while (seen < target && bucket < hi_) {
            bucket++;
            seen += buckets_[static_cast<std::size_t>(bucket)];
        }
        const Tick edge =
            seen >= target ? std::min(bucketUpperEdge(bucket), max_)
                           : max_;
        out.emplace_back(edge, frac);
    }
    return out;
}

} // namespace clio
