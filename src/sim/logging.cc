#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace clio {

bool warnings_suppressed = false;

void
warnQuiet(bool quiet)
{
    warnings_suppressed = quiet;
}

void
warnMsg(const std::string &msg)
{
    if (!warnings_suppressed)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informMsg(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

namespace detail {

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
terminateAbort(const char *kind, const std::string &msg, const char *file,
               int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::abort();
}

void
terminateExit(const char *kind, const std::string &msg, const char *file,
              int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::exit(1);
}

} // namespace detail
} // namespace clio
