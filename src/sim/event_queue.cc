#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace clio {

void
EventQueue::schedule(Tick when, Callback cb)
{
    clio_assert(when >= now_,
                "scheduling into the past: when=%llu now=%llu",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(now_));
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move the callback out via a copy of
    // the small Event struct instead of mutating in place.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    executed_++;
    ev.cb();
    return true;
}

void
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        n++;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred,
                     std::uint64_t max_events)
{
    if (pred())
        return true;
    std::uint64_t n = 0;
    while (n < max_events && runOne()) {
        n++;
        if (pred())
            return true;
    }
    return false;
}

void
EventQueue::runUntilTime(Tick t)
{
    while (!heap_.empty() && heap_.top().when <= t)
        runOne();
    if (t > now_)
        now_ = t;
}

} // namespace clio
