#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>

namespace clio {

namespace {

/** Min-first (when, seq) order for the heap engine. */
struct Later
{
    bool
    operator()(const auto &a, const auto &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

/** Global FIFO order within a staged slot (a slot spans many ticks). */
constexpr auto kWhenSeqOrder = [](const auto &a, const auto &b) {
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
};

constexpr Tick kNoTick = ~Tick{0};
constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

} // namespace

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl)
{
    if (impl_ == EventQueueImpl::kDefault) {
        const char *env = std::getenv("CLIO_EVENT_QUEUE");
        impl_ = (env != nullptr && std::string_view(env) == "heap")
                    ? EventQueueImpl::kBinaryHeap
                    : EventQueueImpl::kTimingWheel;
    }
    if (impl_ == EventQueueImpl::kTimingWheel) {
        fine_.slots.resize(kWheelSlots);
        coarse_.slots.resize(kWheelSlots);
    }
}

int
EventQueue::Wheel::successor(std::uint32_t from) const
{
    const std::uint32_t w = from >> 6;
    const std::uint64_t head = word[w] & (~std::uint64_t{0} << (from & 63));
    if (head != 0)
        return static_cast<int>((w << 6) | std::countr_zero(head));
    // Later words, via the summary (bits strictly above w).
    if (w == 63)
        return -1;
    const std::uint64_t rest = summary & (~std::uint64_t{0} << (w + 1));
    if (rest == 0)
        return -1;
    const auto nw = static_cast<std::uint32_t>(std::countr_zero(rest));
    return static_cast<int>((nw << 6) | std::countr_zero(word[nw]));
}

int
EventQueue::Wheel::first() const
{
    if (summary == 0)
        return -1;
    const auto w = static_cast<std::uint32_t>(std::countr_zero(summary));
    return static_cast<int>((w << 6) | std::countr_zero(word[w]));
}

void
EventQueue::arenaGrow()
{
    const auto base =
        static_cast<std::uint32_t>(arena_.size() * kArenaChunk);
    arena_.push_back(std::make_unique<EventCallback[]>(kArenaChunk));
    free_cells_.reserve(free_cells_.size() + kArenaChunk);
    for (std::uint32_t i = kArenaChunk; i > 0; i--)
        free_cells_.push_back(base + i - 1);
}

void
EventQueue::wheelInsert(Tick when, std::uint32_t cb_idx)
{
    count_++;
    const WheelEvent ev{when, next_seq_++, cb_idx};
    if ((when >> kSlot0Bits) == staged_sn_) {
        // The event lands in the band currently staged in ready_ (its
        // occupancy bit is already spent); splice it in FIFO position.
        readyInsert(ev);
        return;
    }
    placeEvent(ev);
}

void
EventQueue::readyInsert(const WheelEvent &ev)
{
    // Only the unexecuted tail [ready_pos_, end) is live. The new
    // event's seq is the largest yet, so it goes after every pending
    // event with the same or earlier due time.
    const auto pos = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
        ready_.end(), ev.when,
        [](Tick when, const WheelEvent &e) { return when < e.when; });
    ready_.insert(pos, ev);
}

void
EventQueue::placeEvent(const WheelEvent &ev)
{
    // No pending event is ever behind the cursor, so within a wheel's
    // span the slot index (absolute slot number mod 4096) is
    // unambiguous: at most one epoch separates any pending slot from
    // the cursor's, and the successor scan resolves the wrap.
    const std::uint64_t d0 =
        (ev.when >> kSlot0Bits) - (horizon_ >> kSlot0Bits);
    if (d0 < kWheelSlots) {
        const auto idx = static_cast<std::uint32_t>(
            (ev.when >> kSlot0Bits) & (kWheelSlots - 1));
        fine_.slots[idx].push_back(ev);
        fine_.set(idx);
        return;
    }
    const std::uint64_t d1 =
        (ev.when >> kSlot1Bits) - (horizon_ >> kSlot1Bits);
    if (d1 < kWheelSlots) {
        const auto idx = static_cast<std::uint32_t>(
            (ev.when >> kSlot1Bits) & (kWheelSlots - 1));
        coarse_.slots[idx].push_back(ev);
        coarse_.set(idx);
        return;
    }
    if (ev.when < overflow_min_)
        overflow_min_ = ev.when;
    overflow_.push_back(ev);
}

void
EventQueue::sweepOverflow()
{
    // The cursor just advanced to overflow_min_: move every overflow
    // event now within the coarse span into the wheels, keep the rest.
    std::size_t kept = 0;
    Tick new_min = kNoTick;
    for (const WheelEvent &ev : overflow_) {
        const std::uint64_t d1 =
            (ev.when >> kSlot1Bits) - (horizon_ >> kSlot1Bits);
        if (d1 < kWheelSlots) {
            placeEvent(ev);
        } else {
            new_min = std::min(new_min, ev.when);
            overflow_[kept++] = ev;
        }
    }
    overflow_.resize(kept);
    overflow_min_ = new_min;
}

void
EventQueue::scheduleHeap(Tick when, Callback cb)
{
    count_++;
    heap_.push_back(HeapEvent{when, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

namespace {

/** Absolute slot number of the first occupied slot at/after the
 * cursor's, accounting for the one possible epoch wrap. */
std::uint64_t
candidateSn(const auto &wheel, std::uint64_t cursor_sn,
            std::uint32_t slot_mask)
{
    const auto c = static_cast<std::uint32_t>(cursor_sn & slot_mask);
    int f = wheel.successor(c);
    if (f >= 0)
        return cursor_sn - c + static_cast<std::uint32_t>(f);
    f = wheel.first();
    if (f >= 0)
        return cursor_sn - c + slot_mask + 1 +
               static_cast<std::uint32_t>(f);
    return kNoSlot;
}

} // namespace

bool
EventQueue::stageNext(Tick bound)
{
    if (ready_pos_ < ready_.size())
        return true;
    for (;;) {
        const std::uint64_t cand0 =
            candidateSn(fine_, horizon_ >> kSlot0Bits, kWheelSlots - 1);
        const std::uint64_t cand1 = candidateSn(
            coarse_, horizon_ >> kSlot1Bits, kWheelSlots - 1);
        const Tick base0 =
            cand0 == kNoSlot ? kNoTick : cand0 << kSlot0Bits;
        const Tick base1 =
            cand1 == kNoSlot ? kNoTick : cand1 << kSlot1Bits;
        if (!overflow_.empty() &&
            overflow_min_ <= std::min(base0, base1)) {
            if (overflow_min_ > bound)
                return false;
            // Nothing pending before the overflow minimum: jump the
            // cursor there and pull the now-reachable events in.
            horizon_ = overflow_min_;
            sweepOverflow();
            continue;
        }
        if (base1 <= base0) {
            if (base1 == kNoTick)
                return false; // no pending events outside ready_
            if (base1 > bound)
                return false;
            // Cascade one coarse slot: its events all land in the
            // fine wheel (their distance shrank below the fine span).
            const auto idx =
                static_cast<std::uint32_t>(cand1 & (kWheelSlots - 1));
            coarse_.clear(idx);
            horizon_ = base1;
            auto &sv = coarse_.slots[idx];
            for (const WheelEvent &ev : sv)
                placeEvent(ev);
            sv.clear();
            continue;
        }
        if (base0 > bound) {
            // The earliest pending event is past the caller's bound;
            // leave the cursor behind it so later schedules (>= bound)
            // can never land behind the cursor.
            return false;
        }
        const auto idx =
            static_cast<std::uint32_t>(cand0 & (kWheelSlots - 1));
        fine_.clear(idx);
        horizon_ = base0;
        staged_sn_ = cand0;
        auto &sv = fine_.slots[idx];
        // Swapping recycles both vectors' capacity, so the steady
        // state allocates nothing. A slot spans 2^15 ticks, so events
        // of several due times may mix; sort restores global FIFO
        // order (pushes are usually already in (when, seq) order).
        ready_.clear();
        ready_pos_ = 0;
        std::swap(ready_, sv);
        if (!std::is_sorted(ready_.begin(), ready_.end(), kWhenSeqOrder))
            std::sort(ready_.begin(), ready_.end(), kWhenSeqOrder);
        return true;
    }
}

bool
EventQueue::runOneWheel()
{
    if (ready_pos_ >= ready_.size() && !stageNext(~Tick{0}))
        return false;
    const WheelEvent ev = ready_[ready_pos_++];
    now_ = ev.when;
    executed_++;
    count_--;
    // The arena cell stays valid across the call even if the callback
    // schedules (chunks never move); release it only afterwards so a
    // closure never frees its own cell mid-flight.
    EventCallback &cb = arenaCell(ev.cb_idx);
    cb();
    cb.reset();
    free_cells_.push_back(ev.cb_idx);
    return true;
}

bool
EventQueue::runOneHeap()
{
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    HeapEvent ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    executed_++;
    count_--;
    ev.cb();
    return true;
}

bool
EventQueue::runOne()
{
    return impl_ == EventQueueImpl::kTimingWheel ? runOneWheel()
                                                 : runOneHeap();
}

void
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        n++;
}

bool
EventQueue::runUntil(const std::function<bool()> &pred,
                     std::uint64_t max_events)
{
    if (pred())
        return true;
    std::uint64_t n = 0;
    while (n < max_events && runOne()) {
        n++;
        if (pred())
            return true;
    }
    return false;
}

void
EventQueue::runUntilTime(Tick t)
{
    if (impl_ == EventQueueImpl::kTimingWheel) {
        while ((ready_pos_ < ready_.size() || stageNext(t)) &&
               ready_[ready_pos_].when <= t)
            runOneWheel();
    } else {
        while (!heap_.empty() && heap_.front().when <= t)
            runOneHeap();
    }
    if (t > now_)
        now_ = t;
}

} // namespace clio
