#include "sim/rng.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace clio {

std::uint64_t
defaultSeed(std::uint64_t fallback)
{
    const char *env = std::getenv("CLIO_SEED");
    if (!env || *env == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE) {
        warnMsg(detail::strfmt("ignoring malformed CLIO_SEED '%s'", env));
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    clio_assert(bound != 0, "uniformInt bound must be nonzero");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - ~std::uint64_t(0) % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    clio_assert(lo <= hi, "uniformRange requires lo <= hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniformDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    double v = -mean * std::log(u);
    const double cap = 20.0 * mean;
    return v > cap ? cap : v;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : rng_(seed), n_(n), theta_(theta)
{
    clio_assert(n >= 1, "zipf domain must be nonempty");
    // theta == 1.0 makes alpha_ = 1/(1-theta) infinite (and the eta_
    // expression 0/0 = NaN); the generator would silently emit
    // garbage indices instead of failing.
    clio_assert(theta >= 0.0 && theta < 1.0,
                "zipf skew theta must be in [0, 1), got %f", theta);
    zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
ZipfianGenerator::next()
{
    if (n_ == 1)
        return 0;
    const double u = rng_.uniformDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

} // namespace clio
