/**
 * @file
 * Linearizability checking for chaos-test completion histories.
 *
 * The chaos tier records every operation a client issued against a
 * replicated register (invocation tick, completion tick, kind, value,
 * status) and replays the history against a sequential register
 * specification, searching for a legal linearization (Wing & Gong
 * style, with memoization on the (done-set, register-value) state).
 *
 * Failure semantics match the transport: an operation that completed
 * kOk took effect atomically between its invocation and completion; a
 * FAILED write (timeout — the MN may have died mid-flight) is
 * ambiguous: it may have taken effect at any point after its
 * invocation, or never. Failed reads returned nothing and are dropped
 * before checking.
 */

#ifndef CLIO_CHAOS_LINEARIZE_HH
#define CLIO_CHAOS_LINEARIZE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** One operation of a recorded history. */
struct HistOp
{
    /** Register identity; the checker is per-key. */
    std::uint64_t key = 0;
    Tick invoked = 0;
    /** Completion tick; kTickMax for a failed (ambiguous) write. */
    Tick completed = 0;
    bool is_write = false;
    /** Value written, or value returned by a successful read. */
    std::uint64_t value = 0;
    /** Whether the operation completed kOk. */
    bool ok = true;
};

/** Verdict of a linearizability check. */
struct LinearizeReport
{
    bool linearizable = true;
    /** First key that failed (when !linearizable). */
    std::uint64_t key = 0;
    /** Total operations checked (after dropping failed reads). */
    std::size_t ops = 0;
};

/**
 * Check that `history` is linearizable per key under sequential
 * register semantics (initial value 0). Write values must be unique
 * per key for the search to be sound. Failed reads are dropped; a
 * failed write is treated as possibly-applied-or-discarded with an
 * unbounded completion time. At most 64 ops per key (search state is
 * a bitmask).
 */
LinearizeReport checkLinearizable(std::vector<HistOp> history);

} // namespace clio

#endif // CLIO_CHAOS_LINEARIZE_HH
