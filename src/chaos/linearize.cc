#include "chaos/linearize.hh"

#include <algorithm>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace clio {

namespace {

/** Search one key's ops for a legal linearization (Wing & Gong). */
bool
keyLinearizable(std::vector<HistOp> &ops)
{
    const std::size_t n = ops.size();
    if (n == 0)
        return true;
    clio_assert(n <= 64, "per-key history too long for bitmask search");

    // Stable order: candidates are explored lowest-invocation first so
    // the search (and therefore test behavior) is deterministic.
    std::sort(ops.begin(), ops.end(), [](const HistOp &a, const HistOp &b) {
        if (a.invoked != b.invoked)
            return a.invoked < b.invoked;
        return a.completed < b.completed;
    });

    const std::uint64_t all = n == 64 ? ~0ull : (1ull << n) - 1;
    // Visited (done-mask, register-value) states; re-entering one can
    // never succeed where the first visit failed.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;

    struct Frame
    {
        std::uint64_t mask;  ///< done set
        std::uint64_t value; ///< register value after `mask`
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0});

    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        if (f.mask == all)
            return true;
        if (!seen.insert({f.mask, f.value}).second)
            continue;

        // Earliest completion among pending ops bounds which ops may
        // linearize next: anything invoked after it must wait.
        Tick min_completed = kTickMax;
        for (std::size_t i = 0; i < n; i++) {
            if (!(f.mask & (1ull << i)))
                min_completed =
                    std::min(min_completed, ops[i].completed);
        }
        for (std::size_t i = 0; i < n; i++) {
            if (f.mask & (1ull << i))
                continue;
            const HistOp &op = ops[i];
            if (op.invoked > min_completed)
                continue;
            const std::uint64_t next = f.mask | (1ull << i);
            if (op.is_write) {
                if (op.ok) {
                    stack.push_back({next, op.value});
                } else {
                    // Ambiguous write: it may have applied...
                    stack.push_back({next, op.value});
                    // ...or been discarded by the crash.
                    stack.push_back({next, f.value});
                }
            } else {
                if (op.value == f.value)
                    stack.push_back({next, f.value});
            }
        }
    }
    return false;
}

} // namespace

LinearizeReport
checkLinearizable(std::vector<HistOp> history)
{
    LinearizeReport report;
    std::map<std::uint64_t, std::vector<HistOp>> per_key;
    for (HistOp &op : history) {
        if (!op.ok) {
            if (!op.is_write)
                continue; // failed read: returned nothing, drop it
            // Failed write: may apply any time after invocation.
            op.completed = kTickMax;
        }
        per_key[op.key].push_back(op);
    }
    for (auto &[key, ops] : per_key) {
        report.ops += ops.size();
        if (!keyLinearizable(ops)) {
            report.linearizable = false;
            report.key = key;
            return report;
        }
    }
    return report;
}

} // namespace clio
