#include "chaos/fault_plan.hh"

#include <algorithm>

#include "cluster/cluster.hh"
#include "sim/logging.hh"

namespace clio {

FaultPlan &
FaultPlan::crashMn(Tick at, std::uint32_t mn_idx)
{
    actions_.push_back({at, FaultAction::Kind::kCrashMn, mn_idx});
    return *this;
}

FaultPlan &
FaultPlan::restartMn(Tick at, std::uint32_t mn_idx)
{
    actions_.push_back({at, FaultAction::Kind::kRestartMn, mn_idx});
    return *this;
}

FaultPlan &
FaultPlan::killRack(Tick at, RackId rack)
{
    actions_.push_back({at, FaultAction::Kind::kKillRack, rack});
    return *this;
}

FaultPlan &
FaultPlan::restoreRack(Tick at, RackId rack)
{
    actions_.push_back({at, FaultAction::Kind::kRestoreRack, rack});
    return *this;
}

FaultPlan &
FaultPlan::crashCn(Tick at, std::uint32_t cn_idx)
{
    actions_.push_back({at, FaultAction::Kind::kCrashCn, cn_idx});
    return *this;
}

FaultPlan &
FaultPlan::restartCn(Tick at, std::uint32_t cn_idx)
{
    actions_.push_back({at, FaultAction::Kind::kRestartCn, cn_idx});
    return *this;
}

FaultPlan &
FaultPlan::packetFaults(const PacketFaultWindow &window)
{
    clio_assert(window.end > window.start,
                "packet-fault window must have positive length");
    windows_.push_back(window);
    return *this;
}

Tick
FaultPlan::horizon() const
{
    Tick h = 0;
    for (const auto &a : actions_)
        h = std::max(h, a.at);
    for (const auto &w : windows_)
        h = std::max(h, w.end);
    return h;
}

FaultPlan
FaultPlan::randomized(std::uint64_t seed, const RandomOpts &opts)
{
    clio_assert(opts.duration > 0, "randomized plan needs a duration");
    clio_assert(!opts.candidates.empty(),
                "randomized plan needs crash candidates");
    FaultPlan plan;
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC8A05);

    // Pick distinct victims by a seeded Fisher-Yates shuffle prefix.
    std::vector<std::uint32_t> victims = opts.candidates;
    for (std::size_t i = victims.size(); i > 1; i--) {
        const std::size_t j =
            static_cast<std::size_t>(rng.uniformInt(i));
        std::swap(victims[i - 1], victims[j]);
    }
    const std::uint32_t n_crashes = std::min<std::uint32_t>(
        opts.crashes, static_cast<std::uint32_t>(victims.size()));

    for (std::uint32_t i = 0; i < n_crashes; i++) {
        // Crash somewhere in the first ~70% of the run, leaving time
        // for the restart + recovery traffic before the horizon.
        const Tick lo = opts.duration / 10;
        const Tick hi = (opts.duration * 7) / 10;
        const Tick at = rng.uniformRange(lo, hi);
        Tick down = opts.max_downtime > opts.min_downtime
                        ? rng.uniformRange(opts.min_downtime,
                                           opts.max_downtime)
                        : opts.min_downtime;
        // Every schedule recovers: the restart always lands inside
        // the plan (clamped, never dropped).
        Tick back = at + std::max<Tick>(down, 1);
        if (back >= opts.duration)
            back = opts.duration - 1;
        plan.crashMn(at, victims[i]);
        plan.restartMn(std::max(back, at + 1), victims[i]);
    }

    if (opts.drop_rate > 0 || opts.corrupt_rate > 0 ||
        opts.duplicate_rate > 0) {
        PacketFaultWindow w;
        w.start = 0;
        w.end = opts.duration;
        w.drop_rate = opts.drop_rate;
        w.corrupt_rate = opts.corrupt_rate;
        w.duplicate_rate = opts.duplicate_rate;
        plan.packetFaults(w);
    }

    // Every extension below draws from the rng only when its knob is
    // set, strictly after all the draws above — schedules that don't
    // use the new knobs replay byte-identically to older builds.
    if (opts.cn_crashes > 0 && !opts.cn_candidates.empty()) {
        std::vector<std::uint32_t> cn_victims = opts.cn_candidates;
        for (std::size_t i = cn_victims.size(); i > 1; i--) {
            const std::size_t j =
                static_cast<std::size_t>(rng.uniformInt(i));
            std::swap(cn_victims[i - 1], cn_victims[j]);
        }
        const std::uint32_t n = std::min<std::uint32_t>(
            opts.cn_crashes,
            static_cast<std::uint32_t>(cn_victims.size()));
        for (std::uint32_t i = 0; i < n; i++) {
            const Tick at = rng.uniformRange(opts.duration / 10,
                                             (opts.duration * 7) / 10);
            Tick down = opts.max_downtime > opts.min_downtime
                            ? rng.uniformRange(opts.min_downtime,
                                               opts.max_downtime)
                            : opts.min_downtime;
            Tick back = at + std::max<Tick>(down, 1);
            if (back >= opts.duration)
                back = opts.duration - 1;
            plan.crashCn(at, cn_victims[i]);
            plan.restartCn(std::max(back, at + 1), cn_victims[i]);
        }
    }

    if (opts.rack_kills > 0 && !opts.rack_candidates.empty()) {
        std::vector<std::uint32_t> racks = opts.rack_candidates;
        for (std::size_t i = racks.size(); i > 1; i--) {
            const std::size_t j =
                static_cast<std::size_t>(rng.uniformInt(i));
            std::swap(racks[i - 1], racks[j]);
        }
        const std::uint32_t n = std::min<std::uint32_t>(
            opts.rack_kills, static_cast<std::uint32_t>(racks.size()));
        for (std::uint32_t i = 0; i < n; i++) {
            const Tick at = rng.uniformRange(opts.duration / 10,
                                             (opts.duration * 7) / 10);
            Tick down = opts.max_downtime > opts.min_downtime
                            ? rng.uniformRange(opts.min_downtime,
                                               opts.max_downtime)
                            : opts.min_downtime;
            Tick back = at + std::max<Tick>(down, 1);
            if (back >= opts.duration)
                back = opts.duration - 1;
            plan.killRack(at, racks[i]);
            plan.restoreRack(std::max(back, at + 1), racks[i]);
        }
    }

    if (opts.hb_loss_rate > 0 && opts.hb_loss_duration > 0) {
        const Tick len =
            std::min(opts.hb_loss_duration, opts.duration - 1);
        const Tick start =
            rng.uniformRange(opts.duration / 10,
                             std::max<Tick>(opts.duration / 10 + 1,
                                            opts.duration - len));
        PacketFaultWindow w;
        w.start = start;
        w.end = std::min<Tick>(start + len, opts.duration);
        w.drop_rate = opts.hb_loss_rate;
        w.heartbeats_only = true;
        plan.packetFaults(w);
    }
    return plan;
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

FaultInjector::FaultInjector(Cluster &cluster, FaultPlan plan,
                             std::uint64_t seed)
    : cluster_(cluster), plan_(std::move(plan)),
      rng_(seed * 0x2545F4914F6CDD1Dull + 0xFA017)
{
}

FaultInjector::~FaultInjector()
{
    if (armed_)
        cluster_.network().clearFaultHook();
}

void
FaultInjector::arm()
{
    clio_assert(!armed_, "injector already armed");
    armed_ = true;
    EventQueue &eq = cluster_.eventQueue();
    for (const FaultAction &action : plan_.actions()) {
        // Plans are authored against t=0, but the harness may have
        // burned sim time on setup (allocations, replica creation)
        // before arming. Clamp to "no earlier than now": setup time is
        // itself deterministic, so the clamp replays identically.
        const Tick at = std::max(action.at, eq.now());
        eq.schedule(at, [this, action] { fire(action); });
    }
    if (!plan_.windows().empty()) {
        cluster_.network().setFaultHook(
            [this](const Packet &pkt, NetStage stage) {
                return onStage(pkt, stage);
            });
    }
}

void
FaultInjector::fire(const FaultAction &action)
{
    switch (action.kind) {
      case FaultAction::Kind::kCrashMn:
        cluster_.crashMn(action.target);
        stats_.crashes++;
        break;
      case FaultAction::Kind::kRestartMn:
        cluster_.restartMn(action.target);
        stats_.restarts++;
        break;
      case FaultAction::Kind::kKillRack:
        cluster_.killRack(action.target);
        stats_.rack_kills++;
        break;
      case FaultAction::Kind::kRestoreRack:
        cluster_.restoreRack(action.target);
        stats_.rack_restores++;
        break;
      case FaultAction::Kind::kCrashCn:
        cluster_.crashCn(action.target);
        stats_.cn_crashes++;
        break;
      case FaultAction::Kind::kRestartCn:
        cluster_.restartCn(action.target);
        stats_.cn_restarts++;
        break;
    }
}

FaultVerdict
FaultInjector::onStage(const Packet &pkt, NetStage stage)
{
    (void)stage;
    FaultVerdict v;
    const Tick now = cluster_.eventQueue().now();
    for (const PacketFaultWindow &w : plan_.windows()) {
        if (now < w.start || now >= w.end)
            continue;
        if (w.heartbeats_only && pkt.type != MsgType::kHeartbeat)
            continue; // no draw: data packets don't consume rng state
        // One Bernoulli draw per configured fault per active window:
        // the draw sequence depends only on packet traversal order,
        // which is itself deterministic.
        if (w.drop_rate > 0 && rng_.chance(w.drop_rate)) {
            stats_.drops++;
            v.drop = true;
            return v; // dropped: no further faults apply
        }
        if (w.corrupt_rate > 0 && rng_.chance(w.corrupt_rate)) {
            stats_.corrupts++;
            v.corrupt = true;
        }
        if (w.duplicate_rate > 0 && rng_.chance(w.duplicate_rate)) {
            stats_.duplicates++;
            v.duplicate = true;
        }
        if (w.extra_delay > 0) {
            stats_.delays++;
            v.extra_delay += w.extra_delay;
        }
    }
    return v;
}

} // namespace clio
