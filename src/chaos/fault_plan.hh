/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * A FaultPlan is pure data: a schedule of node/rack failure events
 * (MN crashes, restarts, rack ToR kills) plus packet-fault windows
 * (drop/corrupt/duplicate/delay probabilities active over a time
 * range). A FaultInjector arms a plan against a Cluster: failure
 * actions become ordinary simulator events and packet faults install
 * the Network's per-stage fault hook, drawing from an Rng seeded by
 * the plan's seed. Everything downstream of one (plan, seed) pair is
 * deterministic, so a chaotic run replays byte-identically — that is
 * what lets the chaos ctest tier assert linearizable recovery AND
 * byte-compare two runs of the same schedule.
 *
 * Plans come from two sources: explicit builder calls (regression
 * tests pinning one scenario) and FaultPlan::randomized() (the chaos
 * tier, which derives a schedule from CLIO_SEED so every CI seed
 * explores a different kill/drop/corrupt pattern). Randomized plans
 * always restart what they crash before the horizon, so recovery is
 * part of every schedule.
 */

#ifndef CLIO_CHAOS_FAULT_PLAN_HH
#define CLIO_CHAOS_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

#include "net/network.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace clio {

class Cluster;

/** One scheduled failure-domain action. */
struct FaultAction
{
    enum class Kind : std::uint8_t {
        kCrashMn,    ///< kill one MN board (volatile state lost)
        kRestartMn,  ///< bring a crashed board back (empty)
        kKillRack,   ///< ToR dies: the rack's MNs crash, traffic drops
        kRestoreRack,///< ToR + the rack's MNs come back
        kCrashCn,    ///< kill one CN (its processes die mid-request)
        kRestartCn   ///< bring a crashed CN back (fresh transport)
    };
    Tick at = 0;
    Kind kind = Kind::kCrashMn;
    /** MN/CN index (crash/restart) or rack id (kill/restore). */
    std::uint32_t target = 0;
};

/** Packet-fault probabilities active while start <= now < end. */
struct PacketFaultWindow
{
    Tick start = 0;
    Tick end = 0;
    double drop_rate = 0.0;
    double corrupt_rate = 0.0;
    double duplicate_rate = 0.0;
    /** Extra delivery delay added to every packet in the window. */
    Tick extra_delay = 0;
    /** Apply only to heartbeat packets (lease-loss windows: starves
     * the failure detector while data traffic flows untouched, the
     * classic false-positive scenario for lease protocols). */
    bool heartbeats_only = false;
};

/** Counters of what an armed injector actually did. */
struct ChaosStats
{
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t rack_kills = 0;
    std::uint64_t rack_restores = 0;
    std::uint64_t cn_crashes = 0;
    std::uint64_t cn_restarts = 0;
    std::uint64_t drops = 0;
    std::uint64_t corrupts = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
};

/** A declarative chaos schedule (pure data, cheap to copy). */
class FaultPlan
{
  public:
    /** @{ Fluent builders (explicit scenarios). */
    FaultPlan &crashMn(Tick at, std::uint32_t mn_idx);
    FaultPlan &restartMn(Tick at, std::uint32_t mn_idx);
    FaultPlan &killRack(Tick at, RackId rack);
    FaultPlan &restoreRack(Tick at, RackId rack);
    FaultPlan &crashCn(Tick at, std::uint32_t cn_idx);
    FaultPlan &restartCn(Tick at, std::uint32_t cn_idx);
    FaultPlan &packetFaults(const PacketFaultWindow &window);
    /** @} */

    const std::vector<FaultAction> &actions() const { return actions_; }
    const std::vector<PacketFaultWindow> &windows() const
    {
        return windows_;
    }

    /** Last scheduled instant in the plan (action times and window
     * ends); runs should simulate past this before checking recovery. */
    Tick horizon() const;

    /** Knobs for randomized(). */
    struct RandomOpts
    {
        /** Plan duration; every restart lands before this. */
        Tick duration = 0;
        /** MN indices eligible to be crashed. */
        std::vector<std::uint32_t> candidates;
        /** How many of the candidates get a crash+restart pair. */
        std::uint32_t crashes = 1;
        /** Downtime bounds for each crash. */
        Tick min_downtime = 0;
        Tick max_downtime = 0;
        /** Packet-fault window covering [0, duration). */
        double drop_rate = 0.0;
        double corrupt_rate = 0.0;
        double duplicate_rate = 0.0;
        /** @{ CN crash+restart pairs (like the MN knobs above). The
         * extra RNG draws happen strictly AFTER every draw the base
         * schedule makes, and only when cn_crashes > 0 — plans that
         * don't ask for them replay byte-identically to before these
         * knobs existed. */
        std::vector<std::uint32_t> cn_candidates;
        std::uint32_t cn_crashes = 0;
        /** @} */
        /** @{ Rack kill+restore pairs (same downtime bounds). */
        std::vector<std::uint32_t> rack_candidates;
        std::uint32_t rack_kills = 0;
        /** @} */
        /** @{ One heartbeat-only drop window of `hb_loss_duration`
         * starting at a seed-derived time: starves the failure
         * detector without touching data traffic. */
        double hb_loss_rate = 0.0;
        Tick hb_loss_duration = 0;
        /** @} */
    };

    /**
     * Derive a schedule from `seed`: up to opts.crashes distinct
     * candidates each get one crash at a uniform time in the first
     * ~70% of the duration and a restart after a uniform downtime
     * (clamped so recovery completes before the horizon), plus one
     * packet-fault window spanning the whole duration.
     */
    static FaultPlan randomized(std::uint64_t seed,
                                const RandomOpts &opts);

  private:
    std::vector<FaultAction> actions_;
    std::vector<PacketFaultWindow> windows_;
};

/**
 * Arms a FaultPlan against a live Cluster. The injector must outlive
 * the simulation run: scheduled events and the network hook capture
 * `this`. The destructor clears the hook.
 */
class FaultInjector
{
  public:
    FaultInjector(Cluster &cluster, FaultPlan plan, std::uint64_t seed);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule every action and install the packet-fault hook. */
    void arm();

    const ChaosStats &stats() const { return stats_; }
    const FaultPlan &plan() const { return plan_; }

  private:
    void fire(const FaultAction &action);
    FaultVerdict onStage(const Packet &pkt, NetStage stage);

    Cluster &cluster_;
    FaultPlan plan_;
    Rng rng_;
    bool armed_ = false;
    ChaosStats stats_;
};

} // namespace clio

#endif // CLIO_CHAOS_FAULT_PLAN_HH
