/**
 * @file
 * Offload engine scheduler (extend path, §4.6).
 *
 * The CBoard hosts a configurable number of offload engines
 * (OffloadConfig::engines): replicated datapaths an invocation — or a
 * whole chained plan — occupies for its modeled duration. The
 * scheduler is a deterministic earliest-free arbiter: a call admitted
 * at `ready` starts on the engine that frees up first, ties broken by
 * the lowest engine index, so arbitration order is a pure function of
 * prior admissions (byte-identical across event-queue engines — the
 * determinism suite pins this). Queueing (engine wait) and busy time
 * are tracked for modeled latency and the Fig. 21 energy accounting;
 * DRAM time inside an invocation still contends with the fast path
 * through the board's shared DRAM watermark.
 */

#ifndef CLIO_OFFLOAD_ENGINE_HH
#define CLIO_OFFLOAD_ENGINE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** Aggregate scheduler counters. */
struct EngineSchedulerStats
{
    std::uint64_t dispatches = 0;
    /** Total ticks dispatches waited for a free engine. */
    Tick wait_ticks = 0;
    /** Total engine-busy ticks across all engines. */
    Tick busy_ticks = 0;
};

/** Deterministic earliest-free / lowest-index engine arbiter. */
class EngineScheduler
{
  public:
    explicit EngineScheduler(std::uint32_t engines);

    /** One admitted dispatch: the chosen engine and its start tick. */
    struct Grant
    {
        std::uint32_t engine = 0;
        Tick start = 0;
    };

    /** Admit a dispatch that is ready at `ready`: picks the engine
     * with the earliest free tick (ties: lowest index). The caller
     * must follow up with complete() once it knows the finish tick. */
    Grant admit(Tick ready);

    /** Mark the granted engine busy until `done`. */
    void complete(const Grant &grant, Tick done);

    /** Clear occupancy watermarks (board restart); stats survive. */
    void reset();

    std::uint32_t engineCount() const
    {
        return static_cast<std::uint32_t>(free_at_.size());
    }
    /** Tick engine `i` frees up (test/bench hook). */
    Tick freeAt(std::uint32_t i) const { return free_at_.at(i); }
    const EngineSchedulerStats &stats() const { return stats_; }

  private:
    std::vector<Tick> free_at_;
    EngineSchedulerStats stats_;
};

} // namespace clio

#endif // CLIO_OFFLOAD_ENGINE_HH
