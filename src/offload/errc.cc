#include "offload/errc.hh"

namespace clio {

std::string
offloadErrcName(std::uint32_t code)
{
    if (const char *name = to_string(static_cast<OffloadErrc>(code)))
        return name;
    constexpr auto kAppBase = static_cast<std::uint32_t>(OffloadErrc::kAppBase);
    if (code >= kAppBase)
        return "App(" + std::to_string(code - kAppBase) + ")";
    return "OffloadErrc(" + std::to_string(code) + ")";
}

} // namespace clio
