/**
 * @file
 * Typed offload registry (extend path, §4.6).
 *
 * Deploying an offload on a CBoard registers it here under its
 * dispatch id together with its OffloadDescriptor and the global PID
 * whose RAS its VM accesses run in. The registry owns the id -> entry
 * map the runtime dispatches rcalls through, assigns fresh PIDs from a
 * reserved range for offloads that bring their own address space, and
 * keeps per-offload runtime statistics (calls, errors, busy time, cost
 * split) for the Fig. 21/22 accounting.
 *
 * Entries live in a std::map so iteration — restart re-initialization,
 * stats dumps, Fig. 22 rows — is in sorted id order, independent of
 * registration order hashing: a determinism requirement.
 */

#ifndef CLIO_OFFLOAD_REGISTRY_HH
#define CLIO_OFFLOAD_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "offload/descriptor.hh"
#include "offload/offload.hh"
#include "sim/types.hh"

namespace clio {

/** Per-offload runtime counters (accumulated across restarts). */
struct OffloadStats
{
    std::uint64_t calls = 0;        ///< single invocations dispatched
    std::uint64_t chain_stages = 0; ///< invocations as a chain stage
    std::uint64_t errors = 0;       ///< invocations with status != kOk
    /** Modeled device time, attributed per component. */
    OffloadCost cost;
};

/** One deployed offload. */
struct OffloadEntry
{
    OffloadDescriptor desc;
    std::shared_ptr<Offload> offload;
    /** PID whose RAS invocations run in (own or shared with a CN
     * process, like Clio-DF's operators). */
    ProcId pid = 0;
    OffloadStats stats;
};

/** Id -> deployed offload map of one CBoard. */
class OffloadRegistry
{
  public:
    /** First PID of the range reserved for offload address spaces. */
    static constexpr ProcId kOffloadPidBase = 0xF0000000;

    /** Deploy `offload` in its own fresh address space. Returns the
     * assigned PID. Re-registering an id replaces the entry (stats
     * reset). */
    ProcId deploy(OffloadDescriptor desc, std::shared_ptr<Offload> offload);

    /** Deploy `offload` sharing an existing address space `pid`. */
    void deployShared(OffloadDescriptor desc, std::shared_ptr<Offload> offload,
                      ProcId pid);

    /** Deployed entry for `id`, or nullptr. */
    OffloadEntry *find(std::uint32_t id);
    const OffloadEntry *find(std::uint32_t id) const;

    /** Deployed entries in sorted id order (deterministic). */
    const std::map<std::uint32_t, OffloadEntry> &entries() const
    {
        return entries_;
    }
    std::map<std::uint32_t, OffloadEntry> &entries() { return entries_; }

    /** Descriptors of every deployed offload, sorted by id (Fig. 22
     * resource rows, bench JSON). */
    std::vector<OffloadDescriptor> descriptors() const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::uint32_t, OffloadEntry> entries_;
    ProcId next_pid_ = kOffloadPidBase;
};

} // namespace clio

#endif // CLIO_OFFLOAD_REGISTRY_HH
