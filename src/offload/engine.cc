#include "offload/engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

EngineScheduler::EngineScheduler(std::uint32_t engines)
    : free_at_(std::max<std::uint32_t>(engines, 1), 0)
{
}

EngineScheduler::Grant
EngineScheduler::admit(Tick ready)
{
    // Earliest-free engine; std::min_element keeps the FIRST minimum,
    // which is exactly the lowest-index tie-break the determinism
    // suite pins.
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    Grant grant;
    grant.engine = static_cast<std::uint32_t>(it - free_at_.begin());
    grant.start = std::max(ready, *it);
    stats_.dispatches++;
    stats_.wait_ticks += grant.start - ready;
    return grant;
}

void
EngineScheduler::complete(const Grant &grant, Tick done)
{
    clio_assert(grant.engine < free_at_.size(), "bad engine grant");
    clio_assert(done >= grant.start, "engine completes before it starts");
    stats_.busy_ticks += done - grant.start;
    free_at_[grant.engine] = std::max(free_at_[grant.engine], done);
}

void
EngineScheduler::reset()
{
    std::fill(free_at_.begin(), free_at_.end(), 0);
}

} // namespace clio
