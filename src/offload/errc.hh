/**
 * @file
 * Offload-defined error codes (extend path, §4.6).
 *
 * Status::kOffloadError tells the CN only that the extend path
 * rejected the call; the runtime additionally carries a 32-bit
 * offload-defined error code (plus optional message bytes) in the
 * reply so applications can distinguish "bad argument" from "key not
 * found" without a second round trip. Codes below kAppBase are
 * reserved for the runtime itself; offloads are free to return
 * anything >= kAppBase.
 */

#ifndef CLIO_OFFLOAD_ERRC_HH
#define CLIO_OFFLOAD_ERRC_HH

#include <cstdint>
#include <string>

namespace clio {

/** Runtime-reserved offload error codes. */
enum class OffloadErrc : std::uint32_t {
    kNone = 0,         ///< no offload-level error
    kBadArgument = 1,  ///< argument bytes fail the descriptor's schema
    kBadAddress = 2,   ///< VM access faulted (no PTE)
    kPermDenied = 3,   ///< VM access failed the permission check
    kAllocFailed = 4,  ///< vm.alloc() could not be satisfied
    kNotFound = 5,     ///< lookup miss (KV get/delete on absent key)
    kUnregistered = 6, ///< no offload under the requested id
    kChainTooDeep = 7, ///< plan exceeds OffloadConfig::max_chain_depth
    kBadChainBind = 8, ///< bind source/destination out of range
    kValueTooLarge = 9, ///< payload exceeds the offload's limits
    /** First code available for application-defined errors. */
    kAppBase = 256,
};

/** Name of a runtime-reserved code ("BadArgument", ...). */
inline const char *
to_string(OffloadErrc errc)
{
    switch (errc) {
      case OffloadErrc::kNone:
        return "None";
      case OffloadErrc::kBadArgument:
        return "BadArgument";
      case OffloadErrc::kBadAddress:
        return "BadAddress";
      case OffloadErrc::kPermDenied:
        return "PermDenied";
      case OffloadErrc::kAllocFailed:
        return "AllocFailed";
      case OffloadErrc::kNotFound:
        return "NotFound";
      case OffloadErrc::kUnregistered:
        return "Unregistered";
      case OffloadErrc::kChainTooDeep:
        return "ChainTooDeep";
      case OffloadErrc::kBadChainBind:
        return "BadChainBind";
      case OffloadErrc::kValueTooLarge:
        return "ValueTooLarge";
      case OffloadErrc::kAppBase:
        break;
    }
    return nullptr;
}

/** Name for any raw code off the wire: reserved codes by name,
 * application codes as "App(code - kAppBase)", unknown reserved codes
 * as "OffloadErrc(code)". */
std::string offloadErrcName(std::uint32_t code);

} // namespace clio

#endif // CLIO_OFFLOAD_ERRC_HH
