/**
 * @file
 * Extend-path computation offloading framework (§4.6).
 *
 * An Offload is application logic deployed on the CBoard (FPGA or ARM
 * in the paper). Each offload gets its own global PID and remote
 * virtual address space and accesses on-board memory through the same
 * virtual memory interface CN applications use — that is the paper's
 * key ergonomic claim. The VmView passed to an invocation provides
 * that interface and accounts the modeled device time the offload
 * spends, split by component (translations, DRAM accesses, compute
 * cycles, ARM control crossings) so the latency-breakdown and energy
 * models can attribute offload time.
 *
 * Offloads are deployed through the OffloadRegistry (registry.hh)
 * with a per-offload descriptor (descriptor.hh) and dispatched by the
 * OffloadRuntime (runtime.hh), which also executes chained plans
 * (chain.hh) and schedules a configurable number of offload engines
 * (engine.hh).
 */

#ifndef CLIO_OFFLOAD_OFFLOAD_HH
#define CLIO_OFFLOAD_OFFLOAD_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "offload/errc.hh"
#include "pagetable/pte.hh"
#include "proto/messages.hh"
#include "sim/types.hh"

namespace clio {

class CBoard;

/**
 * Modeled device time of one offload invocation, by component:
 *  - translate: TLB lookups + page-table bucket fetches (TLB misses);
 *  - dram: data movement through the board DRAM (incl. queueing on
 *    the shared DRAM-bandwidth watermark);
 *  - compute: chargeCycles() FPGA processing;
 *  - control: ARM slow-path work (vm.alloc/vm.free) + interconnect
 *    crossings.
 */
struct OffloadCost
{
    Tick translate = 0;
    Tick dram = 0;
    Tick compute = 0;
    Tick control = 0;

    Tick total() const { return translate + dram + compute + control; }

    OffloadCost &
    operator+=(const OffloadCost &o)
    {
        translate += o.translate;
        dram += o.dram;
        compute += o.compute;
        control += o.control;
        return *this;
    }
};

/**
 * Virtual-memory window an offload invocation runs against.
 *
 * All accesses are in the offload's own RAS (or a CN process' RAS when
 * the offload was registered to share one, like Clio-DF's operators,
 * §6). Accesses translate through the board's TLB/page table and touch
 * the board DRAM, accumulating modeled time in cost().
 */
class OffloadVm
{
  public:
    /**
     * @param start_at logical tick the invocation begins (engine grant
     *        for dispatched calls; a chain stage starts where the
     *        previous stage finished, so its DRAM accesses queue
     *        behind the board's shared watermarks from that point —
     *        not from eq.now(), which would re-bill earlier stages'
     *        occupancy). Defaults to the board's current time.
     */
    OffloadVm(CBoard &board, ProcId pid);
    OffloadVm(CBoard &board, ProcId pid, Tick start_at);

    /** Allocate remote virtual memory (slow-path, on-board: no
     * network round trip). Returns 0 on failure. */
    VirtAddr alloc(std::uint64_t size, std::uint8_t perm = kPermReadWrite);

    /** Free an allocation made with alloc(). */
    bool free(VirtAddr addr);

    /** Read bytes from the offload's RAS; false on translation or
     * permission failure. */
    bool read(VirtAddr addr, void *dst, std::uint64_t len);

    /** Write bytes into the offload's RAS. */
    bool write(VirtAddr addr, const void *src, std::uint64_t len);

    /** @{ Typed convenience accessors. */
    std::optional<std::uint64_t> read64(VirtAddr addr);
    bool write64(VirtAddr addr, std::uint64_t value);
    /** @} */

    /** Charge `cycles` of FPGA compute (e.g. per-element processing). */
    void chargeCycles(std::uint64_t cycles);

    /** Modeled device time consumed so far by this invocation. */
    Tick cost() const { return cost_.total(); }

    /** The same time, attributed per component. */
    const OffloadCost &costSplit() const { return cost_; }

    ProcId pid() const { return pid_; }

  private:
    friend class CBoard;
    CBoard &board_;
    ProcId pid_;
    /** Logical start tick; the invocation clock is start_at_ +
     * cost_.total(). */
    Tick start_at_;
    OffloadCost cost_;
};

/** Result of one offload invocation. */
struct OffloadResult
{
    Status status = Status::kOk;
    std::vector<std::uint8_t> data;
    std::uint64_t value = 0;
    /** Offload-defined error code (OffloadErrc or >= kAppBase);
     * meaningful when status != kOk. */
    std::uint32_t err_code = 0;
    /** Human-readable error detail, carried to the CN as the reply's
     * payload bytes when the call failed. */
    std::string err_msg;
};

/** Failed OffloadResult carrying a reserved runtime error code. */
inline OffloadResult
offloadError(OffloadErrc errc, std::string msg,
             Status status = Status::kOffloadError)
{
    OffloadResult res;
    res.status = status;
    res.err_code = static_cast<std::uint32_t>(errc);
    res.err_msg = std::move(msg);
    return res;
}

/** Interface implemented by application offloads (radix-tree pointer
 * chaser, Clio-KV, Clio-MV, Clio-DF operators, ...). */
class Offload
{
  public:
    virtual ~Offload() = default;

    /** One-time setup when deployed on a board (allocate and
     * initialize the offload's data structures in its RAS). */
    virtual void init(OffloadVm &vm) { (void)vm; }

    /**
     * Handle one invocation.
     * @param vm  the offload's virtual memory view (cost accumulator).
     * @param arg opaque argument bytes from the client.
     */
    virtual OffloadResult invoke(OffloadVm &vm,
                                 const std::vector<std::uint8_t> &arg) = 0;
};

} // namespace clio

#endif // CLIO_OFFLOAD_OFFLOAD_HH
