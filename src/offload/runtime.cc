#include "offload/runtime.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace clio {

OffloadRuntime::OffloadRuntime(const OffloadConfig &cfg, Tick cycle)
    : cfg_(cfg), cycle_(cycle), scheduler_(cfg.engines)
{
}

ProcId
OffloadRuntime::deploy(CBoard &board, OffloadDescriptor desc,
                       std::shared_ptr<Offload> offload)
{
    const std::uint32_t id = desc.id;
    const ProcId pid = registry_.deploy(std::move(desc), std::move(offload));
    OffloadVm vm(board, pid);
    registry_.find(id)->offload->init(vm);
    return pid;
}

void
OffloadRuntime::deployShared(CBoard &board, OffloadDescriptor desc,
                             std::shared_ptr<Offload> offload, ProcId pid)
{
    const std::uint32_t id = desc.id;
    registry_.deployShared(std::move(desc), std::move(offload), pid);
    OffloadVm vm(board, pid);
    registry_.find(id)->offload->init(vm);
}

Tick
OffloadRuntime::dispatchOne(CBoard &board, OffloadEntry &entry,
                            const std::vector<std::uint8_t> &arg, Tick start,
                            OffloadResult &result, bool as_chain_stage)
{
    if (as_chain_stage)
        entry.stats.chain_stages++;
    else
        entry.stats.calls++;
    if (entry.desc.arg_bytes != 0 && arg.size() != entry.desc.arg_bytes) {
        result = offloadError(
            OffloadErrc::kBadArgument,
            entry.desc.name + ": argument is " +
                std::to_string(arg.size()) + " bytes, schema wants " +
                std::to_string(entry.desc.arg_bytes));
        entry.stats.errors++;
        return 0;
    }
    OffloadVm vm(board, entry.pid, start);
    result = entry.offload->invoke(vm, arg);
    if (result.status != Status::kOk)
        entry.stats.errors++;
    entry.stats.cost += vm.costSplit();
    return vm.cost();
}

Tick
OffloadRuntime::runSingle(CBoard &board, std::uint32_t id,
                          const std::vector<std::uint8_t> &arg, Tick ready,
                          OffloadResult &result)
{
    OffloadEntry *entry = registry_.find(id);
    if (!entry) {
        result = offloadError(OffloadErrc::kUnregistered,
                              "no offload registered under id " +
                                  std::to_string(id));
        return ready;
    }
    const EngineScheduler::Grant grant = scheduler_.admit(ready);
    Tick done = grant.start + cfg_.dispatch_cycles * cycle_;
    done += dispatchOne(board, *entry, arg, done, result, false);
    scheduler_.complete(grant, done);
    return done;
}

Tick
OffloadRuntime::runChain(CBoard &board, const RequestMsg &req, Tick ready,
                         OffloadResult &result,
                         std::vector<OffloadStageReply> *stage_replies)
{
    if (req.chain.size() > cfg_.max_chain_depth) {
        result = offloadError(OffloadErrc::kChainTooDeep,
                              "chain depth " +
                                  std::to_string(req.chain.size()) +
                                  " exceeds limit " +
                                  std::to_string(cfg_.max_chain_depth));
        return ready;
    }

    const EngineScheduler::Grant grant = scheduler_.admit(ready);
    Tick done = grant.start;
    std::vector<OffloadStageReply> replies;
    replies.reserve(req.chain.size());

    for (std::size_t i = 0; i < req.chain.size(); i++) {
        const OffloadChainStage &stage = req.chain[i];
        done += cfg_.dispatch_cycles * cycle_;

        OffloadResult stage_result;
        OffloadEntry *entry = registry_.find(stage.offload_id);
        if (!entry) {
            stage_result = offloadError(
                OffloadErrc::kUnregistered,
                "no offload registered under id " +
                    std::to_string(stage.offload_id));
        } else {
            // Patch the stage's argument template from earlier replies.
            std::vector<std::uint8_t> arg = stage.arg;
            bool bind_ok = true;
            for (const OffloadChainBind &bind : stage.binds) {
                const std::size_t src =
                    bind.src_stage == kOffloadPrevStage
                        ? i - 1 // i == 0 wraps past replies.size(): caught
                        : bind.src_stage;
                if (src >= replies.size() ||
                    std::uint64_t(bind.dst_offset) + bind.len > arg.size()) {
                    bind_ok = false;
                    break;
                }
                const OffloadStageReply &from = replies[src];
                if (bind.from_value) {
                    std::uint8_t value_bytes[8];
                    std::memcpy(value_bytes, &from.value, 8);
                    if (std::uint64_t(bind.src_offset) + bind.len > 8) {
                        bind_ok = false;
                        break;
                    }
                    std::memcpy(arg.data() + bind.dst_offset,
                                value_bytes + bind.src_offset, bind.len);
                } else {
                    if (std::uint64_t(bind.src_offset) + bind.len >
                        from.data.size()) {
                        bind_ok = false;
                        break;
                    }
                    std::memcpy(arg.data() + bind.dst_offset,
                                from.data.data() + bind.src_offset,
                                bind.len);
                }
            }
            if (!bind_ok) {
                stage_result = offloadError(
                    OffloadErrc::kBadChainBind,
                    entry->desc.name + ": bind out of range");
                entry->stats.errors++;
            } else {
                done += dispatchOne(board, *entry, arg, done, stage_result,
                                    true);
            }
        }

        OffloadStageReply reply;
        reply.status = stage_result.status;
        reply.err_code = stage_result.err_code;
        reply.value = stage_result.value;
        reply.data = stage_result.data;
        replies.push_back(std::move(reply));

        if (stage_result.status != Status::kOk) {
            // Abort: surface the failing stage's error as the chain's.
            result = std::move(stage_result);
            result.err_msg =
                "stage " + std::to_string(i) + ": " + result.err_msg;
            break;
        }
        result = std::move(stage_result);
        if (stage.stop_on_zero_value && result.value == 0)
            break; // successful early exit (pointer-chase miss)
    }

    if (req.chain.empty())
        result = offloadError(OffloadErrc::kBadArgument, "empty chain");

    scheduler_.complete(grant, done);
    if (stage_replies && req.chain_per_stage)
        *stage_replies = std::move(replies);
    return done;
}

Tick
OffloadRuntime::invokeLocal(CBoard &board, std::uint32_t id,
                            const std::vector<std::uint8_t> &arg,
                            OffloadResult &result, OffloadCost *split)
{
    OffloadEntry *entry = registry_.find(id);
    if (!entry) {
        result = offloadError(OffloadErrc::kUnregistered,
                              "no offload registered under id " +
                                  std::to_string(id));
        return 0;
    }
    if (entry->desc.arg_bytes != 0 &&
        arg.size() != entry->desc.arg_bytes) {
        result = offloadError(
            OffloadErrc::kBadArgument,
            entry->desc.name + ": argument is " +
                std::to_string(arg.size()) + " bytes, schema wants " +
                std::to_string(entry->desc.arg_bytes));
        entry->stats.calls++;
        entry->stats.errors++;
        return 0;
    }
    entry->stats.calls++;
    OffloadVm vm(board, entry->pid);
    result = entry->offload->invoke(vm, arg);
    if (result.status != Status::kOk)
        entry->stats.errors++;
    entry->stats.cost += vm.costSplit();
    if (split)
        *split = vm.costSplit();
    return vm.cost();
}

void
OffloadRuntime::reinit(CBoard &board)
{
    scheduler_.reset();
    // std::map iterates in sorted id order: deterministic re-deploy.
    for (auto &[id, entry] : registry_.entries()) {
        OffloadVm vm(board, entry.pid);
        entry.offload->init(vm);
    }
}

} // namespace clio
