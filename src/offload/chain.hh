/**
 * @file
 * Chained offload plans (extend path, §4.6).
 *
 * A ChainPlan is a small program the CN submits ONCE: a sequence of
 * registered offloads executed back to back on the MN, each stage's
 * argument optionally patched with bytes from an earlier stage's
 * reply (binds). Data-dependent pipelines like pointer-chase ->
 * filter -> aggregate therefore pay one network round trip instead of
 * one per stage — the crossover bench_offload measures.
 *
 * The builder is fluent: stage() appends a stage, and the bind/stop
 * modifiers apply to the most recently appended one:
 *
 *   ChainPlan plan;
 *   plan.stage(kChaseId, PointerChaseOffload::encode(args))
 *       .bindData(8, 0)        // prev.data[8..16) -> arg[0..8)
 *       .stopOnZeroValue();
 */

#ifndef CLIO_OFFLOAD_CHAIN_HH
#define CLIO_OFFLOAD_CHAIN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "proto/messages.hh"
#include "sim/logging.hh"

namespace clio {

/** CN-side builder for a chained offload call. */
class ChainPlan
{
  public:
    /** Append a stage invoking `offload_id` with `arg` as its
     * argument template. */
    ChainPlan &
    stage(std::uint32_t offload_id, std::vector<std::uint8_t> arg)
    {
        OffloadChainStage s;
        s.offload_id = offload_id;
        s.arg = std::move(arg);
        stages_.push_back(std::move(s));
        return *this;
    }

    /** Bind `len` bytes at `src_offset` of a prior stage's reply DATA
     * into the last stage's arg at `dst_offset`. */
    ChainPlan &
    bindData(std::uint32_t src_offset, std::uint32_t dst_offset,
             std::uint32_t len = 8,
             std::uint32_t src_stage = kOffloadPrevStage)
    {
        return bind({src_stage, false, src_offset, dst_offset, len});
    }

    /** Bind a prior stage's 8-byte VALUE register into the last
     * stage's arg at `dst_offset`. */
    ChainPlan &
    bindValue(std::uint32_t dst_offset,
              std::uint32_t src_stage = kOffloadPrevStage)
    {
        return bind({src_stage, true, 0, dst_offset, 8});
    }

    /** End the chain successfully after the last stage when its reply
     * value is 0 (pointer-chase miss semantics). */
    ChainPlan &
    stopOnZeroValue()
    {
        clio_assert(!stages_.empty(), "stopOnZeroValue before stage()");
        stages_.back().stop_on_zero_value = true;
        return *this;
    }

    /** Request every stage's reply (OffloadReply::stages) instead of
     * the final stage's only. */
    ChainPlan &
    perStageReplies()
    {
        per_stage_ = true;
        return *this;
    }

    std::size_t depth() const { return stages_.size(); }
    bool perStage() const { return per_stage_; }
    const std::vector<OffloadChainStage> &stages() const { return stages_; }

  private:
    ChainPlan &
    bind(OffloadChainBind b)
    {
        clio_assert(!stages_.empty(), "bind before stage()");
        stages_.back().binds.push_back(b);
        return *this;
    }

    std::vector<OffloadChainStage> stages_;
    bool per_stage_ = false;
};

} // namespace clio

#endif // CLIO_OFFLOAD_CHAIN_HH
