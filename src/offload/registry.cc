#include "offload/registry.hh"

#include <utility>

#include "sim/logging.hh"

namespace clio {

ProcId
OffloadRegistry::deploy(OffloadDescriptor desc,
                        std::shared_ptr<Offload> offload)
{
    ProcId pid = next_pid_++;
    deployShared(std::move(desc), std::move(offload), pid);
    return pid;
}

void
OffloadRegistry::deployShared(OffloadDescriptor desc,
                              std::shared_ptr<Offload> offload, ProcId pid)
{
    clio_assert(offload != nullptr, "deploying a null offload");
    OffloadEntry &entry = entries_[desc.id];
    entry.desc = std::move(desc);
    entry.offload = std::move(offload);
    entry.pid = pid;
    entry.stats = OffloadStats{};
}

OffloadEntry *
OffloadRegistry::find(std::uint32_t id)
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

const OffloadEntry *
OffloadRegistry::find(std::uint32_t id) const
{
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<OffloadDescriptor>
OffloadRegistry::descriptors() const
{
    std::vector<OffloadDescriptor> descs;
    descs.reserve(entries_.size());
    for (const auto &[id, entry] : entries_)
        descs.push_back(entry.desc);
    return descs;
}

} // namespace clio
