/**
 * @file
 * MN-resident offload runtime (extend path, §4.6).
 *
 * The runtime is the CBoard's extend-path brain: it owns the typed
 * OffloadRegistry, arbitrates the configurable offload engines through
 * the EngineScheduler, enforces descriptor argument schemas at
 * dispatch, and executes chained plans — sequences of stages whose
 * arguments are patched from earlier stages' replies entirely on the
 * MN, so a data-dependent pipeline pays one network round trip instead
 * of one per stage.
 *
 * The runtime survives board restarts (deployments are durable
 * configuration, like MAT rules); reinit() re-runs every offload's
 * init() against the freshly emptied board in sorted id order and
 * clears the engine occupancy watermarks.
 */

#ifndef CLIO_OFFLOAD_RUNTIME_HH
#define CLIO_OFFLOAD_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "offload/chain.hh"
#include "offload/engine.hh"
#include "offload/offload.hh"
#include "offload/registry.hh"
#include "sim/config.hh"

namespace clio {

class CBoard;

/** Extend-path dispatcher of one CBoard. */
class OffloadRuntime
{
  public:
    OffloadRuntime(const OffloadConfig &cfg, Tick cycle);

    /** @{ Deployment (thin wrappers over the registry that also run
     * the offload's init() on `board`). */
    ProcId deploy(CBoard &board, OffloadDescriptor desc,
                  std::shared_ptr<Offload> offload);
    void deployShared(CBoard &board, OffloadDescriptor desc,
                      std::shared_ptr<Offload> offload, ProcId pid);
    /** @} */

    /**
     * Dispatch one single (non-chained) invocation that is ready at
     * `ready`: engine admission, schema check, invocation, stats.
     * @return the tick the engine releases (modeled completion).
     */
    Tick runSingle(CBoard &board, std::uint32_t id,
                   const std::vector<std::uint8_t> &arg, Tick ready,
                   OffloadResult &result);

    /**
     * Execute a chained plan (req.chain) that is ready at `ready`. The
     * whole chain occupies ONE engine for its duration; stages run
     * back to back with bind patching between them. On a stage
     * failure the chain aborts and `result` carries that stage's
     * error (err_msg prefixed with the stage index). When
     * req.chain_per_stage, `stage_replies` receives every executed
     * stage's reply.
     * @return the tick the engine releases.
     */
    Tick runChain(CBoard &board, const RequestMsg &req, Tick ready,
                  OffloadResult &result,
                  std::vector<OffloadStageReply> *stage_replies);

    /** Invoke without engine admission or dispatch overhead — the
     * developer-simulator path (§5) and offload unit tests.
     * @param split when non-null, receives the invocation's cost split.
     * @return modeled device time of the invocation. */
    Tick invokeLocal(CBoard &board, std::uint32_t id,
                     const std::vector<std::uint8_t> &arg,
                     OffloadResult &result, OffloadCost *split = nullptr);

    /** Board restart: re-run every offload's init() against the empty
     * board in sorted id order; engine watermarks reset. */
    void reinit(CBoard &board);

    OffloadRegistry &registry() { return registry_; }
    const OffloadRegistry &registry() const { return registry_; }
    EngineScheduler &scheduler() { return scheduler_; }
    const EngineScheduler &scheduler() const { return scheduler_; }
    const OffloadConfig &config() const { return cfg_; }

  private:
    /** Schema check + invoke + per-entry stats; returns the modeled
     * device time (schema rejections cost nothing). `start` is the
     * tick the invocation begins — the VM's accesses queue behind the
     * board's shared watermarks from there, so back-to-back chain
     * stages don't re-bill each other's DRAM occupancy. */
    Tick dispatchOne(CBoard &board, OffloadEntry &entry,
                     const std::vector<std::uint8_t> &arg, Tick start,
                     OffloadResult &result, bool as_chain_stage);

    OffloadConfig cfg_;
    /** Fast-path cycle period (dispatch_cycles -> ticks). */
    Tick cycle_;
    OffloadRegistry registry_;
    EngineScheduler scheduler_;
};

} // namespace clio

#endif // CLIO_OFFLOAD_RUNTIME_HH
