/**
 * @file
 * Per-offload deployment descriptor (extend path, §4.6).
 *
 * Registering an offload means synthesizing its logic into the
 * CBoard's FPGA fabric, so each deployment carries a descriptor: the
 * id/name the MAT dispatches on, the argument/reply schemas the
 * runtime enforces at dispatch (typed rcall), the LUT/BRAM footprint
 * the Fig. 22 resource model charges per deployed offload, and a
 * cycles-per-element cost model documenting how invocation compute
 * scales (the invoke() implementations charge it via
 * OffloadVm::chargeCycles).
 */

#ifndef CLIO_OFFLOAD_DESCRIPTOR_HH
#define CLIO_OFFLOAD_DESCRIPTOR_HH

#include <cstdint>
#include <string>

namespace clio {

/** Deployment metadata of one registered offload. */
struct OffloadDescriptor
{
    /** Dispatch id carried in RequestMsg::offload_id. */
    std::uint32_t id = 0;
    /** Human-readable module name (stats, Fig. 22 rows, bench JSON). */
    std::string name;
    /** Fixed argument schema size in bytes; 0 = variable-length args
     * (the offload validates internally). Enforced at dispatch: a
     * mismatched rcall fails with OffloadErrc::kBadArgument without
     * invoking the offload. */
    std::uint32_t arg_bytes = 0;
    /** Expected reply payload size (CN incast-window sizing hint). */
    std::uint64_t reply_bytes_hint = 256;
    /** Synthesized logic footprint, replicated into each offload
     * engine (LUTs per engine instance). */
    double lut = 2000.0;
    /** On-chip state (BRAM bytes), one copy shared across engines. */
    double bram_bytes = 4096.0;
    /** @{ Compute cost model: cycles charged per invocation and per
     * element processed. Documentation + energy attribution; the
     * invoke() implementations remain the source of truth. */
    std::uint64_t cycles_per_call = 0;
    std::uint64_t cycles_per_element = 1;
    /** @} */
};

/** Descriptor with defaults for legacy registerOffload(id, offload)
 * call sites that predate the registry. */
inline OffloadDescriptor
defaultOffloadDescriptor(std::uint32_t id)
{
    OffloadDescriptor desc;
    desc.id = id;
    desc.name = "offload-" + std::to_string(id);
    return desc;
}

} // namespace clio

#endif // CLIO_OFFLOAD_DESCRIPTOR_HH
