#include "cboard/cboard.hh"

#include <algorithm>
#include <cstring>

#include "proto/wire.hh"
#include "sim/logging.hh"

namespace clio {

CBoard::CBoard(EventQueue &eq, Network &network, const ModelConfig &cfg,
               std::uint64_t phys_bytes, RackId rack)
    : eq_(eq), net_(network), cfg_(cfg),
      memory_(phys_bytes ? phys_bytes : cfg.mn_phys_bytes),
      frames_(memory_.capacity(), cfg.page_table.page_size),
      page_table_(memory_.capacity(), cfg.page_table.page_size,
                  cfg.page_table.bucket_slots,
                  cfg.page_table.overprovision),
      tlb_(cfg.fast_path.tlb_entries),
      valloc_(cfg.page_table.page_size, 1ull << 46),
      dedup_(cfg.dedup.entries),
      async_buffer_(cfg.slow_path.async_buffer_pages),
      offload_rt_(cfg.offload, cfg.fast_path.cycle)
{
    phys_bytes_ = phys_bytes ? phys_bytes : cfg.mn_phys_bytes;
    node_ = net_.addNode([this](Packet pkt) { onPacket(std::move(pkt)); },
                         0, rack);
    bootstrapAsyncBuffer();
}

void
CBoard::bootstrapAsyncBuffer()
{
    // Boot-time pre-generation: the ARM fills the async buffer before
    // the board starts serving (§4.3). Reservation is capped to a
    // quarter of physical memory so tiny test MNs keep frames
    // available for eager allocation and migration admission.
    reserve_cap_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        async_buffer_.capacity(),
        std::max<std::uint64_t>(1, frames_.totalFrames() / 4)));
    while (async_buffer_.vacancy() > 0 &&
           async_buffer_.size() < reserve_cap_) {
        auto frame = frames_.allocate();
        if (!frame)
            break;
        async_buffer_.push(*frame);
    }
}

void
CBoard::crash()
{
    if (!alive_)
        return;
    alive_ = false;
    stats_.crashes++;
    // The pipeline state and inflight reassembly die with the board.
    inflight_.clear();
    lock_owners_.clear();
}

void
CBoard::restart()
{
    if (alive_)
        return;
    // The board comes back EMPTY: volatile DRAM plus every structure
    // derived from it is rebuilt from scratch. Anything a client
    // stored here is gone unless the replication layer kept a copy.
    memory_ = PhysicalMemory(phys_bytes_);
    frames_ = FrameAllocator(memory_.capacity(),
                             cfg_.page_table.page_size);
    page_table_ = HashPageTable(memory_.capacity(),
                                cfg_.page_table.page_size,
                                cfg_.page_table.bucket_slots,
                                cfg_.page_table.overprovision);
    tlb_ = Tlb(cfg_.fast_path.tlb_entries);
    valloc_ = VaAllocator(cfg_.page_table.page_size, 1ull << 46);
    dedup_ = DedupBuffer(cfg_.dedup.entries);
    async_buffer_ = AsyncFreePageBuffer(cfg_.slow_path.async_buffer_pages);

    pipeline_free_ = 0;
    dram_free_ = 0;
    atomic_free_ = 0;
    arm_free_ = 0;
    gate_open_ = 0;
    last_op_done_ = 0;
    refill_pending_ = false;
    refill_done_ = 0;
    inflight_.clear();
    packets_since_gc_ = 0;
    lock_owners_.clear();
    // A rebooted board fences nothing until the controller observes
    // the rejoin and installs the new epoch; its empty address space
    // answers kBadAddress meanwhile, which is safe.
    epoch_fence_ = 0;
    incarnation_++;
    hb_seq_ = 0;
    alive_ = true;
    bootstrapAsyncBuffer();

    // Re-deploy registered offloads into the fresh board (sorted id
    // order, engine watermarks cleared).
    offload_rt_.reinit(*this);
}

// ---------------------------------------------------------------------
// Ingress + MAT routing
// ---------------------------------------------------------------------

void
CBoard::gcInflight()
{
    const Tick horizon = 10 * cfg_.clib.timeout;
    if (eq_.now() < horizon)
        return;
    const Tick cutoff = eq_.now() - horizon;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second.last_seen < cutoff)
            it = inflight_.erase(it);
        else
            ++it;
    }
}

void
CBoard::onPacket(Packet pkt)
{
    if (!alive_)
        return; // crashed board: the port eats the packet silently
    if (++packets_since_gc_ >= 4096) {
        packets_since_gc_ = 0;
        gcInflight();
    }
    if (pkt.corrupted) {
        // Slim link layer: checksum fails, NACK immediately (§4.4).
        stats_.nacks_sent++;
        auto resp = resp_pool_.acquire();
        resp->req_id = pkt.req_id;
        resp->status = Status::kCorrupt;
        const Tick when = eq_.now() + cfg_.fast_path.mac_latency +
                          2 * cfg_.fast_path.cycle;
        respondAt(when, pkt.src, pkt.req_id, std::move(resp));
        return;
    }

    // Epoch fence (split-brain guard): a request stamped with an epoch
    // older than this board's rejoin epoch comes from a client that has
    // not yet learned the board died and came back empty — reject it
    // before it can read stale void or write into the wrong incarnation.
    // Every packet of a fenced request is answered identically (the
    // board keeps no per-request state for them); the CN completes on
    // the first response and drops the rest as stale.
    const bool is_request = pkt.type != MsgType::kResponse &&
                            pkt.type != MsgType::kNack &&
                            pkt.type != MsgType::kHeartbeat;
    if (epoch_fence_ != 0 && is_request) {
        const auto &req = static_cast<const RequestMsg &>(*pkt.msg);
        if (req.epoch < epoch_fence_) {
            stats_.epoch_fenced++;
            auto resp = resp_pool_.acquire();
            resp->req_id = pkt.req_id;
            resp->status = Status::kEpochFenced;
            const Tick when = eq_.now() + cfg_.fast_path.mac_latency +
                              cfg_.fast_path.parse_cycles *
                                  cfg_.fast_path.cycle;
            respondAt(when, pkt.src, pkt.req_id, std::move(resp));
            return;
        }
    }

    switch (pkt.type) {
      case MsgType::kRead:
      case MsgType::kWrite:
      case MsgType::kAtomic:
      case MsgType::kFence: {
        auto &inflight = inflight_[pkt.req_id];
        if (inflight.total_parts == 0) {
            inflight.total_parts = pkt.total_parts;
            inflight.req =
                std::static_pointer_cast<const RequestMsg>(pkt.msg);
            inflight.seen_bits.assign((pkt.total_parts + 63) / 64, 0);
            // Dedup check happens once per request (T4): a retried
            // write/atomic whose original executed is suppressed.
            if (pkt.type == MsgType::kWrite ||
                pkt.type == MsgType::kAtomic) {
                if (auto cached = dedup_.find(inflight.req->orig_req_id)) {
                    inflight.suppressed = true;
                    dedup_.noteSuppressed();
                    (void)*cached;
                }
            }
        }
        // Per-part dedup: a switch-duplicated packet must not count
        // twice toward total_parts (it would complete the request with
        // a sibling part missing). Re-execution of whole duplicated
        // REQUESTS after completion is handled by the dedup buffer.
        {
            const std::size_t word = pkt.part >> 6;
            const std::uint64_t bit = 1ull << (pkt.part & 63);
            if (word >= inflight.seen_bits.size() ||
                (inflight.seen_bits[word] & bit)) {
                stats_.dup_parts_dropped++;
                inflight.last_seen = eq_.now();
                break;
            }
            inflight.seen_bits[word] |= bit;
        }
        inflight.parts_seen++;
        inflight.last_seen = eq_.now();
        fastPathPacket(pkt, inflight);
        if (inflight.parts_seen == inflight.total_parts) {
            const auto &req = *inflight.req;
            auto resp = resp_pool_.acquire();
            resp->req_id = req.req_id;
            resp->status = inflight.status;
            if (inflight.status == Status::kOk) {
                if (req.type == MsgType::kRead) {
                    // The fast path streamed the data out while
                    // processing; materialize it into the response.
                    resp->data.resize(req.size);
                    readFunctional(req.pid, req.addr, resp->data.data(),
                                   req.size);
                } else if (req.type == MsgType::kAtomic) {
                    resp->value = inflight.atomic_result;
                }
            }
            // Record non-idempotent completions in the dedup buffer
            // under the ORIGINAL attempt id (T4).
            if (inflight.status == Status::kOk && !inflight.suppressed) {
                if (req.type == MsgType::kWrite)
                    dedup_.record(req.orig_req_id);
                else if (req.type == MsgType::kAtomic)
                    dedup_.record(req.orig_req_id,
                                  inflight.atomic_result);
            }
            const Tick when = inflight.done +
                              cfg_.fast_path.respond_cycles *
                                  cfg_.fast_path.cycle +
                              cfg_.fast_path.mac_latency;
            last_op_done_ = std::max(last_op_done_, inflight.done);
            respondAt(when, req.src, req.req_id, std::move(resp));
            inflight_.erase(req.req_id);
        }
        break;
      }
      case MsgType::kAlloc:
      case MsgType::kFree:
        slowPathPacket(pkt);
        break;
      case MsgType::kOffload:
        extendPathPacket(pkt);
        break;
      case MsgType::kResponse:
      case MsgType::kNack:
      case MsgType::kHeartbeat:
        clio_panic("MN received a non-request packet");
    }
}

// ---------------------------------------------------------------------
// Fast path
// ---------------------------------------------------------------------

std::optional<Pte>
CBoard::translateOne(ProcId pid, VirtAddr va, bool is_write, Tick &t,
                     Status &status)
{
    const std::uint64_t page_size = cfg_.page_table.page_size;
    const std::uint64_t vpn = va / page_size;

    t += cfg_.fast_path.tlb_lookup_cycles * cfg_.fast_path.cycle;
    const Pte *cached = tlb_.lookup(pid, vpn);
    Pte pte;
    if (cached) {
        pte = *cached;
    } else {
        // Exactly one DRAM bucket fetch (§4.2).
        t += cfg_.dram.access_latency;
        const Pte *stored = page_table_.lookup(pid, vpn);
        if (!stored) {
            stats_.bad_address++;
            status = Status::kBadAddress;
            return std::nullopt;
        }
        pte = *stored;
        tlb_.insert(pte);
    }

    const std::uint8_t need = is_write ? kPermWrite : kPermRead;
    if ((pte.perm & need) != need) {
        stats_.perm_denied++;
        status = Status::kPermDenied;
        return std::nullopt;
    }

    if (!pte.present) {
        // Hardware page fault: constant cycles + async-buffer pop
        // (§4.3). PTE writeback and TLB insert happen in parallel with
        // resuming the faulting request, so they add no latency.
        stats_.page_faults++;
        t += cfg_.fast_path.page_fault_cycles * cfg_.fast_path.cycle;
        auto frame = popFreeFrame(t);
        if (!frame) {
            stats_.out_of_memory++;
            status = Status::kOutOfMemory;
            return std::nullopt;
        }
        page_table_.bindFrame(pid, vpn, *frame);
        pte.frame = *frame;
        pte.present = true;
        tlb_.insert(pte);
    }
    return pte;
}

bool
CBoard::readFunctional(ProcId pid, VirtAddr va, void *dst,
                       std::uint64_t len)
{
    const std::uint64_t page_size = cfg_.page_table.page_size;
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t vpn = va / page_size;
        const std::uint64_t in_page = va % page_size;
        const std::uint64_t n = std::min(len, page_size - in_page);
        const Pte *pte = page_table_.lookup(pid, vpn);
        if (!pte || !pte->present)
            return false;
        memory_.read(pte->frame + in_page, out, n);
        out += n;
        va += n;
        len -= n;
    }
    return true;
}

Tick
CBoard::memoryAccess(Tick t, std::uint64_t bytes, bool is_write)
{
    // The DMA engine is non-pipelined (the FPGA IP the paper blames
    // for small-read throughput, Fig. 9): its per-request setup
    // occupies the engine, not just the request's latency.
    const Tick setup = is_write ? cfg_.fast_path.dma_write_setup
                                : cfg_.fast_path.dma_read_setup;
    const Tick xfer = static_cast<Tick>(bytes) *
                      ticksPerByte(cfg_.dram.bandwidth_bps);
    const Tick start = std::max(t, dram_free_);
    dram_free_ = start + setup + xfer;
    return start + setup + cfg_.dram.access_latency + xfer;
}

void
CBoard::fastPathPacket(const Packet &pkt, Inflight &inflight)
{
    const auto &req = *inflight.req;
    const FastPathConfig &fp = cfg_.fast_path;

    // Ingress MAC/PHY, fence gate, and pipeline occupancy (II = 1:
    // one datapath word per cycle). Read responses stream their
    // payload back through the same datapath, so a read occupies the
    // pipeline for its response bytes as well.
    Tick t = eq_.now() + fp.mac_latency;
    t = std::max(t, gate_open_);
    const std::uint64_t egress_bytes =
        req.type == MsgType::kRead && pkt.part == 0 ? req.size : 0;
    const std::uint64_t words =
        std::max<std::uint64_t>(1, (pkt.wire_bytes + egress_bytes +
                                    datapathBytes() - 1) /
                                       datapathBytes());
    t = std::max(t, pipeline_free_);
    pipeline_free_ = t + words * fp.cycle;
    t += words * fp.cycle + fp.parse_cycles * fp.cycle;

    if (inflight.status != Status::kOk || inflight.suppressed) {
        // Earlier part failed, or duplicate: skip execution, keep
        // timing cheap for remaining parts.
        inflight.done = std::max(inflight.done, t);
        return;
    }

    Status status = Status::kOk;
    switch (req.type) {
      case MsgType::kRead: {
        stats_.reads++;
        stats_.bytes_read += req.size;
        // Translate + access each covered page.
        VirtAddr va = req.addr;
        std::uint64_t len = req.size;
        const std::uint64_t page_size = cfg_.page_table.page_size;
        while (len > 0 && status == Status::kOk) {
            const std::uint64_t in_page = va % page_size;
            const std::uint64_t n = std::min(len, page_size - in_page);
            auto pte = translateOne(req.pid, va, false, t, status);
            if (pte)
                t = memoryAccess(t, n, false);
            va += n;
            len -= n;
        }
        break;
      }
      case MsgType::kWrite: {
        // This packet carries payload [payload_offset, +payload_len).
        if (pkt.part == 0) {
            stats_.writes++;
            stats_.bytes_written += req.size;
        }
        VirtAddr va = req.addr + pkt.payload_offset;
        std::uint64_t len = pkt.payload_len;
        const std::uint8_t *src = req.data.data() + pkt.payload_offset;
        const std::uint64_t page_size = cfg_.page_table.page_size;
        while (len > 0 && status == Status::kOk) {
            const std::uint64_t in_page = va % page_size;
            const std::uint64_t n = std::min(len, page_size - in_page);
            auto pte = translateOne(req.pid, va, true, t, status);
            if (pte) {
                memory_.write(pte->frame + in_page, src, n);
                t = memoryAccess(t, n, true);
            }
            va += n;
            src += n;
            len -= n;
        }
        break;
      }
      case MsgType::kAtomic: {
        stats_.atomics++;
        auto pte = translateOne(req.pid, req.addr, true, t, status);
        if (pte) {
            // The synchronization unit serializes atomics (T3).
            t = std::max(t, atomic_free_);
            const PhysAddr pa =
                pte->frame + req.addr % cfg_.page_table.page_size;
            t = memoryAccess(t, 8, true);
            const std::uint64_t old = memory_.read64(pa);
            switch (req.aop) {
              case AtomicOp::kTestAndSet:
                memory_.write64(pa, 1);
                // Successful rlock acquire: remember which CN holds
                // it so the controller's CN-death GC can release it.
                if (old == 0)
                    lock_owners_[{req.pid, req.addr}] = req.src;
                break;
              case AtomicOp::kStore:
                memory_.write64(pa, req.arg0);
                // runlock (store 0) releases ownership.
                if (req.arg0 == 0)
                    lock_owners_.erase({req.pid, req.addr});
                break;
              case AtomicOp::kFetchAdd:
                memory_.write64(pa, old + req.arg0);
                break;
              case AtomicOp::kCompareSwap:
                if (old == req.arg0)
                    memory_.write64(pa, req.arg1);
                break;
            }
            inflight.atomic_result = old;
            atomic_free_ = t;
        }
        break;
      }
      case MsgType::kFence: {
        stats_.fences++;
        // Block until every inflight op completes, and gate later
        // arrivals until then (T3).
        t = std::max(t, last_op_done_);
        gate_open_ = std::max(gate_open_, t);
        break;
      }
      default:
        clio_panic("non-fast-path type in fastPathPacket");
    }

    inflight.status = status;
    inflight.done = std::max(inflight.done, t);
}

Tick
CBoard::serviceFastPath(const RequestMsg &req, Tick ready,
                        ResponseMsg &resp)
{
    // Whole-request variant used by the on-board traffic generator
    // (Fig. 9) and unit tests: same logic as the per-packet path, with
    // the full payload as one unit.
    const FastPathConfig &fp = cfg_.fast_path;
    // Payload crosses the datapath once in either direction (write
    // ingress or read-response egress).
    const std::uint64_t wire = req.size + kPacketHeaderBytes;
    Tick t = std::max(ready, gate_open_);
    const std::uint64_t words = std::max<std::uint64_t>(
        1, (wire + datapathBytes() - 1) / datapathBytes());
    t = std::max(t, pipeline_free_);
    pipeline_free_ = t + words * fp.cycle;
    t += words * fp.cycle + fp.parse_cycles * fp.cycle;

    Status status = Status::kOk;
    const std::uint64_t page_size = cfg_.page_table.page_size;
    switch (req.type) {
      case MsgType::kRead: {
        stats_.reads++;
        stats_.bytes_read += req.size;
        resp.data.resize(req.size);
        VirtAddr va = req.addr;
        std::uint64_t len = req.size;
        std::uint8_t *dst = resp.data.data();
        while (len > 0 && status == Status::kOk) {
            const std::uint64_t in_page = va % page_size;
            const std::uint64_t n = std::min(len, page_size - in_page);
            auto pte = translateOne(req.pid, va, false, t, status);
            if (pte) {
                memory_.read(pte->frame + in_page, dst, n);
                t = memoryAccess(t, n, false);
            }
            va += n;
            dst += n;
            len -= n;
        }
        break;
      }
      case MsgType::kWrite: {
        stats_.writes++;
        stats_.bytes_written += req.size;
        VirtAddr va = req.addr;
        std::uint64_t len = req.size;
        const std::uint8_t *src = req.data.data();
        while (len > 0 && status == Status::kOk) {
            const std::uint64_t in_page = va % page_size;
            const std::uint64_t n = std::min(len, page_size - in_page);
            auto pte = translateOne(req.pid, va, true, t, status);
            if (pte) {
                memory_.write(pte->frame + in_page, src, n);
                t = memoryAccess(t, n, true);
            }
            va += n;
            src += n;
            len -= n;
        }
        break;
      }
      default:
        clio_panic("serviceFastPath supports read/write only");
    }
    resp.req_id = req.req_id;
    resp.status = status;
    t += fp.respond_cycles * fp.cycle;
    last_op_done_ = std::max(last_op_done_, t);
    return t;
}

// ---------------------------------------------------------------------
// Page-fault physical frames (async buffer, §4.3)
// ---------------------------------------------------------------------

void
CBoard::maybeScheduleRefill()
{
    if (refill_pending_)
        return;
    if (async_buffer_.size() * 2 >= reserve_cap_)
        return;
    if (frames_.freeFrames() == 0)
        return;
    refill_pending_ = true;
    const std::uint32_t batch = std::min<std::uint32_t>(
        reserve_cap_ - async_buffer_.size(),
        static_cast<std::uint32_t>(frames_.freeFrames()));
    // The ARM pre-generates `batch` frames in the background; the
    // refill reaches the hardware FIFO through the FPGA<->ARM
    // interconnect (§4.3 — the latency the buffer exists to hide).
    const Tick done = eq_.now() + cfg_.slow_path.interconnect_crossing +
                      cfg_.slow_path.palloc_per_page * batch;
    refill_done_ = done;
    eq_.schedule(done, [this, batch] {
        refill_pending_ = false;
        for (std::uint32_t i = 0; i < batch; i++) {
            if (async_buffer_.size() >= reserve_cap_)
                break;
            auto frame = frames_.allocate();
            if (!frame)
                break;
            async_buffer_.push(*frame);
        }
        maybeScheduleRefill();
    });
}

std::optional<PhysAddr>
CBoard::popFreeFrame(Tick &t)
{
    auto frame = async_buffer_.pop();
    if (frame) {
        maybeScheduleRefill();
        return frame;
    }
    // Buffer ran dry: the faulting request waits for the background
    // refill (this should be rare — the refill throughput exceeds
    // line rate in the paper's design).
    auto direct = frames_.allocate();
    if (!direct)
        return std::nullopt; // physical memory exhausted
    maybeScheduleRefill();
    t = std::max(t, refill_pending_
                        ? refill_done_
                        : t + cfg_.slow_path.interconnect_crossing +
                              cfg_.slow_path.palloc_per_page);
    return direct;
}

// ---------------------------------------------------------------------
// Slow path (ARM): allocation / free
// ---------------------------------------------------------------------

Tick
CBoard::slowPathAlloc(ProcId pid, std::uint64_t size, std::uint8_t perm,
                      ResponseMsg &resp, bool populate)
{
    if (windowed_mode_ && valloc_.windowBytes(pid) == 0 &&
        window_request_) {
        // First allocation of this process on this MN: get windows
        // from the global controller (§4.7).
        window_request_(pid, size);
    }
    auto res = valloc_.allocate(pid, size, perm, page_table_);
    if (!res && window_request_ && window_request_(pid, size))
        res = valloc_.allocate(pid, size, perm, page_table_);
    if (!res) {
        stats_.out_of_memory++;
        resp.status = Status::kOutOfMemory;
        return cfg_.slow_path.valloc_base;
    }
    for (auto vpn : res->vpns)
        page_table_.insert(pid, vpn, perm);
    Tick cost = cfg_.slow_path.valloc_base +
                cfg_.slow_path.valloc_per_page * res->vpns.size() +
                cfg_.slow_path.valloc_retry * res->retries;
    if (populate) {
        // Eagerly bind physical frames (Clio-Alloc-Phys in Fig. 12).
        for (auto vpn : res->vpns) {
            auto frame = frames_.allocate();
            if (!frame) {
                resp.status = Status::kOutOfMemory;
                // Roll back bindings is unnecessary: faulting later
                // pages on demand is still correct.
                break;
            }
            page_table_.bindFrame(pid, vpn, *frame);
            cost += cfg_.slow_path.palloc_per_page;
        }
    }
    stats_.allocs++;
    stats_.alloc_retries += res->retries;
    resp.status = Status::kOk;
    resp.value = res->addr;
    return cost;
}

Tick
CBoard::slowPathFree(ProcId pid, VirtAddr addr, ResponseMsg &resp)
{
    auto res = valloc_.free(pid, addr);
    if (!res) {
        resp.status = Status::kBadAddress;
        return cfg_.slow_path.valloc_base / 2;
    }
    for (auto vpn : res->vpns) {
        Pte pte = page_table_.remove(pid, vpn);
        if (pte.present)
            frames_.free(pte.frame);
        tlb_.invalidate(pid, vpn);
    }
    stats_.frees++;
    resp.status = Status::kOk;
    return cfg_.slow_path.valloc_base / 2 +
           cfg_.slow_path.vfree_per_page * res->vpns.size();
}

void
CBoard::slowPathPacket(const Packet &pkt)
{
    auto req = std::static_pointer_cast<const RequestMsg>(pkt.msg);
    const FastPathConfig &fp = cfg_.fast_path;

    // Ingress + MAT + crossing to the ARM; one polling worker at a
    // time (the dedicated polling core hands tasks to workers, §5).
    Tick t = eq_.now() + fp.mac_latency + fp.parse_cycles * fp.cycle +
             cfg_.slow_path.interconnect_crossing;
    t = std::max(t, std::max(arm_free_, gate_open_));

    auto resp = resp_pool_.acquire();
    resp->req_id = req->req_id;
    Tick cost = 0;
    if (req->type == MsgType::kAlloc) {
        cost = slowPathAlloc(req->pid, req->size, req->perm, *resp,
                             req->populate);
    } else {
        cost = slowPathFree(req->pid, req->addr, *resp);
    }
    t += cost;
    arm_free_ = t;

    // Crossing back + response emission.
    t += cfg_.slow_path.interconnect_crossing +
         fp.respond_cycles * fp.cycle + fp.mac_latency;
    last_op_done_ = std::max(last_op_done_, t);
    respondAt(t, req->src, req->req_id, std::move(resp));
}

// ---------------------------------------------------------------------
// Extend path (offloads, §4.6)
// ---------------------------------------------------------------------

ProcId
CBoard::registerOffload(OffloadDescriptor desc,
                        std::shared_ptr<Offload> offload)
{
    // Deployment-time initialization happens inside the runtime (not
    // on the request path).
    return offload_rt_.deploy(*this, std::move(desc), std::move(offload));
}

ProcId
CBoard::registerOffload(std::uint32_t offload_id,
                        std::shared_ptr<Offload> offload)
{
    return registerOffload(defaultOffloadDescriptor(offload_id),
                           std::move(offload));
}

void
CBoard::registerOffloadShared(OffloadDescriptor desc,
                              std::shared_ptr<Offload> offload, ProcId pid)
{
    offload_rt_.deployShared(*this, std::move(desc), std::move(offload),
                             pid);
}

void
CBoard::registerOffloadShared(std::uint32_t offload_id,
                              std::shared_ptr<Offload> offload,
                              ProcId pid)
{
    registerOffloadShared(defaultOffloadDescriptor(offload_id),
                          std::move(offload), pid);
}

void
CBoard::extendPathPacket(const Packet &pkt)
{
    auto &inflight = inflight_[pkt.req_id];
    if (inflight.total_parts == 0) {
        inflight.total_parts = pkt.total_parts;
        inflight.req = std::static_pointer_cast<const RequestMsg>(pkt.msg);
        inflight.seen_bits.assign((pkt.total_parts + 63) / 64, 0);
    }
    {
        // Same per-part dedup as the fast path.
        const std::size_t word = pkt.part >> 6;
        const std::uint64_t bit = 1ull << (pkt.part & 63);
        if (word >= inflight.seen_bits.size() ||
            (inflight.seen_bits[word] & bit)) {
            stats_.dup_parts_dropped++;
            inflight.last_seen = eq_.now();
            return;
        }
        inflight.seen_bits[word] |= bit;
    }
    inflight.parts_seen++;
    inflight.last_seen = eq_.now();
    const FastPathConfig &fp = cfg_.fast_path;
    Tick t = eq_.now() + fp.mac_latency;
    const std::uint64_t words = std::max<std::uint64_t>(
        1, (pkt.wire_bytes + datapathBytes() - 1) / datapathBytes());
    t = std::max(t, pipeline_free_);
    pipeline_free_ = t + words * fp.cycle;
    t += words * fp.cycle + fp.parse_cycles * fp.cycle;
    inflight.done = std::max(inflight.done, t);

    if (inflight.parts_seen < inflight.total_parts)
        return;

    const auto &req = *inflight.req;
    auto resp = resp_pool_.acquire();
    resp->req_id = req.req_id;
    Tick done = std::max(inflight.done, gate_open_);

    stats_.offload_calls++;
    if (!req.chain.empty())
        stats_.offload_chains++;

    // Dedup for offloads with side effects (treated like atomics).
    if (auto cached = dedup_.find(req.orig_req_id)) {
        dedup_.noteSuppressed();
        resp->status = Status::kOk;
        resp->value = *cached;
    } else {
        OffloadResult result;
        if (!req.chain.empty()) {
            std::vector<OffloadStageReply> stage_replies;
            done = offload_rt_.runChain(*this, req, done, result,
                                        &stage_replies);
            resp->stages = std::move(stage_replies);
        } else {
            done = offload_rt_.runSingle(*this, req.offload_id,
                                         req.offload_arg, done, result);
        }
        resp->status = result.status;
        resp->value = result.value;
        resp->err_code = result.err_code;
        if (result.status == Status::kOk) {
            resp->data = std::move(result.data);
            dedup_.record(req.orig_req_id, result.value);
        } else {
            // A failed call carries the offload-defined message bytes
            // as its payload (satellite: errors name themselves).
            resp->data.assign(result.err_msg.begin(),
                              result.err_msg.end());
        }
    }

    done += fp.respond_cycles * fp.cycle + fp.mac_latency;
    last_op_done_ = std::max(last_op_done_, done);
    respondAt(done, req.src, req.req_id, std::move(resp));
    inflight_.erase(pkt.req_id);
}

Tick
CBoard::invokeOffloadLocal(std::uint32_t offload_id,
                           const std::vector<std::uint8_t> &arg,
                           OffloadResult &result, OffloadCost *split)
{
    stats_.offload_calls++;
    return offload_rt_.invokeLocal(*this, offload_id, arg, result, split);
}

Tick
CBoard::vmAccess(ProcId pid, VirtAddr addr, void *buf, std::uint64_t len,
                 bool is_write, Tick start, OffloadCost *split)
{
    Tick t = std::max(start, eq_.now());
    Status status = Status::kOk;
    const std::uint64_t page_size = cfg_.page_table.page_size;
    VirtAddr va = addr;
    std::uint64_t remaining = len;
    auto *cursor = static_cast<std::uint8_t *>(buf);
    while (remaining > 0) {
        const std::uint64_t in_page = va % page_size;
        const std::uint64_t n = std::min(remaining, page_size - in_page);
        Tick before = t;
        auto pte = translateOne(pid, va, is_write, t, status);
        if (!pte)
            return kTickMax;
        if (split)
            split->translate += t - before;
        if (is_write) {
            memory_.write(pte->frame + in_page, cursor, n);
            stats_.bytes_written += n;
        } else {
            memory_.read(pte->frame + in_page, cursor, n);
            stats_.bytes_read += n;
        }
        before = t;
        t = memoryAccess(t, n, is_write);
        if (split)
            split->dram += t - before;
        va += n;
        cursor += n;
        remaining -= n;
    }
    return t;
}

// ---------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------

void
CBoard::respondAt(Tick when, NodeId dst, ReqId req_id,
                  std::shared_ptr<ResponseMsg> resp)
{
    const std::uint64_t payload = responsePayloadBytes(*resp);
    const MsgType type = resp->status == Status::kCorrupt
                             ? MsgType::kNack
                             : MsgType::kResponse;
    sendSplit(eq_, net_, std::max(when, eq_.now()), node_, dst, req_id,
              type, payload, std::move(resp));
}

double
CBoard::memoryPressure() const
{
    return frames_.utilization();
}

void
CBoard::destroyProcess(ProcId pid)
{
    // Reclaim every PTE and bound frame of the process, then drop its
    // allocator state. Teardown is not performance critical, so a
    // linear table sweep is fine.
    page_table_.removeAllOfPid(pid, [this](const Pte &pte) {
        if (pte.present)
            frames_.free(pte.frame);
    });
    tlb_.invalidateProcess(pid);
    valloc_.removeProcess(pid);
    for (auto it = lock_owners_.begin(); it != lock_owners_.end();) {
        if (it->first.first == pid)
            it = lock_owners_.erase(it);
        else
            ++it;
    }
}

std::uint64_t
CBoard::releaseLocksOwnedBy(NodeId cn)
{
    // Functional (zero-time) release: the controller's GC runs on the
    // board's ARM, off the data path. The map is ordered, so memory is
    // written in a deterministic order.
    std::uint64_t released = 0;
    for (auto it = lock_owners_.begin(); it != lock_owners_.end();) {
        if (it->second != cn) {
            ++it;
            continue;
        }
        const auto [pid, va] = it->first;
        const std::uint64_t page_size = cfg_.page_table.page_size;
        const Pte *pte = page_table_.lookup(pid, va / page_size);
        if (pte && pte->present)
            memory_.write64(pte->frame + va % page_size, 0);
        it = lock_owners_.erase(it);
        released++;
    }
    stats_.locks_reclaimed += released;
    return released;
}

void
CBoard::startHeartbeats(NodeId controller, Tick period, Tick phase)
{
    clio_assert(period > 0, "heartbeat period must be positive");
    hb_controller_ = controller;
    hb_period_ = period;
    if (hb_running_)
        return;
    hb_running_ = true;
    eq_.scheduleAfter(phase, [this] { heartbeatTick(); });
}

void
CBoard::heartbeatTick()
{
    // The tick always reschedules; a crashed board just stays silent,
    // so beacons resume by themselves after restart().
    if (alive_) {
        auto hb = std::make_shared<HeartbeatMsg>();
        hb->node = node_;
        hb->seq = ++hb_seq_;
        hb->epoch = epoch_fence_;
        hb->incarnation = incarnation_;
        Packet pkt;
        pkt.src = node_;
        pkt.dst = hb_controller_;
        pkt.type = MsgType::kHeartbeat;
        pkt.priority = true; // control lane: never queue behind bulk data
        pkt.wire_bytes = kPacketHeaderBytes + 24;
        pkt.msg = std::move(hb);
        net_.send(std::move(pkt));
        stats_.heartbeats_sent++;
    }
    eq_.scheduleAfter(hb_period_, [this] { heartbeatTick(); });
}

std::uint64_t
CBoard::datapathBytes() const
{
    return cfg_.fast_path.datapath_bits / 8;
}

// ---------------------------------------------------------------------
// OffloadVm
// ---------------------------------------------------------------------

OffloadVm::OffloadVm(CBoard &board, ProcId pid)
    : OffloadVm(board, pid, board.eq_.now())
{
}

OffloadVm::OffloadVm(CBoard &board, ProcId pid, Tick start_at)
    : board_(board), pid_(pid), start_at_(start_at)
{
}

VirtAddr
OffloadVm::alloc(std::uint64_t size, std::uint8_t perm)
{
    ResponseMsg resp;
    const Tick cost = board_.slowPathAlloc(pid_, size, perm, resp);
    // Control-path hop to the ARM and back (§4.6: offload control
    // paths run on the ARM, data paths on the FPGA).
    cost_.control += cost + board_.cfg_.slow_path.interconnect_crossing;
    return resp.status == Status::kOk ? resp.value : 0;
}

bool
OffloadVm::free(VirtAddr addr)
{
    ResponseMsg resp;
    const Tick cost = board_.slowPathFree(pid_, addr, resp);
    cost_.control += cost + board_.cfg_.slow_path.interconnect_crossing;
    return resp.status == Status::kOk;
}

bool
OffloadVm::read(VirtAddr addr, void *dst, std::uint64_t len)
{
    // The invocation's logical clock runs `cost_` ahead of its start
    // tick; resources (DRAM occupancy) are shared in absolute time.
    // vmAccess attributes the access' time per component; the deltas
    // sum to done - start, so the invariant cost_.total() ==
    // done - start_at_ is preserved exactly.
    const Tick start = start_at_ + cost_.total();
    OffloadCost delta;
    const Tick done =
        board_.vmAccess(pid_, addr, dst, len, false, start, &delta);
    if (done == kTickMax)
        return false; // fault: no time charged (existing semantics)
    cost_ += delta;
    return true;
}

bool
OffloadVm::write(VirtAddr addr, const void *src, std::uint64_t len)
{
    const Tick start = start_at_ + cost_.total();
    OffloadCost delta;
    const Tick done = board_.vmAccess(
        pid_, addr, const_cast<void *>(src), len, true, start, &delta);
    if (done == kTickMax)
        return false;
    cost_ += delta;
    return true;
}

std::optional<std::uint64_t>
OffloadVm::read64(VirtAddr addr)
{
    std::uint64_t value = 0;
    if (!read(addr, &value, sizeof(value)))
        return std::nullopt;
    return value;
}

bool
OffloadVm::write64(VirtAddr addr, std::uint64_t value)
{
    return write(addr, &value, sizeof(value));
}

void
OffloadVm::chargeCycles(std::uint64_t cycles)
{
    cost_.compute += cycles * board_.cfg_.fast_path.cycle;
}

} // namespace clio
