/**
 * @file
 * CBoard: the Clio memory node device (§3.2, §4, Fig. 3).
 *
 * One CBoard combines:
 *  - a hardware *fast path* (modeled ASIC/FPGA pipeline) that serves
 *    every data access: MAT routing, TLB + hash-page-table translation,
 *    permission check, bounded-cycle page-fault handling, DRAM access,
 *    and response generation. The pipeline is smooth (II = 1): its
 *    occupancy is one datapath word per cycle, and its latency per
 *    request is a bounded, known number of cycles plus at most one
 *    DRAM access for translation;
 *  - a software *slow path* (modeled ARM SoC) that owns metadata:
 *    VA allocation (overflow-free, with retries), VA free, physical
 *    page pre-generation into the async buffer, and shadow copies;
 *  - an *extend path* hosting application offloads (§4.6);
 *  - the two pieces of bounded state the paper allows the MN: the
 *    dedup buffer for retried non-idempotent requests (T4) and the
 *    synchronization unit for rlock/rfence (T3).
 *
 * Correctness-affecting operations mutate functional state (real bytes
 * in PhysicalMemory) at packet-arrival order, while the timing model
 * computes when the response is emitted; CLib's ordering layer (T2)
 * guarantees no two dependent requests are concurrently outstanding,
 * which makes this split sound.
 */

#ifndef CLIO_CBOARD_CBOARD_HH
#define CLIO_CBOARD_CBOARD_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cboard/dedup_buffer.hh"
#include "mem/frame_allocator.hh"
#include "mem/physical_memory.hh"
#include "net/network.hh"
#include "offload/offload.hh"
#include "offload/runtime.hh"
#include "pagetable/hash_page_table.hh"
#include "pagetable/tlb.hh"
#include "proto/messages.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "valloc/va_allocator.hh"

namespace clio {

/** Counters exported by one CBoard. */
struct CBoardStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t atomics = 0;
    std::uint64_t fences = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t offload_calls = 0;
    /** Chained offload plans dispatched (subset of offload_calls). */
    std::uint64_t offload_chains = 0;
    std::uint64_t page_faults = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t bad_address = 0;
    std::uint64_t perm_denied = 0;
    std::uint64_t out_of_memory = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t alloc_retries = 0;
    /** Times this board was crashed by the failure layer. */
    std::uint64_t crashes = 0;
    /** Duplicated request packets dropped by the per-part bitmap. */
    std::uint64_t dup_parts_dropped = 0;
    /** Liveness beacons emitted (health plane). */
    std::uint64_t heartbeats_sent = 0;
    /** Requests rejected for carrying a stale membership epoch. */
    std::uint64_t epoch_fenced = 0;
    /** Locks force-released by the controller's CN-death GC. */
    std::uint64_t locks_reclaimed = 0;
};

/** The hardware memory node. */
class CBoard
{
  public:
    /**
     * Create a CBoard attached to `network`.
     * @param phys_bytes on-board DRAM capacity (0 = cfg.mn_phys_bytes).
     * @param rack rack whose ToR the board's port connects to.
     */
    CBoard(EventQueue &eq, Network &network, const ModelConfig &cfg,
           std::uint64_t phys_bytes = 0, RackId rack = 0);

    NodeId nodeId() const { return node_; }

    /** @{ Component access for tests, benches, and the controller. */
    HashPageTable &pageTable() { return page_table_; }
    Tlb &tlb() { return tlb_; }
    FrameAllocator &frames() { return frames_; }
    PhysicalMemory &memory() { return memory_; }
    VaAllocator &vaAllocator() { return valloc_; }
    DedupBuffer &dedupBuffer() { return dedup_; }
    const CBoardStats &stats() const { return stats_; }
    const ModelConfig &config() const { return cfg_; }
    /** @} */

    /**
     * Deploy an offload with a full descriptor; it gets a fresh PID
     * and empty RAS. @return the offload's PID.
     */
    ProcId registerOffload(OffloadDescriptor desc,
                           std::shared_ptr<Offload> offload);

    /** Legacy deploy under a bare id (default descriptor). */
    ProcId registerOffload(std::uint32_t offload_id,
                           std::shared_ptr<Offload> offload);

    /**
     * Register an offload that *shares* an existing address space
     * (Clio-DF style: CN computation and MN offloads on one RAS, §6).
     */
    void registerOffloadShared(OffloadDescriptor desc,
                               std::shared_ptr<Offload> offload,
                               ProcId pid);

    /** Legacy shared deploy under a bare id (default descriptor). */
    void registerOffloadShared(std::uint32_t offload_id,
                               std::shared_ptr<Offload> offload,
                               ProcId pid);

    /** The extend-path runtime: registry, engine scheduler, stats. */
    OffloadRuntime &offloadRuntime() { return offload_rt_; }
    const OffloadRuntime &offloadRuntime() const { return offload_rt_; }

    /** Fraction of physical frames in use (controller pressure input,
     * §4.7); counts frames reserved in the async buffer as used. */
    double memoryPressure() const;

    /**
     * Controller hook invoked when a process' VA windows on this MN
     * cannot fit an allocation; should add windows (via vaAllocator())
     * and return true to make the slow path retry once.
     */
    void
    setWindowRequestHook(
        std::function<bool(ProcId, std::uint64_t)> hook)
    {
        window_request_ = std::move(hook);
    }

    /**
     * Windowed mode (multi-MN clusters): every process must allocate
     * inside controller-assigned windows, so VAs handed out by
     * different MNs never collide. The window hook is consulted up
     * front for processes with no windows yet.
     */
    void setWindowedMode(bool on) { windowed_mode_ = on; }

    /**
     * Fast-path timing for one request, bypassing the network — used
     * by the on-board traffic generator bench (Fig. 9) and by offload
     * cost accounting. Mutates functional state exactly like a network
     * request would.
     *
     * @param ready tick at which the request is at the pipeline head.
     * @param[out] resp filled with status/data/value.
     * @return tick at which the fast path completes the request.
     */
    Tick serviceFastPath(const RequestMsg &req, Tick ready,
                         ResponseMsg &resp);

    /** @{ Direct slow-path entry points (no network), used by offloads
     * and by the cluster controller during setup/migration. The Tick
     * return is the modeled processing cost (not including the
     * interconnect crossings a network request would pay).
     * @param populate bind physical frames eagerly (Fig. 12's
     *        Clio-Alloc-Phys series). */
    Tick slowPathAlloc(ProcId pid, std::uint64_t size, std::uint8_t perm,
                       ResponseMsg &resp, bool populate = false);
    Tick slowPathFree(ProcId pid, VirtAddr addr, ResponseMsg &resp);
    /** @} */

    /** Functional (zero-time) read through the page table; used when
     * assembling a read response and by tests. False on fault. */
    bool readFunctional(ProcId pid, VirtAddr va, void *dst,
                        std::uint64_t len);

    /** Invoke a registered offload directly (no network) — the
     * developer-simulator path (§5) and offload unit tests.
     * @param split when non-null, receives the invocation's cost split.
     * @return modeled device time of the invocation. */
    Tick invokeOffloadLocal(std::uint32_t offload_id,
                            const std::vector<std::uint8_t> &arg,
                            OffloadResult &result,
                            OffloadCost *split = nullptr);

    /** Tear down a process: drop VA state, PTEs, frames, TLB entries. */
    void destroyProcess(ProcId pid);

    /** @{ Failure layer (chaos engine). A crashed board ignores every
     * packet (its port should also be marked down in the Network so
     * in-flight traffic is dropped); restart() models a board coming
     * back EMPTY — DRAM, page table, TLB, VA state, dedup buffer, and
     * watermarks are all reinitialized, registered offloads re-run
     * init(). Durable state is the replication/controller layer's
     * problem, exactly like on real hardware. */
    bool alive() const { return alive_; }
    void crash();
    void restart();
    /** @} */

    /** @{ Health plane. The epoch fence rejects every request stamped
     * with an epoch older than `epoch`: the controller sets it when a
     * board rejoins after being declared dead, so clients that have
     * not yet learned of the new membership cannot write to the
     * zombie's (empty) address space (split-brain prevention). A fence
     * of 0 — the boot/restart value — never fences. */
    void setEpochFence(std::uint64_t epoch) { epoch_fence_ = epoch; }
    std::uint64_t epochFence() const { return epoch_fence_; }
    /** Start emitting liveness beacons to `controller` every `period`
     * ticks, first one at `phase` (staggered per board). Beacons are
     * real packets through the fabric, so rack kills and fault windows
     * genuinely delay or drop them. */
    void startHeartbeats(NodeId controller, Tick period, Tick phase);
    /** Monotonic restart count, carried in heartbeats so the
     * controller can spot a crash+restart inside one lease window. */
    std::uint64_t incarnation() const { return incarnation_; }

    /**
     * Force-release every lock owned by CN `cn` (controller GC after a
     * CN death): the lock word is functionally written back to 0 so
     * surviving clients can acquire it. @return locks released.
     */
    std::uint64_t releaseLocksOwnedBy(NodeId cn);
    /** @} */

    /** Offload VM access used by OffloadVm (translate + move bytes).
     * @param start the offload's logical time (>= now; an invocation
     *        accumulates cost ahead of the simulation clock).
     * @param split when non-null, accumulates the access' time per
     *        component (translate / dram).
     * @return completion tick, or kTickMax on fault. */
    Tick vmAccess(ProcId pid, VirtAddr addr, void *buf, std::uint64_t len,
                  bool is_write, Tick start, OffloadCost *split = nullptr);

  private:
    friend class OffloadVm;

    /** Per-inflight-request reassembly/completion state. */
    struct Inflight
    {
        std::uint32_t parts_seen = 0;
        std::uint32_t total_parts = 0;
        /** Max completion tick over per-packet processing. */
        Tick done = 0;
        /** Set when any part failed translation/permission. */
        Status status = Status::kOk;
        /** Duplicate write suppressed by the dedup buffer. */
        bool suppressed = false;
        /** Per-part seen bitmap: switch-duplicated packets (chaos
         * hook) must not double-count toward total_parts. */
        std::vector<std::uint64_t> seen_bits;
        /** Old value returned by an atomic. */
        std::uint64_t atomic_result = 0;
        /** Arrival tick of the most recent packet: an abandoned
         * request (remaining packets lost, client retried under a new
         * id) stops receiving packets, which is what the GC keys on.
         * Long multi-packet transfers keep refreshing it. */
        Tick last_seen = 0;
        std::shared_ptr<const RequestMsg> req;
    };

    /** Sweep inflight entries abandoned for longer than ~10x a client
     * timeout (their packets were lost; the client retried with a new
     * id). Runs opportunistically every few thousand packets. */
    void gcInflight();

    /** Ingress from the network. */
    void onPacket(Packet pkt);

    /** Self-rescheduling heartbeat emission. */
    void heartbeatTick();

    /** Handle one fast-path packet (read/write slice/atomic/fence). */
    void fastPathPacket(const Packet &pkt, Inflight &inflight);

    /** Translate one VA; handles TLB, page fault, permission.
     * @return PTE copy, or nullopt with `status` set; advances `t` by
     * the modeled translation time. */
    std::optional<Pte> translateOne(ProcId pid, VirtAddr va,
                                    bool is_write, Tick &t,
                                    Status &status);

    /** Charge one DRAM access of `bytes` at tick `t` (DMA setup +
     * latency + bandwidth occupancy); returns the completion tick. */
    Tick memoryAccess(Tick t, std::uint64_t bytes, bool is_write);

    /** Fast-path datapath width in bytes. */
    std::uint64_t datapathBytes() const;

    /** Handle a slow-path request (alloc/free) end to end. */
    void slowPathPacket(const Packet &pkt);

    /** Handle an extend-path (offload) request. */
    void extendPathPacket(const Packet &pkt);

    /** Send a response message back to `dst` at tick `when`. */
    void respondAt(Tick when, NodeId dst, ReqId req_id,
                   std::shared_ptr<ResponseMsg> resp);

    /** Boot-time async-buffer pre-fill (ctor and restart()). */
    void bootstrapAsyncBuffer();

    /** Schedule an async-buffer refill if one is not already pending. */
    void maybeScheduleRefill();

    /** Pop a pre-generated frame for a page fault; sets `t` to when a
     * frame is available (waits for refill when dry). Returns nullopt
     * only when physical memory is truly exhausted. */
    std::optional<PhysAddr> popFreeFrame(Tick &t);

    EventQueue &eq_;
    Network &net_;
    ModelConfig cfg_;
    NodeId node_;
    /** DRAM capacity, kept so restart() can rebuild the components. */
    std::uint64_t phys_bytes_ = 0;
    /** Cleared by crash(), set again by restart(). */
    bool alive_ = true;

    PhysicalMemory memory_;
    FrameAllocator frames_;
    HashPageTable page_table_;
    Tlb tlb_;
    VaAllocator valloc_;
    DedupBuffer dedup_;
    AsyncFreePageBuffer async_buffer_;

    /** @{ Resource-occupancy watermarks (timing model). */
    Tick pipeline_free_ = 0;  ///< fast-path pipeline (II=1 occupancy)
    Tick dram_free_ = 0;      ///< DRAM bandwidth occupancy
    Tick atomic_free_ = 0;    ///< synchronization unit serialization
    Tick arm_free_ = 0;       ///< slow-path ARM worker serialization
    Tick gate_open_ = 0;      ///< rfence gate: ops start after this
    Tick last_op_done_ = 0;   ///< watermark of latest op completion
    /** @} */

    /** Async-buffer refill bookkeeping. */
    bool refill_pending_ = false;
    Tick refill_done_ = 0;
    /** Max frames the buffer reserves (≤ capacity; bounded by a
     * quarter of physical memory for small configurations). */
    std::uint32_t reserve_cap_ = 0;

    std::unordered_map<ReqId, Inflight> inflight_;
    std::uint64_t packets_since_gc_ = 0;

    /** Recycling ring for response messages (one per completed
     * request; alive ~one RTT until the CN's completion fires). */
    MessagePool<ResponseMsg> resp_pool_;

    /** Extend-path runtime (registry + engine scheduler). Deployments
     * are durable configuration: they survive crash()/restart(), which
     * re-runs init() via OffloadRuntime::reinit(). */
    OffloadRuntime offload_rt_;

    std::function<bool(ProcId, std::uint64_t)> window_request_;
    bool windowed_mode_ = false;

    /** @{ Health-plane state. Lock ownership is an ordered map so the
     * CN-death GC iterates (and thus writes memory) in a deterministic
     * order; keyed (pid, lock VA), value = owning CN's node. */
    std::map<std::pair<ProcId, VirtAddr>, NodeId> lock_owners_;
    std::uint64_t epoch_fence_ = 0;
    std::uint64_t incarnation_ = 0;
    NodeId hb_controller_ = 0;
    Tick hb_period_ = 0;
    std::uint64_t hb_seq_ = 0;
    bool hb_running_ = false;
    /** @} */

    CBoardStats stats_;
};

} // namespace clio

#endif // CLIO_CBOARD_CBOARD_HH
