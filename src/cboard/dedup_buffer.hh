/**
 * @file
 * Request-id dedup buffer (§4.5 T4): a small ring recording the ids of
 * recently executed non-idempotent requests (writes, atomics) and the
 * cached results of atomics. A retry carries the original attempt's id;
 * if the MN finds it here, it skips execution and replays the cached
 * result. Capacity is statically sized from 3 x TIMEOUT x bandwidth —
 * one of only two pieces of state the MN keeps, independent of client
 * count.
 */

#ifndef CLIO_CBOARD_DEDUP_BUFFER_HH
#define CLIO_CBOARD_DEDUP_BUFFER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "sim/types.hh"

namespace clio {

/** Ring buffer of executed (write/atomic) request ids + atomic results. */
class DedupBuffer
{
  public:
    explicit DedupBuffer(std::uint32_t capacity);

    /**
     * Record an executed non-idempotent request.
     * @param req_id the ORIGINAL attempt id (retries carry it along).
     * @param atomic_result cached value for atomics (0 for writes).
     */
    void record(ReqId req_id, std::uint64_t atomic_result = 0);

    /**
     * Check whether `req_id` was already executed.
     * @return the cached atomic result when found; nullopt otherwise.
     */
    std::optional<std::uint64_t> find(ReqId req_id) const;

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const {
        return static_cast<std::uint32_t>(fifo_.size());
    }

    /** Suppressed duplicate executions (stat). */
    std::uint64_t suppressed() const { return suppressed_; }
    void noteSuppressed() { suppressed_++; }

  private:
    std::uint32_t capacity_;
    /** Insertion order for ring eviction. */
    std::deque<ReqId> fifo_;
    std::unordered_map<ReqId, std::uint64_t> results_;
    std::uint64_t suppressed_ = 0;
};

} // namespace clio

#endif // CLIO_CBOARD_DEDUP_BUFFER_HH
