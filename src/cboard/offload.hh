/**
 * @file
 * Extend-path computation offloading framework (§4.6).
 *
 * An Offload is application logic deployed on the CBoard (FPGA or ARM
 * in the paper). Each offload gets its own global PID and remote
 * virtual address space and accesses on-board memory through the same
 * virtual memory interface CN applications use — that is the paper's
 * key ergonomic claim. The VmView passed to an invocation provides
 * that interface and accounts the modeled device time the offload
 * spends (translations, DRAM accesses, compute cycles).
 */

#ifndef CLIO_CBOARD_OFFLOAD_HH
#define CLIO_CBOARD_OFFLOAD_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "pagetable/pte.hh"
#include "proto/messages.hh"
#include "sim/types.hh"

namespace clio {

class CBoard;

/**
 * Virtual-memory window an offload invocation runs against.
 *
 * All accesses are in the offload's own RAS (or a CN process' RAS when
 * the offload was registered to share one, like Clio-DF's operators,
 * §6). Accesses translate through the board's TLB/page table and touch
 * the board DRAM, accumulating modeled time in cost().
 */
class OffloadVm
{
  public:
    OffloadVm(CBoard &board, ProcId pid);

    /** Allocate remote virtual memory (slow-path, on-board: no
     * network round trip). Returns 0 on failure. */
    VirtAddr alloc(std::uint64_t size, std::uint8_t perm = kPermReadWrite);

    /** Free an allocation made with alloc(). */
    bool free(VirtAddr addr);

    /** Read bytes from the offload's RAS; false on translation or
     * permission failure. */
    bool read(VirtAddr addr, void *dst, std::uint64_t len);

    /** Write bytes into the offload's RAS. */
    bool write(VirtAddr addr, const void *src, std::uint64_t len);

    /** @{ Typed convenience accessors. */
    std::optional<std::uint64_t> read64(VirtAddr addr);
    bool write64(VirtAddr addr, std::uint64_t value);
    /** @} */

    /** Charge `cycles` of FPGA compute (e.g. per-element processing). */
    void chargeCycles(std::uint64_t cycles);

    /** Modeled device time consumed so far by this invocation. */
    Tick cost() const { return cost_; }

    ProcId pid() const { return pid_; }

  private:
    friend class CBoard;
    CBoard &board_;
    ProcId pid_;
    Tick cost_ = 0;
};

/** Result of one offload invocation. */
struct OffloadResult
{
    Status status = Status::kOk;
    std::vector<std::uint8_t> data;
    std::uint64_t value = 0;
};

/** Interface implemented by application offloads (radix-tree pointer
 * chaser, Clio-KV, Clio-MV, Clio-DF operators, ...). */
class Offload
{
  public:
    virtual ~Offload() = default;

    /** One-time setup when deployed on a board (allocate and
     * initialize the offload's data structures in its RAS). */
    virtual void init(OffloadVm &vm) { (void)vm; }

    /**
     * Handle one invocation.
     * @param vm  the offload's virtual memory view (cost accumulator).
     * @param arg opaque argument bytes from the client.
     */
    virtual OffloadResult invoke(OffloadVm &vm,
                                 const std::vector<std::uint8_t> &arg) = 0;
};

} // namespace clio

#endif // CLIO_CBOARD_OFFLOAD_HH
