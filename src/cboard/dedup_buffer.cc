#include "cboard/dedup_buffer.hh"

#include "sim/logging.hh"

namespace clio {

DedupBuffer::DedupBuffer(std::uint32_t capacity) : capacity_(capacity)
{
    clio_assert(capacity > 0, "dedup buffer capacity must be nonzero");
}

void
DedupBuffer::record(ReqId req_id, std::uint64_t atomic_result)
{
    auto [it, inserted] = results_.try_emplace(req_id, atomic_result);
    if (!inserted)
        return; // already recorded (e.g. duplicate delivery)
    fifo_.push_back(req_id);
    if (fifo_.size() > capacity_) {
        results_.erase(fifo_.front());
        fifo_.pop_front();
    }
}

std::optional<std::uint64_t>
DedupBuffer::find(ReqId req_id) const
{
    auto it = results_.find(req_id);
    if (it == results_.end())
        return std::nullopt;
    return it->second;
}

} // namespace clio
