#include "apps/image.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace clio {

std::vector<std::uint8_t>
rleCompress(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint8_t> out;
    out.reserve(in.size() / 2);
    std::size_t i = 0;
    while (i < in.size()) {
        const std::uint8_t byte = in[i];
        std::size_t run = 1;
        while (i + run < in.size() && in[i + run] == byte && run < 255)
            run++;
        out.push_back(static_cast<std::uint8_t>(run));
        out.push_back(byte);
        i += run;
    }
    return out;
}

std::vector<std::uint8_t>
rleDecompress(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint8_t> out;
    clio_assert(in.size() % 2 == 0, "corrupt RLE stream");
    for (std::size_t i = 0; i < in.size(); i += 2) {
        out.insert(out.end(), in[i], in[i + 1]);
    }
    return out;
}

std::vector<std::uint8_t>
makeSyntheticImage(std::uint32_t width, std::uint32_t height,
                   std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(width) *
                                  height);
    // Horizontal bands of near-constant intensity with occasional
    // speckles: compresses well but not trivially.
    for (std::uint32_t y = 0; y < height; y++) {
        const auto base =
            static_cast<std::uint8_t>((y * 255) / height);
        for (std::uint32_t x = 0; x < width; x++) {
            std::uint8_t v = base;
            if (rng.chance(0.01))
                v = static_cast<std::uint8_t>(rng.uniformInt(256));
            img[static_cast<std::size_t>(y) * width + x] = v;
        }
    }
    return img;
}

ImageCompressionTask::ImageCompressionTask(ClioClient &client,
                                           std::uint32_t images,
                                           std::uint32_t image_bytes,
                                           Tick cpu_ps_per_byte,
                                           std::uint64_t seed)
    : client_(client), images_(images), image_bytes_(image_bytes),
      cpu_ps_per_byte_(cpu_ps_per_byte), seed_(seed),
      slot_bytes_(2ull * image_bytes + 16)
{
}

bool
ImageCompressionTask::setup()
{
    auto orig = RemoteRegion::alloc(
        client_, static_cast<std::uint64_t>(images_) * image_bytes_);
    auto comp = RemoteRegion::alloc(
        client_, static_cast<std::uint64_t>(images_) * slot_bytes_);
    if (!orig || !comp)
        return false;
    originals_ = std::move(*orig);
    compressed_ = std::move(*comp);
    // Upload the collection. Images within a collection differ by
    // their seed; dimensions follow the Fig. 16 workload (256x256).
    const std::uint32_t side = 256;
    const RemoteSlice slice = originals_.slice();
    for (std::uint32_t i = 0; i < images_; i++) {
        auto img = makeSyntheticImage(side, image_bytes_ / side,
                                      seed_ * 1000003 + i);
        img.resize(image_bytes_);
        if (slice.write(static_cast<std::uint64_t>(i) * image_bytes_,
                        img.data(), image_bytes_) != Status::kOk)
            return false;
    }
    return true;
}

ClosedLoopRunner::Actor
ImageCompressionTask::actor()
{
    phase_ = Phase::kRead;
    current_ = 0;
    io_buf_.resize(image_bytes_);
    return [this]() -> ActorStep {
        while (true) {
            switch (phase_) {
              case Phase::kRead: {
                if (current_ >= images_) {
                    phase_ = Phase::kDone;
                    continue;
                }
                phase_ = Phase::kCompress;
                return ActorStep::wait(client_.rreadAsync(
                    originals_.addr() +
                        static_cast<std::uint64_t>(current_) *
                            image_bytes_,
                    io_buf_.data(), image_bytes_));
              }
              case Phase::kCompress: {
                // CPU compression: charge modeled CN compute time.
                out_buf_ = rleCompress(io_buf_);
                compressed_bytes_ += out_buf_.size();
                phase_ = Phase::kWrite;
                return ActorStep::compute(
                    cpu_ps_per_byte_ * (image_bytes_ + out_buf_.size()));
              }
              case Phase::kWrite: {
                // Length prefix + payload into the image's slot.
                std::vector<std::uint8_t> blob(8 + out_buf_.size());
                const std::uint64_t len = out_buf_.size();
                std::memcpy(blob.data(), &len, 8);
                std::memcpy(blob.data() + 8, out_buf_.data(),
                            out_buf_.size());
                auto handle = client_.rwriteAsync(
                    compressed_.addr() +
                        static_cast<std::uint64_t>(current_) *
                            slot_bytes_,
                    blob.data(), blob.size());
                processed_++;
                current_++;
                phase_ = Phase::kRead;
                return ActorStep::wait(handle);
              }
              case Phase::kDone:
                return ActorStep::done();
            }
        }
    };
}

bool
ImageCompressionTask::verifyRoundTrip(std::uint32_t index)
{
    clio_assert(index < images_, "image index out of range");
    // Fetch the original and the stored compressed blob; check the
    // decompression matches.
    std::vector<std::uint8_t> orig(image_bytes_);
    if (originals_.slice().read(static_cast<std::uint64_t>(index) *
                                    image_bytes_,
                                orig.data(), image_bytes_) != Status::kOk)
        return false;
    // The image's slot, viewed as a length-prefixed blob.
    const RemoteSlice slot = compressed_.slice().subslice(
        static_cast<std::uint64_t>(index) * slot_bytes_, slot_bytes_);
    const Result<std::uint64_t> len = slot.ptr<std::uint64_t>().read();
    if (!len || *len == 0 || *len > slot_bytes_ - 8)
        return false;
    std::vector<std::uint8_t> blob(*len);
    if (slot.read(8, blob.data(), *len) != Status::kOk)
        return false;
    return rleDecompress(blob) == orig;
}

} // namespace clio
