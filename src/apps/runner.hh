/**
 * @file
 * Closed-loop workload runner: drives N concurrent client "actors"
 * over one simulated cluster. Each actor is a resumable state machine
 * that, when advanced, either issues an asynchronous Clio request
 * (resuming on its completion), asks to sleep for some simulated time
 * (modeling CN-side compute such as image compression), or finishes.
 *
 * This is how the multi-client evaluation scenarios (Figs. 8, 16, 18,
 * 19) express concurrency on top of the single-threaded
 * discrete-event core.
 */

#ifndef CLIO_APPS_RUNNER_HH
#define CLIO_APPS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "clib/client.hh"
#include "sim/event_queue.hh"

namespace clio {

/** What an actor wants to do next. */
struct ActorStep
{
    /** Wait for this request, then resume (null = no request). */
    HandlePtr handle;
    /** Sleep this long before resuming (CPU compute model). */
    Tick delay = 0;
    /** Actor has finished its workload. */
    bool finished = false;

    static ActorStep
    wait(HandlePtr h)
    {
        ActorStep step;
        step.handle = std::move(h);
        return step;
    }

    static ActorStep
    compute(Tick d)
    {
        ActorStep step;
        step.delay = d;
        return step;
    }

    static ActorStep
    done()
    {
        ActorStep step;
        step.finished = true;
        return step;
    }
};

/** Runs actors until every one of them finishes. */
class ClosedLoopRunner
{
  public:
    using Actor = std::function<ActorStep()>;

    explicit ClosedLoopRunner(EventQueue &eq) : eq_(eq) {}

    /** Register an actor (not started yet). */
    void
    addActor(Actor actor)
    {
        actors_.push_back(std::move(actor));
    }

    std::size_t finished() const { return finished_; }

    /**
     * Start every actor and pump the event queue until all finish.
     * @return total simulated time elapsed.
     */
    Tick
    run()
    {
        const Tick t0 = eq_.now();
        finished_ = 0;
        for (std::size_t i = 0; i < actors_.size(); i++)
            advance(i);
        eq_.runUntil([this] { return finished_ == actors_.size(); });
        return eq_.now() - t0;
    }

  private:
    void
    advance(std::size_t idx)
    {
        ActorStep step = actors_[idx]();
        if (step.finished) {
            finished_++;
            return;
        }
        if (step.handle) {
            // Resume when the request completes (handles finish only
            // via queue events, so registering here is race-free).
            step.handle->on_done = [this, idx] { advance(idx); };
            return;
        }
        eq_.scheduleAfter(step.delay, [this, idx] { advance(idx); });
    }

    EventQueue &eq_;
    std::vector<Actor> actors_;
    std::size_t finished_ = 0;
};

} // namespace clio

#endif // CLIO_APPS_RUNNER_HH
