/**
 * @file
 * Closed-loop workload runner: drives N concurrent client "actors"
 * over one simulated cluster. Each actor is a resumable state machine
 * that, when advanced, either issues asynchronous Clio work (a single
 * request or a whole SubmissionBatch, resuming on completion), asks
 * to sleep for some simulated time (modeling CN-side compute such as
 * image compression), or finishes.
 *
 * Actor resumption flows through one shared CompletionQueue: the
 * runner watches every issued handle (tagged with the actor index)
 * and advances an actor when all of its outstanding completions have
 * been delivered. No callback on any handle is ever mutated.
 *
 * This is how the multi-client evaluation scenarios (Figs. 8, 16, 18,
 * 19) express concurrency on top of the single-threaded
 * discrete-event core.
 */

#ifndef CLIO_APPS_RUNNER_HH
#define CLIO_APPS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "clib/client.hh"
#include "clib/queue.hh"
#include "sim/event_queue.hh"

namespace clio {

/** What an actor wants to do next. */
struct ActorStep
{
    /** Wait for this request, then resume (null = no request). */
    HandlePtr handle;
    /** Submit this batch in one doorbell and resume once EVERY op in
     * it completed (empty = no batch). */
    SubmissionBatch batch;
    /** Where to put the step's completions (completion order) right
     * before resuming; null = discard. */
    std::vector<Completion> *completions_out = nullptr;
    /** Sleep this long before resuming (CPU compute model). */
    Tick delay = 0;
    /** Actor has finished its workload. */
    bool finished = false;

    static ActorStep
    wait(HandlePtr h, std::vector<Completion> *out = nullptr)
    {
        ActorStep step;
        step.handle = std::move(h);
        step.completions_out = out;
        return step;
    }

    static ActorStep
    waitAll(SubmissionBatch &&b, std::vector<Completion> *out = nullptr)
    {
        ActorStep step;
        step.batch = std::move(b);
        step.completions_out = out;
        return step;
    }

    static ActorStep
    compute(Tick d)
    {
        ActorStep step;
        step.delay = d;
        return step;
    }

    static ActorStep
    done()
    {
        ActorStep step;
        step.finished = true;
        return step;
    }
};

/** Runs actors until every one of them finishes. */
class ClosedLoopRunner
{
  public:
    using Actor = std::function<ActorStep()>;

    explicit ClosedLoopRunner(EventQueue &eq) : eq_(eq), cq_(eq) {}

    /** Register an actor (not started yet). */
    void
    addActor(Actor actor)
    {
        actors_.push_back(std::move(actor));
    }

    std::size_t finished() const { return finished_; }

    /**
     * Start every actor and pump the event queue until all finish.
     * @return total simulated time elapsed.
     */
    Tick
    run()
    {
        const Tick t0 = eq_.now();
        finished_ = 0;
        waits_.assign(actors_.size(), Wait{});
        for (std::size_t i = 0; i < actors_.size(); i++)
            advance(i);
        while (finished_ < actors_.size()) {
            // Pump until a completion lands (compute-sleeping actors
            // advance via their own scheduled events meanwhile).
            const bool ok = eq_.runUntil([this] {
                return finished_ == actors_.size() || cq_.ready() > 0;
            });
            clio_assert(ok, "runner: simulation drained with %zu of "
                            "%zu actors unfinished",
                        actors_.size() - finished_, actors_.size());
            for (Completion &c : cq_.poll(actors_.size()))
                onCompletion(std::move(c));
        }
        return eq_.now() - t0;
    }

  private:
    /** One actor's outstanding wait-step bookkeeping. */
    struct Wait
    {
        std::size_t remaining = 0;
        std::vector<Completion> comps;
        std::vector<Completion> *out = nullptr;
    };

    void
    advance(std::size_t idx)
    {
        ActorStep step = actors_[idx]();
        if (step.finished) {
            finished_++;
            return;
        }
        Wait &wait = waits_[idx];
        if (step.handle) {
            wait.remaining = 1;
            wait.comps.clear();
            wait.out = step.completions_out;
            cq_.watch(step.handle, idx);
            return;
        }
        if (!step.batch.empty()) {
            wait.remaining = step.batch.size();
            wait.comps.clear();
            wait.out = step.completions_out;
            // Uniform tag (stride 0): every completion maps back to
            // this actor.
            step.batch.submit(cq_, idx, 0);
            return;
        }
        eq_.scheduleAfter(step.delay, [this, idx] { advance(idx); });
    }

    void
    onCompletion(Completion c)
    {
        const auto idx = static_cast<std::size_t>(c.tag);
        Wait &wait = waits_[idx];
        clio_assert(wait.remaining > 0, "completion for an idle actor");
        if (wait.out)
            wait.comps.push_back(std::move(c));
        if (--wait.remaining > 0)
            return;
        if (wait.out)
            *wait.out = std::move(wait.comps);
        wait.comps.clear();
        advance(idx);
    }

    EventQueue &eq_;
    CompletionQueue cq_;
    std::vector<Actor> actors_;
    std::vector<Wait> waits_;
    std::size_t finished_ = 0;
};

} // namespace clio

#endif // CLIO_APPS_RUNNER_HH
