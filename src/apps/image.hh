/**
 * @file
 * Image compression utility (§6): a CN-side application where each
 * client (e.g. one user's photo collection) stores originals and
 * compressed images in two remote arrays, reads a photo with rread,
 * (de)compresses it on the CN CPU, and writes the result back with
 * rwrite. One process per client isolates collections (R5) — which is
 * exactly what forces the RDMA baseline into one MR per client and
 * into MR-cache thrashing as clients scale (Fig. 16).
 */

#ifndef CLIO_APPS_IMAGE_HH
#define CLIO_APPS_IMAGE_HH

#include <cstdint>
#include <vector>

#include "apps/runner.hh"
#include "clib/client.hh"
#include "clib/remote_ptr.hh"

namespace clio {

/** Run-length encode (the paper's "simple compression" stand-in). */
std::vector<std::uint8_t> rleCompress(const std::vector<std::uint8_t> &in);

/** Inverse of rleCompress. */
std::vector<std::uint8_t>
rleDecompress(const std::vector<std::uint8_t> &in);

/** Synthetic "photo": smooth gradients with runs, so RLE does real
 * work (256*256 grayscale by default, like the Fig. 16 workload). */
std::vector<std::uint8_t> makeSyntheticImage(std::uint32_t width,
                                             std::uint32_t height,
                                             std::uint64_t seed);

/** One client's compression workload, usable as a runner actor. */
class ImageCompressionTask
{
  public:
    /**
     * @param images number of photos in this client's collection.
     * @param image_bytes size of one photo.
     * @param cpu_ps_per_byte modeled CN compression speed.
     */
    ImageCompressionTask(ClioClient &client, std::uint32_t images,
                         std::uint32_t image_bytes,
                         Tick cpu_ps_per_byte = 500, // 2 GB/s codec
                         std::uint64_t seed = 1);

    /** Allocate the two remote arrays and upload the originals.
     * @retval false on allocation failure. */
    bool setup();

    /** Actor function: processes all images, one rread + compress +
     * rwrite at a time (closed loop). */
    ClosedLoopRunner::Actor actor();

    std::uint32_t processed() const { return processed_; }
    /** Bytes of compressed output produced (sanity/stat). */
    std::uint64_t compressedBytes() const { return compressed_bytes_; }

    /** Verify one image decompresses back to the original (test). */
    bool verifyRoundTrip(std::uint32_t index);

  private:
    ClioClient &client_;
    std::uint32_t images_;
    std::uint32_t image_bytes_;
    Tick cpu_ps_per_byte_;
    std::uint64_t seed_;

    /** Remote photo arrays, freed with the task (RAII). */
    RemoteRegion originals_;
    RemoteRegion compressed_;
    /** Compressed slot stride (worst-case RLE is 2x input). */
    std::uint64_t slot_bytes_ = 0;

    std::uint32_t processed_ = 0;
    std::uint64_t compressed_bytes_ = 0;

    /** Actor state machine. */
    enum class Phase { kRead, kCompress, kWrite, kDone };
    Phase phase_ = Phase::kRead;
    std::uint32_t current_ = 0;
    std::vector<std::uint8_t> io_buf_;
    std::vector<std::uint8_t> out_buf_;
};

} // namespace clio

#endif // CLIO_APPS_IMAGE_HH
