/**
 * @file
 * Radix tree on Clio's extended API (§6): the tree lives in the
 * client's remote address space; searches use a pointer-chasing
 * offload deployed on the MN, turning a per-node round trip into one
 * round trip per tree level (the Fig. 17 win over RDMA).
 *
 * Node layout (32 bytes, stored remotely):
 *   +0  next        sibling in the parent's child list
 *   +8  child_head  first child of this node
 *   +16 ch          the edge character (as u64)
 *   +24 value       terminal payload (0 = non-terminal)
 */

#ifndef CLIO_APPS_RADIX_TREE_HH
#define CLIO_APPS_RADIX_TREE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "offload/descriptor.hh"
#include "offload/offload.hh"
#include "clib/client.hh"
#include "clib/remote_ptr.hh"

namespace clio {

/**
 * Generic pointer-chasing offload (§6): follows `next_offset` links
 * from `start`, comparing the u64 at `value_offset` against `target`;
 * returns the matching node's address and its raw bytes. Registered
 * with registerOffloadShared() so it walks the *client's* RAS.
 */
class PointerChaseOffload : public Offload
{
  public:
    /** Argument layout (little-endian). */
    struct Args
    {
        std::uint64_t start = 0;
        std::uint64_t target = 0;
        std::uint32_t value_offset = 0;
        std::uint32_t next_offset = 0;
        std::uint32_t node_bytes = 32; ///< bytes of the match returned
        std::uint32_t max_steps = 1 << 20;
    };

    static std::vector<std::uint8_t> encode(const Args &args);

    /** Deployment descriptor: typed arg schema + synthesis footprint
     * (comparator + walker FSM, one-node line buffer). */
    static OffloadDescriptor descriptor(std::uint32_t id);

    OffloadResult invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg) override;

    /** Total nodes traversed (stat). */
    std::uint64_t nodesVisited() const { return visited_; }

  private:
    std::uint64_t visited_ = 0;
};

/** Search outcome including traversal work (for baseline costing). */
struct RadixSearchResult
{
    std::optional<std::uint64_t> value;
    /** Remote reads a one-sided-read traversal performed. */
    std::uint64_t remote_reads = 0;
    /** Offload invocations (one per level) a Clio traversal used. */
    std::uint64_t offload_calls = 0;
};

/** The CN-side radix tree (§6: ~300 lines of C at the CN). */
class RemoteRadixTree
{
  public:
    /**
     * @param chase_offload_id id under which a PointerChaseOffload
     *        sharing this client's RAS is registered at `mn`.
     * @param arena_bytes contiguous remote arena for nodes (§6:
     *        "allocates a big contiguous remote memory space").
     */
    RemoteRadixTree(ClioClient &client, NodeId mn,
                    std::uint32_t chase_offload_id,
                    std::uint64_t arena_bytes = 64 * MiB);

    /** Insert a key with a nonzero terminal value. */
    bool insert(const std::string &key, std::uint64_t value);

    /**
     * Bulk-load many keys: builds the whole tree image locally and
     * uploads it with one large rwrite (a checkpoint-restore-style
     * population used by the Fig. 17 bench to pre-build big trees
     * without millions of simulated round trips).
     * @retval false when the arena is too small.
     */
    bool bulkLoad(
        const std::vector<std::pair<std::string, std::uint64_t>> &kvs);

    /** Search using the pointer-chase offload: one call per level. */
    RadixSearchResult searchOffload(const std::string &key);

    /** Search using ONE chained offload plan: per-level chase stages
     * linked MN-side (each stage's start address is bound from the
     * previous match's child_head bytes), so the whole key costs one
     * round trip per max_chain_depth levels instead of one per level. */
    RadixSearchResult searchChained(const std::string &key);

    /** Search with plain remote reads (the RDMA-style traversal:
     * one round trip per visited node). */
    RadixSearchResult searchDirect(const std::string &key);

    std::uint64_t nodeCount() const { return node_count_; }

    /** @{ Arena geometry, for CN-driven bulk-download baselines: the
     * root is the first node at arenaBase(); child/next pointers are
     * absolute VAs inside [arenaBase(), arenaBase() + arenaUsed()). */
    VirtAddr arenaBase() const { return arena_; }
    std::uint64_t arenaUsed() const { return arena_used_; }
    /** @} */

  private:
    static constexpr std::uint64_t kNodeBytes = 32;

    struct NodeImage
    {
        std::uint64_t next = 0;
        std::uint64_t child_head = 0;
        std::uint64_t ch = 0;
        std::uint64_t value = 0;
    };

    /** Bump-allocate a node slot in the remote arena (0 = full). */
    VirtAddr allocNode();

    /** Typed view of the node stored at `addr`. */
    RemotePtr<NodeImage> node(VirtAddr addr)
    {
        return RemotePtr<NodeImage>(client_, addr);
    }

    ClioClient &client_;
    NodeId mn_;
    std::uint32_t chase_id_;
    VirtAddr arena_ = 0;
    std::uint64_t arena_bytes_ = 0;
    std::uint64_t arena_used_ = 0;
    VirtAddr root_ = 0;
    std::uint64_t node_count_ = 0;
};

} // namespace clio

#endif // CLIO_APPS_RADIX_TREE_HH
