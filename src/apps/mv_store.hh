/**
 * @file
 * Clio-MV (§6): a multi-version object store offload.
 *
 * Users create objects, append new versions, read a specific or the
 * latest version, and delete objects. Layout in the offload's RAS:
 *  - an object-descriptor table: {array_addr, latest_version,
 *    capacity, in_use} per object id;
 *  - a free-id list (descriptor reuse after delete);
 *  - per-object version arrays, where version v's value lives at a
 *    fixed offset (array-based versions make reading any version the
 *    same cost, the Fig. 19 observation).
 *
 * Sequential consistency per object comes from the board executing
 * offload invocations one at a time (the engine serialization point),
 * matching the paper's single-op-per-cycle argument.
 */

#ifndef CLIO_APPS_MV_STORE_HH
#define CLIO_APPS_MV_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "offload/offload.hh"
#include "clib/client.hh"

namespace clio {

/** MV request opcodes. */
enum class MvOp : std::uint8_t {
    kCreate = 0,
    kAppend = 1,
    kReadVersion = 2,
    kReadLatest = 3,
    kDelete = 4,
};

/** Encode an MV request. */
std::vector<std::uint8_t> mvEncode(MvOp op, std::uint64_t object_id = 0,
                                   std::uint64_t version = 0,
                                   const std::string &value = {});

/** The MN-side Clio-MV offload. */
class ClioMvOffload : public Offload
{
  public:
    /**
     * @param value_size fixed value size per version (16 B in Fig. 19).
     * @param max_objects descriptor table capacity.
     * @param max_versions versions per object array.
     */
    ClioMvOffload(std::uint32_t value_size = 16,
                  std::uint32_t max_objects = 4096,
                  std::uint32_t max_versions = 1024);

    void init(OffloadVm &vm) override;
    OffloadResult invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg) override;

    std::uint32_t valueSize() const { return value_size_; }

  private:
    struct Descriptor
    {
        std::uint64_t array_addr = 0;
        std::uint64_t latest = 0; ///< latest version number (1-based)
        std::uint64_t in_use = 0;
    };
    static constexpr std::uint64_t kDescBytes = 24;

    OffloadResult create(OffloadVm &vm);
    OffloadResult append(OffloadVm &vm, std::uint64_t id,
                         const std::string &value);
    OffloadResult readVersion(OffloadVm &vm, std::uint64_t id,
                              std::uint64_t version, bool latest);
    OffloadResult destroy(OffloadVm &vm, std::uint64_t id);

    bool readDesc(OffloadVm &vm, std::uint64_t id, Descriptor &desc);
    bool writeDesc(OffloadVm &vm, std::uint64_t id,
                   const Descriptor &desc);

    std::uint32_t value_size_;
    std::uint32_t max_objects_;
    std::uint32_t max_versions_;

    VirtAddr desc_table_ = 0;
    /** Free object ids (offload-local control state). */
    std::vector<std::uint64_t> free_ids_;
};

/** CN-side wrapper around the MV offload. */
class ClioMvClient
{
  public:
    ClioMvClient(ClioClient &client, NodeId mn, std::uint32_t offload_id,
                 std::uint32_t value_size);

    /** @return new object id, or nullopt when the table is full. */
    std::optional<std::uint64_t> create();
    /** Append a new version; value must be exactly value_size bytes.
     * @return the new version number. */
    std::optional<std::uint64_t> append(std::uint64_t id,
                                        const std::string &value);
    std::optional<std::string> readLatest(std::uint64_t id);
    std::optional<std::string> readVersion(std::uint64_t id,
                                           std::uint64_t version);
    bool remove(std::uint64_t id);

  private:
    ClioClient &client_;
    NodeId mn_;
    std::uint32_t offload_id_;
    std::uint32_t value_size_;
};

} // namespace clio

#endif // CLIO_APPS_MV_STORE_HH
