#include "apps/dataframe.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace clio {

namespace {

/** Rows scanned per chunk by the offloads (bounded on-chip staging). */
constexpr std::uint64_t kScanChunkRows = 8192;

template <typename T>
std::vector<std::uint8_t>
encodeStruct(const T &args)
{
    std::vector<std::uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &args, sizeof(T));
    return out;
}

template <typename T>
bool
decodeStruct(const std::vector<std::uint8_t> &arg, T &out)
{
    if (arg.size() != sizeof(T))
        return false;
    std::memcpy(&out, arg.data(), sizeof(T));
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// Offloads
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
SelectOffload::encode(const Args &args)
{
    return encodeStruct(args);
}

OffloadDescriptor
SelectOffload::descriptor(std::uint32_t id)
{
    OffloadDescriptor desc = defaultOffloadDescriptor(id);
    desc.name = "df-select";
    desc.arg_bytes = sizeof(Args);
    desc.reply_bytes_hint = 32;
    desc.lut = 8400.0;        // predicate comparators + compaction
    desc.bram_bytes = 65536.0; // chunk staging buffers
    desc.cycles_per_call = 8;
    desc.cycles_per_element = 1;
    return desc;
}

OffloadResult
SelectOffload::invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg)
{
    OffloadResult res;
    Args args;
    if (!decodeStruct(arg, args)) {
        return offloadError(OffloadErrc::kBadArgument,
                            "df-select: argument is " +
                                std::to_string(arg.size()) +
                                " bytes, want " +
                                std::to_string(sizeof(Args)));
    }
    std::vector<std::uint8_t> a_chunk(kScanChunkRows);
    std::vector<std::int64_t> b_chunk(kScanChunkRows);
    std::vector<std::int64_t> out_chunk;
    std::uint64_t selected = 0;
    for (std::uint64_t row = 0; row < args.rows; row += kScanChunkRows) {
        const std::uint64_t n =
            std::min<std::uint64_t>(kScanChunkRows, args.rows - row);
        if (!vm.read(args.col_a_addr + row, a_chunk.data(), n) ||
            !vm.read(args.col_b_addr + row * 8, b_chunk.data(), n * 8)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "df-select: column read faulted",
                                Status::kBadAddress);
        }
        out_chunk.clear();
        for (std::uint64_t i = 0; i < n; i++) {
            if (a_chunk[i] == args.match)
                out_chunk.push_back(b_chunk[i]);
        }
        if (!out_chunk.empty()) {
            if (!vm.write(args.out_addr + selected * 8,
                          out_chunk.data(), out_chunk.size() * 8)) {
                return offloadError(OffloadErrc::kBadAddress,
                                    "df-select: output write faulted",
                                    Status::kBadAddress);
            }
            selected += out_chunk.size();
        }
        // Per-row predicate evaluation on the FPGA (slower per element
        // than a CPU, §7.2).
        vm.chargeCycles(n);
    }
    res.value = selected;
    return res;
}

std::vector<std::uint8_t>
AggregateOffload::encode(const Args &args)
{
    return encodeStruct(args);
}

OffloadDescriptor
AggregateOffload::descriptor(std::uint32_t id)
{
    OffloadDescriptor desc = defaultOffloadDescriptor(id);
    desc.name = "df-aggregate";
    desc.arg_bytes = sizeof(Args);
    desc.reply_bytes_hint = 16;
    desc.lut = 3100.0;        // adder tree + divider
    desc.bram_bytes = 65536.0; // chunk staging buffer
    desc.cycles_per_call = 8;
    desc.cycles_per_element = 1;
    return desc;
}

OffloadResult
AggregateOffload::invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg)
{
    OffloadResult res;
    Args args;
    if (!decodeStruct(arg, args)) {
        return offloadError(OffloadErrc::kBadArgument,
                            "df-aggregate: argument is " +
                                std::to_string(arg.size()) +
                                " bytes, want " +
                                std::to_string(sizeof(Args)));
    }
    std::vector<std::int64_t> chunk(kScanChunkRows);
    double sum = 0;
    for (std::uint64_t i = 0; i < args.count; i += kScanChunkRows) {
        const std::uint64_t n =
            std::min<std::uint64_t>(kScanChunkRows, args.count - i);
        if (!vm.read(args.values_addr + i * 8, chunk.data(), n * 8)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "df-aggregate: values read faulted",
                                Status::kBadAddress);
        }
        for (std::uint64_t j = 0; j < n; j++)
            sum += static_cast<double>(chunk[j]);
        vm.chargeCycles(n);
    }
    const double avg =
        args.count ? sum / static_cast<double>(args.count) : 0.0;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &avg, 8);
    res.value = bits;
    return res;
}

// ---------------------------------------------------------------------
// CN-side application
// ---------------------------------------------------------------------

ClioDataFrame::ClioDataFrame(ClioClient &client, NodeId mn,
                             std::uint32_t select_id, std::uint32_t agg_id,
                             Tick cn_ps_per_row)
    : client_(client), mn_(mn), select_id_(select_id), agg_id_(agg_id),
      cn_ps_per_row_(cn_ps_per_row)
{
}

bool
ClioDataFrame::load(const std::vector<std::uint8_t> &col_a,
                    const std::vector<std::int64_t> &col_b)
{
    clio_assert(col_a.size() == col_b.size(), "ragged columns");
    rows_ = col_a.size();
    col_a_ = client_.ralloc(std::max<std::uint64_t>(rows_, 1)).value_or(0);
    col_b_ =
        client_.ralloc(std::max<std::uint64_t>(rows_ * 8, 8)).value_or(0);
    scratch_ =
        client_.ralloc(std::max<std::uint64_t>(rows_ * 8, 8)).value_or(0);
    if (!col_a_ || !col_b_ || !scratch_)
        return false;
    // Upload both columns in one doorbell.
    return client_.rwritev({{col_a_, col_a.data(), rows_},
                            {col_b_, col_b.data(), rows_ * 8}}) ==
           Status::kOk;
}

void
ClioDataFrame::buildHistogram(const std::vector<std::int64_t> &values,
                              std::array<std::uint64_t, 16> &bins)
{
    bins.fill(0);
    if (values.empty())
        return;
    const auto [lo_it, hi_it] =
        std::minmax_element(values.begin(), values.end());
    const double lo = static_cast<double>(*lo_it);
    const double span =
        std::max(1.0, static_cast<double>(*hi_it) - lo);
    for (std::int64_t v : values) {
        auto bin = static_cast<std::size_t>(
            (static_cast<double>(v) - lo) / span * 15.999);
        bins[bin]++;
    }
}

void
ClioDataFrame::chargeCnCompute(std::uint64_t row_count)
{
    EventQueue &eq = client_.cnode().eventQueue();
    eq.runUntilTime(eq.now() + cn_ps_per_row_ * row_count);
}

DfQueryResult
ClioDataFrame::runOffload(std::uint8_t match)
{
    DfQueryResult out;
    // 1) select at the MN: compact matching fieldB values in place.
    SelectOffload::Args sel;
    sel.col_a_addr = col_a_;
    sel.col_b_addr = col_b_;
    sel.out_addr = scratch_;
    sel.rows = rows_;
    sel.match = match;
    const Result<OffloadReply> sel_reply =
        client_.rcall(mn_, select_id_, SelectOffload::encode(sel));
    if (!sel_reply)
        return out;
    out.net_bytes += sizeof(sel) + 32;
    const std::uint64_t selected = sel_reply->value;
    out.selected = selected;

    // 2) aggregate at the MN over the compacted values.
    AggregateOffload::Args agg;
    agg.values_addr = scratch_;
    agg.count = selected;
    const Result<OffloadReply> agg_reply =
        client_.rcall(mn_, agg_id_, AggregateOffload::encode(agg));
    if (!agg_reply)
        return out;
    out.net_bytes += sizeof(agg) + 32;
    const std::uint64_t avg_bits = agg_reply->value;
    std::memcpy(&out.avg, &avg_bits, 8);

    // 3) histogram at the CN: fetch ONLY the selected values.
    std::vector<std::int64_t> values(selected);
    if (selected) {
        if (client_.rread(scratch_, values.data(), selected * 8) !=
            Status::kOk)
            return out;
        out.net_bytes += selected * 8;
    }
    chargeCnCompute(selected);
    buildHistogram(values, out.histogram);
    out.ok = true;
    return out;
}

DfQueryResult
ClioDataFrame::runOffloadChained(std::uint8_t match)
{
    DfQueryResult out;
    // select→aggregate as one MN-side plan. The aggregate stage's
    // `count` field (Args offset 8) is patched from the select stage's
    // reply value — the CN never sees the intermediate match count.
    SelectOffload::Args sel;
    sel.col_a_addr = col_a_;
    sel.col_b_addr = col_b_;
    sel.out_addr = scratch_;
    sel.rows = rows_;
    sel.match = match;
    AggregateOffload::Args agg;
    agg.values_addr = scratch_;
    agg.count = 0; // bound MN-side

    ChainPlan plan;
    plan.stage(select_id_, SelectOffload::encode(sel))
        .stage(agg_id_, AggregateOffload::encode(agg))
        .bindValue(8)
        .perStageReplies();
    const Result<OffloadReply> reply = client_.rcall_chain(mn_, plan);
    if (!reply)
        return out;
    out.net_bytes += sizeof(sel) + sizeof(agg) + 16 + 32;
    clio_assert(reply->stages.size() == 2, "expected 2 stage replies");
    const std::uint64_t selected = reply->stages[0].value;
    out.selected = selected;
    const std::uint64_t avg_bits = reply->value;
    std::memcpy(&out.avg, &avg_bits, 8);

    // Histogram at the CN over only the selected values, as before.
    std::vector<std::int64_t> values(selected);
    if (selected) {
        if (client_.rread(scratch_, values.data(), selected * 8) !=
            Status::kOk)
            return out;
        out.net_bytes += selected * 8;
    }
    chargeCnCompute(selected);
    buildHistogram(values, out.histogram);
    out.ok = true;
    return out;
}

DfQueryResult
ClioDataFrame::runAtCn(std::uint8_t match)
{
    DfQueryResult out;
    // Ship both whole columns to the CN (the RDMA plan), then do
    // select, aggregate, and histogram locally.
    std::vector<std::uint8_t> col_a(rows_);
    std::vector<std::int64_t> col_b(rows_);
    if (client_.rreadv({{col_a_, col_a.data(), rows_},
                        {col_b_, col_b.data(), rows_ * 8}}) !=
        Status::kOk)
        return out;
    out.net_bytes += rows_ * 9;

    std::vector<std::int64_t> values;
    for (std::uint64_t i = 0; i < rows_; i++) {
        if (col_a[i] == match)
            values.push_back(col_b[i]);
    }
    chargeCnCompute(rows_); // CPU scan of both columns
    out.selected = values.size();
    double sum = 0;
    for (std::int64_t v : values)
        sum += static_cast<double>(v);
    out.avg = values.empty()
                  ? 0.0
                  : sum / static_cast<double>(values.size());
    chargeCnCompute(values.size());
    buildHistogram(values, out.histogram);
    out.ok = true;
    return out;
}

} // namespace clio
