#include "apps/mv_store.hh"

#include <cstring>

#include "sim/logging.hh"

namespace clio {

std::vector<std::uint8_t>
mvEncode(MvOp op, std::uint64_t object_id, std::uint64_t version,
         const std::string &value)
{
    std::vector<std::uint8_t> out;
    out.reserve(17 + value.size());
    out.push_back(static_cast<std::uint8_t>(op));
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(object_id >> (8 * i)));
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(version >> (8 * i)));
    out.insert(out.end(), value.begin(), value.end());
    return out;
}

ClioMvOffload::ClioMvOffload(std::uint32_t value_size,
                             std::uint32_t max_objects,
                             std::uint32_t max_versions)
    : value_size_(value_size), max_objects_(max_objects),
      max_versions_(max_versions)
{
    clio_assert(value_size > 0 && max_objects > 0 && max_versions > 0,
                "bad Clio-MV geometry");
}

void
ClioMvOffload::init(OffloadVm &vm)
{
    desc_table_ = vm.alloc(max_objects_ * kDescBytes);
    clio_assert(desc_table_ != 0, "Clio-MV: descriptor table alloc");
    free_ids_.reserve(max_objects_);
    for (std::uint64_t id = max_objects_; id-- > 0;)
        free_ids_.push_back(id);
}

bool
ClioMvOffload::readDesc(OffloadVm &vm, std::uint64_t id, Descriptor &desc)
{
    if (id >= max_objects_)
        return false;
    return vm.read(desc_table_ + id * kDescBytes, &desc, kDescBytes);
}

bool
ClioMvOffload::writeDesc(OffloadVm &vm, std::uint64_t id,
                         const Descriptor &desc)
{
    return vm.write(desc_table_ + id * kDescBytes, &desc, kDescBytes);
}

OffloadResult
ClioMvOffload::invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg)
{
    OffloadResult res;
    if (arg.size() < 17) {
        res.status = Status::kOffloadError;
        return res;
    }
    const MvOp op = static_cast<MvOp>(arg[0]);
    std::uint64_t id = 0, version = 0;
    for (int i = 0; i < 8; i++)
        id |= static_cast<std::uint64_t>(arg[1 + i]) << (8 * i);
    for (int i = 0; i < 8; i++)
        version |= static_cast<std::uint64_t>(arg[9 + i]) << (8 * i);
    std::string value(reinterpret_cast<const char *>(arg.data() + 17),
                      arg.size() - 17);

    switch (op) {
      case MvOp::kCreate:
        return create(vm);
      case MvOp::kAppend:
        return append(vm, id, value);
      case MvOp::kReadVersion:
        return readVersion(vm, id, version, false);
      case MvOp::kReadLatest:
        return readVersion(vm, id, 0, true);
      case MvOp::kDelete:
        return destroy(vm, id);
    }
    res.status = Status::kOffloadError;
    return res;
}

OffloadResult
ClioMvOffload::create(OffloadVm &vm)
{
    OffloadResult res;
    if (free_ids_.empty()) {
        res.status = Status::kOutOfMemory;
        return res;
    }
    const std::uint64_t id = free_ids_.back();
    // Allocate the per-object version array (§6: an array stores the
    // versions of each object).
    Descriptor desc;
    desc.array_addr = vm.alloc(
        static_cast<std::uint64_t>(max_versions_) * value_size_);
    if (!desc.array_addr) {
        res.status = Status::kOutOfMemory;
        return res;
    }
    free_ids_.pop_back();
    desc.latest = 0;
    desc.in_use = 1;
    writeDesc(vm, id, desc);
    res.value = id;
    return res;
}

OffloadResult
ClioMvOffload::append(OffloadVm &vm, std::uint64_t id,
                      const std::string &value)
{
    OffloadResult res;
    Descriptor desc;
    if (!readDesc(vm, id, desc) || !desc.in_use ||
        value.size() != value_size_) {
        res.status = Status::kOffloadError;
        return res;
    }
    if (desc.latest >= max_versions_) {
        res.status = Status::kOutOfMemory;
        return res;
    }
    // Version numbers are 1-based; slot v-1 holds version v.
    const std::uint64_t v = desc.latest + 1;
    vm.write(desc.array_addr + (v - 1) * value_size_, value.data(),
             value_size_);
    desc.latest = v;
    writeDesc(vm, id, desc);
    res.value = v;
    return res;
}

OffloadResult
ClioMvOffload::readVersion(OffloadVm &vm, std::uint64_t id,
                           std::uint64_t version, bool latest)
{
    OffloadResult res;
    Descriptor desc;
    if (!readDesc(vm, id, desc) || !desc.in_use) {
        res.status = Status::kOffloadError;
        return res;
    }
    const std::uint64_t v = latest ? desc.latest : version;
    if (v == 0 || v > desc.latest) {
        res.status = Status::kOffloadError;
        return res;
    }
    res.data.resize(value_size_);
    vm.read(desc.array_addr + (v - 1) * value_size_, res.data.data(),
            value_size_);
    res.value = v;
    return res;
}

OffloadResult
ClioMvOffload::destroy(OffloadVm &vm, std::uint64_t id)
{
    OffloadResult res;
    Descriptor desc;
    if (!readDesc(vm, id, desc) || !desc.in_use) {
        res.status = Status::kOffloadError;
        return res;
    }
    vm.free(desc.array_addr);
    desc = Descriptor{};
    writeDesc(vm, id, desc);
    free_ids_.push_back(id);
    return res;
}

// ---------------------------------------------------------------------
// CN-side client
// ---------------------------------------------------------------------

ClioMvClient::ClioMvClient(ClioClient &client, NodeId mn,
                           std::uint32_t offload_id,
                           std::uint32_t value_size)
    : client_(client), mn_(mn), offload_id_(offload_id),
      value_size_(value_size)
{
}

std::optional<std::uint64_t>
ClioMvClient::create()
{
    const Result<OffloadReply> reply =
        client_.rcall(mn_, offload_id_, mvEncode(MvOp::kCreate));
    if (!reply)
        return std::nullopt;
    return reply->value;
}

std::optional<std::uint64_t>
ClioMvClient::append(std::uint64_t id, const std::string &value)
{
    clio_assert(value.size() == value_size_,
                "Clio-MV values are fixed size");
    const Result<OffloadReply> reply = client_.rcall(
        mn_, offload_id_, mvEncode(MvOp::kAppend, id, 0, value));
    if (!reply)
        return std::nullopt;
    return reply->value;
}

std::optional<std::string>
ClioMvClient::readLatest(std::uint64_t id)
{
    const Result<OffloadReply> reply =
        client_.rcall(mn_, offload_id_, mvEncode(MvOp::kReadLatest, id),
                      value_size_ + 32);
    if (!reply)
        return std::nullopt;
    return std::string(reply->data.begin(), reply->data.end());
}

std::optional<std::string>
ClioMvClient::readVersion(std::uint64_t id, std::uint64_t version)
{
    const Result<OffloadReply> reply = client_.rcall(
        mn_, offload_id_, mvEncode(MvOp::kReadVersion, id, version),
        value_size_ + 32);
    if (!reply)
        return std::nullopt;
    return std::string(reply->data.begin(), reply->data.end());
}

bool
ClioMvClient::remove(std::uint64_t id)
{
    return client_.rcall(mn_, offload_id_, mvEncode(MvOp::kDelete, id))
        .ok();
}

} // namespace clio
