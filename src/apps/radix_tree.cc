#include "apps/radix_tree.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace clio {

// ---------------------------------------------------------------------
// Pointer-chase offload
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
PointerChaseOffload::encode(const Args &args)
{
    std::vector<std::uint8_t> out(sizeof(Args));
    std::memcpy(out.data(), &args, sizeof(Args));
    return out;
}

OffloadDescriptor
PointerChaseOffload::descriptor(std::uint32_t id)
{
    OffloadDescriptor desc = defaultOffloadDescriptor(id);
    desc.name = "pointer-chase";
    desc.arg_bytes = sizeof(Args);
    desc.reply_bytes_hint = 64;
    desc.lut = 5200.0;        // walker FSM + 64-bit comparator
    desc.bram_bytes = 2048.0; // one-node line buffer
    desc.cycles_per_call = 4;
    desc.cycles_per_element = 2;
    return desc;
}

OffloadResult
PointerChaseOffload::invoke(OffloadVm &vm,
                            const std::vector<std::uint8_t> &arg)
{
    OffloadResult res;
    if (arg.size() != sizeof(Args)) {
        return offloadError(OffloadErrc::kBadArgument,
                            "pointer-chase: argument is " +
                                std::to_string(arg.size()) +
                                " bytes, want " +
                                std::to_string(sizeof(Args)));
    }
    Args args;
    std::memcpy(&args, arg.data(), sizeof(Args));
    if (args.value_offset + 8 > args.node_bytes ||
        args.next_offset + 8 > args.node_bytes) {
        return offloadError(OffloadErrc::kBadArgument,
                            "pointer-chase: field offsets exceed node");
    }

    std::uint64_t cursor = args.start;
    std::vector<std::uint8_t> node(args.node_bytes);
    for (std::uint32_t step = 0; cursor && step < args.max_steps;
         step++) {
        visited_++;
        // One DRAM access per node: fetch the whole node, compare and
        // follow the link from the on-chip copy (§6's FPGA walker).
        if (!vm.read(cursor, node.data(), args.node_bytes)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "pointer-chase: node read faulted",
                                Status::kBadAddress);
        }
        std::uint64_t value = 0, next = 0;
        std::memcpy(&value, node.data() + args.value_offset, 8);
        std::memcpy(&next, node.data() + args.next_offset, 8);
        if (value == args.target) {
            // Match: return the node's address and raw bytes so the
            // caller saves a follow-up read.
            res.value = cursor;
            res.data = node;
            return res;
        }
        cursor = next;
        // Per-node comparison logic on the FPGA.
        vm.chargeCycles(2);
    }
    res.value = 0; // null: no match in the list
    return res;
}

// ---------------------------------------------------------------------
// Remote radix tree
// ---------------------------------------------------------------------

RemoteRadixTree::RemoteRadixTree(ClioClient &client, NodeId mn,
                                 std::uint32_t chase_offload_id,
                                 std::uint64_t arena_bytes)
    : client_(client), mn_(mn), chase_id_(chase_offload_id),
      arena_bytes_(arena_bytes)
{
    arena_ = client_.ralloc(arena_bytes_).value_or(0);
    clio_assert(arena_ != 0, "radix arena allocation failed");
    root_ = allocNode();
    node(root_).write(NodeImage{});
}

VirtAddr
RemoteRadixTree::allocNode()
{
    if (arena_used_ + kNodeBytes > arena_bytes_)
        return 0;
    const VirtAddr addr = arena_ + arena_used_;
    arena_used_ += kNodeBytes;
    node_count_++;
    return addr;
}

bool
RemoteRadixTree::insert(const std::string &key, std::uint64_t value)
{
    clio_assert(value != 0, "0 marks non-terminal nodes");
    VirtAddr cur = root_;
    for (char c : key) {
        // Walk the child list looking for the edge character.
        const Result<NodeImage> cur_img = node(cur).read();
        if (!cur_img)
            return false;
        VirtAddr child = cur_img->child_head;
        VirtAddr found = 0;
        while (child) {
            const Result<NodeImage> img = node(child).read();
            if (!img)
                return false;
            if (img->ch == static_cast<std::uint64_t>(
                               static_cast<std::uint8_t>(c))) {
                found = child;
                break;
            }
            child = img->next;
        }
        if (!found) {
            found = allocNode();
            if (!found)
                return false;
            NodeImage fresh{};
            fresh.next = cur_img->child_head;
            fresh.ch = static_cast<std::uint8_t>(c);
            if (node(found).write(fresh) != Status::kOk)
                return false;
            // Push-front into the parent's child list (field at +8).
            RemotePtr<std::uint64_t> head(client_, cur + 8);
            if (head.write(found) != Status::kOk)
                return false;
        }
        cur = found;
    }
    // Terminal payload (field at +24).
    return RemotePtr<std::uint64_t>(client_, cur + 24).write(value) ==
           Status::kOk;
}

bool
RemoteRadixTree::bulkLoad(
    const std::vector<std::pair<std::string, std::uint64_t>> &kvs)
{
    // Build the tree in host memory using arena-relative node indices,
    // then upload the image in one write. Index 0 is the (existing)
    // root at arena_ + 0.
    clio_assert(arena_used_ == kNodeBytes && node_count_ == 1,
                "bulkLoad requires a fresh tree");
    std::vector<NodeImage> nodes(1);
    auto addr_of = [this](std::uint64_t index) {
        return arena_ + index * kNodeBytes;
    };
    for (const auto &[key, value] : kvs) {
        clio_assert(value != 0, "0 marks non-terminal nodes");
        std::uint64_t cur = 0;
        for (char c : key) {
            const std::uint64_t ch = static_cast<std::uint8_t>(c);
            // Find the edge in cur's child list.
            std::uint64_t child_addr = nodes[cur].child_head;
            std::uint64_t found = 0;
            while (child_addr) {
                const std::uint64_t idx =
                    (child_addr - arena_) / kNodeBytes;
                if (nodes[idx].ch == ch) {
                    found = idx;
                    break;
                }
                child_addr = nodes[idx].next;
            }
            if (!child_addr) {
                if ((nodes.size() + 1) * kNodeBytes > arena_bytes_)
                    return false;
                NodeImage fresh{};
                fresh.ch = ch;
                fresh.next = nodes[cur].child_head;
                found = nodes.size();
                nodes.push_back(fresh);
                nodes[cur].child_head = addr_of(found);
            }
            cur = found;
        }
        nodes[cur].value = value;
    }
    arena_used_ = nodes.size() * kNodeBytes;
    node_count_ = nodes.size();
    return client_.rwrite(arena_, nodes.data(),
                          nodes.size() * kNodeBytes) == Status::kOk;
}

RadixSearchResult
RemoteRadixTree::searchOffload(const std::string &key)
{
    RadixSearchResult out;
    // Read the root once to obtain the first child list head.
    const Result<NodeImage> root = node(root_).read();
    if (!root)
        return out;
    out.remote_reads++;
    NodeImage img = *root;
    for (char c : key) {
        if (!img.child_head)
            return out; // dead end
        PointerChaseOffload::Args args;
        args.start = img.child_head;
        args.target = static_cast<std::uint8_t>(c);
        args.value_offset = 16; // NodeImage::ch
        args.next_offset = 0;   // NodeImage::next
        args.node_bytes = kNodeBytes;
        const Result<OffloadReply> reply =
            client_.rcall(mn_, chase_id_,
                          PointerChaseOffload::encode(args),
                          kNodeBytes + 32);
        if (!reply)
            return out;
        out.offload_calls++;
        if (!reply->value)
            return out; // no such edge
        clio_assert(reply->data.size() == kNodeBytes,
                    "short chase reply");
        std::memcpy(&img, reply->data.data(), kNodeBytes);
    }
    if (img.value)
        out.value = img.value;
    return out;
}

RadixSearchResult
RemoteRadixTree::searchChained(const std::string &key)
{
    RadixSearchResult out;
    const Result<NodeImage> root = node(root_).read();
    if (!root)
        return out;
    out.remote_reads++;
    NodeImage img = *root;

    // One chase stage per key character, chained MN-side: stage i's
    // start address is bound from stage i-1's reply bytes [8, 16) —
    // the matched node's child_head. Long keys are split into plans of
    // max_chain_depth stages each.
    const std::uint32_t max_depth =
        client_.cnode().config().offload.max_chain_depth;
    std::size_t pos = 0;
    while (pos < key.size()) {
        if (!img.child_head)
            return out; // dead end
        const std::size_t depth =
            std::min<std::size_t>(key.size() - pos, max_depth);
        ChainPlan plan;
        for (std::size_t i = 0; i < depth; i++) {
            PointerChaseOffload::Args args;
            args.start = img.child_head; // stage 0; later stages bound
            args.target =
                static_cast<std::uint8_t>(key[pos + i]);
            args.value_offset = 16; // NodeImage::ch
            args.next_offset = 0;   // NodeImage::next
            args.node_bytes = kNodeBytes;
            plan.stage(chase_id_, PointerChaseOffload::encode(args));
            if (i > 0)
                plan.bindData(8, 0); // prev child_head -> args.start
            plan.stopOnZeroValue(); // miss at any level ends the chain
        }
        const Result<OffloadReply> reply =
            client_.rcall_chain(mn_, plan, kNodeBytes + 32);
        if (!reply)
            return out;
        out.offload_calls++;
        if (!reply->value)
            return out; // no such edge at some level
        clio_assert(reply->data.size() == kNodeBytes,
                    "short chase reply");
        std::memcpy(&img, reply->data.data(), kNodeBytes);
        pos += depth;
    }
    if (img.value)
        out.value = img.value;
    return out;
}

RadixSearchResult
RemoteRadixTree::searchDirect(const std::string &key)
{
    RadixSearchResult out;
    const Result<NodeImage> root = node(root_).read();
    if (!root)
        return out;
    out.remote_reads++;
    NodeImage img = *root;
    for (char c : key) {
        VirtAddr child = img.child_head;
        bool found = false;
        while (child) {
            const Result<NodeImage> next = node(child).read();
            if (!next)
                return out;
            img = *next;
            out.remote_reads++;
            if (img.ch == static_cast<std::uint64_t>(
                              static_cast<std::uint8_t>(c))) {
                found = true;
                break;
            }
            child = img.next;
        }
        if (!found)
            return out;
    }
    if (img.value)
        out.value = img.value;
    return out;
}

} // namespace clio
