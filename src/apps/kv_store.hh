/**
 * @file
 * Clio-KV (§6): a key-value store running at the MN as a computation
 * offload, with atomic-write / read-committed consistency.
 *
 * Data layout inside the offload's remote address space:
 *  - a bucket array (one 8-byte head pointer per bucket);
 *  - chains of slots, each holding a next pointer and 7 entries of
 *    {64-bit key fingerprint, VA of the key-value block};
 *  - key-value blocks {klen, vlen, key bytes, value bytes} carved out
 *    of slab pages (4 MB huge pages sub-allocated by the offload, so
 *    rallocs are rare and amortized).
 *
 * A CN-side partitioner (ClioKvClient) spreads keys across MNs; all
 * requests for one partition go to the same MN, whose ordered
 * execution of Clio ops delivers the consistency level (§6).
 */

#ifndef CLIO_APPS_KV_STORE_HH
#define CLIO_APPS_KV_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "offload/descriptor.hh"
#include "offload/offload.hh"
#include "clib/client.hh"

namespace clio {

/** KV request opcodes carried in the offload argument. */
enum class KvOp : std::uint8_t { kGet = 0, kPut = 1, kDelete = 2 };

/** Serialize a KV request into offload argument bytes. */
std::vector<std::uint8_t> kvEncode(KvOp op, const std::string &key,
                                   const std::string &value = {});

/** The MN-side offload module. */
class ClioKvOffload : public Offload
{
  public:
    /** @param bucket_count hash buckets (power of two recommended). */
    explicit ClioKvOffload(std::uint32_t bucket_count = 4096);

    /** Deployment descriptor (hash + chain walker + slab allocator). */
    static OffloadDescriptor descriptor(std::uint32_t id);

    void init(OffloadVm &vm) override;
    OffloadResult invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg) override;

    /** @{ Stats for tests/benches. */
    std::uint64_t gets() const { return gets_; }
    std::uint64_t puts() const { return puts_; }
    std::uint64_t deletes() const { return deletes_; }
    std::uint64_t slabsAllocated() const { return slabs_; }
    /** @} */

    static std::uint64_t hashKey(const std::string &key);

    /** Maximum key length: lets the FPGA fetch header + key in one
     * speculative DRAM burst. */
    static constexpr std::uint64_t kMaxKeyBytes = 64;

  private:
    static constexpr std::uint32_t kEntriesPerSlot = 7;
    static constexpr std::uint64_t kSlotBytes =
        8 + kEntriesPerSlot * 16; // next + {fp, addr} entries
    static constexpr std::uint64_t kSlabBytes = 4 * MiB;

    struct Entry
    {
        std::uint64_t fp = 0;
        std::uint64_t addr = 0;
    };

    struct Slot
    {
        std::uint64_t next = 0;
        Entry entries[kEntriesPerSlot];
    };

    /** Allocate `n` bytes from the current slab (new slab as needed).
     * @return 0 on allocation failure. */
    std::uint64_t slabAlloc(OffloadVm &vm, std::uint64_t n);

    bool readSlot(OffloadVm &vm, std::uint64_t addr, Slot &slot);
    bool writeSlot(OffloadVm &vm, std::uint64_t addr, const Slot &slot);

    OffloadResult get(OffloadVm &vm, const std::string &key);
    OffloadResult put(OffloadVm &vm, const std::string &key,
                      const std::string &value);
    OffloadResult del(OffloadVm &vm, const std::string &key);

    std::uint32_t bucket_count_;
    VirtAddr bucket_array_ = 0;

    /** Slab cursor (offload-local registers, not remote memory). */
    VirtAddr slab_base_ = 0;
    std::uint64_t slab_used_ = 0;

    std::uint64_t gets_ = 0;
    std::uint64_t puts_ = 0;
    std::uint64_t deletes_ = 0;
    std::uint64_t slabs_ = 0;
};

/**
 * CN-side Clio-KV client: partitions keys across MNs (the paper's
 * CN-side load balancer) and invokes the per-MN offload.
 */
class ClioKvClient
{
  public:
    /** @param offload_id id under which ClioKvOffload was registered
     *  on every MN in `mns`. */
    ClioKvClient(ClioClient &client, std::vector<NodeId> mns,
                 std::uint32_t offload_id);

    bool put(const std::string &key, const std::string &value);
    std::optional<std::string> get(const std::string &key);
    bool del(const std::string &key);

    /** Batched multi-get: keys are grouped per owning MN and each
     * group ships as chained kGet stages (independent, no binds), so a
     * batch costs one round trip per MN per max_chain_depth keys
     * instead of one per key. Results align with `keys`. */
    std::vector<std::optional<std::string>>
    mget(const std::vector<std::string> &keys);

    /** MN serving a key (test hook). */
    NodeId mnForKey(const std::string &key) const;

  private:
    ClioClient &client_;
    std::vector<NodeId> mns_;
    std::uint32_t offload_id_;
};

} // namespace clio

#endif // CLIO_APPS_KV_STORE_HH
