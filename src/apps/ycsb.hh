/**
 * @file
 * YCSB-style workload generator (§7.2, Fig. 18): zipfian (theta 0.99)
 * or uniform key popularity, configurable get/set mix matching the
 * standard workloads (A = 50% set, B = 5% set, C = 0% set).
 */

#ifndef CLIO_APPS_YCSB_HH
#define CLIO_APPS_YCSB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace clio {

/** One generated operation. */
struct YcsbOp
{
    bool is_set = false;
    std::uint64_t key_index = 0;
};

/** Standard mixes. */
enum class YcsbWorkload { kA, kB, kC };

inline double
setRatio(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::kA:
        return 0.50;
      case YcsbWorkload::kB:
        return 0.05;
      case YcsbWorkload::kC:
        return 0.0;
    }
    return 0;
}

inline const char *
ycsbName(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::kA:
        return "A";
      case YcsbWorkload::kB:
        return "B";
      case YcsbWorkload::kC:
        return "C";
    }
    return "?";
}

/** Generator with YCSB's default zipfian key skew. */
class YcsbGenerator
{
  public:
    /**
     * @param zipf false = uniform key popularity.
     */
    YcsbGenerator(std::uint64_t key_count, YcsbWorkload workload,
                  bool zipf = true, double theta = 0.99,
                  std::uint64_t seed = 1234)
        : rng_(seed ^ 0x5bd1e995), zipf_(key_count, theta, seed),
          uniform_keys_(!zipf), key_count_(key_count),
          set_ratio_(setRatio(workload))
    {
    }

    YcsbOp
    next()
    {
        YcsbOp op;
        op.is_set = rng_.chance(set_ratio_);
        op.key_index =
            uniform_keys_ ? rng_.uniformInt(key_count_) : zipf_.next();
        return op;
    }

    /** Canonical key string for an index ("userNNNNNNN"). */
    static std::string
    keyString(std::uint64_t index)
    {
        // "user" + up to 20 digits of a 64-bit value + NUL.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "user%010llu",
                      static_cast<unsigned long long>(index));
        return buf;
    }

  private:
    Rng rng_;
    ZipfianGenerator zipf_;
    bool uniform_keys_;
    std::uint64_t key_count_;
    double set_ratio_;
};

} // namespace clio

#endif // CLIO_APPS_YCSB_HH
