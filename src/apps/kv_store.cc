#include "apps/kv_store.hh"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "sim/logging.hh"

namespace clio {

// ---------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
kvEncode(KvOp op, const std::string &key, const std::string &value)
{
    clio_assert(key.size() <= ClioKvOffload::kMaxKeyBytes,
                "key longer than Clio-KV's %llu-byte limit",
                (unsigned long long)ClioKvOffload::kMaxKeyBytes);
    std::vector<std::uint8_t> out;
    out.reserve(1 + 2 + key.size() + 4 + value.size());
    out.push_back(static_cast<std::uint8_t>(op));
    const std::uint16_t klen = static_cast<std::uint16_t>(key.size());
    out.push_back(static_cast<std::uint8_t>(klen));
    out.push_back(static_cast<std::uint8_t>(klen >> 8));
    out.insert(out.end(), key.begin(), key.end());
    if (op == KvOp::kPut) {
        const std::uint32_t vlen =
            static_cast<std::uint32_t>(value.size());
        for (int i = 0; i < 4; i++)
            out.push_back(static_cast<std::uint8_t>(vlen >> (8 * i)));
        out.insert(out.end(), value.begin(), value.end());
    }
    return out;
}

namespace {

struct Decoded
{
    KvOp op;
    std::string key;
    std::string value;
    bool ok = false;
};

Decoded
kvDecode(const std::vector<std::uint8_t> &arg)
{
    Decoded d;
    if (arg.size() < 3)
        return d;
    d.op = static_cast<KvOp>(arg[0]);
    const std::uint16_t klen =
        static_cast<std::uint16_t>(arg[1] | (arg[2] << 8));
    std::size_t pos = 3;
    if (arg.size() < pos + klen)
        return d;
    d.key.assign(reinterpret_cast<const char *>(arg.data() + pos), klen);
    pos += klen;
    if (d.op == KvOp::kPut) {
        if (arg.size() < pos + 4)
            return d;
        std::uint32_t vlen = 0;
        for (int i = 0; i < 4; i++)
            vlen |= static_cast<std::uint32_t>(arg[pos + i]) << (8 * i);
        pos += 4;
        if (arg.size() < pos + vlen)
            return d;
        d.value.assign(reinterpret_cast<const char *>(arg.data() + pos),
                       vlen);
    }
    d.ok = true;
    return d;
}

} // namespace

// ---------------------------------------------------------------------
// Offload
// ---------------------------------------------------------------------

ClioKvOffload::ClioKvOffload(std::uint32_t bucket_count)
    : bucket_count_(bucket_count)
{
    clio_assert(bucket_count > 0, "bucket count must be nonzero");
}

OffloadDescriptor
ClioKvOffload::descriptor(std::uint32_t id)
{
    OffloadDescriptor desc = defaultOffloadDescriptor(id);
    desc.name = "clio-kv";
    desc.arg_bytes = 0; // variable: op + key (+ value)
    desc.reply_bytes_hint = 1200;
    desc.lut = 14800.0;         // hash, chain walker, slab allocator
    desc.bram_bytes = 131072.0; // slot cache + burst buffers
    desc.cycles_per_call = 16;
    desc.cycles_per_element = 1;
    return desc;
}

std::uint64_t
ClioKvOffload::hashKey(const std::string &key)
{
    // FNV-1a 64.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    // Never produce 0: 0 means "empty entry".
    return h ? h : 1;
}

void
ClioKvOffload::init(OffloadVm &vm)
{
    // Bucket head array lives at the start of the offload's RAS.
    bucket_array_ = vm.alloc(bucket_count_ * 8);
    clio_assert(bucket_array_ != 0, "Clio-KV: bucket array alloc failed");
    // Heads start as 0 (fresh pages read as zero after fault).
}

std::uint64_t
ClioKvOffload::slabAlloc(OffloadVm &vm, std::uint64_t n)
{
    // Reserve at least one burst so the speculative header+key fetch
    // never crosses the slab's allocation boundary.
    n = std::max<std::uint64_t>(n, 8 + kMaxKeyBytes);
    clio_assert(n <= kSlabBytes, "object larger than a slab");
    if (slab_base_ == 0 || slab_used_ + n > kSlabBytes) {
        slab_base_ = vm.alloc(kSlabBytes);
        if (slab_base_ == 0)
            return 0;
        slab_used_ = 0;
        slabs_++;
    }
    const std::uint64_t addr = slab_base_ + slab_used_;
    slab_used_ += (n + 7) & ~7ull; // 8-byte alignment
    return addr;
}

bool
ClioKvOffload::readSlot(OffloadVm &vm, std::uint64_t addr, Slot &slot)
{
    return vm.read(addr, &slot, kSlotBytes);
}

bool
ClioKvOffload::writeSlot(OffloadVm &vm, std::uint64_t addr,
                         const Slot &slot)
{
    return vm.write(addr, &slot, kSlotBytes);
}

OffloadResult
ClioKvOffload::invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg)
{
    Decoded d = kvDecode(arg);
    if (!d.ok) {
        return offloadError(OffloadErrc::kBadArgument,
                            "clio-kv: malformed request");
    }
    if (d.key.size() > kMaxKeyBytes) {
        return offloadError(OffloadErrc::kValueTooLarge,
                            "clio-kv: key is " +
                                std::to_string(d.key.size()) +
                                " bytes, limit " +
                                std::to_string(kMaxKeyBytes));
    }
    switch (d.op) {
      case KvOp::kGet:
        gets_++;
        return get(vm, d.key);
      case KvOp::kPut:
        puts_++;
        return put(vm, d.key, d.value);
      case KvOp::kDelete:
        deletes_++;
        return del(vm, d.key);
    }
    return offloadError(OffloadErrc::kBadArgument,
                        "clio-kv: unknown opcode");
}

OffloadResult
ClioKvOffload::get(OffloadVm &vm, const std::string &key)
{
    OffloadResult res;
    const std::uint64_t h = hashKey(key);
    const VirtAddr head_addr = bucket_array_ + (h % bucket_count_) * 8;
    auto slot_addr = vm.read64(head_addr);
    if (!slot_addr) {
        return offloadError(OffloadErrc::kBadAddress,
                            "clio-kv: bucket head read faulted");
    }
    // Walk the bucket chain, fingerprint-first (§6).
    std::uint64_t cursor = *slot_addr;
    while (cursor) {
        Slot slot;
        if (!readSlot(vm, cursor, slot)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "clio-kv: slot read faulted");
        }
        for (const Entry &entry : slot.entries) {
            if (entry.fp != h || entry.addr == 0)
                continue;
            // Fingerprint match: one speculative burst fetches the
            // header and the key together (hardware pulls a whole
            // DRAM burst anyway), then one more access for the value.
            std::uint8_t burst[8 + kMaxKeyBytes];
            if (!vm.read(entry.addr, burst, sizeof(burst)))
                continue;
            std::uint32_t lens[2];
            std::memcpy(lens, burst, 8);
            if (lens[0] > kMaxKeyBytes)
                continue; // foreign/corrupt block
            if (std::string_view(
                    reinterpret_cast<const char *>(burst + 8),
                    lens[0]) != key)
                continue; // fingerprint collision: keep searching
            res.data.resize(lens[1]);
            vm.read(entry.addr + 8 + lens[0], res.data.data(), lens[1]);
            res.value = 1; // found
            return res;
        }
        cursor = slot.next;
    }
    res.value = 0; // not found (status stays kOk)
    res.err_code = static_cast<std::uint32_t>(OffloadErrc::kNotFound);
    return res;
}

OffloadResult
ClioKvOffload::put(OffloadVm &vm, const std::string &key,
                   const std::string &value)
{
    OffloadResult res;
    const std::uint64_t h = hashKey(key);
    const VirtAddr head_addr = bucket_array_ + (h % bucket_count_) * 8;

    // Write the new block first (out of place), then flip the entry
    // pointer: readers see either the old or the new value, never a
    // mix (atomic-write consistency, §6).
    const std::uint64_t block_len = 8 + key.size() + value.size();
    if (block_len > kSlabBytes) {
        return offloadError(OffloadErrc::kValueTooLarge,
                            "clio-kv: object is " +
                                std::to_string(block_len) +
                                " bytes, slab is " +
                                std::to_string(kSlabBytes));
    }
    const std::uint64_t block = slabAlloc(vm, block_len);
    if (!block) {
        return offloadError(OffloadErrc::kAllocFailed,
                            "clio-kv: slab allocation failed",
                            Status::kOutOfMemory);
    }
    std::uint32_t lens[2] = {static_cast<std::uint32_t>(key.size()),
                             static_cast<std::uint32_t>(value.size())};
    vm.write(block, lens, 8);
    vm.write(block + 8, key.data(), key.size());
    vm.write(block + 8 + key.size(), value.data(), value.size());

    std::uint64_t head = vm.read64(head_addr).value_or(0);
    std::uint64_t cursor = head;
    std::uint64_t last_slot = 0;
    std::uint64_t free_slot = 0;
    int free_index = -1;
    while (cursor) {
        Slot slot;
        if (!readSlot(vm, cursor, slot)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "clio-kv: slot read faulted");
        }
        for (int i = 0; i < static_cast<int>(kEntriesPerSlot); i++) {
            Entry &entry = slot.entries[i];
            if (entry.fp == h && entry.addr != 0) {
                std::uint32_t stored[2];
                vm.read(entry.addr, stored, 8);
                std::string stored_key(stored[0], '\0');
                vm.read(entry.addr + 8, stored_key.data(), stored[0]);
                if (stored_key == key) {
                    // Overwrite: pointer flip to the new block.
                    entry.addr = block;
                    vm.write(cursor + 8 + i * 16, &entry, 16);
                    return res;
                }
            }
            if (entry.addr == 0 && free_index < 0) {
                free_slot = cursor;
                free_index = i;
            }
        }
        last_slot = cursor;
        cursor = slot.next;
    }

    Entry entry{h, block};
    if (free_index >= 0) {
        vm.write(free_slot + 8 + free_index * 16, &entry, 16);
        return res;
    }
    // All slots full (or bucket empty): allocate and link a new slot.
    const std::uint64_t new_slot_addr = slabAlloc(vm, kSlotBytes);
    if (!new_slot_addr) {
        return offloadError(OffloadErrc::kAllocFailed,
                            "clio-kv: slot allocation failed",
                            Status::kOutOfMemory);
    }
    Slot fresh{};
    fresh.entries[0] = entry;
    writeSlot(vm, new_slot_addr, fresh);
    if (last_slot) {
        vm.write64(last_slot, new_slot_addr); // link from chain tail
    } else {
        vm.write64(head_addr, new_slot_addr); // first slot of bucket
    }
    return res;
}

OffloadResult
ClioKvOffload::del(OffloadVm &vm, const std::string &key)
{
    OffloadResult res;
    const std::uint64_t h = hashKey(key);
    const VirtAddr head_addr = bucket_array_ + (h % bucket_count_) * 8;
    std::uint64_t cursor = vm.read64(head_addr).value_or(0);
    while (cursor) {
        Slot slot;
        if (!readSlot(vm, cursor, slot)) {
            return offloadError(OffloadErrc::kBadAddress,
                                "clio-kv: slot read faulted");
        }
        for (int i = 0; i < static_cast<int>(kEntriesPerSlot); i++) {
            Entry &entry = slot.entries[i];
            if (entry.fp != h || entry.addr == 0)
                continue;
            std::uint32_t stored[2];
            vm.read(entry.addr, stored, 8);
            std::string stored_key(stored[0], '\0');
            vm.read(entry.addr + 8, stored_key.data(), stored[0]);
            if (stored_key != key)
                continue;
            Entry cleared{};
            vm.write(cursor + 8 + i * 16, &cleared, 16);
            res.value = 1; // deleted
            return res;
        }
        cursor = slot.next;
    }
    res.value = 0; // absent
    res.err_code = static_cast<std::uint32_t>(OffloadErrc::kNotFound);
    return res;
}

// ---------------------------------------------------------------------
// CN-side client
// ---------------------------------------------------------------------

ClioKvClient::ClioKvClient(ClioClient &client, std::vector<NodeId> mns,
                           std::uint32_t offload_id)
    : client_(client), mns_(std::move(mns)), offload_id_(offload_id)
{
    clio_assert(!mns_.empty(), "Clio-KV needs at least one MN");
}

NodeId
ClioKvClient::mnForKey(const std::string &key) const
{
    return mns_[ClioKvOffload::hashKey(key) % mns_.size()];
}

bool
ClioKvClient::put(const std::string &key, const std::string &value)
{
    return client_
        .rcall(mnForKey(key), offload_id_,
               kvEncode(KvOp::kPut, key, value))
        .ok();
}

std::optional<std::string>
ClioKvClient::get(const std::string &key)
{
    const Result<OffloadReply> reply =
        client_.rcall(mnForKey(key), offload_id_,
                      kvEncode(KvOp::kGet, key),
                      /*expected_resp_bytes=*/1200);
    if (!reply || !reply->value)
        return std::nullopt;
    return std::string(reply->data.begin(), reply->data.end());
}

std::vector<std::optional<std::string>>
ClioKvClient::mget(const std::vector<std::string> &keys)
{
    std::vector<std::optional<std::string>> out(keys.size());
    // Group key indices by owning MN, preserving submission order.
    std::vector<std::vector<std::size_t>> groups(mns_.size());
    for (std::size_t i = 0; i < keys.size(); i++) {
        const std::uint64_t h = ClioKvOffload::hashKey(keys[i]);
        groups[h % mns_.size()].push_back(i);
    }
    const std::uint32_t max_depth =
        client_.cnode().config().offload.max_chain_depth;
    for (std::size_t g = 0; g < groups.size(); g++) {
        const std::vector<std::size_t> &idxs = groups[g];
        for (std::size_t base = 0; base < idxs.size();
             base += max_depth) {
            const std::size_t n =
                std::min<std::size_t>(idxs.size() - base, max_depth);
            // Independent kGet stages — no binds, just one round trip
            // for the whole batch; per-stage replies carry each value.
            ChainPlan plan;
            for (std::size_t j = 0; j < n; j++)
                plan.stage(offload_id_,
                           kvEncode(KvOp::kGet, keys[idxs[base + j]]));
            plan.perStageReplies();
            const Result<OffloadReply> reply = client_.rcall_chain(
                mns_[g], plan, /*expected_resp_bytes=*/n * 1200);
            if (!reply)
                continue; // whole batch failed: keys stay nullopt
            for (std::size_t j = 0;
                 j < n && j < reply->stages.size(); j++) {
                const OffloadStageReply &stage = reply->stages[j];
                if (stage.status == Status::kOk && stage.value)
                    out[idxs[base + j]] = std::string(
                        stage.data.begin(), stage.data.end());
            }
        }
    }
    return out;
}

bool
ClioKvClient::del(const std::string &key)
{
    const Result<OffloadReply> reply = client_.rcall(
        mnForKey(key), offload_id_, kvEncode(KvOp::kDelete, key));
    return reply.ok() && reply->value == 1;
}

} // namespace clio
