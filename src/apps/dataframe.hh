/**
 * @file
 * Clio-DF (§6): a DataFrame-style analytics application that splits
 * computation between CN and MN. `select` and `aggregate` run at the
 * MN as offloads (reducing network traffic by shipping only matching
 * rows); `shuffle`/`histogram` run at the CN. All operators — CN and
 * MN side — act on the SAME remote address space (the offloads are
 * registered with registerOffloadShared), which is the paper's key
 * point: no serialization/deserialization between the halves.
 *
 * The Fig. 20 query: SELECT rows WHERE fieldA == v; AVG(fieldB) of
 * them; histogram of the selected fieldB values at the CN.
 */

#ifndef CLIO_APPS_DATAFRAME_HH
#define CLIO_APPS_DATAFRAME_HH

#include <array>
#include <cstdint>
#include <vector>

#include "offload/descriptor.hh"
#include "offload/offload.hh"
#include "clib/client.hh"

namespace clio {

/** MN-side select: compact matching fieldB values into an output
 * buffer within the shared RAS. */
class SelectOffload : public Offload
{
  public:
    struct Args
    {
        std::uint64_t col_a_addr = 0; ///< u8 predicate column
        std::uint64_t col_b_addr = 0; ///< i64 value column
        std::uint64_t out_addr = 0;   ///< compacted i64 output
        std::uint64_t rows = 0;
        std::uint8_t match = 0;
    };
    static std::vector<std::uint8_t> encode(const Args &args);

    /** Deployment descriptor (predicate comparators + compaction). */
    static OffloadDescriptor descriptor(std::uint32_t id);

    OffloadResult invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg) override;
};

/** MN-side aggregate: average of `count` i64 values at an address. */
class AggregateOffload : public Offload
{
  public:
    struct Args
    {
        std::uint64_t values_addr = 0;
        std::uint64_t count = 0;
    };
    static std::vector<std::uint8_t> encode(const Args &args);

    /** Deployment descriptor (adder tree over a streamed column). */
    static OffloadDescriptor descriptor(std::uint32_t id);

    OffloadResult invoke(OffloadVm &vm,
                         const std::vector<std::uint8_t> &arg) override;
};

/** Query result + work accounting. */
struct DfQueryResult
{
    std::uint64_t selected = 0;
    double avg = 0;
    std::array<std::uint64_t, 16> histogram{};
    /** Bytes moved over the network for this query. */
    std::uint64_t net_bytes = 0;
    bool ok = false;
};

/** The CN-side DataFrame application. */
class ClioDataFrame
{
  public:
    /**
     * @param select_id / @param agg_id offload ids of SelectOffload /
     *        AggregateOffload registered (shared-RAS) at `mn`; pass 0
     *        to force the CN-only execution path.
     * @param cn_ps_per_row modeled CN CPU cost per row scanned.
     */
    ClioDataFrame(ClioClient &client, NodeId mn, std::uint32_t select_id,
                  std::uint32_t agg_id, Tick cn_ps_per_row = 1000);

    /** Upload a table (predicate column A, value column B). */
    bool load(const std::vector<std::uint8_t> &col_a,
              const std::vector<std::int64_t> &col_b);

    /** Execute the Fig. 20 query with select+aggregate at the MN. */
    DfQueryResult runOffload(std::uint8_t match);

    /** Same query, but select→aggregate as ONE chained plan: the
     * select stage's match count is bound MN-side into the aggregate
     * stage's `count` field, saving a CN round trip. */
    DfQueryResult runOffloadChained(std::uint8_t match);

    /** Execute everything at the CN (the RDMA-style plan: ship whole
     * columns, filter/aggregate locally). */
    DfQueryResult runAtCn(std::uint8_t match);

    std::uint64_t rows() const { return rows_; }

  private:
    /** CN-side histogram of i64 values into 16 bins. */
    static void buildHistogram(const std::vector<std::int64_t> &values,
                               std::array<std::uint64_t, 16> &bins);

    /** Model CN compute time for scanning `rows` rows. */
    void chargeCnCompute(std::uint64_t row_count);

    ClioClient &client_;
    NodeId mn_;
    std::uint32_t select_id_;
    std::uint32_t agg_id_;
    Tick cn_ps_per_row_;

    std::uint64_t rows_ = 0;
    VirtAddr col_a_ = 0;
    VirtAddr col_b_ = 0;
    VirtAddr scratch_ = 0; ///< compacted select output (shared RAS)
};

} // namespace clio

#endif // CLIO_APPS_DATAFRAME_HH
