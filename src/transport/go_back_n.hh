/**
 * @file
 * Go-Back-N reference transport (Fig. 22's "Go-Back-N" row).
 *
 * This is the conventional, stateful hardware transport design that
 * Clio deliberately avoids: per-flow sequence numbers at both ends, a
 * per-flow retransmission buffer at the sender, cumulative ACKs, and
 * in-order delivery. It is implemented here (a) as the comparison
 * point for the FPGA resource estimate — its per-flow buffers dwarf
 * Clio's transportless network stack — and (b) as a working transport
 * whose behaviour under loss can be tested against CLib's
 * request-level retry.
 *
 * One GbnEndpoint terminates any number of flows, each identified by
 * the peer node id. Messages are byte blobs delivered reliably and in
 * order per flow.
 */

#ifndef CLIO_TRANSPORT_GO_BACK_N_HH
#define CLIO_TRANSPORT_GO_BACK_N_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace clio {

/** Statistics for one endpoint. */
struct GbnStats
{
    std::uint64_t data_sent = 0;
    std::uint64_t data_retransmitted = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t out_of_order_dropped = 0;
};

/** A Go-Back-N endpoint bound to one network node. */
class GbnEndpoint
{
  public:
    /** Delivery callback: (peer, message bytes). */
    using DeliverFn =
        std::function<void(NodeId, std::vector<std::uint8_t>)>;

    /**
     * @param window   sender window in segments.
     * @param rto      retransmission timeout.
     * @param mtu      segment payload limit.
     */
    GbnEndpoint(EventQueue &eq, Network &net, DeliverFn deliver,
                std::uint32_t window = 16,
                Tick rto = 100 * kMicrosecond, std::uint32_t mtu = 1408);

    NodeId nodeId() const { return node_; }

    /** Reliably send a message to a peer endpoint (in-order). */
    void send(NodeId peer, std::vector<std::uint8_t> message);

    const GbnStats &stats() const { return stats_; }

    /**
     * Bytes of transport state this endpoint currently holds:
     * retransmission buffers + reassembly buffers + per-flow sequence
     * state. This is the quantity Fig. 22 contrasts with Clio's
     * transportless MN (which holds none of it).
     */
    std::uint64_t stateBytes() const;

    /** Number of flows with live state. */
    std::size_t flowCount() const {
        return tx_flows_.size() + rx_flows_.size();
    }

  private:
    /** Transport segment carried inside a generic network packet. */
    struct Segment : Message
    {
        bool is_ack = false;
        std::uint64_t seq = 0;       ///< segment seq / cumulative ack
        std::uint32_t msg_len = 0;   ///< total message bytes (head seg)
        bool msg_head = false;       ///< first segment of a message
        std::vector<std::uint8_t> payload;
    };

    struct TxFlow
    {
        std::uint64_t next_seq = 0;   ///< next new segment number
        std::uint64_t base = 0;       ///< oldest unacked
        /** Unacked segments, seq -> segment (retransmission buffer). */
        std::map<std::uint64_t, std::shared_ptr<Segment>> unacked;
        /** Segments not yet admitted by the window. */
        std::deque<std::shared_ptr<Segment>> backlog;
        std::uint64_t timer_generation = 0;
    };

    struct RxFlow
    {
        std::uint64_t expected_seq = 0;
        /** Reassembly of the in-progress message. */
        std::vector<std::uint8_t> partial;
        std::uint32_t msg_len = 0;
    };

    void onPacket(Packet pkt);
    void pump(NodeId peer, TxFlow &flow);
    void transmitSegment(NodeId peer, const std::shared_ptr<Segment> &seg);
    void armTimer(NodeId peer, std::uint64_t generation);
    void onTimeout(NodeId peer, std::uint64_t generation);
    void sendAck(NodeId peer, std::uint64_t cumulative);

    EventQueue &eq_;
    Network &net_;
    DeliverFn deliver_;
    NodeId node_;
    std::uint32_t window_;
    Tick rto_;
    std::uint32_t mtu_payload_;

    std::unordered_map<NodeId, TxFlow> tx_flows_;
    std::unordered_map<NodeId, RxFlow> rx_flows_;
    GbnStats stats_;
};

} // namespace clio

#endif // CLIO_TRANSPORT_GO_BACK_N_HH
