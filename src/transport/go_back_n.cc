#include "transport/go_back_n.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

GbnEndpoint::GbnEndpoint(EventQueue &eq, Network &net, DeliverFn deliver,
                         std::uint32_t window, Tick rto,
                         std::uint32_t mtu)
    : eq_(eq), net_(net), deliver_(std::move(deliver)), window_(window),
      rto_(rto), mtu_payload_(mtu)
{
    clio_assert(window > 0 && mtu > 0, "bad GBN parameters");
    node_ = net_.addNode([this](Packet pkt) { onPacket(std::move(pkt)); });
}

void
GbnEndpoint::send(NodeId peer, std::vector<std::uint8_t> message)
{
    TxFlow &flow = tx_flows_[peer];
    // Segment the message; the first segment carries the total length
    // so the receiver can reassemble.
    std::size_t offset = 0;
    bool head = true;
    do {
        auto seg = std::make_shared<Segment>();
        seg->seq = 0; // assigned at admission
        seg->msg_head = head;
        seg->msg_len = static_cast<std::uint32_t>(message.size());
        const std::size_t n =
            std::min<std::size_t>(mtu_payload_, message.size() - offset);
        seg->payload.assign(message.begin() + static_cast<long>(offset),
                            message.begin() +
                                static_cast<long>(offset + n));
        flow.backlog.push_back(std::move(seg));
        offset += n;
        head = false;
    } while (offset < message.size());
    pump(peer, flow);
}

void
GbnEndpoint::pump(NodeId peer, TxFlow &flow)
{
    while (!flow.backlog.empty() &&
           flow.next_seq < flow.base + window_) {
        auto seg = flow.backlog.front();
        flow.backlog.pop_front();
        seg->seq = flow.next_seq++;
        flow.unacked.emplace(seg->seq, seg);
        transmitSegment(peer, seg);
    }
    if (!flow.unacked.empty())
        armTimer(peer, flow.timer_generation);
}

void
GbnEndpoint::transmitSegment(NodeId peer,
                             const std::shared_ptr<Segment> &seg)
{
    stats_.data_sent++;
    Packet pkt;
    pkt.src = node_;
    pkt.dst = peer;
    pkt.req_id = seg->seq; // reuse the id field for the sequence
    pkt.payload_len = static_cast<std::uint32_t>(seg->payload.size());
    pkt.wire_bytes = pkt.payload_len + kPacketHeaderBytes;
    pkt.msg = seg;
    net_.send(std::move(pkt));
}

void
GbnEndpoint::armTimer(NodeId peer, std::uint64_t generation)
{
    eq_.scheduleAfter(rto_, [this, peer, generation] {
        onTimeout(peer, generation);
    });
}

void
GbnEndpoint::onTimeout(NodeId peer, std::uint64_t generation)
{
    auto it = tx_flows_.find(peer);
    if (it == tx_flows_.end())
        return;
    TxFlow &flow = it->second;
    if (flow.timer_generation != generation || flow.unacked.empty())
        return; // stale timer or all acked
    // Go-Back-N: retransmit EVERY unacked segment.
    flow.timer_generation++;
    for (auto &[seq, seg] : flow.unacked) {
        stats_.data_retransmitted++;
        transmitSegment(peer, seg);
    }
    armTimer(peer, flow.timer_generation);
}

void
GbnEndpoint::sendAck(NodeId peer, std::uint64_t cumulative)
{
    stats_.acks_sent++;
    auto seg = std::make_shared<Segment>();
    seg->is_ack = true;
    seg->seq = cumulative;
    Packet pkt;
    pkt.src = node_;
    pkt.dst = peer;
    pkt.req_id = cumulative;
    pkt.payload_len = 0;
    pkt.wire_bytes = kPacketHeaderBytes;
    pkt.msg = seg;
    net_.send(std::move(pkt));
}

void
GbnEndpoint::onPacket(Packet pkt)
{
    auto seg = std::static_pointer_cast<const Segment>(pkt.msg);
    if (pkt.corrupted)
        return; // checksum drop; timers recover

    if (seg->is_ack) {
        auto it = tx_flows_.find(pkt.src);
        if (it == tx_flows_.end())
            return;
        TxFlow &flow = it->second;
        // Cumulative ack: everything below `seq` is received.
        while (!flow.unacked.empty() &&
               flow.unacked.begin()->first < seg->seq) {
            flow.unacked.erase(flow.unacked.begin());
        }
        flow.base = std::max(flow.base, seg->seq);
        flow.timer_generation++; // restart timer for the new base
        pump(pkt.src, flow);
        return;
    }

    RxFlow &rx = rx_flows_[pkt.src];
    if (seg->seq != rx.expected_seq) {
        // Go-Back-N receivers drop out-of-order segments and re-ack.
        stats_.out_of_order_dropped++;
        sendAck(pkt.src, rx.expected_seq);
        return;
    }
    rx.expected_seq++;
    if (seg->msg_head) {
        rx.partial.clear();
        rx.msg_len = seg->msg_len;
    }
    rx.partial.insert(rx.partial.end(), seg->payload.begin(),
                      seg->payload.end());
    sendAck(pkt.src, rx.expected_seq);
    if (rx.partial.size() >= rx.msg_len) {
        stats_.delivered++;
        if (deliver_)
            deliver_(pkt.src, std::move(rx.partial));
        rx.partial.clear();
        rx.msg_len = 0;
    }
}

std::uint64_t
GbnEndpoint::stateBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[peer, flow] : tx_flows_) {
        total += 24; // sequence state
        for (const auto &[seq, seg] : flow.unacked)
            total += seg->payload.size() + 16;
        for (const auto &seg : flow.backlog)
            total += seg->payload.size() + 16;
    }
    for (const auto &[peer, rx] : rx_flows_)
        total += 16 + rx.partial.size();
    return total;
}

} // namespace clio
