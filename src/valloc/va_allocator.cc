#include "valloc/va_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

VaAllocator::VaAllocator(std::uint64_t page_size,
                         std::uint64_t va_space_size)
    : page_size_(page_size), va_space_size_(va_space_size)
{
    clio_assert(page_size > 0 && va_space_size > page_size,
                "bad VA allocator geometry");
}

std::vector<std::uint64_t>
VaAllocator::vpnsOf(VirtAddr start, std::uint64_t length) const
{
    std::vector<std::uint64_t> vpns;
    vpns.reserve(length / page_size_);
    for (std::uint64_t off = 0; off < length; off += page_size_)
        vpns.push_back((start + off) / page_size_);
    return vpns;
}

bool
VaAllocator::rangeFree(const ProcState &st, VirtAddr start,
                       std::uint64_t length) const
{
    if (start < page_size_ || start + length > va_space_size_)
        return false; // page 0 reserved as the null page
    if (!st.windows.empty()) {
        // Must lie entirely within one assigned window.
        bool inside = false;
        for (const auto &[wstart, wend] : st.windows) {
            if (start >= wstart && start + length <= wend) {
                inside = true;
                break;
            }
        }
        if (!inside)
            return false;
    }
    // First region starting at or after `start`.
    auto next = st.regions.lower_bound(start);
    if (next != st.regions.end() && next->first < start + length)
        return false;
    if (next != st.regions.begin()) {
        auto prev = std::prev(next);
        if (prev->second.start + prev->second.length > start)
            return false;
    }
    return true;
}

std::optional<VirtAddr>
VaAllocator::clampToWindows(const ProcState &st, VirtAddr pos,
                            std::uint64_t length) const
{
    if (st.windows.empty())
        return pos; // unrestricted
    // Find the first window whose end could fit [pos, pos+length).
    for (auto it = st.windows.begin(); it != st.windows.end(); ++it) {
        const VirtAddr start = it->first;
        const VirtAddr end = it->second;
        const VirtAddr candidate = std::max(pos, start);
        if (candidate + length <= end)
            return candidate;
    }
    return std::nullopt;
}

std::optional<VirtAddr>
VaAllocator::findGap(const ProcState &st, VirtAddr from,
                     std::uint64_t length) const
{
    VirtAddr pos = std::max<VirtAddr>(from, page_size_);
    bool wrapped = false;
    while (true) {
        if (auto clamped = clampToWindows(st, pos, length)) {
            pos = *clamped;
        } else {
            // Past the last window: wrap once to retry from the start.
            if (wrapped)
                return std::nullopt;
            wrapped = true;
            pos = page_size_;
            continue;
        }
        if (pos + length > va_space_size_) {
            if (wrapped)
                return std::nullopt;
            wrapped = true;
            pos = page_size_;
            continue;
        }
        // Find the region blocking [pos, pos+length), if any.
        auto next = st.regions.lower_bound(pos);
        if (next != st.regions.begin()) {
            auto prev = std::prev(next);
            if (prev->second.start + prev->second.length > pos) {
                pos = prev->second.start + prev->second.length;
                continue;
            }
        }
        if (next != st.regions.end() && next->first < pos + length) {
            pos = next->first + next->second.length;
            continue;
        }
        return pos;
    }
}

std::optional<VaAllocResult>
VaAllocator::allocate(ProcId pid, std::uint64_t size, std::uint8_t perm,
                      const HashPageTable &pt, std::uint32_t max_retries)
{
    clio_assert(size > 0, "zero-size allocation");
    const std::uint64_t length =
        (size + page_size_ - 1) / page_size_ * page_size_;

    ProcState &st = procs_.try_emplace(pid, ProcState{{}, page_size_, {}})
                        .first->second;

    VirtAddr from = st.cursor;
    std::uint32_t retries = 0;
    while (retries <= max_retries) {
        auto start = findGap(st, from, length);
        if (!start)
            return std::nullopt; // VA space exhausted
        auto vpns = vpnsOf(*start, length);
        if (pt.canInsert(pid, vpns)) {
            st.regions.emplace(*start, VaRegion{*start, length, perm});
            st.cursor = *start + length;
            return VaAllocResult{*start, std::move(vpns), retries};
        }
        // Hash overflow: advance one page and search for the next
        // candidate range (§4.2 "does another search").
        retries++;
        from = *start + length; // fresh, non-overlapping candidate
    }
    return std::nullopt;
}

std::optional<VaAllocResult>
VaAllocator::allocateFixed(ProcId pid, VirtAddr fixed_addr,
                           std::uint64_t size, std::uint8_t perm,
                           const HashPageTable &pt, bool fallback)
{
    clio_assert(fixed_addr % page_size_ == 0,
                "fixed VA must be page aligned");
    const std::uint64_t length =
        (size + page_size_ - 1) / page_size_ * page_size_;
    ProcState &st = procs_.try_emplace(pid, ProcState{{}, page_size_, {}})
                        .first->second;
    if (rangeFree(st, fixed_addr, length)) {
        auto vpns = vpnsOf(fixed_addr, length);
        if (pt.canInsert(pid, vpns)) {
            st.regions.emplace(fixed_addr,
                               VaRegion{fixed_addr, length, perm});
            return VaAllocResult{fixed_addr, std::move(vpns), 0};
        }
    }
    if (!fallback)
        return std::nullopt;
    // §4.2 limitation: fall back to a fresh range when the requested
    // one cannot be inserted overflow-free.
    return allocate(pid, size, perm, pt);
}

std::optional<VaAllocResult>
VaAllocator::free(ProcId pid, VirtAddr addr)
{
    auto pit = procs_.find(pid);
    if (pit == procs_.end())
        return std::nullopt;
    auto rit = pit->second.regions.find(addr);
    if (rit == pit->second.regions.end())
        return std::nullopt;
    VaAllocResult out;
    out.addr = addr;
    out.vpns = vpnsOf(rit->second.start, rit->second.length);
    pit->second.regions.erase(rit);
    return out;
}

const VaRegion *
VaAllocator::regionOf(ProcId pid, VirtAddr addr) const
{
    auto pit = procs_.find(pid);
    if (pit == procs_.end())
        return nullptr;
    const auto &regions = pit->second.regions;
    auto next = regions.upper_bound(addr);
    if (next == regions.begin())
        return nullptr;
    const VaRegion &region = std::prev(next)->second;
    if (addr >= region.start && addr < region.start + region.length)
        return &region;
    return nullptr;
}

std::uint64_t
VaAllocator::allocatedBytes(ProcId pid) const
{
    auto pit = procs_.find(pid);
    if (pit == procs_.end())
        return 0;
    std::uint64_t total = 0;
    for (const auto &[start, region] : pit->second.regions)
        total += region.length;
    return total;
}

void
VaAllocator::addWindow(ProcId pid, VirtAddr start, std::uint64_t length)
{
    clio_assert(start % page_size_ == 0 && length % page_size_ == 0,
                "window must be page aligned");
    ProcState &st = procs_.try_emplace(pid, ProcState{{}, page_size_, {}})
                        .first->second;
    const VirtAddr end = start + length;
    // Merge with an adjacent window when contiguous (the controller
    // hands out consecutive regions for large allocations).
    auto it = st.windows.find(start);
    clio_assert(it == st.windows.end(), "duplicate window");
    auto next = st.windows.lower_bound(start);
    if (next != st.windows.begin()) {
        auto prev = std::prev(next);
        clio_assert(prev->second <= start, "overlapping window");
        if (prev->second == start) {
            prev->second = end;
            if (next != st.windows.end() && next->first == end) {
                prev->second = next->second;
                st.windows.erase(next);
            }
            return;
        }
    }
    if (next != st.windows.end()) {
        clio_assert(end <= next->first, "overlapping window");
        if (next->first == end) {
            const VirtAddr next_end = next->second;
            st.windows.erase(next);
            st.windows.emplace(start, next_end);
            return;
        }
    }
    st.windows.emplace(start, end);
}

std::uint64_t
VaAllocator::windowBytes(ProcId pid) const
{
    auto pit = procs_.find(pid);
    if (pit == procs_.end())
        return 0;
    std::uint64_t total = 0;
    for (const auto &[start, end] : pit->second.windows)
        total += end - start;
    return total;
}

void
VaAllocator::removeWindow(ProcId pid, VirtAddr start,
                          std::uint64_t length)
{
    auto pit = procs_.find(pid);
    clio_assert(pit != procs_.end(), "removeWindow: unknown pid");
    auto &windows = pit->second.windows;
    const VirtAddr end = start + length;
    // The window may have been merged; split it back apart.
    for (auto it = windows.begin(); it != windows.end(); ++it) {
        const VirtAddr wstart = it->first;
        const VirtAddr wend = it->second;
        if (start >= wstart && end <= wend) {
            windows.erase(it);
            if (wstart < start)
                windows.emplace(wstart, start);
            if (end < wend)
                windows.emplace(end, wend);
            return;
        }
    }
    clio_panic("removeWindow: range not inside any window");
}

std::vector<VaRegion>
VaAllocator::extractRegions(ProcId pid, VirtAddr start,
                            std::uint64_t length)
{
    std::vector<VaRegion> out;
    auto pit = procs_.find(pid);
    if (pit == procs_.end())
        return out;
    auto &regions = pit->second.regions;
    const VirtAddr end = start + length;
    auto it = regions.lower_bound(start);
    while (it != regions.end() && it->first < end) {
        clio_assert(it->second.start + it->second.length <= end,
                    "region straddles migration boundary");
        out.push_back(it->second);
        it = regions.erase(it);
    }
    return out;
}

void
VaAllocator::injectRegion(ProcId pid, const VaRegion &region)
{
    ProcState &st = procs_.try_emplace(pid, ProcState{{}, page_size_, {}})
                        .first->second;
    clio_assert(rangeFree(st, region.start, region.length),
                "injectRegion: range not free");
    st.regions.emplace(region.start, region);
}

void
VaAllocator::removeProcess(ProcId pid)
{
    procs_.erase(pid);
}

} // namespace clio
