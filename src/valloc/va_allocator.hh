/**
 * @file
 * Slow-path virtual address allocator (§4.2).
 *
 * Maintains one Linux-vma-style interval tree per process recording
 * allocated VA ranges and permissions. Allocation is first-fit with a
 * roving cursor, but a candidate range is only accepted when inserting
 * all of its pages into the hash page table would overflow no bucket —
 * otherwise the allocator *retries* with the next candidate range. This
 * trades allocation-time retries (Fig. 13) for a run-time guarantee
 * that translation never exceeds one DRAM access.
 */

#ifndef CLIO_VALLOC_VA_ALLOCATOR_HH
#define CLIO_VALLOC_VA_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pagetable/hash_page_table.hh"
#include "sim/types.hh"

namespace clio {

/** Result of a successful VA allocation. */
struct VaAllocResult
{
    /** Start of the allocated range. */
    VirtAddr addr = 0;
    /** Page numbers of the range (for the caller to insert PTEs). */
    std::vector<std::uint64_t> vpns;
    /** Candidate ranges rejected by the hash-overflow check before one
     * was accepted (the Fig. 13 metric). */
    std::uint32_t retries = 0;
};

/** Interval + permissions of one live allocation (a "vma"). */
struct VaRegion
{
    VirtAddr start = 0;
    std::uint64_t length = 0; // bytes, page-aligned
    std::uint8_t perm = kPermNone;
};

/** Per-MN, all-processes VA allocator run by the slow path. */
class VaAllocator
{
  public:
    /**
     * @param page_size     huge-page size in bytes.
     * @param va_space_size per-process RAS size in bytes.
     */
    VaAllocator(std::uint64_t page_size, std::uint64_t va_space_size);

    /**
     * Allocate `size` bytes (rounded up to pages) for `pid`, such that
     * every page of the chosen range fits the hash page table.
     *
     * The overflow check runs against `pt` but this method does NOT
     * insert the PTEs; the caller (slow path) does so after charging
     * the modeled latency, using the returned vpn list.
     *
     * @return nullopt when no VA range fits within `max_retries`
     *         additional candidates (VA space or table truly full).
     */
    std::optional<VaAllocResult>
    allocate(ProcId pid, std::uint64_t size, std::uint8_t perm,
             const HashPageTable &pt, std::uint32_t max_retries = 1000);

    /**
     * Variant that requests a fixed start address (mmap MAP_FIXED-like).
     * Per §4.2's stated limitation, Clio falls back to a fresh range
     * when the fixed one cannot be inserted; `fallback` controls that.
     */
    std::optional<VaAllocResult>
    allocateFixed(ProcId pid, VirtAddr fixed_addr, std::uint64_t size,
                  std::uint8_t perm, const HashPageTable &pt,
                  bool fallback = true);

    /**
     * Free the allocation starting exactly at `addr`.
     * @return the region's page numbers, or nullopt if no allocation
     *         starts at `addr` (caller reports an error to the app).
     */
    std::optional<VaAllocResult> free(ProcId pid, VirtAddr addr);

    /** Region containing `addr`, or nullptr. */
    const VaRegion *regionOf(ProcId pid, VirtAddr addr) const;

    /**
     * Restrict a process' allocations on this MN to controller-assigned
     * windows (§4.7: the global controller hands out coarse VA regions;
     * the MN then manages them at page granularity). A process with no
     * windows may use the entire VA space (single-MN mode). Windows
     * must be page-aligned and non-overlapping.
     */
    void addWindow(ProcId pid, VirtAddr start, std::uint64_t length);

    /** Total window bytes assigned to a process (0 = unrestricted). */
    std::uint64_t windowBytes(ProcId pid) const;

    /** Remove a window previously added (migration hand-off, §4.7).
     * Live regions inside it must have been extracted first. */
    void removeWindow(ProcId pid, VirtAddr start, std::uint64_t length);

    /**
     * Remove and return every live region inside [start, start+length)
     * (region migration support). Regions must not straddle the range
     * boundary (the controller migrates whole coarse regions).
     */
    std::vector<VaRegion> extractRegions(ProcId pid, VirtAddr start,
                                         std::uint64_t length);

    /** Re-insert a region extracted from another MN's allocator. The
     * range must be free (and inside a window when windows exist). */
    void injectRegion(ProcId pid, const VaRegion &region);

    /** Total bytes currently allocated for one process. */
    std::uint64_t allocatedBytes(ProcId pid) const;

    /** Drop all state of a process (teardown). */
    void removeProcess(ProcId pid);

    std::uint64_t pageSize() const { return page_size_; }

  private:
    struct ProcState
    {
        /** start -> region; ordered for gap search. */
        std::map<VirtAddr, VaRegion> regions;
        /** Roving first-fit cursor (next candidate start). */
        VirtAddr cursor;
        /** Controller-assigned windows (start -> end); empty means the
         * whole VA space is allowed. */
        std::map<VirtAddr, VirtAddr> windows;
    };

    /** Clamp a candidate position into the allowed windows; returns
     * nullopt when `pos` is beyond the last window. */
    std::optional<VirtAddr> clampToWindows(const ProcState &st,
                                           VirtAddr pos,
                                           std::uint64_t length) const;

    /** First gap of >= length bytes at or after `from`, wrapping once.
     * @return start address or nullopt when VA space is exhausted. */
    std::optional<VirtAddr> findGap(const ProcState &st, VirtAddr from,
                                    std::uint64_t length) const;

    /** True iff [start, start+length) overlaps no existing region. */
    bool rangeFree(const ProcState &st, VirtAddr start,
                   std::uint64_t length) const;

    std::vector<std::uint64_t> vpnsOf(VirtAddr start,
                                      std::uint64_t length) const;

    std::uint64_t page_size_;
    std::uint64_t va_space_size_;
    std::unordered_map<ProcId, ProcState> procs_;
};

} // namespace clio

#endif // CLIO_VALLOC_VA_ALLOCATOR_HH
