/**
 * @file
 * FPGA resource estimator (§7.3, Fig. 22).
 *
 * Estimates LUT and BRAM utilization of Clio's hardware modules on the
 * paper's ZCU106-class FPGA (504K logic cells, 4.75 MB BRAM) as a
 * function of the model configuration (TLB entries, dedup buffer,
 * async buffer, datapath width). Constants are calibrated so the
 * default configuration reproduces the paper's reported numbers:
 * Clio total 31%/31%, VirtMem 5.5%/3%, NetStack 2.3%/1.7%, and the
 * Go-Back-N reference transport 5.8%/2.6%, against StRoM-RoCEv2
 * (39%/76%) and Tonic-SACK (48%/40%).
 */

#ifndef CLIO_ENERGY_RESOURCES_HH
#define CLIO_ENERGY_RESOURCES_HH

#include <string>
#include <vector>

#include "offload/descriptor.hh"
#include "sim/config.hh"

namespace clio {

/** One row of the Fig. 22 utilization table. */
struct FpgaUtilization
{
    std::string name;
    double lut_pct = 0;
    double bram_pct = 0;
};

/** Target device capacity (the paper's ZCU106-class part). */
struct FpgaDevice
{
    double logic_cells = 504000;
    double bram_bytes = 4.75 * 1024 * 1024;
};

/** Estimate Clio's module utilization under `cfg`. Rows: VirtMem,
 * NetStack, Go-Back-N (reference transport, not deployed), and the
 * Clio total including vendor IPs (PHY/MAC/DDR/interconnect). */
std::vector<FpgaUtilization> clioUtilization(const ModelConfig &cfg,
                                             const FpgaDevice &dev = {});

/** Published utilization of the comparison systems (StRoM RoCEv2 and
 * Tonic selective-ack), from the papers cited in Fig. 22. */
std::vector<FpgaUtilization> comparisonUtilization();

/** Fig. 22 rows for deployed offloads: each offload's compute logic
 * is replicated per engine (LUT × engines) while its staging memory
 * is shared across engines (BRAM counted once). One row per
 * descriptor, plus an "Offloads (Total)" summary row. */
std::vector<FpgaUtilization>
offloadUtilization(const std::vector<OffloadDescriptor> &descs,
                   std::uint32_t engines, const FpgaDevice &dev = {});

} // namespace clio

#endif // CLIO_ENERGY_RESOURCES_HH
