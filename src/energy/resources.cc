#include "energy/resources.hh"

namespace clio {

std::vector<FpgaUtilization>
clioUtilization(const ModelConfig &cfg, const FpgaDevice &dev)
{
    // --- Virtual memory unit -------------------------------------
    // TLB CAM dominates: comparators + match logic per entry, plus
    // the translation/fault pipeline stages.
    const double tlb_entries = cfg.fast_path.tlb_entries;
    const double virtmem_lut = 17000.0 + tlb_entries * 10.5;
    // BRAM: TLB entry storage (16 B/entry) + page-fault async-buffer
    // FIFO + pipeline staging of one datapath word per stage.
    const double virtmem_bram =
        tlb_entries * 16.0 +
        cfg.slow_path.async_buffer_pages * 8.0 +
        16.0 * (cfg.fast_path.datapath_bits / 8.0) + 128000.0;

    // --- Network stack (transportless, §4.4) ----------------------
    // Just checksum verify + NACK generation + header handling; no
    // sequence numbers, no retransmission buffers.
    const double netstack_lut =
        11400.0 + 4.5 * (cfg.fast_path.datapath_bits / 8.0) * 40.0 / 64.0;
    const double netstack_bram =
        cfg.dedup.entries * 24.0 + // dedup ring (3 x TIMEOUT x BW)
        4.0 * cfg.net.mtu +        // ingress/egress staging
        66000.0;

    // --- Go-Back-N reference transport (built for comparison) -----
    // Keeps per-flow state: sequence numbers + retransmission buffer,
    // which is exactly what Clio's design avoids.
    const double gbn_lut = 26000.0 + 2500.0;
    const double gbn_bram = 64.0 * 2048.0; // per-flow retx buffers

    // --- Clio total ------------------------------------------------
    // VirtMem + NetStack + vendor IPs (PHY, MAC, DDR4 controller,
    // AXI interconnect), which the paper reports dominate the total.
    // Calibrated so the default prototype() configuration lands on the
    // paper's reported totals (31% LUT / 31% BRAM on the ZCU106 part).
    const double vendor_lut = 116900.0;
    const double vendor_bram = 1313800.0;
    const double total_lut = virtmem_lut + netstack_lut + vendor_lut;
    const double total_bram = virtmem_bram + netstack_bram + vendor_bram;

    auto pct = [](double x, double cap) { return 100.0 * x / cap; };
    return {
        {"Clio (Total)", pct(total_lut, dev.logic_cells),
         pct(total_bram, dev.bram_bytes)},
        {"VirtMem", pct(virtmem_lut, dev.logic_cells),
         pct(virtmem_bram, dev.bram_bytes)},
        {"NetStack", pct(netstack_lut, dev.logic_cells),
         pct(netstack_bram, dev.bram_bytes)},
        {"Go-Back-N", pct(gbn_lut, dev.logic_cells),
         pct(gbn_bram, dev.bram_bytes)},
    };
}

std::vector<FpgaUtilization>
offloadUtilization(const std::vector<OffloadDescriptor> &descs,
                   std::uint32_t engines, const FpgaDevice &dev)
{
    auto pct = [](double x, double cap) { return 100.0 * x / cap; };
    std::vector<FpgaUtilization> rows;
    double lut = 0, bram = 0;
    for (const OffloadDescriptor &desc : descs) {
        const double d_lut = desc.lut * engines;
        const double d_bram = desc.bram_bytes;
        rows.push_back({desc.name, pct(d_lut, dev.logic_cells),
                        pct(d_bram, dev.bram_bytes)});
        lut += d_lut;
        bram += d_bram;
    }
    rows.insert(rows.begin(),
                {"Offloads (Total)", pct(lut, dev.logic_cells),
                 pct(bram, dev.bram_bytes)});
    return rows;
}

std::vector<FpgaUtilization>
comparisonUtilization()
{
    // Published numbers quoted by Fig. 22.
    return {
        {"StRoM-RoCEv2", 39.0, 76.0},
        {"Tonic-SACK", 48.0, 40.0},
    };
}

} // namespace clio
