#include "energy/energy.hh"

#include "sim/logging.hh"

namespace clio {

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kClio:
        return "Clio";
      case SystemKind::kClover:
        return "Clover";
      case SystemKind::kHerd:
        return "HERD";
      case SystemKind::kHerdBluefield:
        return "HERD-BF";
      case SystemKind::kLegoOs:
        return "LegoOS";
      case SystemKind::kRdma:
        return "RDMA";
    }
    return "?";
}

double
mnPowerWatts(const EnergyConfig &cfg, SystemKind kind)
{
    switch (kind) {
      case SystemKind::kClio:
        return cfg.cboard_watts;
      case SystemKind::kClover:
        return cfg.passive_mn_watts;
      case SystemKind::kHerdBluefield:
        return cfg.bluefield_watts;
      case SystemKind::kHerd:
      case SystemKind::kLegoOs:
      case SystemKind::kRdma:
        return cfg.mn_server_watts;
    }
    return 0;
}

double
cnShareMultiplier(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kClover:
        // CNs manage allocation, versions, and retries themselves
        // (§2.3: "CNs use more cycles to process and manage memory").
        return 1.15;
      case SystemKind::kRdma:
        return 1.1; // MR management and connection upkeep
      default:
        return 1.0;
    }
}

double
offloadEnergyMj(const EnergyConfig &cfg, Tick engine_busy)
{
    return cfg.offload_engine_watts * ticksToSeconds(engine_busy) * 1e3;
}

EnergyBreakdown
perRequestEnergy(const EnergyConfig &cfg, SystemKind kind, Tick runtime,
                 std::uint64_t requests)
{
    clio_assert(requests > 0, "energy for zero requests");
    const double seconds = ticksToSeconds(runtime);
    const double per_req = seconds / static_cast<double>(requests);
    EnergyBreakdown out;
    // CN side: only the client's active share of the server is
    // attributed to this workload.
    out.cn_mj = cfg.cn_server_watts * cfg.cn_core_fraction *
                cnShareMultiplier(kind) * per_req * 1e3;
    out.mn_mj = mnPowerWatts(cfg, kind) * per_req * 1e3;
    return out;
}

} // namespace clio
