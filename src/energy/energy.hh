/**
 * @file
 * Energy accounting (§7.3, Fig. 21).
 *
 * The paper measures whole-node energy per YCSB request: power draw of
 * the involved nodes times runtime, divided by requests served. The
 * rankings come from two levers this model captures:
 *  - what the MN is (CBoard 25 W vs CPU server 250 W vs BlueField
 *    75 W vs passive raw memory 90 W);
 *  - how long the run takes (slower systems burn their power longer;
 *    HERD-BF is "low power" yet costs the most energy per request
 *    because it is slow).
 */

#ifndef CLIO_ENERGY_ENERGY_HH
#define CLIO_ENERGY_ENERGY_HH

#include <string>

#include "sim/config.hh"
#include "sim/types.hh"

namespace clio {

/** The systems compared in Fig. 21. */
enum class SystemKind {
    kClio,
    kClover,
    kHerd,
    kHerdBluefield,
    kLegoOs,
    kRdma,
};

const char *systemName(SystemKind kind);

/** Energy split per request, in millijoules. */
struct EnergyBreakdown
{
    double cn_mj = 0;
    double mn_mj = 0;
    double total() const { return cn_mj + mn_mj; }
};

/** MN-side power draw of a system, in watts. */
double mnPowerWatts(const EnergyConfig &cfg, SystemKind kind);

/** CN-side *active share* multiplier: passive-memory systems push
 * management work onto CN CPUs (§2.3), burning more CN cycles. */
double cnShareMultiplier(SystemKind kind);

/**
 * Energy per request for a run that served `requests` requests in
 * `runtime` of simulated time.
 */
EnergyBreakdown perRequestEnergy(const EnergyConfig &cfg, SystemKind kind,
                                 Tick runtime, std::uint64_t requests);

/** Energy (mJ) an offload burned while occupying an engine for
 * `engine_busy` of simulated time: active-engine power on top of the
 * CBoard's baseline draw (Fig. 21 attribution for the extend path). */
double offloadEnergyMj(const EnergyConfig &cfg, Tick engine_busy);

} // namespace clio

#endif // CLIO_ENERGY_ENERGY_HH
