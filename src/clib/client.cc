#include "clib/client.hh"

#include <algorithm>
#include <cstring>

#include "clib/queue.hh"
#include "sim/logging.hh"

namespace clio {

namespace {
/** Page size used for dependency tracking; must match the MN page
 * size for exactness but only affects false-positive granularity. */
constexpr std::uint64_t kTrackPage = 4 * MiB;
} // namespace

ClioClient::ClioClient(CNode &cn, ProcId pid, NodeId home_mn)
    : cn_(cn), pid_(pid), home_mn_(home_mn)
{
}

std::vector<ClioClient::Region>::iterator
ClioClient::regionAt(VirtAddr addr)
{
    return std::lower_bound(regions_.begin(), regions_.end(), addr,
                            [](const Region &r, VirtAddr a) {
                                return r.start < a;
                            });
}

void
ClioClient::noteRegion(VirtAddr addr, std::uint64_t size, NodeId mn)
{
    auto it = regionAt(addr);
    if (it != regions_.end() && it->start == addr) {
        it->length = size;
        it->mn = mn;
        return;
    }
    regions_.insert(it, Region{addr, size, mn, false});
}

NodeId
ClioClient::mnFor(VirtAddr addr) const
{
    // Greatest start <= addr, containment check.
    auto next = std::upper_bound(regions_.begin(), regions_.end(), addr,
                                 [](VirtAddr a, const Region &r) {
                                     return a < r.start;
                                 });
    if (next != regions_.begin()) {
        const Region &r = *std::prev(next);
        if (addr >= r.start && addr < r.start + r.length)
            return r.mn;
    }
    return home_mn_;
}

void
ClioClient::copyRoutingFrom(const ClioClient &other)
{
    clio_assert(pid_ == other.pid_,
                "routing can only be shared within one RAS (same PID)");
    regions_ = other.regions_;
}

void
ClioClient::redirectRegion(VirtAddr start, std::uint64_t length,
                           NodeId mn)
{
    // Update every fine-grained routing entry inside the region, then
    // make sure the coarse range itself resolves to the new MN.
    auto it = regionAt(start);
    const bool have_exact = it != regions_.end() && it->start == start;
    for (; it != regions_.end() && it->start < start + length; ++it)
        it->mn = mn;
    if (!have_exact)
        regions_.insert(regionAt(start), Region{start, length, mn, false});
}

// ---------------------------------------------------------------------
// Ordering layer (T2)
// ---------------------------------------------------------------------

bool
ClioClient::conflicts(const Footprint &a, const Footprint &b)
{
    if (a.barrier || b.barrier)
        return true;
    if (!a.is_write && !b.is_write)
        return false; // RAR never conflicts
    return a.first_vpn <= b.last_vpn && b.first_vpn <= a.last_vpn;
}


HandlePtr
ClioClient::submit(Op op)
{
    op.op_seq = next_op_seq_++;
    HandlePtr handle = op.handle;
    // Blocked iff it conflicts with a queued or inflight op.
    // Independent ops may overtake the queue (release order allows
    // out-of-order execution of non-dependent requests).
    bool blocked = false;
    for (const auto &queued : pending_) {
        if (conflicts(op.fp, queued.fp)) {
            blocked = true;
            break;
        }
    }
    if (!blocked) {
        for (const InflightFp &inflight : inflight_fps_) {
            if (conflicts(op.fp, inflight.fp)) {
                blocked = true;
                break;
            }
        }
    }
    if (blocked) {
        stats_.ordering_stalls++;
        pending_.push_back(std::move(op));
    } else {
        issueNow(std::move(op));
    }
    return handle;
}

void
ClioClient::issueNow(Op op)
{
    const std::uint64_t seq = op.op_seq;
    auto req = op.req;
    const std::uint64_t expected = op.expected_resp_bytes;
    inflight_fps_.push_back(InflightFp{seq, op.fp});
    inflight_ops_.push_back(std::move(op));
    cn_.issue(std::move(req), expected,
              [this, seq](const ResponseMsg &resp) {
                  onComplete(seq, resp);
              });
}

void
ClioClient::onComplete(std::uint64_t op_seq, const ResponseMsg &resp)
{
    std::size_t idx = inflight_fps_.size();
    for (std::size_t i = 0; i < inflight_fps_.size(); i++) {
        if (inflight_fps_[i].op_seq == op_seq) {
            idx = i;
            break;
        }
    }
    clio_assert(idx < inflight_fps_.size(), "completion for unknown op");
    Op op = std::move(inflight_ops_[idx]);
    inflight_fps_[idx] = inflight_fps_.back();
    inflight_fps_.pop_back();
    inflight_ops_[idx] = std::move(inflight_ops_.back());
    inflight_ops_.pop_back();

    const Status status = resp.status;
    const std::uint64_t value = resp.value;
    op.handle->status = status;
    op.handle->value = value;
    op.handle->err_code = resp.err_code;
    if (op.read_buf && status == Status::kOk) {
        std::memcpy(op.read_buf, resp.data.data(),
                    std::min<std::uint64_t>(resp.data.size(),
                                            op.req->size));
    } else if (!op.read_buf && !resp.data.empty()) {
        // Offload results — or, on a failed offload, its error
        // message bytes.
        op.handle->data = resp.data;
    }
    if (!resp.stages.empty())
        op.handle->stages = resp.stages;

    // Post-processing of metadata ops.
    if (op.req->type == MsgType::kAlloc && status == Status::kOk) {
        noteRegion(value, op.req->size, op.req->dst);
        regionAt(value)->is_alloc = true;
    } else if (op.req->type == MsgType::kFree && status == Status::kOk) {
        auto it = regionAt(op.req->addr);
        if (it != regions_.end() && it->start == op.req->addr)
            regions_.erase(it);
    }

    op.handle->done = true;
    op.handle->completed_at_ = cn_.eventQueue().now();
    if (op.handle->cq_) {
        // Queue-based delivery: single-shot by construction (the
        // handle's latch is consumed inside deliver()).
        op.handle->cq_->deliver(op.handle);
    }
    drainPending();
}

void
ClioClient::drainPending()
{
    // Issue every queued op whose conflicts (against inflight ops and
    // *earlier* queued ops) have cleared, preserving order among
    // dependent requests only. Kept entries are compacted in place.
    std::vector<Footprint> earlier;
    earlier.reserve(pending_.size());
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pending_.size(); i++) {
        bool blocked = false;
        for (const auto &fp : earlier) {
            if (conflicts(pending_[i].fp, fp)) {
                blocked = true;
                break;
            }
        }
        if (!blocked) {
            for (const InflightFp &inflight : inflight_fps_) {
                if (conflicts(pending_[i].fp, inflight.fp)) {
                    blocked = true;
                    break;
                }
            }
        }
        if (blocked) {
            earlier.push_back(pending_[i].fp);
            if (keep != i)
                pending_[keep] = std::move(pending_[i]);
            keep++;
        } else {
            issueNow(std::move(pending_[i]));
        }
    }
    pending_.resize(keep);
}

// ---------------------------------------------------------------------
// Asynchronous API
// ---------------------------------------------------------------------

HandlePtr
ClioClient::rallocAsync(std::uint64_t size, std::uint8_t perm,
                        bool populate, NodeId mn_override)
{
    stats_.allocs++;
    const NodeId mn = mn_override
                          ? mn_override
                          : (alloc_picker_ ? alloc_picker_(size)
                                           : home_mn_);
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kAlloc;
    req->pid = pid_;
    req->dst = mn;
    req->size = size;
    req->perm = perm;
    req->populate = populate;
    Op op;
    op.fp = Footprint{0, 0, false, false}; // fresh VAs: no conflicts
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    op.expected_resp_bytes = 0;
    return submit(std::move(op));
}

HandlePtr
ClioClient::rfreeAsync(VirtAddr addr)
{
    stats_.frees++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kFree;
    req->pid = pid_;
    req->dst = mnFor(addr);
    req->addr = addr;
    std::uint64_t size = kTrackPage;
    auto it = regionAt(addr);
    if (it != regions_.end() && it->start == addr && it->is_alloc)
        size = it->length;
    Op op;
    // A free conflicts with any access to the freed range (§3.1: no
    // read/write may start until the rfree finishes).
    op.fp = Footprint{addr / kTrackPage, (addr + size - 1) / kTrackPage,
                      true, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    return submit(std::move(op));
}

HandlePtr
ClioClient::rreadAsync(VirtAddr addr, void *buf, std::uint64_t len)
{
    stats_.reads++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kRead;
    req->pid = pid_;
    req->dst = mnFor(addr);
    req->addr = addr;
    req->size = len;
    Op op;
    op.fp = Footprint{addr / kTrackPage, (addr + len - 1) / kTrackPage,
                      false, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    op.expected_resp_bytes = len;
    op.read_buf = buf;
    return submit(std::move(op));
}

HandlePtr
ClioClient::rwriteAsync(VirtAddr addr, const void *src, std::uint64_t len)
{
    std::vector<std::uint8_t> data(
        static_cast<const std::uint8_t *>(src),
        static_cast<const std::uint8_t *>(src) + len);
    return rwriteAsync(addr, std::move(data));
}

HandlePtr
ClioClient::rwriteAsync(VirtAddr addr, std::vector<std::uint8_t> data)
{
    stats_.writes++;
    const std::uint64_t len = data.size();
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kWrite;
    req->pid = pid_;
    req->dst = mnFor(addr);
    req->addr = addr;
    req->size = len;
    req->data = std::move(data);
    Op op;
    op.fp = Footprint{addr / kTrackPage, (addr + len - 1) / kTrackPage,
                      true, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    return submit(std::move(op));
}

HandlePtr
ClioClient::atomicAsync(VirtAddr addr, AtomicOp aop, std::uint64_t arg0,
                        std::uint64_t arg1)
{
    stats_.atomics++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kAtomic;
    req->pid = pid_;
    req->dst = mnFor(addr);
    req->addr = addr;
    req->size = 8;
    req->aop = aop;
    req->arg0 = arg0;
    req->arg1 = arg1;
    Op op;
    op.fp = Footprint{addr / kTrackPage, addr / kTrackPage, true, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    return submit(std::move(op));
}

HandlePtr
ClioClient::fenceAsync()
{
    stats_.fences++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kFence;
    req->pid = pid_;
    req->dst = home_mn_;
    Op op;
    op.fp = Footprint{0, ~0ull, true, true}; // full barrier
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    return submit(std::move(op));
}

HandlePtr
ClioClient::offloadAsync(NodeId mn, std::uint32_t offload_id,
                         std::vector<std::uint8_t> arg,
                         std::uint64_t expected_resp_bytes)
{
    stats_.offloads++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kOffload;
    req->pid = pid_;
    req->dst = mn;
    req->offload_id = offload_id;
    req->offload_arg = std::move(arg);
    Op op;
    // Offloads act on the offload's own RAS; apps order them with
    // rpoll when needed.
    op.fp = Footprint{0, 0, false, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    op.expected_resp_bytes = expected_resp_bytes;
    return submit(std::move(op));
}

HandlePtr
ClioClient::rcallChainAsync(NodeId mn, const ChainPlan &plan,
                            std::uint64_t expected_resp_bytes)
{
    stats_.offloads++;
    stats_.offload_chains++;
    auto req = cn_.requestPool().acquire();
    req->type = MsgType::kOffload;
    req->pid = pid_;
    req->dst = mn;
    req->chain = plan.stages();
    req->chain_per_stage = plan.perStage();
    Op op;
    // Like single offloads: chains act on offload address spaces,
    // ordered by the app via rpoll when needed.
    op.fp = Footprint{0, 0, false, false};
    op.handle = cn_.handlePool().acquire();
    op.req = std::move(req);
    op.expected_resp_bytes = expected_resp_bytes;
    return submit(std::move(op));
}

bool
ClioClient::rpoll(const std::vector<HandlePtr> &handles)
{
    auto all_done = [&handles] {
        return std::all_of(handles.begin(), handles.end(),
                           [](const HandlePtr &h) { return h->done; });
    };
    const bool ok = cn_.eventQueue().runUntil(all_done);
    clio_assert(ok, "rpoll: simulation drained with requests pending");
    return std::all_of(handles.begin(), handles.end(),
                       [](const HandlePtr &h) {
                           return h->status == Status::kOk;
                       });
}

bool
ClioClient::rpoll(const HandlePtr &handle)
{
    return rpoll(std::vector<HandlePtr>{handle});
}

void
ClioClient::rrelease()
{
    const bool ok = cn_.eventQueue().runUntil(
        [this] { return inflight_fps_.empty() && pending_.empty(); });
    clio_assert(ok, "rrelease: simulation drained with requests pending");
}

// ---------------------------------------------------------------------
// Synchronous API
// ---------------------------------------------------------------------

Result<VirtAddr>
ClioClient::ralloc(std::uint64_t size, std::uint8_t perm, bool populate)
{
    auto h = rallocAsync(size, perm, populate);
    rpoll(h);
    return h->result();
}

Status
ClioClient::rfree(VirtAddr addr)
{
    auto h = rfreeAsync(addr);
    rpoll(h);
    return h->status;
}

Status
ClioClient::rread(VirtAddr addr, void *buf, std::uint64_t len)
{
    auto h = rreadAsync(addr, buf, len);
    rpoll(h);
    return h->status;
}

Status
ClioClient::rwrite(VirtAddr addr, const void *src, std::uint64_t len)
{
    auto h = rwriteAsync(addr, src, len);
    rpoll(h);
    return h->status;
}

Result<std::uint64_t>
ClioClient::rfaa(VirtAddr addr, std::uint64_t add)
{
    auto h = atomicAsync(addr, AtomicOp::kFetchAdd, add);
    rpoll(h);
    return h->result();
}

Status
ClioClient::rreadv(const std::vector<ReadSeg> &segs)
{
    SubmissionBatch batch(*this);
    for (const ReadSeg &seg : segs)
        batch.read(seg.addr, seg.buf, seg.len);
    return batch.submitAndWait().status;
}

Status
ClioClient::rwritev(const std::vector<WriteSeg> &segs)
{
    SubmissionBatch batch(*this);
    for (const WriteSeg &seg : segs)
        batch.write(seg.addr, seg.src, seg.len);
    return batch.submitAndWait().status;
}

bool
ClioClient::rlock(VirtAddr lock_addr, std::uint32_t max_spins)
{
    Tick backoff = 200 * kNanosecond;
    for (std::uint32_t spin = 0; spin < max_spins; spin++) {
        auto h = atomicAsync(lock_addr, AtomicOp::kTestAndSet);
        if (!rpoll(h))
            return false;
        if (h->value == 0)
            return true; // acquired
        // Lock held: back off before respinning (keeps MN atomic unit
        // and the network from thrashing).
        cn_.eventQueue().runUntilTime(cn_.eventQueue().now() + backoff);
        backoff = std::min<Tick>(backoff * 2, 20 * kMicrosecond);
    }
    return false;
}

void
ClioClient::runlock(VirtAddr lock_addr)
{
    auto h = atomicAsync(lock_addr, AtomicOp::kStore, 0);
    rpoll(h);
}

Status
ClioClient::rfence()
{
    auto h = fenceAsync();
    rpoll(h);
    return h->status;
}

Result<OffloadReply>
ClioClient::rcall(NodeId mn, std::uint32_t offload_id,
                  std::vector<std::uint8_t> arg,
                  std::uint64_t expected_resp_bytes)
{
    auto h = offloadAsync(mn, offload_id, std::move(arg),
                          expected_resp_bytes);
    rpoll(h);
    if (h->status != Status::kOk)
        return Result<OffloadReply>(
            h->status, h->err_code,
            std::string(h->data.begin(), h->data.end()));
    OffloadReply reply;
    reply.value = h->value;
    reply.data = std::move(h->data);
    return reply;
}

Result<OffloadReply>
ClioClient::rcall_chain(NodeId mn, const ChainPlan &plan,
                        std::uint64_t expected_resp_bytes)
{
    if (plan.depth() == 0) {
        // Reject locally: an empty chain would go out as a single
        // call for offload id 0.
        return Result<OffloadReply>(
            Status::kOffloadError,
            static_cast<std::uint32_t>(OffloadErrc::kBadArgument),
            "empty chain");
    }
    auto h = rcallChainAsync(mn, plan, expected_resp_bytes);
    rpoll(h);
    if (h->status != Status::kOk)
        return Result<OffloadReply>(
            h->status, h->err_code,
            std::string(h->data.begin(), h->data.end()));
    OffloadReply reply;
    reply.value = h->value;
    reply.data = std::move(h->data);
    reply.stages = std::move(h->stages);
    return reply;
}

} // namespace clio
