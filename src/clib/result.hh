/**
 * @file
 * Typed operation results for the CLib surface (§3.1).
 *
 * Result<T> is an expected-like carrier of either a value or a
 * non-kOk Status. It replaces the bool/Status/value triple that used
 * to be smeared across RequestHandle and out-parameters: synchronous
 * APIs return Result<T> directly, and batched completions convert to
 * it via Completion::result().
 */

#ifndef CLIO_CLIB_RESULT_HH
#define CLIO_CLIB_RESULT_HH

#include <cstdint>
#include <string>
#include <utility>

#include "offload/errc.hh"
#include "proto/messages.hh"
#include "sim/logging.hh"

namespace clio {

/** Either a T (status kOk) or a failure Status — never both. */
template <typename T>
class Result
{
  public:
    /** Success, carrying the operation's value. */
    Result(T value) : status_(Status::kOk), value_(std::move(value)) {}

    /** Failure. The status must be a real error, so kOk can never
     * coexist with a default-constructed value. */
    Result(Status error) : status_(error)
    {
        clio_assert(error != Status::kOk,
                    "Result error constructor needs a non-Ok status");
    }

    /** Failure with offload-level detail: the offload-defined error
     * code (offload/errc.hh) and the message bytes the MN sent back. */
    Result(Status error, std::uint32_t err_code, std::string err_msg)
        : status_(error), err_code_(err_code), err_msg_(std::move(err_msg))
    {
        clio_assert(error != Status::kOk,
                    "Result error constructor needs a non-Ok status");
    }

    bool ok() const { return status_ == Status::kOk; }
    explicit operator bool() const { return ok(); }

    Status status() const { return status_; }

    /** Status name for log/assert messages ("Ok", "BadAddress", ...). */
    const char *statusName() const { return to_string(status_); }

    /** @{ Offload-level error detail (0/"" unless the failing call was
     * an offload that reported one). */
    std::uint32_t errCode() const { return err_code_; }
    const std::string &errMessage() const { return err_msg_; }
    /** Name of the error code ("NotFound", "App(3)", ...). */
    std::string errName() const { return offloadErrcName(err_code_); }
    /** @} */

    /** @{ The value; asserts on error (check ok() first). */
    T &value() &
    {
        clio_assert(ok(), "Result::value() on error %s", statusName());
        return value_;
    }
    const T &value() const &
    {
        clio_assert(ok(), "Result::value() on error %s", statusName());
        return value_;
    }
    T &&value() &&
    {
        clio_assert(ok(), "Result::value() on error %s", statusName());
        return std::move(value_);
    }
    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }
    /** @} */

    /** The value, or `fallback` on error. */
    T value_or(T fallback) const &
    {
        return ok() ? value_ : std::move(fallback);
    }
    T value_or(T fallback) &&
    {
        return ok() ? std::move(value_) : std::move(fallback);
    }

  private:
    Status status_;
    /** @{ Offload error detail (failure constructor only). */
    std::uint32_t err_code_ = 0;
    std::string err_msg_;
    /** @} */
    /** Default-constructed on error; only exposed when ok(). */
    T value_{};
};

} // namespace clio

#endif // CLIO_CLIB_RESULT_HH
