/**
 * @file
 * Compute node + CLib transport layer (§4.4).
 *
 * A CNode models one regular server with a commodity Ethernet NIC.
 * All transport state lives here, on the CN side, making MNs
 * "transportless":
 *  - connection-less request/response matching by request id;
 *  - request-level reliability: the whole memory request is retried
 *    (with a FRESH id, carrying the original id for MN-side dedup) on
 *    NACK, corrupted response, or timeout (§4.5 T4);
 *  - delay-based AIMD congestion window per MN, which may fall below
 *    one outstanding request under heavy congestion (Swift-style,
 *    §4.4), plus an incast window bounding expected response bytes;
 *  - MTU split on send and response reassembly on receive (T1).
 *
 * Layout note: one CNode is shared by every simulated process on its
 * server, so at 10^4+ processes per CN the per-request state here is
 * kept in pooled slots (bodies are recycled, never freed per-op) and
 * the per-MN congestion records are a trivially-copyable
 * struct-of-arrays scanned linearly on the send/ack paths.
 */

#ifndef CLIO_CLIB_CNODE_HH
#define CLIO_CLIB_CNODE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "net/network.hh"
#include "proto/messages.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace clio {

struct RequestHandle;

/** Transport-level statistics for one CNode. */
struct CNodeStats
{
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t retries = 0;
    std::uint64_t nacks = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0; ///< kRetryExceeded surfaced to apps
    std::uint64_t cwnd_decreases = 0;
    std::uint64_t epoch_refreshes = 0; ///< kEpochFenced-triggered refreshes
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t crashes = 0;
};

/** One compute node: NIC + CLib transport shared by its processes. */
class CNode
{
  public:
    /** Completion callback, handed the full assembled response (status,
     * payload, scalar value, offload error code, per-stage replies).
     * CLib-side failures (timeout, retry exhaustion, dead node) deliver
     * a synthesized response carrying only the failure status. */
    using Completion = std::function<void(const ResponseMsg &)>;

    CNode(EventQueue &eq, Network &network, const ModelConfig &cfg,
          RackId rack = 0);

    NodeId nodeId() const { return node_; }
    EventQueue &eventQueue() { return eq_; }
    const ModelConfig &config() const { return cfg_; }

    /**
     * Issue one request. The transport owns ordering *below* the
     * request level only; inter-request ordering is the client
     * layer's job (T2). `req->dst` selects the MN.
     *
     * @param expected_resp_bytes response payload size for the incast
     *        window (reads: size; others: ~0).
     */
    void issue(std::shared_ptr<RequestMsg> req,
               std::uint64_t expected_resp_bytes, Completion cb);

    const CNodeStats &stats() const { return stats_; }
    LatencyHistogram &rttHistogram() { return rtt_hist_; }

    /** @{ Membership epoch (health plane). Every attempt is stamped
     * with the CN's current epoch; an MN that rejoined after this
     * epoch fences the request with kEpochFenced. The refresh hook
     * models the CN re-fetching the current epoch from the controller
     * when fenced (a control-plane RPC, modeled as instantaneous). */
    void setEpoch(std::uint64_t epoch) { epoch_ = epoch; }
    std::uint64_t epoch() const { return epoch_; }
    void setEpochRefresh(std::function<std::uint64_t()> hook)
    {
        epoch_refresh_ = std::move(hook);
    }
    /** @} */

    /** @{ CN process-level failure (health plane / chaos). crash()
     * fails every outstanding request with kTimeout (their issuing
     * processes died; completions fire so pumping callers unwind) and
     * stops heartbeats; restart() resumes with fresh transport state. */
    bool alive() const { return alive_; }
    void crash();
    void restart();
    /** @} */

    /** Start emitting liveness beacons to `controller` every `period`
     * ticks, first one at `phase` (staggered per node so beacons never
     * synchronize). Beacons are real packets through the fabric. */
    void startHeartbeats(NodeId controller, Tick period, Tick phase);

    /** Monotonic restart count, carried in heartbeats so the
     * controller can spot a crash+restart that fit inside one lease. */
    std::uint64_t incarnation() const { return incarnation_; }

    /** Current congestion window toward an MN (test/bench hook). */
    double cwnd(NodeId mn) const;

    /** @{ Recycling rings shared by every ClioClient on this CN (a
     * request message / handle lives ~one RTT, so a per-node ring
     * recycles across all processes instead of each of 10^4+ clients
     * carrying its own ~1 KB pool). */
    MessagePool<RequestMsg> &requestPool() { return req_pool_; }
    MessagePool<RequestHandle> &handlePool() { return handle_pool_; }
    /** @} */

  private:
    struct Outstanding
    {
        std::shared_ptr<RequestMsg> req;
        Completion cb;
        std::uint64_t expected_resp_bytes = 0;
        Tick sent_at = 0;
        std::uint32_t retries = 0;
        /** Timeout-staleness guard. */
        std::uint64_t generation = 0;
        /** Whether the most recent failed attempt died by timeout (vs
         * NACK/corruption) — decides kTimeout vs kRetryExceeded when
         * retries are exhausted. */
        bool last_fail_timeout = false;
        /** Whether the most recent failed attempt was epoch-fenced by
         * the MN; surfaced as kEpochFenced on exhaustion. */
        bool last_fail_fenced = false;
        /** Response reassembly (T1). */
        std::uint32_t resp_parts_seen = 0;
        std::uint32_t resp_parts_total = 0;
        /** Per-part seen bitmap: a duplicated response packet (chaos
         * hook) must not double-count toward resp_parts_total. */
        std::vector<std::uint64_t> resp_seen_bits;
        std::shared_ptr<const ResponseMsg> resp;
        bool resp_corrupted = false;
    };

    /** Per-destination-MN congestion state: the scalar record scanned
     * and updated on every send/ack. Trivially copyable by design —
     * the (cold) per-MN wait queues live in a parallel array. */
    struct PerMn
    {
        double cwnd = 0.0;
        std::uint32_t inflight = 0;
        /** Pacing gate used when cwnd < 1. */
        Tick next_send_allowed = 0;
        Tick last_rtt = 0;
        /** Once-per-RTT limiter for multiplicative decrease. */
        Tick last_decrease = 0;
    };
    static_assert(std::is_trivially_copyable_v<PerMn>);

    void onPacket(Packet pkt);
    /** Re-pump every per-MN wait queue (shared-iwnd wakeup). */
    void pumpWaiting();
    void trySend(NodeId mn);
    void heartbeatTick();
    /** Retry timeout for one request (type-dependent, §4.5). */
    Tick timeoutFor(const RequestMsg &req) const;
    void transmit(Outstanding &out);
    void armTimeout(ReqId attempt_id, std::uint64_t generation);
    void handleTimeout(ReqId attempt_id, std::uint64_t generation);
    void retry(std::uint32_t slot, bool congestion_signal);
    void updateCwnd(NodeId mn, Tick rtt);
    /** Index of `mn`'s congestion record (appended on first use). A
     * handful of MNs exist per cluster, so a linear id scan beats
     * hashing. */
    std::size_t mnIndex(NodeId mn);

    /** @{ Pooled outstanding-request slots: bodies are recycled
     * through a free list (their vectors keep capacity across ops),
     * and the id map holds a 4-byte slot index instead of a body. */
    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);
    /** @} */

    EventQueue &eq_;
    Network &net_;
    ModelConfig cfg_;
    NodeId node_;

    /** Outstanding requests: CURRENT attempt id -> slot. */
    std::unordered_map<ReqId, std::uint32_t> out_index_;
    std::vector<Outstanding> out_slots_;
    std::vector<std::uint32_t> out_free_;

    /** @{ Per-MN congestion state, struct-of-arrays (parallel). */
    std::vector<NodeId> mn_ids_;
    std::vector<PerMn> mn_state_;
    /** Requests admitted by the client layer but waiting for window
     * room, FIFO per MN. */
    std::vector<std::deque<ReqId>> mn_wait_;
    /** @} */

    std::uint64_t next_req_seq_ = 1;
    std::uint64_t iwnd_used_ = 0;

    /** @{ Health-plane state. */
    bool alive_ = true;
    std::uint64_t epoch_ = 0;
    std::function<std::uint64_t()> epoch_refresh_;
    std::uint64_t incarnation_ = 0;
    NodeId hb_controller_ = 0;
    Tick hb_period_ = 0;
    std::uint64_t hb_seq_ = 0;
    bool hb_running_ = false;
    /** @} */

    MessagePool<RequestMsg> req_pool_;
    MessagePool<RequestHandle> handle_pool_;

    CNodeStats stats_;
    LatencyHistogram rtt_hist_;
};

} // namespace clio

#endif // CLIO_CLIB_CNODE_HH
