#include "clib/replication.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace clio {

ReplicatedRegion::ReplicatedRegion(ClioClient &client, std::uint64_t size,
                                   NodeId primary_mn, NodeId backup_mn)
    : client_(client), size_(size), primary_mn_(primary_mn),
      backup_mn_(backup_mn), resync_cq_(client.cnode().eventQueue())
{
    clio_assert(primary_mn != backup_mn,
                "replicas must live on distinct MNs");
    SubmissionBatch batch(client_);
    const std::size_t p =
        batch.alloc(size, kPermReadWrite, false, primary_mn);
    const std::size_t b =
        batch.alloc(size, kPermReadWrite, false, backup_mn);
    const BatchOutcome out = batch.submitAndWait();
    if (out.completions[p].ok())
        primary_ = out.completions[p].value;
    if (out.completions[b].ok())
        backup_ = out.completions[b].value;

    resync_cq_.setDrainHook([this] { pumpResync(); });
    if (ok() && client_.replicaRegistry() != nullptr) {
        client_.replicaRegistry()->addRegion(this);
        registered_ = true;
    }
}

ReplicatedRegion::~ReplicatedRegion()
{
    if (registered_) {
        client_.replicaRegistry()->removeRegion(this);
        registered_ = false;
    }
    // Destroying mid-resync trips resync_cq_'s outstanding-watch
    // assertion — loud, by design: the controller must abort or finish
    // a resync before the region goes away.
}

Status
ReplicatedRegion::write(std::uint64_t offset, const void *src,
                        std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated write out of range");
    // Write-all in one doorbell: both replica writes leave together.
    SubmissionBatch batch(client_);
    std::size_t p_index = 0, b_index = 0;
    bool p_sent = false, b_sent = false;
    if (primary_alive_) {
        p_index = batch.write(primary_ + offset, src, len);
        p_sent = true;
    }
    if (backup_alive_) {
        b_index = batch.write(backup_ + offset, src, len);
        b_sent = true;
    }
    if (batch.empty())
        return Status::kRetryExceeded; // both replicas failed
    if (resync_.active && !resync_.aborting && resync_.target_va != 0 &&
        offset < resync_.read_issued_end) {
        // Mirror into the resync target: its copied (or read-issued)
        // prefix would otherwise go stale. T2 serializes this mirror
        // after any conflicting chunk copy-write (WAW on the target
        // VA), so the target converges to the latest data; writes
        // entirely beyond the issued prefix are picked up by the
        // chunk reads themselves. The mirror's own completion does
        // not gate the foreground write's success.
        batch.write(resync_.target_va + offset, src, len);
    }
    const BatchOutcome out = batch.submitAndWait();
    // A replica that exhausted retries is marked failed; the write
    // succeeds if at least one replica holds the data (degraded mode).
    const bool p_ok = p_sent && out.completions[p_index].ok();
    const bool b_ok = b_sent && out.completions[b_index].ok();
    if (p_sent && !p_ok)
        primary_alive_ = false;
    if (b_sent && !b_ok)
        backup_alive_ = false;
    return (p_ok || b_ok) ? Status::kOk : Status::kRetryExceeded;
}

Status
ReplicatedRegion::read(std::uint64_t offset, void *dst, std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated read out of range");
    if (primary_alive_) {
        const Status st = client_.rread(primary_ + offset, dst, len);
        if (st == Status::kOk)
            return st;
        // Primary unreachable/confused: fail over.
        primary_alive_ = false;
    }
    if (!backup_alive_)
        return Status::kRetryExceeded;
    failovers_++;
    const Status st = client_.rread(backup_ + offset, dst, len);
    if (st != Status::kOk)
        backup_alive_ = false;
    return st;
}

Status
ReplicatedRegion::heal(NodeId replacement_mn)
{
    if (resync_.active)
        return Status::kRetryExceeded; // controller resync owns the slot
    if (primary_alive_ && backup_alive_)
        return Status::kOk; // nothing to heal
    if (!primary_alive_ && !backup_alive_)
        return Status::kRetryExceeded; // no surviving copy
    const VirtAddr survivor = primary_alive_ ? primary_ : backup_;
    clio_assert(client_.mnFor(survivor) != replacement_mn,
                "replacement replica must not share the survivor's MN");

    SubmissionBatch alloc_batch(client_);
    const std::size_t a =
        alloc_batch.alloc(size_, kPermReadWrite, false, replacement_mn);
    const BatchOutcome alloc_out = alloc_batch.submitAndWait();
    if (!alloc_out.completions[a].ok())
        return alloc_out.completions[a].status;
    const VirtAddr fresh = alloc_out.completions[a].value;

    // Stream the surviving copy over in bounded chunks (the copy is a
    // client-driven read+write pipeline, like the paper's suggested
    // user-level replication service would run).
    const std::uint64_t chunk = std::max<std::uint64_t>(
        1, client_.cnode().config().clib.resync_chunk_bytes);
    std::vector<std::uint8_t> buf(std::min<std::uint64_t>(chunk, size_));
    for (std::uint64_t off = 0; off < size_; off += chunk) {
        const std::uint64_t n = std::min<std::uint64_t>(chunk, size_ - off);
        Status st = client_.rread(survivor + off, buf.data(), n);
        if (st != Status::kOk) {
            // The SURVIVOR died mid-copy: abandon the half-copied
            // replacement — it must never be marked healthy — and
            // mark the source slot dead so callers see the region as
            // lost rather than retrying reads against a dead board.
            if (primary_alive_)
                primary_alive_ = false;
            else
                backup_alive_ = false;
            return Status::kTimeout;
        }
        st = client_.rwrite(fresh + off, buf.data(), n);
        if (st != Status::kOk)
            return st;
    }

    // Swap the fresh copy into the dead slot. The old VA is not freed:
    // the board that held it lost all volatile state when it crashed.
    if (!primary_alive_) {
        primary_ = fresh;
        primary_mn_ = replacement_mn;
        primary_alive_ = true;
    } else {
        backup_ = fresh;
        backup_mn_ = replacement_mn;
        backup_alive_ = true;
    }
    resyncs_++;
    return Status::kOk;
}

void
ReplicatedRegion::markMnDead(NodeId mn)
{
    if (primary_mn_ == mn)
        primary_alive_ = false;
    if (backup_mn_ == mn)
        backup_alive_ = false;
    // An active resync whose target just died, or whose source (the
    // survivor) did, cannot complete: fail it at its next completion
    // event (exactly one op is always in flight while active).
    if (resync_.active && (resync_.target_mn == mn || bothDead()))
        resync_.aborting = true;
}

bool
ReplicatedRegion::beginResync(NodeId replacement_mn,
                              std::function<void(bool)> done)
{
    if (resync_.active || !degraded() || bothDead())
        return false;
    const VirtAddr survivor = primary_alive_ ? primary_ : backup_;
    if (client_.mnFor(survivor) == replacement_mn)
        return false;
    resync_.active = true;
    resync_.aborting = false;
    resync_.target_mn = replacement_mn;
    resync_.target_va = 0;
    resync_.chunk = std::max<std::uint64_t>(
        1, client_.cnode().config().clib.resync_chunk_bytes);
    resync_.read_issued_end = 0;
    resync_.cur_off = 0;
    resync_.cur_len = 0;
    resync_.done = std::move(done);
    resync_cq_.watch(client_.rallocAsync(size_, kPermReadWrite, false,
                                         replacement_mn),
                     kTagAlloc);
    return true;
}

void
ReplicatedRegion::pumpResync()
{
    // Exactly one resync op is in flight at a time, so one completion
    // is expected per pump; the loop also drains stale entries that
    // land after an abort.
    for (Completion &c : resync_cq_.poll(16)) {
        if (!resync_.active)
            continue; // stale completion after an abort finished
        if (resync_.aborting) {
            finishResync(false);
            continue;
        }
        switch (c.tag) {
          case kTagAlloc:
            if (!c.ok()) {
                finishResync(false);
                break;
            }
            resync_.target_va = c.value;
            issueResyncRead();
            break;
          case kTagRead:
            if (!c.ok()) {
                // The SURVIVOR died mid-copy: no healthy source left.
                // The half-copied target is abandoned, never marked
                // healthy (same contract as heal()).
                if (primary_alive_)
                    primary_alive_ = false;
                else
                    backup_alive_ = false;
                finishResync(false);
                break;
            }
            resync_cq_.watch(
                client_.rwriteAsync(resync_.target_va + resync_.cur_off,
                                    resync_.buf.data(), resync_.cur_len),
                kTagWrite);
            break;
          case kTagWrite:
            if (!c.ok()) {
                finishResync(false); // target died mid-copy
                break;
            }
            issueResyncRead();
            break;
          default:
            break;
        }
    }
}

void
ReplicatedRegion::issueResyncRead()
{
    if (resync_.read_issued_end >= size_) {
        // The last copy-write landed, and every foreground write that
        // raced the copy mirrored into the target: swap it into the
        // dead slot — the region is fully redundant again.
        if (!primary_alive_) {
            primary_ = resync_.target_va;
            primary_mn_ = resync_.target_mn;
            primary_alive_ = true;
        } else {
            backup_ = resync_.target_va;
            backup_mn_ = resync_.target_mn;
            backup_alive_ = true;
        }
        resyncs_++;
        finishResync(true);
        return;
    }
    const VirtAddr survivor = primary_alive_ ? primary_ : backup_;
    resync_.cur_off = resync_.read_issued_end;
    resync_.cur_len = std::min(resync_.chunk, size_ - resync_.cur_off);
    resync_.read_issued_end = resync_.cur_off + resync_.cur_len;
    resync_.buf.resize(resync_.cur_len);
    resync_cq_.watch(client_.rreadAsync(survivor + resync_.cur_off,
                                        resync_.buf.data(),
                                        resync_.cur_len),
                     kTagRead);
}

void
ReplicatedRegion::finishResync(bool success)
{
    // On failure the target VA is abandoned: either its board is dead
    // (nothing to free) or the source died (the controller will find
    // the region bothDead and give up anyway).
    resync_.active = false;
    resync_.aborting = false;
    resync_.target_mn = 0;
    resync_.target_va = 0;
    auto done = std::move(resync_.done);
    resync_.done = nullptr;
    if (done)
        done(success);
}

void
ReplicatedRegion::destroy()
{
    clio_assert(!resync_.active,
                "destroying a region with a resync in flight");
    if (registered_) {
        client_.replicaRegistry()->removeRegion(this);
        registered_ = false;
    }
    if (primary_) {
        client_.rfree(primary_);
        primary_ = 0;
    }
    if (backup_) {
        client_.rfree(backup_);
        backup_ = 0;
    }
}

} // namespace clio
