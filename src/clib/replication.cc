#include "clib/replication.hh"

#include "sim/logging.hh"

namespace clio {

ReplicatedRegion::ReplicatedRegion(ClioClient &client, std::uint64_t size,
                                   NodeId primary_mn, NodeId backup_mn)
    : client_(client), size_(size)
{
    clio_assert(primary_mn != backup_mn,
                "replicas must live on distinct MNs");
    auto hp = client_.rallocAsync(size, kPermReadWrite, false,
                                  primary_mn);
    auto hb = client_.rallocAsync(size, kPermReadWrite, false,
                                  backup_mn);
    client_.rpoll({hp, hb});
    if (hp->status == Status::kOk)
        primary_ = hp->value;
    if (hb->status == Status::kOk)
        backup_ = hb->value;
}

Status
ReplicatedRegion::write(std::uint64_t offset, const void *src,
                        std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated write out of range");
    std::vector<HandlePtr> handles;
    HandlePtr hp, hb;
    if (primary_alive_)
        handles.push_back(hp = client_.rwriteAsync(primary_ + offset,
                                                   src, len));
    if (backup_alive_)
        handles.push_back(hb = client_.rwriteAsync(backup_ + offset,
                                                   src, len));
    if (handles.empty())
        return Status::kRetryExceeded; // both replicas failed
    client_.rpoll(handles);
    // A replica that exhausted retries is marked failed; the write
    // succeeds if at least one replica holds the data (degraded mode).
    if (hp && hp->status != Status::kOk)
        primary_alive_ = false;
    if (hb && hb->status != Status::kOk)
        backup_alive_ = false;
    const bool any_ok = (hp && hp->status == Status::kOk) ||
                        (hb && hb->status == Status::kOk);
    return any_ok ? Status::kOk : Status::kRetryExceeded;
}

Status
ReplicatedRegion::read(std::uint64_t offset, void *dst, std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated read out of range");
    if (primary_alive_) {
        const Status st = client_.rread(primary_ + offset, dst, len);
        if (st == Status::kOk)
            return st;
        // Primary unreachable/confused: fail over.
        primary_alive_ = false;
    }
    if (!backup_alive_)
        return Status::kRetryExceeded;
    failovers_++;
    const Status st = client_.rread(backup_ + offset, dst, len);
    if (st != Status::kOk)
        backup_alive_ = false;
    return st;
}

void
ReplicatedRegion::destroy()
{
    if (primary_) {
        client_.rfree(primary_);
        primary_ = 0;
    }
    if (backup_) {
        client_.rfree(backup_);
        backup_ = 0;
    }
}

} // namespace clio
