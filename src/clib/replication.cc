#include "clib/replication.hh"

#include <algorithm>
#include <vector>

#include "clib/queue.hh"
#include "sim/logging.hh"

namespace clio {

ReplicatedRegion::ReplicatedRegion(ClioClient &client, std::uint64_t size,
                                   NodeId primary_mn, NodeId backup_mn)
    : client_(client), size_(size)
{
    clio_assert(primary_mn != backup_mn,
                "replicas must live on distinct MNs");
    SubmissionBatch batch(client_);
    const std::size_t p =
        batch.alloc(size, kPermReadWrite, false, primary_mn);
    const std::size_t b =
        batch.alloc(size, kPermReadWrite, false, backup_mn);
    const BatchOutcome out = batch.submitAndWait();
    if (out.completions[p].ok())
        primary_ = out.completions[p].value;
    if (out.completions[b].ok())
        backup_ = out.completions[b].value;
}

Status
ReplicatedRegion::write(std::uint64_t offset, const void *src,
                        std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated write out of range");
    // Write-all in one doorbell: both replica writes leave together.
    SubmissionBatch batch(client_);
    std::size_t p_index = 0, b_index = 0;
    bool p_sent = false, b_sent = false;
    if (primary_alive_) {
        p_index = batch.write(primary_ + offset, src, len);
        p_sent = true;
    }
    if (backup_alive_) {
        b_index = batch.write(backup_ + offset, src, len);
        b_sent = true;
    }
    if (batch.empty())
        return Status::kRetryExceeded; // both replicas failed
    const BatchOutcome out = batch.submitAndWait();
    // A replica that exhausted retries is marked failed; the write
    // succeeds if at least one replica holds the data (degraded mode).
    const bool p_ok = p_sent && out.completions[p_index].ok();
    const bool b_ok = b_sent && out.completions[b_index].ok();
    if (p_sent && !p_ok)
        primary_alive_ = false;
    if (b_sent && !b_ok)
        backup_alive_ = false;
    return (p_ok || b_ok) ? Status::kOk : Status::kRetryExceeded;
}

Status
ReplicatedRegion::read(std::uint64_t offset, void *dst, std::uint64_t len)
{
    clio_assert(offset + len <= size_, "replicated read out of range");
    if (primary_alive_) {
        const Status st = client_.rread(primary_ + offset, dst, len);
        if (st == Status::kOk)
            return st;
        // Primary unreachable/confused: fail over.
        primary_alive_ = false;
    }
    if (!backup_alive_)
        return Status::kRetryExceeded;
    failovers_++;
    const Status st = client_.rread(backup_ + offset, dst, len);
    if (st != Status::kOk)
        backup_alive_ = false;
    return st;
}

Status
ReplicatedRegion::heal(NodeId replacement_mn)
{
    if (primary_alive_ && backup_alive_)
        return Status::kOk; // nothing to heal
    if (!primary_alive_ && !backup_alive_)
        return Status::kRetryExceeded; // no surviving copy
    const VirtAddr survivor = primary_alive_ ? primary_ : backup_;
    clio_assert(client_.mnFor(survivor) != replacement_mn,
                "replacement replica must not share the survivor's MN");

    SubmissionBatch alloc_batch(client_);
    const std::size_t a =
        alloc_batch.alloc(size_, kPermReadWrite, false, replacement_mn);
    const BatchOutcome alloc_out = alloc_batch.submitAndWait();
    if (!alloc_out.completions[a].ok())
        return alloc_out.completions[a].status;
    const VirtAddr fresh = alloc_out.completions[a].value;

    // Stream the surviving copy over in bounded chunks (the copy is a
    // client-driven read+write pipeline, like the paper's suggested
    // user-level replication service would run).
    constexpr std::uint64_t kChunk = 256 * KiB;
    std::vector<std::uint8_t> buf(std::min<std::uint64_t>(kChunk, size_));
    for (std::uint64_t off = 0; off < size_; off += kChunk) {
        const std::uint64_t n = std::min<std::uint64_t>(kChunk, size_ - off);
        Status st = client_.rread(survivor + off, buf.data(), n);
        if (st != Status::kOk)
            return st;
        st = client_.rwrite(fresh + off, buf.data(), n);
        if (st != Status::kOk)
            return st;
    }

    // Swap the fresh copy into the dead slot. The old VA is not freed:
    // the board that held it lost all volatile state when it crashed.
    if (!primary_alive_) {
        primary_ = fresh;
        primary_alive_ = true;
    } else {
        backup_ = fresh;
        backup_alive_ = true;
    }
    resyncs_++;
    return Status::kOk;
}

void
ReplicatedRegion::destroy()
{
    if (primary_) {
        client_.rfree(primary_);
        primary_ = 0;
    }
    if (backup_) {
        client_.rfree(backup_);
        backup_ = 0;
    }
}

} // namespace clio
