#include "clib/queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

// ---------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------

void
CompletionQueue::watch(const HandlePtr &handle, std::uint64_t tag)
{
    clio_assert(handle != nullptr, "watch on a null handle");
    clio_assert(!handle->delivered_ && handle->cq_ == nullptr,
                "handle is already bound to a completion queue");
    handle->tag_ = tag;
    if (handle->done) {
        // Completed before registration (e.g. a zero-latency failure):
        // deliver immediately, still exactly once.
        deliver(handle);
        return;
    }
    handle->cq_ = this;
    outstanding_++;
}

void
CompletionQueue::deliver(const HandlePtr &handle)
{
    if (!handle || handle->delivered_)
        return; // single-shot: a second completion is a no-op
    clio_assert(handle->done, "delivering an incomplete handle");
    clio_assert(handle->cq_ == nullptr || handle->cq_ == this,
                "handle is bound to a different completion queue");
    handle->delivered_ = true;
    if (handle->cq_) {
        handle->cq_ = nullptr;
        clio_assert(outstanding_ > 0, "completion queue underflow");
        outstanding_--;
    }
    Completion c;
    c.tag = handle->tag_;
    c.status = handle->status;
    c.value = handle->value;
    c.data = std::move(handle->data);
    // The tick the request finished, not the (possibly later) tick it
    // was registered or popped.
    c.completed_at = handle->completed_at_;
    ready_.push_back(std::move(c));
    if (drain_hook_ && !drain_scheduled_) {
        // Deferred via a zero-delay event: deliver() runs inside the
        // client's completion path, and the hook typically issues new
        // requests — re-entering the client mid-update would be
        // fragile. One pending invocation coalesces a delivery burst.
        drain_scheduled_ = true;
        // The weak token makes the event inert if the queue is torn
        // down before it fires (it captures `this`).
        eq_.schedule(eq_.now(), [this, token = std::weak_ptr<const bool>(
                                           alive_token_)] {
            if (token.expired())
                return;
            drain_scheduled_ = false;
            if (drain_hook_)
                drain_hook_();
        });
    }
}

std::vector<Completion>
CompletionQueue::poll(std::size_t max_n)
{
    std::vector<Completion> out;
    const std::size_t n = std::min(max_n, ready_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        out.push_back(std::move(ready_.front()));
        ready_.pop_front();
    }
    return out;
}

std::vector<Completion>
CompletionQueue::rpoll_cq(std::size_t max_n)
{
    if (ready_.empty() && outstanding_ > 0) {
        const bool ok =
            eq_.runUntil([this] { return !ready_.empty(); });
        clio_assert(ok, "rpoll_cq: simulation drained with %zu "
                        "completions outstanding",
                    outstanding_);
    }
    return poll(max_n);
}

// ---------------------------------------------------------------------
// SubmissionBatch
// ---------------------------------------------------------------------

std::size_t
SubmissionBatch::read(VirtAddr addr, void *buf, std::uint64_t len)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back(
        [c, addr, buf, len] { return c->rreadAsync(addr, buf, len); });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::write(VirtAddr addr, const void *src, std::uint64_t len)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    // Copy the payload now: the source may be gone by submit() time
    // (e.g. an actor's stack frame when the runner submits the step).
    // The staged copy is then moved into the request — one copy total.
    std::vector<std::uint8_t> data(
        static_cast<const std::uint8_t *>(src),
        static_cast<const std::uint8_t *>(src) + len);
    ops_.push_back([c, addr, data = std::move(data)]() mutable {
        return c->rwriteAsync(addr, std::move(data));
    });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::alloc(std::uint64_t size, std::uint8_t perm,
                       bool populate, NodeId mn_override)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back([c, size, perm, populate, mn_override] {
        return c->rallocAsync(size, perm, populate, mn_override);
    });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::free(VirtAddr addr)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back([c, addr] { return c->rfreeAsync(addr); });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::atomic(VirtAddr addr, AtomicOp op, std::uint64_t arg0,
                        std::uint64_t arg1)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back([c, addr, op, arg0, arg1] {
        return c->atomicAsync(addr, op, arg0, arg1);
    });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::fence()
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back([c] { return c->fenceAsync(); });
    return ops_.size() - 1;
}

std::size_t
SubmissionBatch::offload(NodeId mn, std::uint32_t offload_id,
                         std::vector<std::uint8_t> arg,
                         std::uint64_t expected_resp_bytes)
{
    clio_assert(client_ != nullptr, "staging on an empty batch");
    ClioClient *c = client_;
    ops_.push_back([c, mn, offload_id, arg = std::move(arg),
                    expected_resp_bytes] {
        return c->offloadAsync(mn, offload_id, arg, expected_resp_bytes);
    });
    return ops_.size() - 1;
}

void
SubmissionBatch::submit(CompletionQueue &cq, std::uint64_t base_tag,
                        std::uint64_t tag_stride)
{
    clio_assert(client_ != nullptr, "submit on an empty batch");
    clio_assert(!submitted_, "a batch can be submitted only once");
    submitted_ = true;
    client_->stats_.batches++;
    client_->stats_.batched_ops += ops_.size();
    std::uint64_t tag = base_tag;
    for (auto &stage : ops_) {
        cq.watch(stage(), tag);
        tag += tag_stride;
    }
    ops_.clear();
}

BatchOutcome
SubmissionBatch::submitAndWait()
{
    clio_assert(client_ != nullptr, "submit on an empty batch");
    const std::size_t n = ops_.size();
    Outcome out;
    out.completions.resize(n);
    CompletionQueue cq(client_->cnode().eventQueue());
    submit(cq, 0, 1);
    std::size_t seen = 0;
    while (seen < n) {
        auto comps = cq.rpoll_cq(n - seen);
        clio_assert(!comps.empty(), "batch completions lost");
        for (Completion &c : comps) {
            const auto index = static_cast<std::size_t>(c.tag);
            out.completions[index] = std::move(c);
            seen++;
        }
    }
    for (const Completion &c : out.completions) {
        if (!c.ok()) {
            out.status = c.status;
            break;
        }
    }
    return out;
}

} // namespace clio
