/**
 * @file
 * Replicated remote memory (§8): the paper leaves failure handling to
 * services built on Clio and suggests offering "primitives like
 * replicated writes for users to build their own services". This is
 * that primitive: a region mirrored across two MNs, with writes going
 * to both replicas and reads served by the primary, failing over to
 * the backup when the primary stops answering.
 *
 * Consistency: writes complete when BOTH replicas ack (write-all);
 * reads are served by one replica (read-one). Combined with Clio's
 * per-request ordering this gives linearizable single-writer
 * semantics; multi-writer applications coordinate with rlock as
 * usual.
 */

#ifndef CLIO_CLIB_REPLICATION_HH
#define CLIO_CLIB_REPLICATION_HH

#include <cstdint>

#include "clib/client.hh"

namespace clio {

/** A fixed-size region mirrored on two memory nodes. */
class ReplicatedRegion
{
  public:
    /**
     * Allocate `size` bytes on two distinct MNs.
     * @param primary_mn / @param backup_mn target boards.
     * ok() reports whether both allocations succeeded.
     */
    ReplicatedRegion(ClioClient &client, std::uint64_t size,
                     NodeId primary_mn, NodeId backup_mn);

    bool ok() const { return primary_ != 0 && backup_ != 0; }
    std::uint64_t size() const { return size_; }

    /** Offset-addressed write to BOTH replicas (completes when both
     * ack; a replica that exhausts retries marks itself failed). */
    Status write(std::uint64_t offset, const void *src,
                 std::uint64_t len);

    /** Offset-addressed read from the primary, failing over to the
     * backup when the primary is marked or becomes unreachable. */
    Status read(std::uint64_t offset, void *dst, std::uint64_t len);

    /** @{ Health introspection. */
    bool primaryAlive() const { return primary_alive_; }
    bool backupAlive() const { return backup_alive_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t resyncs() const { return resyncs_; }
    /** @} */

    /**
     * Re-replicate after a replica died: allocate a fresh copy on
     * `replacement_mn` (a restarted or spare board, distinct from the
     * survivor's MN), stream the surviving replica's bytes into it,
     * and swap it in for the dead slot. No-op (kOk) when both replicas
     * are healthy; kRetryExceeded when both are dead (nothing left to
     * copy from). The dead replica's old VA is NOT freed — its board
     * lost that state when it crashed.
     */
    Status heal(NodeId replacement_mn);

    /** Release both replicas. */
    void destroy();

  private:
    ClioClient &client_;
    std::uint64_t size_ = 0;
    VirtAddr primary_ = 0;
    VirtAddr backup_ = 0;
    bool primary_alive_ = true;
    bool backup_alive_ = true;
    std::uint64_t failovers_ = 0;
    std::uint64_t resyncs_ = 0;
};

} // namespace clio

#endif // CLIO_CLIB_REPLICATION_HH
