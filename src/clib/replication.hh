/**
 * @file
 * Replicated remote memory (§8): the paper leaves failure handling to
 * services built on Clio and suggests offering "primitives like
 * replicated writes for users to build their own services". This is
 * that primitive: a region mirrored across two MNs, with writes going
 * to both replicas and reads served by the primary, failing over to
 * the backup when the primary stops answering.
 *
 * Consistency: writes complete when BOTH replicas ack (write-all);
 * reads are served by one replica (read-one). Combined with Clio's
 * per-request ordering this gives linearizable single-writer
 * semantics; multi-writer applications coordinate with rlock as
 * usual.
 *
 * Self-healing: regions announce themselves to a ReplicaRegistry
 * (implemented by the cluster's health plane) when one is attached to
 * their client. When the controller declares a replica's MN dead it
 * calls markMnDead() and later drives beginResync() — an asynchronous
 * chunked copy from the survivor onto a replacement MN that runs as
 * ordinary simulator events, concurrently with foreground traffic.
 * During resync, reads stay on the survivor (degraded mode) and
 * writes mirror into the already-copied prefix of the target, so the
 * region is consistent the instant the last chunk lands; the swap to
 * fully-redundant happens only then. The correctness of
 * mirror-from-read-issue is anchored on the client's T2 ordering: a
 * write conflicting with an issued chunk read queues behind it (WAR),
 * so its mirror lands after the chunk's copy-write (WAW on the target
 * VA).
 */

#ifndef CLIO_CLIB_REPLICATION_HH
#define CLIO_CLIB_REPLICATION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "clib/client.hh"
#include "clib/queue.hh"

namespace clio {

class ReplicatedRegion;

/**
 * Controller-side registry of replicated regions. Implemented by the
 * cluster health plane; declared here so clib stays independent of
 * the cluster layer. Regions register at construction (when their
 * client carries a registry) and unregister at destroy()/destruction.
 */
class ReplicaRegistry
{
  public:
    virtual ~ReplicaRegistry() = default;
    virtual void addRegion(ReplicatedRegion *region) = 0;
    virtual void removeRegion(ReplicatedRegion *region) = 0;
};

/** A fixed-size region mirrored on two memory nodes. */
class ReplicatedRegion
{
  public:
    /**
     * Allocate `size` bytes on two distinct MNs.
     * @param primary_mn / @param backup_mn target boards.
     * ok() reports whether both allocations succeeded.
     */
    ReplicatedRegion(ClioClient &client, std::uint64_t size,
                     NodeId primary_mn, NodeId backup_mn);
    ~ReplicatedRegion();

    ReplicatedRegion(const ReplicatedRegion &) = delete;
    ReplicatedRegion &operator=(const ReplicatedRegion &) = delete;

    bool ok() const { return primary_ != 0 && backup_ != 0; }
    std::uint64_t size() const { return size_; }

    /** Offset-addressed write to BOTH replicas (completes when both
     * ack; a replica that exhausts retries marks itself failed).
     * While a resync runs, the write additionally mirrors into the
     * already-copied prefix of the resync target. */
    Status write(std::uint64_t offset, const void *src,
                 std::uint64_t len);

    /** Offset-addressed read from the primary, failing over to the
     * backup when the primary is marked or becomes unreachable. */
    Status read(std::uint64_t offset, void *dst, std::uint64_t len);

    /** @{ Health introspection. */
    bool primaryAlive() const { return primary_alive_; }
    bool backupAlive() const { return backup_alive_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t resyncs() const { return resyncs_; }
    bool degraded() const { return !primary_alive_ || !backup_alive_; }
    bool bothDead() const { return !primary_alive_ && !backup_alive_; }
    /** Both replicas healthy and no copy in flight. */
    bool fullyRedundant() const
    {
        return primary_alive_ && backup_alive_ && !resync_.active;
    }
    bool resyncActive() const { return resync_.active; }
    NodeId primaryMn() const { return primary_mn_; }
    NodeId backupMn() const { return backup_mn_; }
    ClioClient &client() { return client_; }
    /** @} */

    /**
     * Re-replicate after a replica died: allocate a fresh copy on
     * `replacement_mn` (a restarted or spare board, distinct from the
     * survivor's MN), stream the surviving replica's bytes into it,
     * and swap it in for the dead slot. No-op (kOk) when both replicas
     * are healthy; kRetryExceeded when both are dead (nothing left to
     * copy from); kTimeout when the SURVIVOR dies mid-copy (the
     * half-copied replacement is abandoned, never marked healthy).
     * The dead replica's old VA is NOT freed — its board lost that
     * state when it crashed. Synchronous (pumps the simulation); the
     * controller path uses beginResync() instead.
     */
    Status heal(NodeId replacement_mn);

    /** @{ Controller hooks (health plane). */

    /** Mark any replica living on MN `mn` dead (board declared dead by
     * the failure detector). Aborts an active resync whose source or
     * target sits on that MN. */
    void markMnDead(NodeId mn);

    /**
     * Start an asynchronous controller-driven re-replication onto
     * `replacement_mn`: alloc, then a chunked read→write pipeline of
     * CLibConfig::resync_chunk_bytes per step, advanced by completion
     * events (no pumping). `done(success)` fires exactly once from an
     * event context. @return false when not applicable (healthy, both
     * dead, already resyncing, or replacement == survivor's MN).
     */
    bool beginResync(NodeId replacement_mn,
                     std::function<void(bool)> done);
    /** @} */

    /** Release both replicas (and unregister from the registry). */
    void destroy();

  private:
    /** Resync tags on resync_cq_. */
    static constexpr std::uint64_t kTagAlloc = 0;
    static constexpr std::uint64_t kTagRead = 1;
    static constexpr std::uint64_t kTagWrite = 2;

    /** Drain-hook target: advance the resync state machine. */
    void pumpResync();
    /** Issue the read of the next chunk (or finish when done). */
    void issueResyncRead();
    void finishResync(bool success);

    ClioClient &client_;
    std::uint64_t size_ = 0;
    VirtAddr primary_ = 0;
    VirtAddr backup_ = 0;
    NodeId primary_mn_ = 0;
    NodeId backup_mn_ = 0;
    bool primary_alive_ = true;
    bool backup_alive_ = true;
    std::uint64_t failovers_ = 0;
    std::uint64_t resyncs_ = 0;
    bool registered_ = false;

    /** Asynchronous resync state (one chunk in flight at a time; the
     * concurrency cap across regions lives in the health plane). */
    struct Resync
    {
        bool active = false;
        /** Set when the source/target died mid-copy; the state machine
         * fails at the next completion. */
        bool aborting = false;
        NodeId target_mn = 0;
        VirtAddr target_va = 0;
        std::uint64_t chunk = 0;
        /** Next offset whose read has NOT been issued yet. Writes at
         * offsets below this mirror into the target (see file docs). */
        std::uint64_t read_issued_end = 0;
        /** Chunk currently in flight. */
        std::uint64_t cur_off = 0;
        std::uint64_t cur_len = 0;
        std::vector<std::uint8_t> buf;
        std::function<void(bool)> done;
    };
    Resync resync_;
    CompletionQueue resync_cq_;
};

} // namespace clio

#endif // CLIO_CLIB_REPLICATION_HH
