/**
 * @file
 * Batched submission + completion queues for the CLib surface — the
 * idiom RDMA verbs and io_uring converged on, applied to Clio.
 *
 * A SubmissionBatch stages N requests and admits them to the client's
 * ordering layer (§4.5 T2) in one doorbell; WAR/RAW/WAW conflicts
 * *between batch members* are enforced exactly like between loose
 * async requests, so a batch may legally contain dependent ops.
 *
 * A CompletionQueue collects completions of submitted (or individually
 * watched) handles and delivers them in completion order — which the
 * deterministic event core makes reproducible — via poll() (already
 * delivered) or rpoll_cq() (pump the simulation until one arrives).
 * Delivery is single-shot by construction: a handle carries a latch
 * that deliver() consumes, so double completion cannot re-fire a
 * continuation and user code never mutates callbacks on handles.
 */

#ifndef CLIO_CLIB_QUEUE_HH
#define CLIO_CLIB_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "clib/client.hh"
#include "sim/event_queue.hh"

namespace clio {

/** One delivered completion. */
struct Completion
{
    /** Caller tag from watch()/submit() (e.g. a batch op index). */
    std::uint64_t tag = 0;
    Status status = Status::kOk;
    /** Scalar result (allocated VA, atomic old value, offload value). */
    std::uint64_t value = 0;
    /** Offload result payload (moved off the handle at delivery). */
    std::vector<std::uint8_t> data;
    /** Simulated time the request completed (not when it was polled). */
    Tick completed_at = 0;

    bool ok() const { return status == Status::kOk; }

    /** Scalar result as a typed Result. */
    Result<std::uint64_t> result() const
    {
        if (status != Status::kOk)
            return status;
        return value;
    }
};

/**
 * Collects completions of asynchronous requests. Must outlive every
 * handle registered on it. Not tied to one client: requests from
 * several clients sharing one EventQueue may deliver into one CQ
 * (how the closed-loop runner multiplexes actors).
 */
class CompletionQueue
{
  public:
    explicit CompletionQueue(EventQueue &eq) : eq_(eq) {}
    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;
    /** Watched handles keep a raw pointer to their queue, so tearing
     * one down with watches outstanding would leave them dangling:
     * panic loudly instead of use-after-free later. */
    ~CompletionQueue()
    {
        clio_assert(outstanding_ == 0,
                    "completion queue destroyed with %zu watched "
                    "requests outstanding",
                    outstanding_);
    }

    /**
     * Register a handle: its completion is delivered here exactly
     * once, tagged `tag`. A handle can be bound to at most one queue;
     * an already-completed handle is delivered immediately.
     */
    void watch(const HandlePtr &handle, std::uint64_t tag);

    /** Completions delivered and not yet popped. */
    std::size_t ready() const { return ready_.size(); }

    /** Watched handles whose completion has not arrived yet. */
    std::size_t outstanding() const { return outstanding_; }

    /** Pop up to `max_n` already-delivered completions (no pumping),
     * in completion order. */
    std::vector<Completion> poll(std::size_t max_n);

    /**
     * Pump the simulation until at least one completion is available,
     * then pop up to `max_n` in completion order. Returns empty only
     * when nothing is outstanding (so a drained workload terminates
     * instead of deadlocking).
     */
    std::vector<Completion> rpoll_cq(std::size_t max_n);

    /**
     * Deliver a handle's completion into its bound queue (or this one
     * when unbound). Internal — the client calls this when a request
     * finishes — but callable from tests: it is idempotent, so double
     * completion cannot re-fire a continuation or duplicate an entry.
     */
    void deliver(const HandlePtr &handle);

    /**
     * Install a hook scheduled (as a zero-delay event, so it never
     * re-enters client internals mid-completion) after completions are
     * delivered; at most one pending invocation at a time. This is
     * what lets a poll-driven state machine (e.g. the auto-resync
     * engine) advance event-driven instead of busy-polling.
     */
    void setDrainHook(std::function<void()> hook)
    {
        drain_hook_ = std::move(hook);
    }

  private:
    EventQueue &eq_;
    std::deque<Completion> ready_;
    std::size_t outstanding_ = 0;
    std::function<void()> drain_hook_;
    bool drain_scheduled_ = false;
    /** Expiry token for the scheduled drain event (it captures
     * `this`; destruction must make a pending event inert). */
    std::shared_ptr<const bool> alive_token_ =
        std::make_shared<const bool>(true);
};

/**
 * Stages N requests and submits them in one doorbell. Staging does no
 * I/O: write payloads are copied at staging time, but read buffers
 * must outlive completion. A batch is single-use — stage, submit,
 * discard.
 */
class SubmissionBatch
{
  public:
    /** Empty shell (e.g. inside ActorStep); unusable until assigned
     * from a real batch. */
    SubmissionBatch() = default;
    explicit SubmissionBatch(ClioClient &client) : client_(&client) {}
    SubmissionBatch(SubmissionBatch &&) = default;
    SubmissionBatch &operator=(SubmissionBatch &&) = default;
    SubmissionBatch(const SubmissionBatch &) = delete;
    SubmissionBatch &operator=(const SubmissionBatch &) = delete;

    /** @{ Staging. Each returns the op's index within the batch (its
     * completion tag offset). Arguments mirror the async API. */
    std::size_t read(VirtAddr addr, void *buf, std::uint64_t len);
    std::size_t write(VirtAddr addr, const void *src, std::uint64_t len);
    std::size_t alloc(std::uint64_t size,
                      std::uint8_t perm = kPermReadWrite,
                      bool populate = false, NodeId mn_override = 0);
    std::size_t free(VirtAddr addr);
    std::size_t atomic(VirtAddr addr, AtomicOp op,
                       std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);
    std::size_t fence();
    std::size_t offload(NodeId mn, std::uint32_t offload_id,
                        std::vector<std::uint8_t> arg,
                        std::uint64_t expected_resp_bytes = 256);
    /** @} */

    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /**
     * One doorbell: admit every staged op to the ordering layer in
     * staging order. Completions are delivered to `cq` tagged
     * base_tag + tag_stride * index (stride 0 = one tag for the whole
     * batch, e.g. an actor id).
     */
    void submit(CompletionQueue &cq, std::uint64_t base_tag = 0,
                std::uint64_t tag_stride = 1);

    /** Submit, then pump the simulation until every op completes.
     * @return completions indexed by staged-op order. */
    struct Outcome
    {
        /** completions[i] belongs to staged op i. */
        std::vector<Completion> completions;
        /** First non-Ok status in staging order (kOk if none). */
        Status status = Status::kOk;
        bool ok() const { return status == Status::kOk; }
    };
    Outcome submitAndWait();

  private:
    ClioClient *client_ = nullptr;
    /** Deferred async calls, run in staging order at submit(). */
    std::vector<std::function<HandlePtr()>> ops_;
    bool submitted_ = false;
};

using BatchOutcome = SubmissionBatch::Outcome;

} // namespace clio

#endif // CLIO_CLIB_QUEUE_HH
