#include "clib/cnode.hh"

#include <algorithm>
#include <cmath>

#include "clib/client.hh"
#include "proto/wire.hh"
#include "sim/logging.hh"

namespace clio {

CNode::CNode(EventQueue &eq, Network &network, const ModelConfig &cfg,
             RackId rack)
    : eq_(eq), net_(network), cfg_(cfg)
{
    node_ = net_.addNode([this](Packet pkt) { onPacket(std::move(pkt)); },
                         0, rack);
}

std::size_t
CNode::mnIndex(NodeId mn)
{
    for (std::size_t i = 0; i < mn_ids_.size(); i++) {
        if (mn_ids_[i] == mn)
            return i;
    }
    mn_ids_.push_back(mn);
    PerMn st;
    st.cwnd = cfg_.clib.cwnd_init;
    mn_state_.push_back(st);
    mn_wait_.emplace_back();
    return mn_ids_.size() - 1;
}

double
CNode::cwnd(NodeId mn) const
{
    for (std::size_t i = 0; i < mn_ids_.size(); i++) {
        if (mn_ids_[i] == mn)
            return mn_state_[i].cwnd;
    }
    return cfg_.clib.cwnd_init;
}

std::uint32_t
CNode::allocSlot()
{
    if (!out_free_.empty()) {
        const std::uint32_t slot = out_free_.back();
        out_free_.pop_back();
        return slot;
    }
    out_slots_.emplace_back();
    return static_cast<std::uint32_t>(out_slots_.size() - 1);
}

void
CNode::freeSlot(std::uint32_t slot)
{
    // Drop the op's owned state but keep the slot body (and any vector
    // capacity inside a recycled message) for the next request.
    Outstanding &out = out_slots_[slot];
    out.req.reset();
    out.cb = nullptr;
    out.resp.reset();
    out.expected_resp_bytes = 0;
    out.sent_at = 0;
    out.retries = 0;
    out.generation = 0;
    out.last_fail_timeout = false;
    out.last_fail_fenced = false;
    out.resp_parts_seen = 0;
    out.resp_parts_total = 0;
    out.resp_seen_bits.clear();
    out.resp_corrupted = false;
    out_free_.push_back(slot);
}

void
CNode::issue(std::shared_ptr<RequestMsg> req,
             std::uint64_t expected_resp_bytes, Completion cb)
{
    if (!alive_) {
        // The node is down (health plane / chaos): the op fails
        // immediately — its issuing process no longer exists.
        stats_.failures++;
        eq_.schedule(eq_.now() + cfg_.clib.recv_overhead,
                     [cb = std::move(cb)] {
                         ResponseMsg fail;
                         fail.status = Status::kTimeout;
                         cb(fail);
                     });
        return;
    }
    const ReqId id = (static_cast<ReqId>(node_) << 40) | next_req_seq_++;
    req->req_id = id;
    req->orig_req_id = id;
    req->src = node_;
    stats_.requests++;

    const NodeId mn = req->dst;
    const std::uint32_t slot = allocSlot();
    Outstanding &out = out_slots_[slot];
    out.req = std::move(req);
    out.cb = std::move(cb);
    out.expected_resp_bytes = expected_resp_bytes;
    out_index_.emplace(id, slot);
    mn_wait_[mnIndex(mn)].push_back(id);
    trySend(mn);
}


void
CNode::pumpWaiting()
{
    // The incast window is one credit pool shared by every
    // destination: response bytes freed by a completion to one MN can
    // unblock a request queued for a different MN. Waking only the
    // completing MN's queue would strand the others forever (no timer
    // re-arms a queued-but-untransmitted request), so pump them all.
    for (std::size_t i = 0; i < mn_ids_.size(); i++)
        trySend(mn_ids_[i]);
}

void
CNode::trySend(NodeId mn)
{
    const std::size_t idx = mnIndex(mn);
    PerMn &st = mn_state_[idx];
    std::deque<ReqId> &wait = mn_wait_[idx];
    while (!wait.empty()) {
        // Congestion window admission (cwnd may be fractional, §4.4).
        if (st.cwnd >= 1.0) {
            if (st.inflight >=
                static_cast<std::uint32_t>(std::floor(st.cwnd)))
                return;
        } else {
            if (st.inflight >= 1)
                return;
            if (eq_.now() < st.next_send_allowed) {
                // Paced below one request per RTT: re-poll at the gate.
                const NodeId mn_copy = mn;
                eq_.schedule(st.next_send_allowed,
                             [this, mn_copy] { trySend(mn_copy); });
                return;
            }
        }
        const ReqId id = wait.front();
        auto it = out_index_.find(id);
        if (it == out_index_.end()) {
            wait.pop_front(); // cancelled/stale
            continue;
        }
        Outstanding &out = out_slots_[it->second];
        // Incast window: bound expected response bytes (always admit
        // at least one request so big reads are not starved).
        if (iwnd_used_ > 0 &&
            iwnd_used_ + out.expected_resp_bytes > cfg_.clib.iwnd_bytes)
            return;
        wait.pop_front();
        st.inflight++;
        iwnd_used_ += out.expected_resp_bytes;
        transmit(out);
    }
}

void
CNode::transmit(Outstanding &out)
{
    // Stamp the attempt with the CN's current membership epoch: a
    // retry after an epoch refresh carries the new epoch, so one fence
    // round-trip is enough to recover (§ self-healing control plane).
    out.req->epoch = epoch_;
    const RequestMsg &req = *out.req;
    out.sent_at = eq_.now();
    out.generation++;
    out.resp_parts_seen = 0;
    out.resp_parts_total = 0;
    out.resp_seen_bits.clear();
    out.resp_corrupted = false;

    const std::uint64_t payload = requestPayloadBytes(req);

    // CLib software send + CN NIC traversal, then onto the wire.
    const Tick on_wire =
        eq_.now() + cfg_.clib.send_overhead + cfg_.clib.nic_latency;
    sendSplit(eq_, net_, on_wire, node_, req.dst, req.req_id, req.type,
              payload, out.req);
    armTimeout(req.req_id, out.generation);
}

Tick
CNode::timeoutFor(const RequestMsg &req) const
{
    if (req.timeout_override)
        return req.timeout_override;
    switch (req.type) {
      case MsgType::kAlloc:
      case MsgType::kFree:
      case MsgType::kOffload:
      case MsgType::kFence:
        return cfg_.clib.slow_op_timeout;
      default: {
        // Large transfers legitimately occupy the wire for a long
        // time; scale the timeout with the serialized payload so a
        // 64 KB write at 10 Gbps does not spuriously retry.
        const std::uint64_t payload =
            req.type == MsgType::kWrite ? req.size
            : req.type == MsgType::kRead ? req.size
                                         : 0;
        const Tick wire = static_cast<Tick>(payload) *
                          ticksPerByte(cfg_.net.link_bandwidth_bps);
        return cfg_.clib.timeout + 3 * wire;
      }
    }
}

void
CNode::armTimeout(ReqId attempt_id, std::uint64_t generation)
{
    auto it = out_index_.find(attempt_id);
    clio_assert(it != out_index_.end(), "arming unknown request");
    eq_.scheduleAfter(timeoutFor(*out_slots_[it->second].req),
                      [this, attempt_id, generation] {
                          handleTimeout(attempt_id, generation);
                      });
}

void
CNode::handleTimeout(ReqId attempt_id, std::uint64_t generation)
{
    auto it = out_index_.find(attempt_id);
    if (it == out_index_.end() ||
        out_slots_[it->second].generation != generation)
        return; // completed or already retried
    stats_.timeouts++;
    const std::uint32_t slot = it->second;
    out_slots_[slot].last_fail_timeout = true;
    out_slots_[slot].last_fail_fenced = false;
    out_index_.erase(it);
    retry(slot, true);
}

void
CNode::retry(std::uint32_t slot, bool congestion_signal)
{
    // The caller already unlinked `slot` from out_index_; the body
    // stays in place and is either re-linked under a fresh attempt id
    // or recycled after the failure callback is scheduled.
    Outstanding &out = out_slots_[slot];
    const NodeId mn = out.req->dst;
    if (congestion_signal) {
        PerMn &st = mn_state_[mnIndex(mn)];
        const Tick guard = std::max<Tick>(st.last_rtt, cfg_.clib.timeout);
        if (eq_.now() >= st.last_decrease + guard) {
            st.cwnd = std::max(st.cwnd * cfg_.clib.cwnd_mult_dec, 0.01);
            st.last_decrease = eq_.now();
            stats_.cwnd_decreases++;
            if (st.cwnd < 1.0 && st.last_rtt > 0) {
                st.next_send_allowed =
                    eq_.now() + static_cast<Tick>(
                                    static_cast<double>(st.last_rtt) /
                                    st.cwnd);
            }
        }
    }
    if (out.retries >= cfg_.clib.max_retries) {
        // Give up: surface the failure to the application (§4.5 T4,
        // "extremely rare"). A timeout-caused exhaustion (dead or
        // unreachable MN) reports kTimeout so callers can distinguish
        // it from NACK/corruption storms (kRetryExceeded).
        const Status status =
            out.last_fail_fenced ? Status::kEpochFenced
            : out.last_fail_timeout ? Status::kTimeout
                                    : Status::kRetryExceeded;
        warnMsg(detail::strfmt(
            "CN %u: request %llu to MN %u failed with %s after %u "
            "retries",
            node_, (unsigned long long)out.req->orig_req_id,
            out.req->dst, to_string(status), out.retries));
        stats_.failures++;
        PerMn &st = mn_state_[mnIndex(mn)];
        clio_assert(st.inflight > 0, "inflight underflow");
        st.inflight--;
        iwnd_used_ -= out.expected_resp_bytes;
        const Tick deliver = eq_.now() + cfg_.clib.recv_overhead;
        auto cb = std::move(out.cb);
        eq_.schedule(deliver, [cb = std::move(cb), status] {
            ResponseMsg fail;
            fail.status = status;
            cb(fail);
        });
        freeSlot(slot);
        pumpWaiting();
        return;
    }
    stats_.retries++;
    // A retry is a NEW request with a fresh id (its own response), but
    // carries the original id so the MN can deduplicate (T4). Copy the
    // message: packets of the previous attempt still reference it.
    auto fresh = std::make_shared<RequestMsg>(*out.req);
    fresh->req_id = (static_cast<ReqId>(node_) << 40) | next_req_seq_++;
    out.req = std::move(fresh);
    out.retries++;
    const auto [it, inserted] =
        out_index_.emplace(out.req->req_id, slot);
    clio_assert(inserted, "request id collision");
    (void)it;
    // Exponential backoff before a timeout-triggered retransmission:
    // if the MN crashed, hammering it every TIMEOUT only burns wire;
    // if it is merely congested, spacing retries helps it drain.
    // NACK/corruption retries (congestion_signal == false) resend
    // immediately — the MN is alive, only the packet was bad.
    Tick backoff = 0;
    if (congestion_signal && cfg_.clib.retry_backoff > 0) {
        const std::uint32_t k =
            std::min<std::uint32_t>(out.retries - 1, 16);
        backoff = std::min<Tick>(cfg_.clib.retry_backoff << k,
                                 cfg_.clib.slow_op_timeout);
    }
    if (backoff == 0) {
        transmit(out);
    } else {
        // The slot can only be invalidated before the event fires by a
        // CN crash (which fails and recycles every active slot), so
        // re-check that the slot still owns this attempt id.
        const ReqId rid = out.req->req_id;
        eq_.scheduleAfter(backoff, [this, slot, rid] {
            auto jt = out_index_.find(rid);
            if (jt == out_index_.end() || jt->second != slot)
                return;
            transmit(out_slots_[slot]);
        });
    }
}

void
CNode::updateCwnd(NodeId mn, Tick rtt)
{
    PerMn &st = mn_state_[mnIndex(mn)];
    st.last_rtt = rtt;
    if (rtt > cfg_.clib.target_rtt) {
        // At most one multiplicative decrease per RTT: every ack of
        // the same congested window carries a high RTT sample, and
        // reacting to each would collapse cwnd to the floor.
        if (eq_.now() >= st.last_decrease + rtt) {
            st.cwnd = std::max(st.cwnd * cfg_.clib.cwnd_mult_dec, 0.01);
            st.last_decrease = eq_.now();
            stats_.cwnd_decreases++;
            if (st.cwnd < 1.0) {
                st.next_send_allowed =
                    eq_.now() + static_cast<Tick>(
                                    static_cast<double>(rtt) / st.cwnd);
            }
        }
    } else {
        st.cwnd = std::min(st.cwnd + cfg_.clib.cwnd_add_step,
                           cfg_.clib.cwnd_max);
    }
}

void
CNode::onPacket(Packet pkt)
{
    if (!alive_)
        return; // dead NIC: deliveries in flight are lost
    auto it = out_index_.find(pkt.req_id);
    if (it == out_index_.end())
        return; // stale response (e.g. the original after a retry won)
    const std::uint32_t slot = it->second;
    Outstanding &out = out_slots_[slot];

    if (pkt.type == MsgType::kNack) {
        // MN's link layer saw a corrupted packet of our request (§4.4).
        stats_.nacks++;
        out.last_fail_timeout = false;
        out.last_fail_fenced = false;
        out_index_.erase(it);
        retry(slot, false);
        return;
    }

    clio_assert(pkt.type == MsgType::kResponse,
                "unexpected packet type at CN");
    if (out.resp_parts_total == 0) {
        out.resp_parts_total = pkt.total_parts;
        out.resp = std::static_pointer_cast<const ResponseMsg>(pkt.msg);
        out.resp_seen_bits.assign((pkt.total_parts + 63) / 64, 0);
    }
    // Per-part dedup: a switch-duplicated response packet (chaos hook)
    // must not double-count toward the reassembly total, or a lost
    // sibling part would be silently papered over.
    const std::size_t word = pkt.part >> 6;
    const std::uint64_t bit = 1ull << (pkt.part & 63);
    if (word >= out.resp_seen_bits.size() ||
        (out.resp_seen_bits[word] & bit))
        return; // duplicate (or malformed part index): already counted
    out.resp_seen_bits[word] |= bit;
    if (pkt.corrupted)
        out.resp_corrupted = true;
    out.resp_parts_seen++;
    if (out.resp_parts_seen < out.resp_parts_total)
        return;

    // Full response assembled (T1 reassembly).
    const NodeId mn = out.req->dst;
    const Tick rtt = eq_.now() - out.sent_at;
    rtt_hist_.record(rtt);
    // Congestion signal (§4.4): only data-path requests sample the
    // network delay — slow-path and offload RTTs are dominated by
    // service time, not queueing. Large transfers subtract their own
    // expected serialization so only *excess* delay counts.
    switch (out.req->type) {
      case MsgType::kRead:
      case MsgType::kWrite:
      case MsgType::kAtomic: {
        const std::uint64_t payload =
            out.req->type == MsgType::kAtomic ? 8 : out.req->size;
        const Tick expected_ser =
            2 * payload * ticksPerByte(cfg_.net.link_bandwidth_bps);
        updateCwnd(mn, rtt > expected_ser ? rtt - expected_ser : 0);
        break;
      }
      default:
        break;
    }

    if (out.resp_corrupted) {
        // Checksum failure on the response: retry the whole request.
        out.last_fail_timeout = false;
        out.last_fail_fenced = false;
        out_index_.erase(it);
        retry(slot, false);
        return;
    }

    if (out.resp->status == Status::kEpochFenced) {
        // The MN rejoined at a newer epoch than this attempt carried.
        // Refresh our membership view from the controller (modeled as
        // an instantaneous control-plane RPC) and retry — the fresh
        // attempt is stamped with the new epoch by transmit(). Only
        // when retries run out does kEpochFenced surface to the app.
        if (epoch_refresh_) {
            const std::uint64_t e = epoch_refresh_();
            if (e > epoch_) {
                epoch_ = e;
                stats_.epoch_refreshes++;
            }
        }
        out.last_fail_timeout = false;
        out.last_fail_fenced = true;
        out_index_.erase(it);
        retry(slot, false);
        return;
    }

    PerMn &st = mn_state_[mnIndex(mn)];
    clio_assert(st.inflight > 0, "inflight underflow");
    st.inflight--;
    iwnd_used_ -= out.expected_resp_bytes;
    stats_.responses++;

    auto resp = out.resp;
    auto cb = std::move(out.cb);
    out_index_.erase(it);
    freeSlot(slot);

    // CN NIC + CLib software receive overhead before the app sees it.
    const Tick deliver =
        eq_.now() + cfg_.clib.nic_latency + cfg_.clib.recv_overhead;
    eq_.schedule(deliver,
                 [cb = std::move(cb), resp] { cb(*resp); });
    pumpWaiting();
}

void
CNode::crash()
{
    if (!alive_)
        return;
    alive_ = false;
    stats_.crashes++;
    // Fail every outstanding request: the issuing processes died with
    // the node, but completions must still fire so callers pumping the
    // event queue unwind instead of hanging. Walk slots in index order
    // — the id map's iteration order is not deterministic.
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(out_slots_.size()); slot++) {
        Outstanding &out = out_slots_[slot];
        if (!out.cb)
            continue; // free, or already completed
        stats_.failures++;
        auto cb = std::move(out.cb);
        eq_.schedule(eq_.now() + cfg_.clib.recv_overhead,
                     [cb = std::move(cb)] {
                         ResponseMsg fail;
                         fail.status = Status::kTimeout;
                         cb(fail);
                     });
        freeSlot(slot);
    }
    out_index_.clear();
    for (auto &wait : mn_wait_)
        wait.clear();
    for (auto &st : mn_state_) {
        st.inflight = 0;
        st.next_send_allowed = 0;
    }
    iwnd_used_ = 0;
}

void
CNode::restart()
{
    if (alive_)
        return;
    alive_ = true;
    incarnation_++;
    hb_seq_ = 0;
    // Congestion state restarts from scratch, like a rebooted kernel.
    for (auto &st : mn_state_) {
        PerMn fresh;
        fresh.cwnd = cfg_.clib.cwnd_init;
        st = fresh;
    }
    // No membership view until the controller pushes one (or an MN
    // fence forces a refresh).
    epoch_ = 0;
}

void
CNode::startHeartbeats(NodeId controller, Tick period, Tick phase)
{
    clio_assert(period > 0, "heartbeat period must be positive");
    hb_controller_ = controller;
    hb_period_ = period;
    if (hb_running_)
        return;
    hb_running_ = true;
    eq_.scheduleAfter(phase, [this] { heartbeatTick(); });
}

void
CNode::heartbeatTick()
{
    // The tick always reschedules; a dead node just stays silent, so
    // beacons resume by themselves after restart().
    if (alive_) {
        auto hb = std::make_shared<HeartbeatMsg>();
        hb->node = node_;
        hb->seq = ++hb_seq_;
        hb->epoch = epoch_;
        hb->incarnation = incarnation_;
        Packet pkt;
        pkt.src = node_;
        pkt.dst = hb_controller_;
        pkt.type = MsgType::kHeartbeat;
        pkt.priority = true; // control lane: never queue behind bulk data
        pkt.wire_bytes = kPacketHeaderBytes + 24;
        pkt.msg = std::move(hb);
        net_.send(std::move(pkt));
        stats_.heartbeats_sent++;
    }
    eq_.scheduleAfter(hb_period_, [this] { heartbeatTick(); });
}

} // namespace clio
