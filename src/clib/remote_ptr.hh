/**
 * @file
 * Typed remote pointers over Clio virtual addresses (§3.1).
 *
 * RemotePtr<T> / RemoteSlice wrap a VA (plus the owning client) with
 * typed read()/write()/atomic accessors, so applications manipulate
 * remote data structures without raw VirtAddr arithmetic. RemoteRegion
 * adds RAII scope: it owns an allocation and rfrees it on destruction.
 *
 * All of it is sugar over the synchronous client API — one remote
 * access per call; use SubmissionBatch (queue.hh) when batching
 * matters more than convenience.
 */

#ifndef CLIO_CLIB_REMOTE_PTR_HH
#define CLIO_CLIB_REMOTE_PTR_HH

#include <cstdint>
#include <type_traits>

#include "clib/client.hh"
#include "clib/result.hh"

namespace clio {

/** Typed pointer to one T in a remote address space. */
template <typename T>
class RemotePtr
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "remote objects travel as raw bytes");

  public:
    RemotePtr() = default;
    RemotePtr(ClioClient &client, VirtAddr addr)
        : client_(&client), addr_(addr)
    {
    }

    VirtAddr addr() const { return addr_; }
    bool valid() const { return client_ != nullptr && addr_ != 0; }
    explicit operator bool() const { return valid(); }

    /** Fetch the pointee. */
    Result<T> read() const
    {
        clio_assert(valid(), "read through an invalid RemotePtr");
        T out{};
        const Status st = client_->rread(addr_, &out, sizeof(T));
        if (st != Status::kOk)
            return st;
        return out;
    }

    /** Store the pointee. */
    Status write(const T &value) const
    {
        clio_assert(valid(), "write through an invalid RemotePtr");
        return client_->rwrite(addr_, &value, sizeof(T));
    }

    /** @{ Element arithmetic (strides by sizeof(T)). */
    RemotePtr operator+(std::uint64_t n) const
    {
        return RemotePtr(*client_, addr_ + n * sizeof(T));
    }
    RemotePtr at(std::uint64_t index) const { return *this + index; }
    /** @} */

    /** @{ MN-executed atomics (T3); T must be a remote 64-bit word. */
    Result<std::uint64_t> fetchAdd(std::uint64_t add) const
    {
        static_assert(sizeof(T) == 8, "remote atomics act on 8 bytes");
        clio_assert(valid(), "atomic through an invalid RemotePtr");
        return client_->rfaa(addr_, add);
    }
    Result<std::uint64_t> compareSwap(std::uint64_t expected,
                                      std::uint64_t desired) const
    {
        static_assert(sizeof(T) == 8, "remote atomics act on 8 bytes");
        clio_assert(valid(), "atomic through an invalid RemotePtr");
        auto h = client_->atomicAsync(addr_, AtomicOp::kCompareSwap,
                                      expected, desired);
        client_->rpoll(h);
        return h->result();
    }
    /** @} */

  private:
    ClioClient *client_ = nullptr;
    VirtAddr addr_ = 0;
};

/** Bounds-checked byte range in a remote address space. */
class RemoteSlice
{
  public:
    RemoteSlice() = default;
    RemoteSlice(ClioClient &client, VirtAddr addr, std::uint64_t size)
        : client_(&client), addr_(addr), size_(size)
    {
    }

    VirtAddr addr() const { return addr_; }
    std::uint64_t size() const { return size_; }
    bool valid() const { return client_ != nullptr && addr_ != 0; }
    explicit operator bool() const { return valid(); }

    Status read(std::uint64_t offset, void *dst, std::uint64_t len) const
    {
        checkRange(offset, len);
        return client_->rread(addr_ + offset, dst, len);
    }

    Status
    write(std::uint64_t offset, const void *src, std::uint64_t len) const
    {
        checkRange(offset, len);
        return client_->rwrite(addr_ + offset, src, len);
    }

    /** Sub-range view (no ownership semantics either way). */
    RemoteSlice subslice(std::uint64_t offset, std::uint64_t len) const
    {
        checkRange(offset, len);
        return RemoteSlice(*client_, addr_ + offset, len);
    }

    /** Typed pointer to the T at byte `offset`. */
    template <typename T>
    RemotePtr<T> ptr(std::uint64_t offset = 0) const
    {
        checkRange(offset, sizeof(T));
        return RemotePtr<T>(*client_, addr_ + offset);
    }

  private:
    void checkRange(std::uint64_t offset, std::uint64_t len) const
    {
        clio_assert(valid(), "access through an invalid RemoteSlice");
        // Overflow-safe form of offset + len <= size_ (a huge remote
        // length prefix must panic here, not wrap and slip through).
        clio_assert(len <= size_ && offset <= size_ - len,
                    "RemoteSlice access [%llu, +%llu) beyond %llu bytes",
                    (unsigned long long)offset, (unsigned long long)len,
                    (unsigned long long)size_);
    }

    ClioClient *client_ = nullptr;
    VirtAddr addr_ = 0;
    std::uint64_t size_ = 0;
};

/**
 * Owning remote allocation: rallocs on alloc(), rfrees when the last
 * scope drops it (move-only RAII). The destructor's rfree pumps the
 * simulation, so destroy regions while the cluster is still alive.
 */
class RemoteRegion
{
  public:
    /** Allocate `size` bytes; error Result when the MN refuses. */
    static Result<RemoteRegion>
    alloc(ClioClient &client, std::uint64_t size,
          std::uint8_t perm = kPermReadWrite, bool populate = false)
    {
        Result<VirtAddr> va = client.ralloc(size, perm, populate);
        if (!va.ok())
            return va.status();
        return RemoteRegion(client, *va, size);
    }

    RemoteRegion() = default;
    ~RemoteRegion() { reset(); }
    RemoteRegion(RemoteRegion &&other) noexcept { *this = std::move(other); }
    RemoteRegion &
    operator=(RemoteRegion &&other) noexcept
    {
        if (this != &other) {
            reset();
            client_ = other.client_;
            addr_ = other.addr_;
            size_ = other.size_;
            other.client_ = nullptr;
            other.addr_ = 0;
            other.size_ = 0;
        }
        return *this;
    }
    RemoteRegion(const RemoteRegion &) = delete;
    RemoteRegion &operator=(const RemoteRegion &) = delete;

    VirtAddr addr() const { return addr_; }
    std::uint64_t size() const { return size_; }
    bool valid() const { return addr_ != 0; }
    explicit operator bool() const { return valid(); }

    /** The whole region as a bounds-checked slice. */
    RemoteSlice slice() const
    {
        clio_assert(valid(), "slice of an invalid RemoteRegion");
        return RemoteSlice(*client_, addr_, size_);
    }

    /** Typed pointer to the T at byte `offset`. */
    template <typename T>
    RemotePtr<T> ptr(std::uint64_t offset = 0) const
    {
        return slice().template ptr<T>(offset);
    }

    /** Free now (idempotent; also runs at scope exit). */
    Status reset()
    {
        if (!valid())
            return Status::kOk;
        const VirtAddr addr = addr_;
        ClioClient *client = client_;
        client_ = nullptr;
        addr_ = 0;
        size_ = 0;
        return client->rfree(addr);
    }

    /** Disown without freeing (hand the VA to a longer-lived owner). */
    VirtAddr release()
    {
        const VirtAddr addr = addr_;
        client_ = nullptr;
        addr_ = 0;
        size_ = 0;
        return addr;
    }

  private:
    RemoteRegion(ClioClient &client, VirtAddr addr, std::uint64_t size)
        : client_(&client), addr_(addr), size_(size)
    {
    }

    ClioClient *client_ = nullptr;
    VirtAddr addr_ = 0;
    std::uint64_t size_ = 0;
};

} // namespace clio

#endif // CLIO_CLIB_REMOTE_PTR_HH
