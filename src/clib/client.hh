/**
 * @file
 * Per-process CLib API (§3.1) + the request ordering layer (§4.5 T2).
 *
 * A ClioClient is one application process' view of its remote address
 * space (RAS). It offers the paper's API — ralloc / rfree / rread /
 * rwrite (sync + async), rpoll, rlock / runlock / rfence, rrelease —
 * and enforces intra-thread inter-request ordering at the CN:
 * concurrent asynchronous requests with WAR / RAW / WAW dependencies
 * on the same page are never outstanding together; conflicting
 * requests are queued and issued only when their predecessors finish.
 *
 * Three layers of surface, highest first:
 *  - typed sync calls returning Result<T> (see result.hh), plus
 *    RemotePtr/RemoteSlice/RemoteRegion wrappers (remote_ptr.hh);
 *  - batched submission: SubmissionBatch groups N requests into one
 *    doorbell and a CompletionQueue delivers their completions in
 *    completion order (queue.hh) — the io_uring/verbs SQ/CQ idiom;
 *  - raw async handles + rpoll, the low-level path the other two are
 *    built on (and what tests use to pin ordering semantics).
 *
 * Synchronous calls pump the cluster's event queue until completion,
 * which lets single-threaded application code drive the simulation
 * naturally (other actors' events interleave while pumping).
 */

#ifndef CLIO_CLIB_CLIENT_HH
#define CLIO_CLIB_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "clib/cnode.hh"
#include "clib/result.hh"
#include "offload/chain.hh"
#include "pagetable/pte.hh"
#include "proto/messages.hh"
#include "sim/stats.hh"

namespace clio {

class CompletionQueue;
class SubmissionBatch;
class ReplicaRegistry;

/**
 * Completion handle returned by asynchronous APIs. Complete it via
 * rpoll(), or register it on a CompletionQueue (watch / batch submit)
 * for queue-based delivery. The continuation is owned by the bound
 * CompletionQueue and fires at most once by construction — there is
 * deliberately no user-mutable callback here.
 */
struct RequestHandle
{
    bool done = false;
    Status status = Status::kOk;
    /** Scalar result (allocated VA, atomic old value, offload value). */
    std::uint64_t value = 0;
    /** Offload result payload (reads land in the caller's buffer).
     * Moved into the Completion when a CompletionQueue is bound. A
     * failed offload carries its error message bytes here. */
    std::vector<std::uint8_t> data;
    /** Offload-defined error code (offload/errc.hh); 0 unless an
     * offload invocation failed. */
    std::uint32_t err_code = 0;
    /** Per-stage replies of a chained offload call (filled only when
     * the plan asked for perStageReplies()). */
    std::vector<OffloadStageReply> stages;

    /** Scalar result as a typed Result (status + value). */
    Result<std::uint64_t> result() const
    {
        if (status != Status::kOk)
            return status;
        return value;
    }

  private:
    friend class ClioClient;
    friend class CompletionQueue;
    template <typename, std::size_t> friend class MessagePool;
    /** Restore default-constructed state (MessagePool reuse; the pool
     * only recycles a handle once the app dropped every reference). */
    void
    reset()
    {
        done = false;
        status = Status::kOk;
        value = 0;
        data.clear();
        err_code = 0;
        stages.clear();
        cq_ = nullptr;
        tag_ = 0;
        delivered_ = false;
        completed_at_ = 0;
    }
    /** Queue this handle's completion is delivered to (at most one;
     * bound via CompletionQueue::watch or SubmissionBatch::submit). */
    CompletionQueue *cq_ = nullptr;
    std::uint64_t tag_ = 0;
    /** Single-shot latch: set when the completion is delivered. */
    bool delivered_ = false;
    /** Simulated time the request completed (stamped by the client,
     * surfaced as Completion::completed_at even when the handle is
     * watched only after completion). */
    Tick completed_at_ = 0;
};

using HandlePtr = std::shared_ptr<RequestHandle>;

/** One segment of a vectored read (buffer must outlive completion). */
struct ReadSeg
{
    VirtAddr addr = 0;
    void *buf = nullptr;
    std::uint64_t len = 0;
};

/** One segment of a vectored write (the payload is copied when the
 * segment is staged, so the source only needs to live through the
 * rwritev/SubmissionBatch::write call itself). */
struct WriteSeg
{
    VirtAddr addr = 0;
    const void *src = nullptr;
    std::uint64_t len = 0;
};

/** Reply of a synchronous offload invocation (extend path, §4.6). */
struct OffloadReply
{
    /** Scalar result register. */
    std::uint64_t value = 0;
    /** Result payload. */
    std::vector<std::uint8_t> data;
    /** Per-stage replies of a chained call (only when the plan asked
     * for perStageReplies()). */
    std::vector<OffloadStageReply> stages;
};

/** Per-client operation counters. */
struct ClientStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t atomics = 0;
    std::uint64_t fences = 0;
    std::uint64_t offloads = 0;
    std::uint64_t offload_chains = 0;  ///< chained plans submitted
    std::uint64_t ordering_stalls = 0; ///< requests queued on a conflict
    std::uint64_t batches = 0;         ///< SubmissionBatch doorbells
    std::uint64_t batched_ops = 0;     ///< ops submitted via batches
};

/** One application process using Clio. */
class ClioClient
{
  public:
    /**
     * @param home_mn default MN for allocations (overridden by the
     *        cluster's placement hook in multi-MN setups).
     */
    ClioClient(CNode &cn, ProcId pid, NodeId home_mn);

    ProcId pid() const { return pid_; }
    CNode &cnode() { return cn_; }
    const CNode &cnode() const { return cn_; }

    /** @{ Controller-side replica registry (health plane): when set,
     * ReplicatedRegions built over this client announce themselves so
     * the controller can auto-re-replicate on MN death. */
    void setReplicaRegistry(ReplicaRegistry *registry)
    {
        replica_registry_ = registry;
    }
    ReplicaRegistry *replicaRegistry() const { return replica_registry_; }
    /** @} */

    /** Cluster hook choosing the MN for a new allocation (§4.7). */
    void
    setAllocPlacement(std::function<NodeId(std::uint64_t)> picker)
    {
        alloc_picker_ = std::move(picker);
    }

    /** Record that [addr, addr+size) is served by `mn` (set by ralloc
     * internally; also called by the controller after migration). */
    void noteRegion(VirtAddr addr, std::uint64_t size, NodeId mn);

    /** MN currently serving `addr` (home MN when unknown). */
    NodeId mnFor(VirtAddr addr) const;

    /** Controller push after a migration (§4.7): every VA inside
     * [start, start+length) is now served by `mn`. */
    void redirectRegion(VirtAddr start, std::uint64_t length, NodeId mn);

    /** Adopt another client's routing + allocation tables (used when
     * attaching to an existing RAS from a different CN, §3.1). The
     * two clients must share a PID. Later allocations by either side
     * are shared at the MN but routed locally, so applications
     * exchange new region info themselves (as the paper's shared-RAS
     * programs do). */
    void copyRoutingFrom(const ClioClient &other);

    /** @{ Asynchronous API (§3.1). Handles complete via rpoll(), or
     * via a CompletionQueue when registered on one.
     * @param mn_override 0 = placement policy picks the MN; otherwise
     *        the allocation targets this node (replication, tests). */
    HandlePtr rallocAsync(std::uint64_t size,
                          std::uint8_t perm = kPermReadWrite,
                          bool populate = false,
                          NodeId mn_override = 0);
    HandlePtr rfreeAsync(VirtAddr addr);
    HandlePtr rreadAsync(VirtAddr addr, void *buf, std::uint64_t len);
    HandlePtr rwriteAsync(VirtAddr addr, const void *src,
                          std::uint64_t len);
    /** Write overload taking ownership of the payload (no copy). */
    HandlePtr rwriteAsync(VirtAddr addr, std::vector<std::uint8_t> data);
    HandlePtr atomicAsync(VirtAddr addr, AtomicOp op,
                          std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);
    HandlePtr fenceAsync();
    HandlePtr offloadAsync(NodeId mn, std::uint32_t offload_id,
                           std::vector<std::uint8_t> arg,
                           std::uint64_t expected_resp_bytes = 256);
    /** Submit a chained offload plan (chain.hh): the stages execute
     * back to back on the MN, one network round trip total. */
    HandlePtr rcallChainAsync(NodeId mn, const ChainPlan &plan,
                              std::uint64_t expected_resp_bytes = 256);
    /** @} */

    /** Pump the simulation until every handle completes.
     * @retval true when all completed with Status::kOk. */
    bool rpoll(const std::vector<HandlePtr> &handles);
    bool rpoll(const HandlePtr &handle);

    /** Release barrier: wait until every inflight request of this
     * client returns (T2's rrelease semantics). */
    void rrelease();

    /** @{ Synchronous API: async + rpoll, typed results. */
    Result<VirtAddr> ralloc(std::uint64_t size,
                            std::uint8_t perm = kPermReadWrite,
                            bool populate = false);
    Status rfree(VirtAddr addr);
    Status rread(VirtAddr addr, void *buf, std::uint64_t len);
    Status rwrite(VirtAddr addr, const void *src, std::uint64_t len);
    /** Atomic fetch-add on a remote 64-bit word. */
    Result<std::uint64_t> rfaa(VirtAddr addr, std::uint64_t add);
    /** @} */

    /** @{ Vectored API: all segments admitted in one doorbell (the
     * ordering layer still serializes conflicting segments), then
     * completed together. @return first failing status, kOk if all
     * succeeded. */
    Status rreadv(const std::vector<ReadSeg> &segs);
    Status rwritev(const std::vector<WriteSeg> &segs);
    /** @} */

    /** @{ Synchronization primitives (§3.1), MN-executed (T3). */
    bool rlock(VirtAddr lock_addr, std::uint32_t max_spins = 1u << 20);
    void runlock(VirtAddr lock_addr);
    Status rfence();
    /** @} */

    /** Synchronous offload invocation (extend path, §4.6). On failure
     * the Result carries the offload-defined error code + message. */
    Result<OffloadReply> rcall(NodeId mn, std::uint32_t offload_id,
                               std::vector<std::uint8_t> arg,
                               std::uint64_t expected_resp_bytes = 256);

    /** Synchronous chained offload call: submit the whole plan, get
     * the final stage's reply (or every stage's, when the plan asked
     * for perStageReplies()) after ONE round trip. */
    Result<OffloadReply> rcall_chain(NodeId mn, const ChainPlan &plan,
                                     std::uint64_t expected_resp_bytes = 256);

    const ClientStats &stats() const { return stats_; }

    /** Inflight + queued request count (test hook). */
    std::size_t outstanding() const {
        return inflight_fps_.size() + pending_.size();
    }

  private:
    friend class SubmissionBatch;

    /** Page-interval footprint of one request for conflict checks. */
    struct Footprint
    {
        std::uint64_t first_vpn = 0;
        std::uint64_t last_vpn = 0;
        bool is_write = false;
        /** Full barrier (fence/release): conflicts with everything. */
        bool barrier = false;
    };
    static_assert(std::is_trivially_copyable_v<Footprint>);

    struct Op
    {
        std::uint64_t op_seq = 0;
        Footprint fp;
        HandlePtr handle;
        std::shared_ptr<RequestMsg> req;
        std::uint64_t expected_resp_bytes = 0;
        void *read_buf = nullptr;
    };

    /**
     * One routing/allocation record: [start, start+length) is served
     * by `mn`. Trivially copyable; kept in one flat vector sorted by
     * `start` (binary-searched on every request), merging what used
     * to be two std::maps — at 10^4+ processes per CN the per-node
     * map allocations dominated the client-state footprint.
     */
    struct Region
    {
        VirtAddr start = 0;
        std::uint64_t length = 0;
        NodeId mn = 0;
        /** Set when the record is a local ralloc (its length is the
         * allocation size, used for the rfree conflict footprint);
         * routing-only entries (redirect/noteRegion) leave it clear. */
        bool is_alloc = false;
    };
    static_assert(std::is_trivially_copyable_v<Region>);

    static bool conflicts(const Footprint &a, const Footprint &b);

    /** First record with start >= `addr`. */
    std::vector<Region>::iterator regionAt(VirtAddr addr);

    /** Admit an op: issue now or queue behind conflicting ones (T2). */
    HandlePtr submit(Op op);
    void issueNow(Op op);
    void onComplete(std::uint64_t op_seq, const ResponseMsg &resp);
    void drainPending();

    CNode &cn_;
    ProcId pid_;
    NodeId home_mn_;
    std::function<NodeId(std::uint64_t)> alloc_picker_;
    ReplicaRegistry *replica_registry_ = nullptr;

    /** Region routing + allocation table, sorted by start. */
    std::vector<Region> regions_;

    std::uint64_t next_op_seq_ = 1;
    /** Issued-but-incomplete ops, struct-of-arrays: the conflict scan
     * on every submit touches only the packed (seq, footprint) array;
     * the Op bodies ride in a parallel array (swap-removed together).
     */
    struct InflightFp
    {
        std::uint64_t op_seq = 0;
        Footprint fp;
    };
    static_assert(std::is_trivially_copyable_v<InflightFp>);
    std::vector<InflightFp> inflight_fps_;
    std::vector<Op> inflight_ops_;
    /** Ops queued on conflicts, FIFO (compacted in place on drain). */
    std::vector<Op> pending_;

    ClientStats stats_;
};

} // namespace clio

#endif // CLIO_CLIB_CLIENT_HH
