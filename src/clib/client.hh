/**
 * @file
 * Per-process CLib API (§3.1) + the request ordering layer (§4.5 T2).
 *
 * A ClioClient is one application process' view of its remote address
 * space (RAS). It offers the paper's API — ralloc / rfree / rread /
 * rwrite (sync + async), rpoll, rlock / runlock / rfence, rrelease —
 * and enforces intra-thread inter-request ordering at the CN:
 * concurrent asynchronous requests with WAR / RAW / WAW dependencies
 * on the same page are never outstanding together; conflicting
 * requests are queued and issued only when their predecessors finish.
 *
 * Synchronous calls pump the cluster's event queue until completion,
 * which lets single-threaded application code drive the simulation
 * naturally (other actors' events interleave while pumping).
 */

#ifndef CLIO_CLIB_CLIENT_HH
#define CLIO_CLIB_CLIENT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "clib/cnode.hh"
#include "pagetable/pte.hh"
#include "proto/messages.hh"
#include "sim/stats.hh"

namespace clio {

/** Completion handle returned by asynchronous APIs (poll via rpoll). */
struct RequestHandle
{
    bool done = false;
    Status status = Status::kOk;
    /** Scalar result (allocated VA, atomic old value, offload value). */
    std::uint64_t value = 0;
    /** Offload result payload (reads land in the caller's buffer). */
    std::vector<std::uint8_t> data;
    /** Optional completion hook (used by closed-loop workload actors);
     * invoked once, right after `done` flips to true. */
    std::function<void()> on_done;
};

using HandlePtr = std::shared_ptr<RequestHandle>;

/** Per-client operation counters. */
struct ClientStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t atomics = 0;
    std::uint64_t fences = 0;
    std::uint64_t offloads = 0;
    std::uint64_t ordering_stalls = 0; ///< requests queued on a conflict
};

/** One application process using Clio. */
class ClioClient
{
  public:
    /**
     * @param home_mn default MN for allocations (overridden by the
     *        cluster's placement hook in multi-MN setups).
     */
    ClioClient(CNode &cn, ProcId pid, NodeId home_mn);

    ProcId pid() const { return pid_; }
    CNode &cnode() { return cn_; }

    /** Cluster hook choosing the MN for a new allocation (§4.7). */
    void
    setAllocPlacement(std::function<NodeId(std::uint64_t)> picker)
    {
        alloc_picker_ = std::move(picker);
    }

    /** Record that [addr, addr+size) is served by `mn` (set by ralloc
     * internally; also called by the controller after migration). */
    void noteRegion(VirtAddr addr, std::uint64_t size, NodeId mn);

    /** MN currently serving `addr` (home MN when unknown). */
    NodeId mnFor(VirtAddr addr) const;

    /** Controller push after a migration (§4.7): every VA inside
     * [start, start+length) is now served by `mn`. */
    void redirectRegion(VirtAddr start, std::uint64_t length, NodeId mn);

    /** Adopt another client's routing + allocation tables (used when
     * attaching to an existing RAS from a different CN, §3.1). The
     * two clients must share a PID. Later allocations by either side
     * are shared at the MN but routed locally, so applications
     * exchange new region info themselves (as the paper's shared-RAS
     * programs do). */
    void copyRoutingFrom(const ClioClient &other);

    /** @{ Asynchronous API (§3.1). Handles complete via rpoll().
     * @param mn_override 0 = placement policy picks the MN; otherwise
     *        the allocation targets this node (replication, tests). */
    HandlePtr rallocAsync(std::uint64_t size,
                          std::uint8_t perm = kPermReadWrite,
                          bool populate = false,
                          NodeId mn_override = 0);
    HandlePtr rfreeAsync(VirtAddr addr);
    HandlePtr rreadAsync(VirtAddr addr, void *buf, std::uint64_t len);
    HandlePtr rwriteAsync(VirtAddr addr, const void *src,
                          std::uint64_t len);
    HandlePtr atomicAsync(VirtAddr addr, AtomicOp op,
                          std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);
    HandlePtr fenceAsync();
    HandlePtr offloadAsync(NodeId mn, std::uint32_t offload_id,
                           std::vector<std::uint8_t> arg,
                           std::uint64_t expected_resp_bytes = 256);
    /** @} */

    /** Pump the simulation until every handle completes.
     * @retval true when all completed with Status::kOk. */
    bool rpoll(const std::vector<HandlePtr> &handles);
    bool rpoll(const HandlePtr &handle);

    /** Release barrier: wait until every inflight request of this
     * client returns (T2's rrelease semantics). */
    void rrelease();

    /** @{ Synchronous API: async + rpoll. */
    VirtAddr ralloc(std::uint64_t size,
                    std::uint8_t perm = kPermReadWrite,
                    bool populate = false); ///< 0 on failure
    Status rfree(VirtAddr addr);
    Status rread(VirtAddr addr, void *buf, std::uint64_t len);
    Status rwrite(VirtAddr addr, const void *src, std::uint64_t len);
    /** Atomic fetch-add; nullopt on failure. */
    std::optional<std::uint64_t> rfaa(VirtAddr addr, std::uint64_t add);
    /** @} */

    /** @{ Synchronization primitives (§3.1), MN-executed (T3). */
    bool rlock(VirtAddr lock_addr, std::uint32_t max_spins = 1u << 20);
    void runlock(VirtAddr lock_addr);
    Status rfence();
    /** @} */

    /** Synchronous offload invocation (extend path, §4.6). */
    Status offloadCall(NodeId mn, std::uint32_t offload_id,
                       std::vector<std::uint8_t> arg,
                       std::vector<std::uint8_t> *result = nullptr,
                       std::uint64_t *value = nullptr,
                       std::uint64_t expected_resp_bytes = 256);

    const ClientStats &stats() const { return stats_; }

    /** Inflight + queued request count (test hook). */
    std::size_t outstanding() const {
        return inflight_.size() + pending_.size();
    }

  private:
    /** Page-interval footprint of one request for conflict checks. */
    struct Footprint
    {
        std::uint64_t first_vpn = 0;
        std::uint64_t last_vpn = 0;
        bool is_write = false;
        /** Full barrier (fence/release): conflicts with everything. */
        bool barrier = false;
    };

    struct Op
    {
        std::uint64_t op_seq = 0;
        Footprint fp;
        HandlePtr handle;
        std::shared_ptr<RequestMsg> req;
        std::uint64_t expected_resp_bytes = 0;
        void *read_buf = nullptr;
    };

    static bool conflicts(const Footprint &a, const Footprint &b);

    /** Admit an op: issue now or queue behind conflicting ones (T2). */
    HandlePtr submit(Op op);
    void issueNow(Op op);
    void onComplete(std::uint64_t op_seq, Status status,
                    const std::vector<std::uint8_t> &data,
                    std::uint64_t value);
    void drainPending();

    CNode &cn_;
    ProcId pid_;
    NodeId home_mn_;
    std::function<NodeId(std::uint64_t)> alloc_picker_;

    /** Region routing table: start -> (length, MN). */
    std::map<VirtAddr, std::pair<std::uint64_t, NodeId>> regions_;
    /** Local allocation sizes (for rfree footprints). */
    std::map<VirtAddr, std::uint64_t> alloc_sizes_;

    std::uint64_t next_op_seq_ = 1;
    std::map<std::uint64_t, Op> inflight_; ///< issued, not yet complete
    std::deque<Op> pending_;               ///< queued on conflicts

    ClientStats stats_;
};

} // namespace clio

#endif // CLIO_CLIB_CLIENT_HH
