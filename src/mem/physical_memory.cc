#include "mem/physical_memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace clio {

PhysicalMemory::PhysicalMemory(std::uint64_t capacity)
    : capacity_(capacity)
{
    clio_assert(capacity > 0, "physical memory capacity must be nonzero");
}

std::uint8_t *
PhysicalMemory::chunkFor(std::uint64_t chunk_index) const
{
    auto it = chunks_.find(chunk_index);
    if (it != chunks_.end())
        return it->second.get();
    auto chunk = std::make_unique<std::uint8_t[]>(kChunkBytes);
    std::memset(chunk.get(), 0, kChunkBytes);
    auto *raw = chunk.get();
    chunks_.emplace(chunk_index, std::move(chunk));
    return raw;
}

void
PhysicalMemory::read(PhysAddr addr, void *dst, std::uint64_t len) const
{
    clio_assert(addr + len <= capacity_ && addr + len >= addr,
                "PA read out of range: addr=%llu len=%llu cap=%llu",
                (unsigned long long)addr, (unsigned long long)len,
                (unsigned long long)capacity_);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t chunk_index = addr / kChunkBytes;
        const std::uint64_t offset = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - offset);
        auto it = chunks_.find(chunk_index);
        if (it == chunks_.end()) {
            std::memset(out, 0, n); // untouched memory reads as zero
        } else {
            std::memcpy(out, it->second.get() + offset, n);
        }
        out += n;
        addr += n;
        len -= n;
    }
}

void
PhysicalMemory::write(PhysAddr addr, const void *src, std::uint64_t len)
{
    clio_assert(addr + len <= capacity_ && addr + len >= addr,
                "PA write out of range: addr=%llu len=%llu cap=%llu",
                (unsigned long long)addr, (unsigned long long)len,
                (unsigned long long)capacity_);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t chunk_index = addr / kChunkBytes;
        const std::uint64_t offset = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - offset);
        std::memcpy(chunkFor(chunk_index) + offset, in, n);
        in += n;
        addr += n;
        len -= n;
    }
}

std::uint64_t
PhysicalMemory::read64(PhysAddr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysicalMemory::write64(PhysAddr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

void
PhysicalMemory::zero(PhysAddr addr, std::uint64_t len)
{
    clio_assert(addr + len <= capacity_ && addr + len >= addr,
                "PA zero out of range");
    while (len > 0) {
        const std::uint64_t chunk_index = addr / kChunkBytes;
        const std::uint64_t offset = addr % kChunkBytes;
        const std::uint64_t n = std::min(len, kChunkBytes - offset);
        auto it = chunks_.find(chunk_index);
        if (it != chunks_.end())
            std::memset(it->second.get() + offset, 0, n);
        addr += n;
        len -= n;
    }
}

} // namespace clio
