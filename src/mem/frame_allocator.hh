/**
 * @file
 * Physical page-frame allocator and the async free-page buffer.
 *
 * The FrameAllocator is the slow-path (ARM) structure that tracks which
 * physical frames of an MN are free. The AsyncFreePageBuffer is the
 * fixed-size hardware FIFO of pre-generated frame addresses that the
 * fast-path page-fault handler pulls from in bounded time (§4.3): the
 * ARM continuously refills it in the background so the fast path never
 * waits for a physical allocation.
 */

#ifndef CLIO_MEM_FRAME_ALLOCATOR_HH
#define CLIO_MEM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** Free-list allocator over an MN's physical frames (slow path, §4.3). */
class FrameAllocator
{
  public:
    /**
     * @param capacity physical bytes managed.
     * @param page_size frame size in bytes (a configured huge page).
     */
    FrameAllocator(std::uint64_t capacity, std::uint64_t page_size);

    /** Allocate one frame; nullopt when physical memory is exhausted. */
    std::optional<PhysAddr> allocate();

    /** Return a frame to the free list. */
    void free(PhysAddr frame);

    std::uint64_t totalFrames() const { return total_frames_; }
    std::uint64_t freeFrames() const { return free_list_.size(); }
    std::uint64_t usedFrames() const {
        return total_frames_ - free_list_.size();
    }

    /** Fraction of physical frames currently allocated, in [0, 1]. */
    double utilization() const;

    std::uint64_t pageSize() const { return page_size_; }

  private:
    std::uint64_t page_size_;
    std::uint64_t total_frames_;
    /** LIFO free list: reuse recently freed frames first (cache warm). */
    std::vector<PhysAddr> free_list_;
};

/**
 * Fixed-capacity FIFO of pre-generated free frame addresses (§4.3).
 *
 * The fast path pops in O(1); the slow path pushes refills. Frames in
 * the buffer are *reserved* (already removed from the FrameAllocator),
 * so a pop can never race with an allocation.
 */
class AsyncFreePageBuffer
{
  public:
    explicit AsyncFreePageBuffer(std::uint32_t capacity);

    /** Pop a pre-allocated frame; nullopt if the buffer ran dry. */
    std::optional<PhysAddr> pop();

    /** Push a reserved frame; returns false when full (caller keeps
     * ownership and should return the frame to the allocator). */
    bool push(PhysAddr frame);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const {
        return static_cast<std::uint32_t>(fifo_.size());
    }
    bool empty() const { return fifo_.empty(); }
    std::uint32_t vacancy() const { return capacity_ - size(); }

    /** Drain all reserved frames (e.g. to hand back on teardown). */
    std::vector<PhysAddr> drain();

    /** Times the fast path found the buffer empty (should stay 0 in
     * steady state; a nonzero count means the refill rate fell behind
     * line rate). */
    std::uint64_t underflows() const { return underflows_; }

  private:
    std::uint32_t capacity_;
    std::deque<PhysAddr> fifo_;
    std::uint64_t underflows_ = 0;
};

} // namespace clio

#endif // CLIO_MEM_FRAME_ALLOCATOR_HH
