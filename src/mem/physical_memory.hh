/**
 * @file
 * Byte-addressable physical memory for one memory node.
 *
 * Storage is sparse (allocated in fixed-size chunks on first touch) so a
 * simulated MN can be configured with, say, 2 GB or 4 TB of physical
 * memory without the host paying for untouched bytes. All reads and
 * writes move real data: end-to-end tests verify that what a client
 * reads through the whole network/translation stack is exactly what was
 * written, even under loss/reordering/retry.
 */

#ifndef CLIO_MEM_PHYSICAL_MEMORY_HH
#define CLIO_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace clio {

/** Sparse backing store for one MN's on-board DRAM. */
class PhysicalMemory
{
  public:
    /** @param capacity total physical bytes this MN hosts. */
    explicit PhysicalMemory(std::uint64_t capacity);

    std::uint64_t capacity() const { return capacity_; }

    /**
     * Copy `len` bytes from physical address `addr` into `dst`.
     * Untouched memory reads as zero. Panics on out-of-range access
     * (the translation layer must never produce one).
     */
    void read(PhysAddr addr, void *dst, std::uint64_t len) const;

    /** Copy `len` bytes from `src` into physical address `addr`. */
    void write(PhysAddr addr, const void *src, std::uint64_t len);

    /** Read a little-endian 64-bit word (for atomics). */
    std::uint64_t read64(PhysAddr addr) const;

    /** Write a little-endian 64-bit word. */
    void write64(PhysAddr addr, std::uint64_t value);

    /** Zero-fill a range (used when a fresh frame is handed out). */
    void zero(PhysAddr addr, std::uint64_t len);

    /** Number of host-side chunks actually materialized (test hook). */
    std::size_t materializedChunks() const { return chunks_.size(); }

  private:
    static constexpr std::uint64_t kChunkBytes = 64 * KiB;

    std::uint8_t *chunkFor(std::uint64_t chunk_index) const;

    std::uint64_t capacity_;
    /** chunk index -> lazily allocated chunk. Mutable so that read() of
     * untouched memory can stay logically const without materializing
     * (it simply skips absent chunks). */
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<std::uint8_t[]>> chunks_;
};

} // namespace clio

#endif // CLIO_MEM_PHYSICAL_MEMORY_HH
