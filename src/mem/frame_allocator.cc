#include "mem/frame_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace clio {

FrameAllocator::FrameAllocator(std::uint64_t capacity,
                               std::uint64_t page_size)
    : page_size_(page_size), total_frames_(capacity / page_size)
{
    clio_assert(page_size > 0, "page size must be nonzero");
    clio_assert(total_frames_ > 0,
                "capacity %llu too small for page size %llu",
                (unsigned long long)capacity,
                (unsigned long long)page_size);
    free_list_.reserve(total_frames_);
    // Push high addresses first so allocation (which pops the back)
    // hands out low addresses first.
    for (std::uint64_t i = total_frames_; i-- > 0;)
        free_list_.push_back(i * page_size_);
}

std::optional<PhysAddr>
FrameAllocator::allocate()
{
    if (free_list_.empty())
        return std::nullopt;
    PhysAddr frame = free_list_.back();
    free_list_.pop_back();
    return frame;
}

void
FrameAllocator::free(PhysAddr frame)
{
    clio_assert(frame % page_size_ == 0, "freeing unaligned frame");
    clio_assert(free_list_.size() < total_frames_,
                "double free: free list already full");
    free_list_.push_back(frame);
}

double
FrameAllocator::utilization() const
{
    return static_cast<double>(usedFrames()) /
           static_cast<double>(total_frames_);
}

AsyncFreePageBuffer::AsyncFreePageBuffer(std::uint32_t capacity)
    : capacity_(capacity)
{
    clio_assert(capacity > 0, "async buffer capacity must be nonzero");
}

std::optional<PhysAddr>
AsyncFreePageBuffer::pop()
{
    if (fifo_.empty()) {
        underflows_++;
        return std::nullopt;
    }
    PhysAddr frame = fifo_.front();
    fifo_.pop_front();
    return frame;
}

bool
AsyncFreePageBuffer::push(PhysAddr frame)
{
    if (fifo_.size() >= capacity_)
        return false;
    fifo_.push_back(frame);
    return true;
}

std::vector<PhysAddr>
AsyncFreePageBuffer::drain()
{
    std::vector<PhysAddr> out(fifo_.begin(), fifo_.end());
    fifo_.clear();
    return out;
}

} // namespace clio
