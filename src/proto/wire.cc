#include "proto/wire.hh"

#include <algorithm>
#include <ostream>

#include "proto/messages.hh"
#include "sim/logging.hh"

namespace clio {

std::ostream &
operator<<(std::ostream &os, Status status)
{
    return os << to_string(status);
}

std::uint32_t
packetCount(std::uint64_t payload_bytes, std::uint32_t mtu)
{
    const std::uint32_t payload_per_pkt = mtu - kPacketHeaderBytes;
    if (payload_bytes == 0)
        return 1;
    return static_cast<std::uint32_t>(
        (payload_bytes + payload_per_pkt - 1) / payload_per_pkt);
}

void
sendSplit(EventQueue &eq, Network &net, Tick when, NodeId src, NodeId dst,
          ReqId req_id, MsgType type, std::uint64_t payload_bytes,
          std::shared_ptr<const Message> msg)
{
    const std::uint32_t mtu = net.config().mtu;
    clio_assert(mtu > kPacketHeaderBytes, "MTU smaller than headers");
    const std::uint32_t payload_per_pkt = mtu - kPacketHeaderBytes;
    const std::uint32_t total = packetCount(payload_bytes, mtu);

    std::uint64_t offset = 0;
    for (std::uint32_t part = 0; part < total; part++) {
        Packet pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.req_id = req_id;
        pkt.type = type;
        pkt.part = part;
        pkt.total_parts = total;
        pkt.payload_offset = offset;
        pkt.payload_len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            payload_per_pkt, payload_bytes - offset));
        pkt.wire_bytes = pkt.payload_len + kPacketHeaderBytes;
        pkt.msg = msg;
        offset += pkt.payload_len;

        if (when <= eq.now()) {
            net.send(std::move(pkt));
        } else {
            eq.schedule(when, [&net, pkt = std::move(pkt)]() mutable {
                net.send(std::move(pkt));
            });
        }
    }
}

} // namespace clio
