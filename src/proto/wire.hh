/**
 * @file
 * MTU splitting helper (§4.5 T1): slices one message's payload into
 * link-layer packets, each self-describing (full Clio header + the
 * payload byte range it carries), and hands them to the network.
 */

#ifndef CLIO_PROTO_WIRE_HH
#define CLIO_PROTO_WIRE_HH

#include <memory>

#include "net/network.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace clio {

/** Number of link-layer packets a payload of `payload_bytes` needs. */
std::uint32_t packetCount(std::uint64_t payload_bytes, std::uint32_t mtu);

/**
 * Split and transmit a message at tick `when` (>= now).
 *
 * @param payload_bytes bytes of sliceable payload (write data or read
 *        response data); header-only messages pass 0 and still produce
 *        one packet.
 */
void sendSplit(EventQueue &eq, Network &net, Tick when, NodeId src,
               NodeId dst, ReqId req_id, MsgType type,
               std::uint64_t payload_bytes,
               std::shared_ptr<const Message> msg);

} // namespace clio

#endif // CLIO_PROTO_WIRE_HH
