/**
 * @file
 * Clio request/response message definitions (the "wire protocol"
 * between CLib at CNs and CBoards at MNs, §3.1/§4.4).
 *
 * A request carries everything the MN needs to process it in isolation
 * (Principle 5): pid, full addressing, operation arguments, and — for
 * retries — the id of the original attempt so the MN's dedup buffer
 * can suppress double execution (§4.5 T4).
 */

#ifndef CLIO_PROTO_MESSAGES_HH
#define CLIO_PROTO_MESSAGES_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace clio {

/** Atomic operations executed by the MN synchronization unit (T3). */
enum class AtomicOp : std::uint8_t {
    kTestAndSet, ///< rlock acquire: returns old value, sets to 1
    kStore,      ///< runlock release: unconditional store
    kFetchAdd,   ///< general-purpose fetch-and-add
    kCompareSwap ///< general-purpose CAS
};

/** Completion status returned by the MN. */
enum class Status : std::uint8_t {
    kOk,
    kBadAddress,     ///< VA not allocated (no PTE)
    kPermDenied,     ///< permission check failed in the fast path
    kOutOfMemory,    ///< allocation could not be satisfied
    kRetryExceeded,  ///< CLib-side: all retries timed out
    kCorrupt,        ///< NACK: link-layer checksum failure at the MN
    kOffloadError,   ///< extend-path offload rejected the call
};

/** Human-readable status name (log + test failure messages). */
inline const char *
to_string(Status status)
{
    switch (status) {
      case Status::kOk:
        return "Ok";
      case Status::kBadAddress:
        return "BadAddress";
      case Status::kPermDenied:
        return "PermDenied";
      case Status::kOutOfMemory:
        return "OutOfMemory";
      case Status::kRetryExceeded:
        return "RetryExceeded";
      case Status::kCorrupt:
        return "Corrupt";
      case Status::kOffloadError:
        return "OffloadError";
    }
    return "Status(?)";
}

/** Stream a status by name, so gtest failures read "BadAddress"
 * rather than a raw enum integer (defined in wire.cc to keep this
 * hot header free of <ostream>). */
std::ostream &operator<<(std::ostream &os, Status status);

/** One Clio request (CN -> MN). */
struct RequestMsg : Message
{
    MsgType type = MsgType::kRead;
    /** Global process id the request acts for (§3.1). */
    ProcId pid = 0;
    /** This attempt's unique id. */
    ReqId req_id = 0;
    /** First attempt's id; == req_id on the first try. A retry keeps
     * the original id here so the MN can deduplicate (T4). */
    ReqId orig_req_id = 0;
    /** Issuing CN's network node. */
    NodeId src = 0;
    /** Target MN's network node. */
    NodeId dst = 0;

    /** Target VA (read/write/atomic/free) within the pid's RAS. */
    VirtAddr addr = 0;
    /** Length in bytes (read size, write size, alloc size). */
    std::uint64_t size = 0;
    /** Write payload (size bytes) — carried sliced across packets. */
    std::vector<std::uint8_t> data;

    /** @{ Atomic arguments. */
    AtomicOp aop = AtomicOp::kTestAndSet;
    std::uint64_t arg0 = 0; ///< store value / addend / CAS expected
    std::uint64_t arg1 = 0; ///< CAS desired
    /** @} */

    /** Allocation permissions (kAlloc). */
    std::uint8_t perm = 0;
    /** kAlloc: eagerly bind physical frames (pre-populated allocation,
     * Fig. 12's Clio-Alloc-Phys series). */
    bool populate = false;

    /** @{ Extend-path offload invocation (kOffload). */
    std::uint32_t offload_id = 0;
    std::vector<std::uint8_t> offload_arg;
    /** @} */

    /** Optional per-request retry-timeout override (0 = use the
     * config default for the request class). Long-running offloads
     * (e.g. full-table scans) set this. */
    Tick timeout_override = 0;
};

/** One Clio response (MN -> CN); echoes the request id. */
struct ResponseMsg : Message
{
    ReqId req_id = 0;
    Status status = Status::kOk;
    /** Read data / offload result payload. */
    std::vector<std::uint8_t> data;
    /** Scalar result: allocated VA, atomic's old value, etc. */
    std::uint64_t value = 0;
};

/** Wire size of a request (headers + inline payload). */
inline std::uint64_t
requestWireBytes(const RequestMsg &req)
{
    std::uint64_t payload = 0;
    switch (req.type) {
      case MsgType::kWrite:
        payload = req.size;
        break;
      case MsgType::kOffload:
        payload = req.offload_arg.size();
        break;
      default:
        payload = 0;
    }
    return payload + 40; // fixed Clio request descriptor
}

/** Wire size of a response (headers + payload). */
inline std::uint64_t
responseWireBytes(const ResponseMsg &resp)
{
    return resp.data.size() + 24; // fixed Clio response descriptor
}

} // namespace clio

#endif // CLIO_PROTO_MESSAGES_HH
