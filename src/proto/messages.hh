/**
 * @file
 * Clio request/response message definitions (the "wire protocol"
 * between CLib at CNs and CBoards at MNs, §3.1/§4.4).
 *
 * A request carries everything the MN needs to process it in isolation
 * (Principle 5): pid, full addressing, operation arguments, and — for
 * retries — the id of the original attempt so the MN's dedup buffer
 * can suppress double execution (§4.5 T4).
 */

#ifndef CLIO_PROTO_MESSAGES_HH
#define CLIO_PROTO_MESSAGES_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace clio {

/** Atomic operations executed by the MN synchronization unit (T3). */
enum class AtomicOp : std::uint8_t {
    kTestAndSet, ///< rlock acquire: returns old value, sets to 1
    kStore,      ///< runlock release: unconditional store
    kFetchAdd,   ///< general-purpose fetch-and-add
    kCompareSwap ///< general-purpose CAS
};

/** Completion status returned by the MN. */
enum class Status : std::uint8_t {
    kOk,
    kBadAddress,     ///< VA not allocated (no PTE)
    kPermDenied,     ///< permission check failed in the fast path
    kOutOfMemory,    ///< allocation could not be satisfied
    kRetryExceeded,  ///< CLib-side: retries exhausted on NACK/corruption
    kCorrupt,        ///< NACK: link-layer checksum failure at the MN
    kOffloadError,   ///< extend-path offload rejected the call
    kTimeout,        ///< CLib-side: retries exhausted, last failure was
                     ///< a timeout (dead/unreachable MN)
    kEpochFenced,    ///< MN rejected a request stamped with a stale
                     ///< membership epoch (split-brain fence)
};

/** Human-readable status name (log + test failure messages). */
inline const char *
to_string(Status status)
{
    switch (status) {
      case Status::kOk:
        return "Ok";
      case Status::kBadAddress:
        return "BadAddress";
      case Status::kPermDenied:
        return "PermDenied";
      case Status::kOutOfMemory:
        return "OutOfMemory";
      case Status::kRetryExceeded:
        return "RetryExceeded";
      case Status::kCorrupt:
        return "Corrupt";
      case Status::kOffloadError:
        return "OffloadError";
      case Status::kTimeout:
        return "Timeout";
      case Status::kEpochFenced:
        return "EpochFenced";
    }
    return "Status(?)";
}

/** Stream a status by name, so gtest failures read "BadAddress"
 * rather than a raw enum integer (defined in wire.cc to keep this
 * hot header free of <ostream>). */
std::ostream &operator<<(std::ostream &os, Status status);

/** Sentinel for OffloadChainBind::src_stage: the immediately
 * preceding stage of the chain. */
constexpr std::uint32_t kOffloadPrevStage = 0xFFFFFFFFu;

/**
 * One dataflow edge of a chained offload plan: copy bytes from an
 * earlier stage's reply into this stage's argument before it runs,
 * entirely on the MN (no CN round trip between stages, §4.6).
 */
struct OffloadChainBind
{
    /** Reply to read from: an explicit earlier stage index, or
     * kOffloadPrevStage for the immediately preceding stage. */
    std::uint32_t src_stage = kOffloadPrevStage;
    /** Bind the stage's 8-byte value register instead of its data
     * payload (src_offset then indexes into those 8 bytes). */
    bool from_value = false;
    std::uint32_t src_offset = 0; ///< offset into the source reply
    std::uint32_t dst_offset = 0; ///< offset into this stage's arg
    std::uint32_t len = 8;        ///< bytes copied
};

/** One stage of a chained offload plan. */
struct OffloadChainStage
{
    std::uint32_t offload_id = 0;
    /** Argument template; binds patch it before dispatch. */
    std::vector<std::uint8_t> arg;
    std::vector<OffloadChainBind> binds;
    /** Terminate the chain successfully after this stage when its
     * reply value is 0 (pointer-chase miss semantics). */
    bool stop_on_zero_value = false;
};

/** Reply of one chain stage (per-stage reply mode). */
struct OffloadStageReply
{
    Status status = Status::kOk;
    /** Offload-defined error code (see offload/errc.hh). */
    std::uint32_t err_code = 0;
    std::uint64_t value = 0;
    std::vector<std::uint8_t> data;
};

/** One Clio request (CN -> MN). */
struct RequestMsg : Message
{
    MsgType type = MsgType::kRead;
    /** Global process id the request acts for (§3.1). */
    ProcId pid = 0;
    /** This attempt's unique id. */
    ReqId req_id = 0;
    /** First attempt's id; == req_id on the first try. A retry keeps
     * the original id here so the MN can deduplicate (T4). */
    ReqId orig_req_id = 0;
    /** Issuing CN's network node. */
    NodeId src = 0;
    /** Target MN's network node. */
    NodeId dst = 0;

    /** Target VA (read/write/atomic/free) within the pid's RAS. */
    VirtAddr addr = 0;
    /** Length in bytes (read size, write size, alloc size). */
    std::uint64_t size = 0;
    /** Write payload (size bytes) — carried sliced across packets. */
    std::vector<std::uint8_t> data;

    /** @{ Atomic arguments. */
    AtomicOp aop = AtomicOp::kTestAndSet;
    std::uint64_t arg0 = 0; ///< store value / addend / CAS expected
    std::uint64_t arg1 = 0; ///< CAS desired
    /** @} */

    /** Allocation permissions (kAlloc). */
    std::uint8_t perm = 0;
    /** kAlloc: eagerly bind physical frames (pre-populated allocation,
     * Fig. 12's Clio-Alloc-Phys series). */
    bool populate = false;

    /** @{ Extend-path offload invocation (kOffload). A non-empty
     * `chain` makes this a chained call: the stages execute back to
     * back on the MN (offload_id/offload_arg are then unused). */
    std::uint32_t offload_id = 0;
    std::vector<std::uint8_t> offload_arg;
    std::vector<OffloadChainStage> chain;
    /** Chained call: return every stage's reply (ResponseMsg::stages)
     * instead of the final stage's only. */
    bool chain_per_stage = false;
    /** @} */

    /** Optional per-request retry-timeout override (0 = use the
     * config default for the request class). Long-running offloads
     * (e.g. full-table scans) set this. */
    Tick timeout_override = 0;

    /** Membership epoch the issuing CN believed current when this
     * attempt was transmitted (stamped per attempt, so a retry after
     * an epoch refresh carries the new epoch). MNs fence requests
     * whose epoch predates their rejoin epoch (kEpochFenced). */
    std::uint64_t epoch = 0;

    /** Restore default-constructed field values, keeping the payload
     * vectors' capacity (MessagePool reuse). */
    void
    reset()
    {
        type = MsgType::kRead;
        pid = 0;
        req_id = 0;
        orig_req_id = 0;
        src = 0;
        dst = 0;
        addr = 0;
        size = 0;
        data.clear();
        aop = AtomicOp::kTestAndSet;
        arg0 = 0;
        arg1 = 0;
        perm = 0;
        populate = false;
        offload_id = 0;
        offload_arg.clear();
        chain.clear();
        chain_per_stage = false;
        timeout_override = 0;
        epoch = 0;
    }
};

/** One Clio response (MN -> CN); echoes the request id. */
struct ResponseMsg : Message
{
    ReqId req_id = 0;
    Status status = Status::kOk;
    /** Read data / offload result payload; offload failures carry the
     * error message bytes here. */
    std::vector<std::uint8_t> data;
    /** Scalar result: allocated VA, atomic's old value, etc. */
    std::uint64_t value = 0;
    /** Offload-defined error code (see offload/errc.hh); 0 unless a
     * kOffload request failed at the extend path. */
    std::uint32_t err_code = 0;
    /** Per-stage replies of a chained offload call (only filled when
     * the request asked for chain_per_stage). */
    std::vector<OffloadStageReply> stages;

    /** Restore default-constructed field values, keeping the payload
     * vector's capacity (MessagePool reuse). */
    void
    reset()
    {
        req_id = 0;
        status = Status::kOk;
        data.clear();
        value = 0;
        err_code = 0;
        stages.clear();
    }
};

/** One liveness beacon (node -> controller). A heartbeat is a real
 * message routed through the fabric, so rack kills, congestion, and
 * packet-fault windows genuinely delay or drop it. */
struct HeartbeatMsg : Message
{
    /** Sender's network node (redundant with Packet::src; kept so the
     * message is self-describing like every other Clio message). */
    NodeId node = 0;
    /** Monotonic per-sender beacon sequence number. */
    std::uint64_t seq = 0;
    /** Sender's restart count. A bump without a missed lease means the
     * node crashed and rebooted inside one lease window — the
     * controller must treat that as a death + rejoin (volatile state
     * was lost) even though no beacon deadline expired. */
    std::uint64_t incarnation = 0;
    /** Membership epoch the sender last observed (0 for a freshly
     * restarted node — lets the controller spot zombies). */
    std::uint64_t epoch = 0;
};

/**
 * Fixed-size recycling ring for shared_ptr-managed messages.
 *
 * The simulator allocates one RequestMsg/ResponseMsg (plus its payload
 * vector) per operation; at millions of simulated ops that malloc/free
 * churn dominates the hot path. The pool keeps a power-of-two ring of
 * shared_ptr slots: acquire() inspects the next slot, and if the pool
 * holds the LAST reference (use_count() == 1 — no packet, transport
 * table, or completion closure still points at the message) the object
 * is reset() — payload capacity retained — and handed out again.
 * Otherwise a fresh message is allocated into the slot. The use_count
 * check makes reuse safe by construction, and a pool deeper than the
 * peak number of simultaneously live messages recycles ~always.
 */
template <typename M, std::size_t N = 64>
class MessagePool
{
    static_assert((N & (N - 1)) == 0, "pool size must be a power of two");

  public:
    std::shared_ptr<M>
    acquire()
    {
        std::shared_ptr<M> &slot = slots_[cursor_];
        cursor_ = (cursor_ + 1) & (N - 1);
        if (slot && slot.use_count() == 1) {
            slot->reset();
            return slot;
        }
        slot = std::make_shared<M>();
        return slot;
    }

  private:
    std::array<std::shared_ptr<M>, N> slots_{};
    std::size_t cursor_ = 0;
};

/** Payload bytes a request carries on the wire (what the MTU split
 * slices): write data, offload argument bytes, or — for a chained
 * call — every stage's argument plus per-stage/bind descriptors. */
inline std::uint64_t
requestPayloadBytes(const RequestMsg &req)
{
    switch (req.type) {
      case MsgType::kWrite:
        return req.size;
      case MsgType::kOffload: {
        std::uint64_t payload = req.offload_arg.size();
        for (const OffloadChainStage &stage : req.chain) {
            payload += stage.arg.size() + 16; // stage descriptor
            payload += stage.binds.size() * 16;
        }
        return payload;
      }
      default:
        return 0;
    }
}

/** Wire size of a request (headers + inline payload). */
inline std::uint64_t
requestWireBytes(const RequestMsg &req)
{
    return requestPayloadBytes(req) + 40; // fixed Clio request descriptor
}

/** Payload bytes a response carries on the wire (read data / offload
 * result payload + per-stage replies of a chained call). */
inline std::uint64_t
responsePayloadBytes(const ResponseMsg &resp)
{
    std::uint64_t payload = resp.data.size();
    for (const OffloadStageReply &stage : resp.stages)
        payload += stage.data.size() + 16; // stage reply descriptor
    return payload;
}

/** Wire size of a response (headers + payload). */
inline std::uint64_t
responseWireBytes(const ResponseMsg &resp)
{
    return responsePayloadBytes(resp) + 24; // fixed Clio response descriptor
}

} // namespace clio

#endif // CLIO_PROTO_MESSAGES_HH
