/**
 * @file
 * Distributed MNs with over-commit and migration (§4.7): a cluster of
 * small memory nodes absorbs a growing workload; when one MN comes
 * under memory pressure, the global controller migrates regions to
 * less-pressured MNs in the background — instead of swapping — and
 * clients keep reading their data transparently.
 *
 *   $ ./memory_rebalance
 */

#include <cstdio>
#include <vector>

#include "cluster/cluster.hh"

using namespace clio;

namespace {

void
printPressure(Cluster &cluster, const char *when)
{
    std::printf("%s:", when);
    for (std::uint32_t m = 0; m < cluster.mnCount(); m++)
        std::printf("  MN%u=%.0f%%", m,
                    100.0 * cluster.mn(m).memoryPressure());
    std::printf("\n");
}

} // namespace

int
main()
{
    auto cfg = ModelConfig::prototype();
    cfg.dist.region_size = 32 * MiB; // small regions for the demo
    Cluster cluster(cfg, 1, 3, 256 * MiB);
    ClioClient &client = cluster.createClient(0);

    // Phase 1: a tenant grows on its home MN (e.g. placed there for
    // locality before the cluster filled up), faulting in pages.
    client.setAllocPlacement(
        [&cluster](std::uint64_t) { return cluster.mn(0).nodeId(); });
    std::vector<VirtAddr> chunks;
    std::uint64_t stamp = 1;
    for (int i = 0; i < 7; i++) {
        const VirtAddr a = client.ralloc(32 * MiB).value_or(0);
        if (!a)
            break;
        for (std::uint64_t off = 0; off < 32 * MiB; off += 4 * MiB) {
            std::uint64_t v = stamp++;
            client.rwrite(a + off, &v, sizeof(v));
        }
        chunks.push_back(a);
    }
    printPressure(cluster, "after growth   ");

    // Phase 2: controller sweep migrates regions off hot MNs.
    auto reports = cluster.balancePressure();
    std::printf("controller migrated %zu region(s):\n", reports.size());
    for (const auto &r : reports) {
        std::printf("  0x%llx: MN%u -> MN%u, %u pages, %.3f s\n",
                    (unsigned long long)r.region_start, r.src_mn,
                    r.dst_mn, r.pages_moved,
                    ticksToSeconds(r.duration));
    }
    printPressure(cluster, "after balancing");

    // Phase 3: the tenant never noticed — verify every stamp.
    std::uint64_t expect = 1;
    bool ok = true;
    for (VirtAddr a : chunks) {
        for (std::uint64_t off = 0; off < 32 * MiB; off += 4 * MiB) {
            std::uint64_t v = 0;
            ok = ok &&
                 client.rread(a + off, &v, sizeof(v)) == Status::kOk &&
                 v == expect++;
        }
    }
    std::printf("all %llu stamps intact after migration: %s\n",
                (unsigned long long)(expect - 1), ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
