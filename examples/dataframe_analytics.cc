/**
 * @file
 * Clio-DF analytics (§6): a DataFrame whose select/aggregate
 * operators run on the memory node while shuffle/histogram run on
 * the compute node, all over one shared remote address space.
 *
 * The demo query: of all students, select one gender, compute the
 * average final score, and histogram the distribution (the paper's
 * running example).
 *
 *   $ ./dataframe_analytics
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/dataframe.hh"
#include "cluster/cluster.hh"
#include "sim/rng.hh"

using namespace clio;

int
main()
{
    constexpr std::uint32_t kSelectId = 4;
    constexpr std::uint32_t kAggId = 5;
    Cluster cluster(ModelConfig::prototype(), 1, 1, 8 * GiB);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        kSelectId, std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        kAggId, std::make_shared<AggregateOffload>(), client.pid());

    // A 1M-row table: fieldA = gender (0/1), fieldB = final score.
    const std::uint64_t kRows = 1'000'000;
    Rng rng(99);
    std::vector<std::uint8_t> gender(kRows);
    std::vector<std::int64_t> score(kRows);
    for (std::uint64_t i = 0; i < kRows; i++) {
        gender[i] = rng.chance(0.45) ? 1 : 0;
        score[i] = 40 + static_cast<std::int64_t>(rng.uniformInt(61));
    }
    ClioDataFrame df(client, cluster.mn(0).nodeId(), kSelectId, kAggId);
    if (!df.load(gender, score)) {
        std::fprintf(stderr, "table upload failed\n");
        return 1;
    }

    EventQueue &eq = cluster.eventQueue();
    Tick t0 = eq.now();
    auto offload_plan = df.runOffload(1);
    const double offload_ms = ticksToUs(eq.now() - t0) / 1000.0;
    t0 = eq.now();
    auto cn_plan = df.runAtCn(1);
    const double cn_ms = ticksToUs(eq.now() - t0) / 1000.0;

    std::printf("query: SELECT WHERE gender==1; AVG(score); "
                "HISTOGRAM(score)\n");
    std::printf("  MN-offload plan: %7.2f ms, %8llu bytes on wire, "
                "avg=%.2f over %llu rows\n", offload_ms,
                (unsigned long long)offload_plan.net_bytes,
                offload_plan.avg,
                (unsigned long long)offload_plan.selected);
    std::printf("  CN-only plan:    %7.2f ms, %8llu bytes on wire, "
                "avg=%.2f over %llu rows\n", cn_ms,
                (unsigned long long)cn_plan.net_bytes, cn_plan.avg,
                (unsigned long long)cn_plan.selected);

    const bool agree = offload_plan.ok && cn_plan.ok &&
                       offload_plan.selected == cn_plan.selected &&
                       offload_plan.histogram == cn_plan.histogram;
    std::printf("  plans agree: %s\n", agree ? "yes" : "NO");

    std::printf("  histogram: ");
    for (auto bin : offload_plan.histogram)
        std::printf("%llu ", (unsigned long long)bin);
    std::printf("\n");
    return agree ? 0 : 1;
}
