/**
 * @file
 * The §6 image compression utility as a standalone pipeline: several
 * per-user client processes compress photo collections stored in
 * disaggregated memory, concurrently, with per-process isolation.
 *
 *   $ ./image_pipeline
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/image.hh"
#include "apps/runner.hh"
#include "cluster/cluster.hh"

using namespace clio;

int
main()
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);

    constexpr int kUsers = 4;
    constexpr std::uint32_t kImages = 6;
    constexpr std::uint32_t kImageBytes = 64 * KiB;

    std::vector<std::unique_ptr<ImageCompressionTask>> tasks;
    ClosedLoopRunner runner(cluster.eventQueue());
    for (int u = 0; u < kUsers; u++) {
        // One process per user: collections are isolated (R5).
        ClioClient &client =
            cluster.createClient(static_cast<std::uint32_t>(u % 2));
        tasks.push_back(std::make_unique<ImageCompressionTask>(
            client, kImages, kImageBytes, 500,
            static_cast<std::uint64_t>(u) + 1));
        if (!tasks.back()->setup()) {
            std::fprintf(stderr, "setup failed for user %d\n", u);
            return 1;
        }
        runner.addActor(tasks.back()->actor());
    }

    const Tick elapsed = runner.run();
    std::printf("%d users compressed %u images each in %.2f ms of "
                "simulated time\n", kUsers, kImages,
                ticksToUs(elapsed) / 1000.0);

    bool all_ok = true;
    for (int u = 0; u < kUsers; u++) {
        auto &task = *tasks[static_cast<std::size_t>(u)];
        const double ratio =
            static_cast<double>(task.compressedBytes()) /
            (static_cast<double>(kImages) * kImageBytes);
        const bool ok = task.verifyRoundTrip(0) &&
                        task.verifyRoundTrip(kImages - 1);
        std::printf("  user %d: %u images, compression ratio %.2f, "
                    "round-trip %s\n", u, task.processed(), ratio,
                    ok ? "verified" : "FAILED");
        all_ok = all_ok && ok;
    }
    return all_ok ? 0 : 1;
}
