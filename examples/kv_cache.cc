/**
 * @file
 * A distributed key-value cache on Clio-KV (§6): three MNs serve a
 * partitioned keyspace for several client processes, exactly how a
 * serverless platform would keep state in disaggregated memory.
 *
 *   $ ./kv_cache
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/kv_store.hh"
#include "apps/ycsb.hh"
#include "cluster/cluster.hh"

using namespace clio;

int
main()
{
    constexpr std::uint32_t kOffloadId = 1;
    Cluster cluster(ModelConfig::prototype(), 2, 3);

    // Deploy the Clio-KV offload on every memory node.
    std::vector<NodeId> mns;
    for (std::uint32_t m = 0; m < cluster.mnCount(); m++) {
        cluster.mn(m).registerOffload(kOffloadId,
                                      std::make_shared<ClioKvOffload>());
        mns.push_back(cluster.mn(m).nodeId());
    }

    // Two client processes on different CNs share the cache.
    ClioClient &alice = cluster.createClient(0);
    ClioClient &bob = cluster.createClient(1);
    ClioKvClient alice_kv(alice, mns, kOffloadId);
    ClioKvClient bob_kv(bob, mns, kOffloadId);

    // Alice populates user sessions; Bob reads them from another CN.
    for (int i = 0; i < 200; i++) {
        const std::string key = YcsbGenerator::keyString(
            static_cast<std::uint64_t>(i));
        alice_kv.put(key, "session-state-" + std::to_string(i));
    }
    int hits = 0;
    for (int i = 0; i < 200; i++) {
        const std::string key = YcsbGenerator::keyString(
            static_cast<std::uint64_t>(i));
        auto value = bob_kv.get(key);
        if (value && *value == "session-state-" + std::to_string(i))
            hits++;
    }
    std::printf("bob saw %d/200 of alice's entries (cross-CN sharing "
                "through MN-side offloads)\n", hits);

    // Show the partitioning.
    for (std::uint32_t m = 0; m < cluster.mnCount(); m++) {
        std::printf("  MN%u served %llu offload calls\n", m,
                    (unsigned long long)
                        cluster.mn(m).stats().offload_calls);
    }

    // Deletes propagate too.
    alice_kv.del(YcsbGenerator::keyString(0));
    const bool gone = !bob_kv.get(YcsbGenerator::keyString(0));
    std::printf("delete visible across CNs: %s\n", gone ? "yes" : "no");
    return hits == 200 && gone ? 0 : 1;
}
