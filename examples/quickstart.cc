/**
 * @file
 * Quickstart: the paper's Figure 1 example on the typed CLib surface.
 *
 * Builds a one-CN / one-MN Clio cluster, allocates a remote page,
 * performs two writes batched into one doorbell inside an rlock
 * critical section, reaps them from a completion queue, and reads the
 * data back through a typed RemoteSlice.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <cstring>

#include "clib/queue.hh"
#include "clib/remote_ptr.hh"
#include "cluster/cluster.hh"

using namespace clio;

int
main()
{
    // A minimal disaggregated deployment: 1 compute node, 1 CBoard.
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);

    /* Alloc one remote page. Define a remote lock. (Fig. 1) */
    const std::uint64_t kPageSize = 4 * MiB;
    auto page = RemoteRegion::alloc(client, kPageSize);
    auto lock_page = RemoteRegion::alloc(client, kPageSize);
    if (!page || !lock_page) {
        std::fprintf(stderr, "allocation failed: %s / %s\n",
                     page.statusName(), lock_page.statusName());
        return 1;
    }
    const VirtAddr remote_addr = page->addr();
    const VirtAddr lock = lock_page->addr();
    std::printf("allocated remote page at VA 0x%llx\n",
                (unsigned long long)remote_addr);

    /* Thread 1: acquire lock, two writes in ONE doorbell, unlock,
     * reap both completions from the queue. */
    const char msg1[] = "hello ";
    const char msg2[] = "remote memory";
    client.rlock(lock);
    CompletionQueue cq(cluster.eventQueue());
    SubmissionBatch batch(client);
    batch.write(remote_addr, msg1, sizeof(msg1) - 1);
    batch.write(remote_addr + sizeof(msg1) - 1, msg2, sizeof(msg2));
    batch.submit(cq, /*base_tag=*/0);
    client.runlock(lock);
    std::size_t completed = 0, failed = 0;
    while (completed < 2) {
        for (const Completion &c : cq.rpoll_cq(2)) {
            completed++;
            failed += !c.ok();
        }
    }
    std::printf("batched writes completed: %zu ok, %zu failed\n",
                completed - failed, failed);

    /* Thread 2: synchronously read back through a bounds-checked
     * slice of the page. */
    char buffer[32] = {};
    client.rlock(lock);
    const Status status = page->slice().read(
        0, buffer, sizeof(msg1) - 1 + sizeof(msg2));
    client.runlock(lock);
    std::printf("read back: \"%s\" (%s)\n", buffer, to_string(status));

    /* Inspect what the hardware did. */
    const auto &mn_stats = cluster.mn(0).stats();
    std::printf("CBoard: %llu reads, %llu writes, %llu atomics, "
                "%llu page faults, TLB hits %llu / misses %llu\n",
                (unsigned long long)mn_stats.reads,
                (unsigned long long)mn_stats.writes,
                (unsigned long long)mn_stats.atomics,
                (unsigned long long)mn_stats.page_faults,
                (unsigned long long)cluster.mn(0).tlb().hits(),
                (unsigned long long)cluster.mn(0).tlb().misses());

    /* The RemoteRegions rfree their pages when they go out of scope. */
    return std::strcmp(buffer, "hello remote memory") == 0 ? 0 : 1;
}
