/**
 * @file
 * Quickstart: the paper's Figure 1 example, almost verbatim.
 *
 * Builds a one-CN / one-MN Clio cluster, allocates a remote page,
 * performs two asynchronous writes inside an rlock critical section,
 * polls for completion, and synchronously reads the data back.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <cstring>

#include "cluster/cluster.hh"

using namespace clio;

int
main()
{
    // A minimal disaggregated deployment: 1 compute node, 1 CBoard.
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);

    /* Alloc one remote page. Define a remote lock. (Fig. 1) */
    const std::uint64_t kPageSize = 4 * MiB;
    const VirtAddr remote_addr = client.ralloc(kPageSize);
    const VirtAddr lock = client.ralloc(kPageSize);
    if (!remote_addr || !lock) {
        std::fprintf(stderr, "allocation failed\n");
        return 1;
    }
    std::printf("allocated remote page at VA 0x%llx\n",
                (unsigned long long)remote_addr);

    /* Thread 1: acquire lock, two ASYNC writes, unlock, poll. */
    const char msg1[] = "hello ";
    const char msg2[] = "remote memory";
    client.rlock(lock);
    auto e0 = client.rwriteAsync(remote_addr, msg1, sizeof(msg1) - 1);
    auto e1 = client.rwriteAsync(remote_addr + sizeof(msg1) - 1, msg2,
                                 sizeof(msg2));
    client.runlock(lock);
    client.rpoll({e0, e1});
    std::printf("async writes completed: %s / %s\n",
                e0->status == Status::kOk ? "ok" : "failed",
                e1->status == Status::kOk ? "ok" : "failed");

    /* Thread 2: synchronously read from remote. */
    char buffer[32] = {};
    client.rlock(lock);
    const Status status =
        client.rread(remote_addr, buffer, sizeof(msg1) - 1 + sizeof(msg2));
    client.runlock(lock);
    std::printf("read back: \"%s\" (%s)\n", buffer,
                status == Status::kOk ? "ok" : "failed");

    /* Inspect what the hardware did. */
    const auto &mn_stats = cluster.mn(0).stats();
    std::printf("CBoard: %llu reads, %llu writes, %llu atomics, "
                "%llu page faults, TLB hits %llu / misses %llu\n",
                (unsigned long long)mn_stats.reads,
                (unsigned long long)mn_stats.writes,
                (unsigned long long)mn_stats.atomics,
                (unsigned long long)mn_stats.page_faults,
                (unsigned long long)cluster.mn(0).tlb().hits(),
                (unsigned long long)cluster.mn(0).tlb().misses());

    client.rfree(remote_addr);
    client.rfree(lock);
    return std::strcmp(buffer, "hello remote memory") == 0 ? 0 : 1;
}
