/**
 * @file
 * Remote radix-tree index with pointer-chasing offload (§6): builds a
 * dictionary index in remote memory and compares searching it with
 * the extend-path offload (one round trip per level) against plain
 * one-sided reads (one round trip per node).
 *
 *   $ ./radix_search
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/radix_tree.hh"
#include "cluster/cluster.hh"
#include "sim/rng.hh"

using namespace clio;

int
main()
{
    constexpr std::uint32_t kChaseId = 3;
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);

    // The pointer chaser shares the client's address space, so it can
    // walk the same nodes the client writes (§4.6).
    cluster.mn(0).registerOffloadShared(
        kChaseId, std::make_shared<PointerChaseOffload>(), client.pid());

    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), kChaseId,
                         64 * MiB);
    // Index some "words".
    Rng rng(2024);
    std::vector<std::string> words;
    for (int i = 0; i < 2000; i++) {
        std::string w;
        for (int c = 0; c < 7; c++)
            w.push_back(static_cast<char>('a' + rng.uniformInt(24)));
        words.push_back(w);
        if (!tree.insert(w, static_cast<std::uint64_t>(i) + 1)) {
            std::fprintf(stderr, "insert failed\n");
            return 1;
        }
    }
    std::printf("indexed %d words (%llu tree nodes in remote memory)\n",
                2000, (unsigned long long)tree.nodeCount());

    EventQueue &eq = cluster.eventQueue();
    Tick offload_total = 0, direct_total = 0;
    std::uint64_t offload_calls = 0, direct_reads = 0;
    bool correct = true;
    for (int i = 0; i < 50; i++) {
        const std::string &w =
            words[rng.uniformInt(words.size())];
        Tick t0 = eq.now();
        auto via_offload = tree.searchOffload(w);
        offload_total += eq.now() - t0;
        offload_calls += via_offload.offload_calls;

        t0 = eq.now();
        auto via_reads = tree.searchDirect(w);
        direct_total += eq.now() - t0;
        direct_reads += via_reads.remote_reads;

        correct = correct && via_offload.value.has_value() &&
                  via_offload.value == via_reads.value;
    }
    std::printf("pointer-chase offload: %.1f us/search "
                "(%.1f offload calls each)\n",
                ticksToUs(offload_total) / 50,
                static_cast<double>(offload_calls) / 50);
    std::printf("one-sided reads:       %.1f us/search "
                "(%.1f round trips each)\n",
                ticksToUs(direct_total) / 50,
                static_cast<double>(direct_reads) / 50);
    std::printf("results agree: %s\n", correct ? "yes" : "NO");
    return correct ? 0 : 1;
}
