/**
 * @file
 * End-to-end integration tests: CLib -> transport -> network -> CBoard
 * fast/slow path and back, exercising the paper's correctness
 * guarantees (T1-T4), page faults, permissions, and latency sanity.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "cluster/cluster.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

ModelConfig
baseConfig()
{
    return ModelConfig::prototype();
}

TEST(Integration, AllocWriteReadRoundTrip)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);

    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);

    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i * 13 + 7);

    EXPECT_EQ(client.rwrite(addr, data.data(), data.size()), Status::kOk);

    std::vector<std::uint8_t> out(4096, 0);
    EXPECT_EQ(client.rread(addr, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
}

TEST(Integration, ByteGranularityAccess)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);

    // Single-byte writes at odd offsets (R1: byte granularity).
    const std::uint8_t b1 = 0xAA, b2 = 0x55;
    EXPECT_EQ(client.rwrite(addr + 3, &b1, 1), Status::kOk);
    EXPECT_EQ(client.rwrite(addr + 4, &b2, 1), Status::kOk);
    std::uint8_t out[2] = {};
    EXPECT_EQ(client.rread(addr + 3, out, 2), Status::kOk);
    EXPECT_EQ(out[0], b1);
    EXPECT_EQ(out[1], b2);
}

TEST(Integration, FirstTouchPageFaultsCounted)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0); // 4 pages
    ASSERT_NE(addr, 0u);
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 0u);

    std::uint64_t v = 1;
    // Touch each page once -> one fault each; second touches -> none.
    for (int p = 0; p < 4; p++)
        client.rwrite(addr + p * 4 * MiB, &v, sizeof(v));
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 4u);
    for (int p = 0; p < 4; p++)
        client.rwrite(addr + p * 4 * MiB + 8, &v, sizeof(v));
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 4u);
}

TEST(Integration, UnallocatedAddressRejected)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    std::uint64_t v = 0;
    EXPECT_EQ(client.rread(123 * MiB, &v, sizeof(v)),
              Status::kBadAddress);
    EXPECT_GE(cluster.mn(0).stats().bad_address, 1u);
}

TEST(Integration, PermissionEnforced)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr ro = client.ralloc(4 * MiB, kPermRead).value_or(0);
    ASSERT_NE(ro, 0u);
    std::uint64_t v = 7;
    EXPECT_EQ(client.rwrite(ro, &v, sizeof(v)), Status::kPermDenied);
    // Read of a never-written read-only page returns zeros.
    EXPECT_EQ(client.rread(ro, &v, sizeof(v)), Status::kOk);
    EXPECT_EQ(v, 0u);
    EXPECT_GE(cluster.mn(0).stats().perm_denied, 1u);
}

TEST(Integration, ProcessIsolation)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &alice = cluster.createClient(0);
    ClioClient &bob = cluster.createClient(0);

    const VirtAddr a = alice.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(a, 0u);
    std::uint64_t secret = 0xC0FFEE;
    ASSERT_EQ(alice.rwrite(a, &secret, sizeof(secret)), Status::kOk);

    // Bob cannot touch Alice's VA: it is unallocated in *his* RAS
    // (same numeric address, different address space, R5).
    std::uint64_t stolen = 0;
    EXPECT_EQ(bob.rread(a, &stolen, sizeof(stolen)),
              Status::kBadAddress);

    // And Bob allocating the same numeric VA sees his own data only.
    const VirtAddr b = bob.ralloc(4 * MiB).value_or(0);
    EXPECT_EQ(b, a); // separate RASs may hand out the same VA
    std::uint64_t bv = 0;
    EXPECT_EQ(bob.rread(b, &bv, sizeof(bv)), Status::kOk);
    EXPECT_EQ(bv, 0u);
    std::uint64_t av = 0;
    EXPECT_EQ(alice.rread(a, &av, sizeof(av)), Status::kOk);
    EXPECT_EQ(av, secret);
}

TEST(Integration, FreeThenAccessFails)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 9;
    ASSERT_EQ(client.rwrite(addr, &v, sizeof(v)), Status::kOk);
    ASSERT_EQ(client.rfree(addr), Status::kOk);
    EXPECT_EQ(client.rread(addr, &v, sizeof(v)), Status::kBadAddress);
    // Frames were reclaimed: a fresh allocation reuses them and the
    // fault handler zero-binds, so old data never leaks.
    const VirtAddr addr2 = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t leak = 1;
    EXPECT_EQ(client.rread(addr2, &leak, sizeof(leak)), Status::kOk);
    EXPECT_EQ(leak, 0u);
}

TEST(Integration, LargeMultiPacketWrite)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    // 64 KB write -> dozens of MTU packets (T1 split/reassembly).
    std::vector<std::uint8_t> data(64 * KiB);
    Rng rng(3);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(client.rwrite(addr, data.data(), data.size()), Status::kOk);

    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(client.rread(addr, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
}

TEST(Integration, CrossPageAccess)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0); // 2 pages
    // Write straddling the 4 MB page boundary.
    std::vector<std::uint8_t> data(8192, 0xEE);
    const VirtAddr at = addr + 4 * MiB - 4096;
    ASSERT_EQ(client.rwrite(at, data.data(), data.size()), Status::kOk);
    std::vector<std::uint8_t> out(8192);
    ASSERT_EQ(client.rread(at, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 2u);
}

TEST(Integration, AsyncDependentOrdering)
{
    // T2: WAW to the same page must execute in order even when issued
    // asynchronously back to back.
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    std::uint64_t v1 = 111, v2 = 222, v3 = 333;
    auto h1 = client.rwriteAsync(addr, &v1, sizeof(v1));
    auto h2 = client.rwriteAsync(addr, &v2, sizeof(v2));
    auto h3 = client.rwriteAsync(addr, &v3, sizeof(v3));
    EXPECT_GE(client.stats().ordering_stalls, 2u);
    ASSERT_TRUE(client.rpoll({h1, h2, h3}));

    std::uint64_t out = 0;
    ASSERT_EQ(client.rread(addr, &out, sizeof(out)), Status::kOk);
    EXPECT_EQ(out, v3); // program order preserved
}

TEST(Integration, AsyncIndependentParallel)
{
    // Independent pages may be outstanding concurrently (no stalls).
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(32 * MiB).value_or(0); // 8 pages

    std::vector<HandlePtr> handles;
    std::vector<std::uint64_t> vals(8);
    for (int p = 0; p < 8; p++) {
        vals[static_cast<std::size_t>(p)] = 1000 + p;
        handles.push_back(client.rwriteAsync(
            addr + p * 4 * MiB, &vals[static_cast<std::size_t>(p)],
            sizeof(std::uint64_t)));
    }
    EXPECT_EQ(client.stats().ordering_stalls, 0u);
    ASSERT_TRUE(client.rpoll(handles));
    for (int p = 0; p < 8; p++) {
        std::uint64_t out = 0;
        client.rread(addr + p * 4 * MiB, &out, sizeof(out));
        EXPECT_EQ(out, vals[static_cast<std::size_t>(p)]);
    }
}

TEST(Integration, RawDependencyReadSeesWrite)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 0xDADA;
    std::uint64_t out = 0;
    auto hw = client.rwriteAsync(addr, &v, sizeof(v));
    auto hr = client.rreadAsync(addr, &out, sizeof(out)); // RAW: queued
    ASSERT_TRUE(client.rpoll({hw, hr}));
    EXPECT_EQ(out, v);
}

TEST(Integration, ReleaseWaitsForAll)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);
    std::uint64_t v = 5;
    for (int i = 0; i < 4; i++)
        client.rwriteAsync(addr + i * 4 * MiB, &v, sizeof(v));
    EXPECT_GT(client.outstanding(), 0u);
    client.rrelease();
    EXPECT_EQ(client.outstanding(), 0u);
}

TEST(Integration, AtomicsSemantics)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    // FAA from 0.
    auto old1 = client.rfaa(addr, 5);
    ASSERT_TRUE(old1.ok());
    EXPECT_EQ(*old1, 0u);
    auto old2 = client.rfaa(addr, 3);
    EXPECT_EQ(*old2, 5u);

    // CAS success and failure.
    auto h = client.atomicAsync(addr, AtomicOp::kCompareSwap, 8, 100);
    ASSERT_TRUE(client.rpoll(h));
    EXPECT_EQ(h->value, 8u); // old value, matched -> swapped
    std::uint64_t now_val = 0;
    client.rread(addr, &now_val, sizeof(now_val));
    EXPECT_EQ(now_val, 100u);

    h = client.atomicAsync(addr, AtomicOp::kCompareSwap, 8, 999);
    ASSERT_TRUE(client.rpoll(h));
    EXPECT_EQ(h->value, 100u); // mismatch -> no swap
    client.rread(addr, &now_val, sizeof(now_val));
    EXPECT_EQ(now_val, 100u);
}

TEST(Integration, LockMutualExclusion)
{
    Cluster cluster(baseConfig(), 2, 1);
    ClioClient &c1 = cluster.createClient(0);
    ClioClient &c2 = cluster.createClient(1);

    const VirtAddr lock = c1.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(lock, 0u);
    // c2 shares the RAS in spirit: for this test both use c1's pid via
    // the same lock VA in c1's space -- instead, c2 gets its own lock
    // word and we exercise acquire/release semantics per client.
    ASSERT_TRUE(c1.rlock(lock));
    // Lock is held: a bounded re-acquire attempt must fail...
    EXPECT_FALSE(c1.rlock(lock, 3));
    // ...until released.
    c1.runlock(lock);
    EXPECT_TRUE(c1.rlock(lock, 3));
    c1.runlock(lock);
    (void)c2;
}

TEST(Integration, FenceCompletes)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 1;
    client.rwriteAsync(addr, &v, sizeof(v));
    EXPECT_EQ(client.rfence(), Status::kOk);
    EXPECT_EQ(cluster.mn(0).stats().fences, 1u);
    std::uint64_t out = 0;
    client.rread(addr, &out, sizeof(out));
    EXPECT_EQ(out, 1u);
}

TEST(Integration, LossyNetworkDataIntegrity)
{
    // T4 + request-level retry: with 10% packet loss, every operation
    // still completes correctly (retries with fresh ids).
    auto cfg = baseConfig();
    cfg.net.loss_rate = 0.10;
    // 10% loss is far beyond what PFC-backed deployments see; give
    // the transport enough retries that no op is surfaced as failed.
    cfg.clib.max_retries = 8;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);

    Rng rng(77);
    std::vector<std::uint64_t> mirror(256, 0);
    for (int i = 0; i < 256; i++) {
        const std::uint64_t value = rng.next();
        mirror[static_cast<std::size_t>(i)] = value;
        ASSERT_EQ(client.rwrite(addr + i * 64, &value, sizeof(value)),
                  Status::kOk);
    }
    for (int i = 0; i < 256; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(client.rread(addr + i * 64, &out, sizeof(out)),
                  Status::kOk);
        EXPECT_EQ(out, mirror[static_cast<std::size_t>(i)]);
    }
    EXPECT_GT(cluster.cn(0).stats().retries, 0u);
}

TEST(Integration, CorruptionTriggersNackAndRetry)
{
    auto cfg = baseConfig();
    cfg.net.corrupt_rate = 0.08;
    cfg.clib.max_retries = 8;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    std::vector<std::uint8_t> data(8 * KiB);
    Rng rng(5);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    for (int i = 0; i < 30; i++) {
        ASSERT_EQ(client.rwrite(addr + i * 8 * KiB % (4 * MiB),
                                data.data(), data.size()),
                  Status::kOk);
    }
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(client.rread(addr, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
    // Corruption was detected somewhere (request NACK or response
    // retry).
    EXPECT_GT(cluster.cn(0).stats().nacks + cluster.cn(0).stats().retries,
              0u);
}

TEST(Integration, ReorderedPacketsPlacedCorrectly)
{
    // T1: out-of-order data placement within multi-packet writes.
    auto cfg = baseConfig();
    cfg.net.reorder_rate = 0.3;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    std::vector<std::uint8_t> data(32 * KiB);
    Rng rng(9);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(client.rwrite(addr, data.data(), data.size()), Status::kOk);
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(client.rread(addr, out.data(), out.size()), Status::kOk);
    EXPECT_EQ(out, data);
    EXPECT_GT(cluster.network().stats().reordered, 0u);
}

TEST(Integration, DedupSuppressesReplayedWrite)
{
    // T4: a retry must not undo a later write. Inject a hand-crafted
    // duplicate ("the original arriving late after a retry") directly
    // into the network and verify the MN suppresses it.
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    CBoard &mn = cluster.mn(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    std::uint64_t a = 0xAAAA, b = 0xBBBB;
    ASSERT_EQ(client.rwrite(addr, &a, sizeof(a)), Status::kOk);
    ASSERT_EQ(client.rwrite(addr, &b, sizeof(b)), Status::kOk);

    // Replay the FIRST write as a "retry" (fresh id, original orig_id).
    auto replay = std::make_shared<RequestMsg>();
    replay->type = MsgType::kWrite;
    replay->pid = client.pid();
    replay->req_id = 0xDEAD0001;
    // The original id of write A, as CNode assigned it: CN node id in
    // the high bits, sequence 2 (1 = the alloc).
    replay->orig_req_id =
        (static_cast<ReqId>(cluster.cn(0).nodeId()) << 40) | 2;
    replay->src = cluster.cn(0).nodeId();
    replay->dst = mn.nodeId();
    replay->addr = addr;
    replay->size = sizeof(a);
    replay->data.resize(sizeof(a));
    std::memcpy(replay->data.data(), &a, sizeof(a));

    Packet pkt;
    pkt.src = replay->src;
    pkt.dst = replay->dst;
    pkt.req_id = replay->req_id;
    pkt.type = MsgType::kWrite;
    pkt.payload_len = sizeof(a);
    pkt.wire_bytes = kPacketHeaderBytes + sizeof(a);
    pkt.msg = replay;
    cluster.network().send(std::move(pkt));
    cluster.run();

    EXPECT_GE(mn.dedupBuffer().suppressed(), 1u);
    std::uint64_t out = 0;
    ASSERT_EQ(client.rread(addr, &out, sizeof(out)), Status::kOk);
    EXPECT_EQ(out, b); // replay did NOT clobber the later write
}

TEST(Integration, LatencyMatchesPaperBallpark)
{
    // §7.1: 16 B reads ~2.5 us median end to end on the prototype.
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 1;
    client.rwrite(addr, &v, sizeof(v)); // warm (fault + TLB)

    LatencyHistogram hist;
    std::uint8_t buf[16];
    for (int i = 0; i < 200; i++) {
        const Tick t0 = cluster.eventQueue().now();
        ASSERT_EQ(client.rread(addr, buf, 16), Status::kOk);
        hist.record(cluster.eventQueue().now() - t0);
    }
    const double median_us = ticksToUs(hist.median());
    EXPECT_GT(median_us, 1.0);
    EXPECT_LT(median_us, 4.0);
    // Bounded tail (no page faults, smooth pipeline): p99 < 2x median.
    EXPECT_LT(ticksToUs(hist.p99()), 2 * median_us);
}

TEST(Integration, MultiMnDistinctSpaces)
{
    Cluster cluster(baseConfig(), 2, 3);
    ClioClient &client = cluster.createClient(0);

    // Allocate several regions; with windowed mode they never collide
    // even when placed on different MNs.
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 6; i++) {
        const VirtAddr a = client.ralloc(4 * MiB).value_or(0);
        ASSERT_NE(a, 0u);
        for (VirtAddr prev : addrs)
            EXPECT_NE(a, prev);
        addrs.push_back(a);
    }
    // Round-trip through every region (may live on different MNs).
    for (std::size_t i = 0; i < addrs.size(); i++) {
        std::uint64_t v = 4242 + i;
        ASSERT_EQ(client.rwrite(addrs[i], &v, sizeof(v)), Status::kOk);
    }
    for (std::size_t i = 0; i < addrs.size(); i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(client.rread(addrs[i], &out, sizeof(out)), Status::kOk);
        EXPECT_EQ(out, 4242 + i);
    }
}

TEST(Integration, MigrationPreservesData)
{
    auto cfg = baseConfig();
    Cluster cluster(cfg, 1, 2, 64 * MiB); // small MNs: 16 frames each
    ClioClient &client = cluster.createClient(0);

    // Fill a region on some MN.
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);
    const std::uint32_t src_mn = cluster.mnIndexOf(client.mnFor(addr));
    std::vector<std::uint64_t> vals(4);
    for (int p = 0; p < 4; p++) {
        vals[static_cast<std::size_t>(p)] = 0x1000 + p;
        ASSERT_EQ(client.rwrite(addr + p * 4 * MiB,
                                &vals[static_cast<std::size_t>(p)], 8),
                  Status::kOk);
    }

    const VirtAddr region_start =
        addr / cfg.dist.region_size * cfg.dist.region_size;
    auto report =
        cluster.migrateRegion(client.pid(), src_mn, region_start);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.pages_moved, 4u);
    EXPECT_NE(report.dst_mn, src_mn);
    EXPECT_GT(report.duration, 0u);

    // Client now routes to the new MN and data is intact.
    EXPECT_EQ(cluster.mnIndexOf(client.mnFor(addr)), report.dst_mn);
    for (int p = 0; p < 4; p++) {
        std::uint64_t out = 0;
        ASSERT_EQ(client.rread(addr + p * 4 * MiB, &out, sizeof(out)),
                  Status::kOk);
        EXPECT_EQ(out, vals[static_cast<std::size_t>(p)]);
    }
}

TEST(Integration, PressureBalancing)
{
    auto cfg = baseConfig();
    cfg.dist.region_size = 16 * MiB; // small regions for the test
    Cluster cluster(cfg, 1, 2, 64 * MiB);
    ClioClient &client = cluster.createClient(0);

    // Write until one MN is under pressure.
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 6; i++) {
        const VirtAddr a = client.ralloc(8 * MiB).value_or(0);
        ASSERT_NE(a, 0u);
        std::uint64_t v = 777 + i;
        ASSERT_EQ(client.rwrite(a, &v, sizeof(v)), Status::kOk);
        ASSERT_EQ(client.rwrite(a + 4 * MiB, &v, sizeof(v)), Status::kOk);
        addrs.push_back(a);
    }
    cluster.balancePressure();
    // Whatever moved, all data is still correct.
    for (int i = 0; i < 6; i++) {
        std::uint64_t out = 0;
        ASSERT_EQ(client.rread(addrs[static_cast<std::size_t>(i)], &out,
                               sizeof(out)),
                  Status::kOk);
        EXPECT_EQ(out, 777u + static_cast<unsigned>(i));
    }
}

/** Minimal offload used to exercise the extend path. */
class EchoAddOffload : public Offload
{
  public:
    OffloadResult
    invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg) override
    {
        // arg: 8-byte little-endian value; stores value+1 at a fresh
        // allocation and echoes it back.
        OffloadResult res;
        if (arg.size() != 8) {
            res.status = Status::kOffloadError;
            return res;
        }
        std::uint64_t v = 0;
        std::memcpy(&v, arg.data(), 8);
        const VirtAddr slot = vm.alloc(4 * MiB);
        if (!slot) {
            res.status = Status::kOffloadError;
            return res;
        }
        vm.write64(slot, v + 1);
        auto out = vm.read64(slot);
        res.value = out.value_or(0);
        res.data.resize(8);
        std::memcpy(res.data.data(), &res.value, 8);
        vm.chargeCycles(10);
        return res;
    }
};

TEST(Integration, OffloadInvocation)
{
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(7, std::make_shared<EchoAddOffload>());

    std::vector<std::uint8_t> arg(8);
    const std::uint64_t v = 41;
    std::memcpy(arg.data(), &v, 8);
    const Result<OffloadReply> reply =
        client.rcall(cluster.mn(0).nodeId(), 7, arg);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->value, 42u);
    ASSERT_EQ(reply->data.size(), 8u);
    EXPECT_EQ(cluster.mn(0).stats().offload_calls, 1u);
    // Unknown offload id is rejected.
    EXPECT_EQ(client.rcall(cluster.mn(0).nodeId(), 99, arg).status(),
              Status::kOffloadError);
}

TEST(Integration, ThroughputReachesLineRateWithAsync)
{
    // §7.1 Fig. 8 sanity: async 1 KB reads from enough concurrency
    // approach the 10 Gbps port limit.
    Cluster cluster(baseConfig(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(64 * MiB).value_or(0);
    std::vector<std::uint8_t> chunk(1024, 0x5A);
    for (int p = 0; p < 16; p++)
        client.rwrite(addr + p * 4 * MiB, chunk.data(), chunk.size());

    const Tick t0 = cluster.eventQueue().now();
    std::vector<std::uint8_t> bufs(16 * 1024);
    std::uint64_t bytes = 0;
    std::vector<HandlePtr> handles;
    for (int round = 0; round < 64; round++) {
        for (int p = 0; p < 16; p++) {
            handles.push_back(client.rreadAsync(
                addr + p * 4 * MiB, bufs.data() + p * 1024, 1024));
            bytes += 1024;
        }
        client.rpoll(handles);
        handles.clear();
    }
    const Tick elapsed = cluster.eventQueue().now() - t0;
    const double gbps =
        static_cast<double>(bytes) * 8.0 / ticksToSeconds(elapsed) / 1e9;
    EXPECT_GT(gbps, 4.0); // within reach of the 10 Gbps port
    EXPECT_LT(gbps, 10.0);
}

} // namespace
} // namespace clio
