/**
 * @file
 * Offload runtime tests: error-code naming, engine-scheduler
 * arbitration, OffloadVm edge cases (permissions, alloc failure, bad
 * free, page-boundary spans), registry schema enforcement, chained
 * plans (binds, early stop, per-stage replies, error abort), and
 * restart re-initialization.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cboard/cboard.hh"
#include "cluster/cluster.hh"
#include "offload/chain.hh"
#include "offload/engine.hh"
#include "offload/errc.hh"

namespace clio {
namespace {

// ---------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------

TEST(OffloadErrcTest, ReservedNames)
{
    EXPECT_STREQ(to_string(OffloadErrc::kNone), "None");
    EXPECT_STREQ(to_string(OffloadErrc::kBadArgument), "BadArgument");
    EXPECT_STREQ(to_string(OffloadErrc::kNotFound), "NotFound");
    EXPECT_STREQ(to_string(OffloadErrc::kChainTooDeep), "ChainTooDeep");
    EXPECT_EQ(to_string(OffloadErrc::kAppBase), nullptr);
}

TEST(OffloadErrcTest, RawCodeNames)
{
    EXPECT_EQ(offloadErrcName(5), "NotFound");
    EXPECT_EQ(offloadErrcName(256), "App(0)");
    EXPECT_EQ(offloadErrcName(259), "App(3)");
    EXPECT_EQ(offloadErrcName(100), "OffloadErrc(100)");
}

// ---------------------------------------------------------------------
// Engine scheduler
// ---------------------------------------------------------------------

TEST(EngineSchedulerTest, EarliestFreeLowestIndex)
{
    EngineScheduler sched(2);
    // First two admissions start immediately on engines 0 and 1.
    auto g0 = sched.admit(10);
    EXPECT_EQ(g0.engine, 0u);
    EXPECT_EQ(g0.start, 10u);
    sched.complete(g0, 50);
    auto g1 = sched.admit(20);
    EXPECT_EQ(g1.engine, 1u);
    EXPECT_EQ(g1.start, 20u);
    sched.complete(g1, 80);
    // Third waits for the earliest-free engine (0, free at 50).
    auto g2 = sched.admit(30);
    EXPECT_EQ(g2.engine, 0u);
    EXPECT_EQ(g2.start, 50u);
    sched.complete(g2, 60);

    const EngineSchedulerStats &st = sched.stats();
    EXPECT_EQ(st.dispatches, 3u);
    EXPECT_EQ(st.wait_ticks, 20u); // g2 waited 50 - 30
    EXPECT_EQ(st.busy_ticks, 40u + 60u + 10u);
}

TEST(EngineSchedulerTest, TieBreaksToLowestIndex)
{
    EngineScheduler sched(3);
    // All engines free at 0: repeated admissions at the same tick must
    // walk 0, 1, 2 (a pure function of prior admissions).
    for (std::uint32_t i = 0; i < 3; i++) {
        auto g = sched.admit(0);
        EXPECT_EQ(g.engine, i);
        sched.complete(g, 100);
    }
}

TEST(EngineSchedulerTest, ResetClearsWatermarksKeepsStats)
{
    EngineScheduler sched(1);
    auto g = sched.admit(0);
    sched.complete(g, 1000);
    sched.reset();
    EXPECT_EQ(sched.freeAt(0), 0u);
    EXPECT_EQ(sched.stats().dispatches, 1u); // counters survive
    EXPECT_EQ(sched.admit(5).start, 5u);
}

// ---------------------------------------------------------------------
// OffloadVm edge cases
// ---------------------------------------------------------------------

struct VmFixture
{
    ModelConfig cfg = ModelConfig::prototype();
    EventQueue eq;
    Network net;
    CBoard board;
    OffloadVm vm;

    VmFixture()
        : net(eq, cfg.net, 3), board(eq, net, cfg, 0),
          vm(board, OffloadRegistry::kOffloadPidBase)
    {
    }
};

TEST(OffloadVmTest, PermissionDeniedWrite)
{
    VmFixture f;
    const VirtAddr ro = f.vm.alloc(4 * KiB, kPermRead);
    ASSERT_NE(ro, 0u);
    std::uint64_t v = 7;
    EXPECT_FALSE(f.vm.write(ro, &v, 8)); // read-only page
    EXPECT_TRUE(f.vm.read(ro, &v, 8));
    EXPECT_EQ(v, 0u); // fresh page reads as zero
}

TEST(OffloadVmTest, PermissionDeniedRead)
{
    VmFixture f;
    const VirtAddr wo = f.vm.alloc(4 * KiB, kPermWrite);
    ASSERT_NE(wo, 0u);
    std::uint64_t v = 7;
    EXPECT_TRUE(f.vm.write(wo, &v, 8));
    EXPECT_FALSE(f.vm.read(wo, &v, 8)); // write-only page
}

TEST(OffloadVmTest, AllocFailureReturnsZero)
{
    VmFixture f;
    // Larger than the 2^46-byte per-process RAS: must fail cleanly.
    EXPECT_EQ(f.vm.alloc(1ull << 47), 0u);
}

TEST(OffloadVmTest, FreeOfNeverAllocatedAddress)
{
    VmFixture f;
    EXPECT_FALSE(f.vm.free(123 * MiB));
    // Control time was still charged (the ARM did the failed lookup).
    EXPECT_GT(f.vm.costSplit().control, 0u);
}

TEST(OffloadVmTest, AccessSpansPageBoundary)
{
    VmFixture f;
    const std::uint64_t page =
        f.board.config().page_table.page_size;
    const VirtAddr base = f.vm.alloc(2 * page);
    ASSERT_NE(base, 0u);
    // 256 bytes straddling the page boundary: two translations, data
    // split across two frames, reassembled transparently.
    std::uint8_t out[256], in[256];
    for (int i = 0; i < 256; i++)
        out[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const VirtAddr addr = base + page - 128;
    ASSERT_TRUE(f.vm.write(addr, out, sizeof(out)));
    ASSERT_TRUE(f.vm.read(addr, in, sizeof(in)));
    EXPECT_EQ(std::memcmp(out, in, sizeof(out)), 0);
    const OffloadCost &split = f.vm.costSplit();
    EXPECT_GT(split.translate, 0u);
    EXPECT_GT(split.dram, 0u);
}

TEST(OffloadVmTest, FaultChargesNoTime)
{
    VmFixture f;
    std::uint64_t v = 0;
    const Tick before = f.vm.cost();
    EXPECT_FALSE(f.vm.read(99 * GiB, &v, 8)); // no PTE
    EXPECT_EQ(f.vm.cost(), before);
}

// ---------------------------------------------------------------------
// Registry + dispatch (cluster level)
// ---------------------------------------------------------------------

/** Test offload: value = seed + add, data = the 8 result bytes.
 * Argument schema: 16 bytes {seed u64, add u64}. */
class AccumOffload : public Offload
{
  public:
    static std::vector<std::uint8_t>
    encode(std::uint64_t seed, std::uint64_t add)
    {
        std::vector<std::uint8_t> arg(16);
        std::memcpy(arg.data(), &seed, 8);
        std::memcpy(arg.data() + 8, &add, 8);
        return arg;
    }

    static OffloadDescriptor
    descriptor(std::uint32_t id)
    {
        OffloadDescriptor desc = defaultOffloadDescriptor(id);
        desc.name = "accum";
        desc.arg_bytes = 16;
        return desc;
    }

    OffloadResult
    invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg) override
    {
        OffloadResult res;
        std::uint64_t seed = 0, add = 0;
        std::memcpy(&seed, arg.data(), 8);
        std::memcpy(&add, arg.data() + 8, 8);
        res.value = seed + add;
        res.data.resize(8);
        std::memcpy(res.data.data(), &res.value, 8);
        vm.chargeCycles(10);
        return res;
    }
};

constexpr std::uint32_t kAccumId = 42;

struct ChainFixture
{
    Cluster cluster;
    ClioClient &client;
    NodeId mn;

    explicit ChainFixture(ModelConfig cfg = ModelConfig::prototype())
        : cluster(cfg, 1, 1), client(cluster.createClient(0)),
          mn(cluster.mn(0).nodeId())
    {
        cluster.mn(0).registerOffload(AccumOffload::descriptor(kAccumId),
                                      std::make_shared<AccumOffload>());
    }

    const OffloadEntry &
    entry()
    {
        return *cluster.mn(0).offloadRuntime().registry().find(kAccumId);
    }
};

TEST(OffloadRegistryTest, SchemaEnforcedAtDispatch)
{
    ChainFixture f;
    // 4 argument bytes against a 16-byte schema: rejected before the
    // offload runs, with the named code and a useful message.
    const Result<OffloadReply> r =
        f.client.rcall(f.mn, kAccumId, std::vector<std::uint8_t>(4));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status(), Status::kOffloadError);
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kBadArgument));
    EXPECT_EQ(r.errName(), "BadArgument");
    EXPECT_NE(r.errMessage().find("16"), std::string::npos);
    EXPECT_EQ(f.entry().stats.errors, 1u);
}

TEST(OffloadRegistryTest, UnregisteredIdReported)
{
    ChainFixture f;
    const Result<OffloadReply> r = f.client.rcall(f.mn, 777, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kUnregistered));
}

TEST(OffloadRegistryTest, StatsAndCostAttribution)
{
    ChainFixture f;
    const Result<OffloadReply> r =
        f.client.rcall(f.mn, kAccumId, AccumOffload::encode(30, 12));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, 42u);
    const OffloadEntry &e = f.entry();
    EXPECT_EQ(e.stats.calls, 1u);
    EXPECT_EQ(e.stats.errors, 0u);
    EXPECT_GT(e.stats.cost.compute, 0u); // chargeCycles(10)
    EXPECT_GE(e.pid, OffloadRegistry::kOffloadPidBase);
}

TEST(OffloadRegistryTest, RedeployReplacesEntry)
{
    OffloadRegistry reg;
    auto first = std::make_shared<AccumOffload>();
    auto second = std::make_shared<AccumOffload>();
    const ProcId pid1 = reg.deploy(AccumOffload::descriptor(5), first);
    reg.find(5)->stats.calls = 9;
    const ProcId pid2 = reg.deploy(AccumOffload::descriptor(5), second);
    EXPECT_NE(pid1, pid2);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.find(5)->offload.get(), second.get());
    EXPECT_EQ(reg.find(5)->stats.calls, 0u); // stats reset
}

// ---------------------------------------------------------------------
// Chained plans
// ---------------------------------------------------------------------

TEST(OffloadChainTest, BindValueThreadsStages)
{
    ChainFixture f;
    // 10 +1 +2 +3, each stage's seed patched from the previous value.
    ChainPlan plan;
    plan.stage(kAccumId, AccumOffload::encode(10, 1));
    plan.stage(kAccumId, AccumOffload::encode(0, 2)).bindValue(0);
    plan.stage(kAccumId, AccumOffload::encode(0, 3)).bindValue(0);
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, 16u);
    EXPECT_TRUE(r->stages.empty()); // not requested
    EXPECT_EQ(f.entry().stats.chain_stages, 3u);
    EXPECT_EQ(f.entry().stats.calls, 0u);
    EXPECT_EQ(f.cluster.mn(0).stats().offload_chains, 1u);
}

TEST(OffloadChainTest, BindDataAndPerStageReplies)
{
    ChainFixture f;
    // Seed bound from the previous stage's DATA payload this time.
    ChainPlan plan;
    plan.stage(kAccumId, AccumOffload::encode(100, 5));
    plan.stage(kAccumId, AccumOffload::encode(0, 5)).bindData(0, 0);
    plan.perStageReplies();
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, 110u);
    ASSERT_EQ(r->stages.size(), 2u);
    EXPECT_EQ(r->stages[0].value, 105u);
    EXPECT_EQ(r->stages[1].value, 110u);
}

TEST(OffloadChainTest, StopOnZeroValueEndsChainEarly)
{
    ChainFixture f;
    ChainPlan plan;
    plan.stage(kAccumId, AccumOffload::encode(5, ~std::uint64_t(4)))
        .stopOnZeroValue(); // 5 + (-5) == 0
    plan.stage(kAccumId, AccumOffload::encode(0, 9)).bindValue(0);
    plan.perStageReplies();
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, 0u);
    EXPECT_EQ(r->stages.size(), 1u); // second stage never ran
    EXPECT_EQ(f.entry().stats.chain_stages, 1u);
}

TEST(OffloadChainTest, StageErrorAbortsChain)
{
    ChainFixture f;
    ChainPlan plan;
    plan.stage(kAccumId, AccumOffload::encode(1, 1));
    plan.stage(kAccumId, std::vector<std::uint8_t>(4)); // bad schema
    plan.stage(kAccumId, AccumOffload::encode(0, 1)).bindValue(0);
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kBadArgument));
    EXPECT_EQ(r.errMessage().rfind("stage 1: ", 0), 0u)
        << r.errMessage();
    EXPECT_EQ(f.entry().stats.chain_stages, 2u); // third never ran
}

TEST(OffloadChainTest, TooDeepRejected)
{
    auto cfg = ModelConfig::prototype();
    cfg.offload.max_chain_depth = 2;
    ChainFixture f(cfg);
    ChainPlan plan;
    for (int i = 0; i < 3; i++)
        plan.stage(kAccumId, AccumOffload::encode(0, 1));
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kChainTooDeep));
}

TEST(OffloadChainTest, BadBindRejected)
{
    ChainFixture f;
    ChainPlan plan;
    plan.stage(kAccumId, AccumOffload::encode(1, 1));
    // Source reply data is 8 bytes; offset 16 is out of range.
    plan.stage(kAccumId, AccumOffload::encode(0, 1)).bindData(16, 0);
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kBadChainBind));
}

TEST(OffloadChainTest, EmptyChainRejected)
{
    ChainFixture f;
    ChainPlan plan;
    const Result<OffloadReply> r = f.client.rcall_chain(f.mn, plan);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.errCode(),
              static_cast<std::uint32_t>(OffloadErrc::kBadArgument));
}

// ---------------------------------------------------------------------
// Engine occupancy + restart
// ---------------------------------------------------------------------

TEST(OffloadRuntimeTest, SingleEngineSerializesCompute)
{
    auto cfg = ModelConfig::prototype();
    cfg.offload.engines = 1;
    ChainFixture f(cfg);
    OffloadRuntime &rt = f.cluster.mn(0).offloadRuntime();
    CBoard &board = f.cluster.mn(0);
    OffloadResult r1, r2;
    const auto arg = AccumOffload::encode(1, 2);
    const Tick d1 = rt.runSingle(board, kAccumId, arg, 0, r1);
    const Tick d2 = rt.runSingle(board, kAccumId, arg, 0, r2);
    EXPECT_GT(d1, 0u);
    EXPECT_EQ(d2, 2 * d1); // queued behind the first dispatch
    EXPECT_EQ(rt.scheduler().stats().wait_ticks, d1);
}

TEST(OffloadRuntimeTest, TwoEnginesRunConcurrently)
{
    auto cfg = ModelConfig::prototype();
    cfg.offload.engines = 2;
    ChainFixture f(cfg);
    OffloadRuntime &rt = f.cluster.mn(0).offloadRuntime();
    CBoard &board = f.cluster.mn(0);
    OffloadResult r1, r2;
    const auto arg = AccumOffload::encode(1, 2);
    const Tick d1 = rt.runSingle(board, kAccumId, arg, 0, r1);
    const Tick d2 = rt.runSingle(board, kAccumId, arg, 0, r2);
    EXPECT_EQ(d2, d1); // no queueing
    EXPECT_EQ(rt.scheduler().stats().wait_ticks, 0u);
}

TEST(OffloadRuntimeTest, RestartRerunsInit)
{
    class CountingInit : public Offload
    {
      public:
        int inits = 0;
        VirtAddr slot = 0;
        void
        init(OffloadVm &vm) override
        {
            inits++;
            slot = vm.alloc(4 * KiB);
        }
        OffloadResult
        invoke(OffloadVm &vm,
               const std::vector<std::uint8_t> &) override
        {
            OffloadResult res;
            res.value = vm.read64(slot).value_or(999);
            return res;
        }
    };
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    auto off = std::make_shared<CountingInit>();
    cluster.mn(0).registerOffload(77, off);
    EXPECT_EQ(off->inits, 1);
    cluster.mn(0).crash();
    cluster.mn(0).restart();
    EXPECT_EQ(off->inits, 2); // deployment survives, RAS rebuilt
    const Result<OffloadReply> r =
        client.rcall(cluster.mn(0).nodeId(), 77, {});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, 0u); // fresh page again, not 999
}

} // namespace
} // namespace clio
