/**
 * @file
 * The redesigned CLib surface: Result<T> typed results, RemotePtr /
 * RemoteSlice / RemoteRegion remote pointers, and the batched
 * SubmissionBatch / CompletionQueue path — including the ordering
 * layer's WAR/RAW/WAW guarantees *within* one batch, the
 * ordering_stalls counter across batches, and the single-shot
 * completion-delivery contract (double completion can never re-fire a
 * continuation).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/runner.hh"
#include "clib/queue.hh"
#include "clib/remote_ptr.hh"
#include "cluster/cluster.hh"

namespace clio {
namespace {

// ---------------------------------------------------------------------
// Result<T>
// ---------------------------------------------------------------------

TEST(ResultType, CarriesValueOrError)
{
    const Result<VirtAddr> ok = VirtAddr{0x40000000};
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.status(), Status::kOk);
    EXPECT_EQ(*ok, 0x40000000u);
    EXPECT_EQ(ok.value_or(0), 0x40000000u);

    const Result<VirtAddr> err = Status::kOutOfMemory;
    EXPECT_FALSE(err.ok());
    EXPECT_FALSE(static_cast<bool>(err));
    EXPECT_EQ(err.status(), Status::kOutOfMemory);
    EXPECT_EQ(err.value_or(7), 7u);
    EXPECT_STREQ(err.statusName(), "OutOfMemory");
}

TEST(ResultType, StatusNamesAreHumanReadable)
{
    EXPECT_STREQ(to_string(Status::kOk), "Ok");
    EXPECT_STREQ(to_string(Status::kBadAddress), "BadAddress");
    EXPECT_STREQ(to_string(Status::kPermDenied), "PermDenied");
    EXPECT_STREQ(to_string(Status::kOutOfMemory), "OutOfMemory");
    EXPECT_STREQ(to_string(Status::kRetryExceeded), "RetryExceeded");
    EXPECT_STREQ(to_string(Status::kCorrupt), "Corrupt");
    EXPECT_STREQ(to_string(Status::kOffloadError), "OffloadError");
    // gtest failure messages stream the name, not a raw integer.
    std::ostringstream os;
    os << Status::kBadAddress;
    EXPECT_EQ(os.str(), "BadAddress");
}

TEST(ResultType, SupportsMoveOnlyValues)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    Result<RemoteRegion> region = RemoteRegion::alloc(client, 4 * MiB);
    ASSERT_TRUE(region.ok());
    RemoteRegion owned = std::move(region).value();
    EXPECT_TRUE(owned.valid());
    EXPECT_EQ(owned.size(), 4 * MiB);
}

// ---------------------------------------------------------------------
// RemotePtr / RemoteSlice / RemoteRegion
// ---------------------------------------------------------------------

struct Point
{
    std::uint64_t x = 0;
    std::uint64_t y = 0;
};

TEST(RemotePointers, TypedReadWriteAndArithmetic)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);

    RemotePtr<Point> points(client, addr);
    ASSERT_TRUE(points.valid());
    for (std::uint64_t i = 0; i < 8; i++) {
        ASSERT_EQ(points.at(i).write(Point{i, i * i}), Status::kOk);
    }
    // at(i) and operator+ stride by sizeof(Point).
    EXPECT_EQ((points + 3).addr(), addr + 3 * sizeof(Point));
    const Result<Point> p5 = points.at(5).read();
    ASSERT_TRUE(p5.ok());
    EXPECT_EQ(p5->x, 5u);
    EXPECT_EQ(p5->y, 25u);
}

TEST(RemotePointers, InvalidPtrAndReadFailure)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    EXPECT_FALSE(RemotePtr<std::uint64_t>());
    // Reading unallocated memory surfaces the MN status as an error
    // Result rather than garbage.
    RemotePtr<std::uint64_t> bogus(client, 512 * MiB);
    const Result<std::uint64_t> r = bogus.read();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status(), Status::kBadAddress);
}

TEST(RemotePointers, AtomicsThroughTypedPtr)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    RemotePtr<std::uint64_t> counter(client, addr);

    EXPECT_EQ(counter.fetchAdd(8).value_or(99), 0u);
    EXPECT_EQ(counter.fetchAdd(2).value_or(99), 8u);
    EXPECT_EQ(counter.read().value_or(0), 10u);
    // CAS: match swaps, mismatch doesn't.
    EXPECT_EQ(counter.compareSwap(10, 77).value_or(0), 10u);
    EXPECT_EQ(counter.read().value_or(0), 77u);
    EXPECT_EQ(counter.compareSwap(10, 1).value_or(0), 77u);
    EXPECT_EQ(counter.read().value_or(0), 77u);
}

TEST(RemotePointers, SliceBoundsAndSubslice)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    RemoteSlice slice(client, addr, 4096);

    const char msg[] = "sliced";
    ASSERT_EQ(slice.write(100, msg, sizeof(msg)), Status::kOk);
    char out[sizeof(msg)] = {};
    ASSERT_EQ(slice.read(100, out, sizeof(out)), Status::kOk);
    EXPECT_STREQ(out, "sliced");

    // Subslice re-bases offsets and narrows the bounds.
    RemoteSlice sub = slice.subslice(100, sizeof(msg));
    EXPECT_EQ(sub.addr(), addr + 100);
    std::memset(out, 0, sizeof(out));
    ASSERT_EQ(sub.read(0, out, sizeof(msg)), Status::kOk);
    EXPECT_STREQ(out, "sliced");

    // Typed view into the slice.
    ASSERT_EQ(slice.ptr<std::uint64_t>(8).write(0xABCD), Status::kOk);
    EXPECT_EQ(slice.ptr<std::uint64_t>(8).read().value_or(0), 0xABCDu);
}

TEST(RemotePointers, RegionFreesOnScopeExit)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    VirtAddr addr = 0;
    {
        auto region = RemoteRegion::alloc(client, 4 * MiB);
        ASSERT_TRUE(region.ok());
        addr = region->addr();
        std::uint64_t v = 5;
        ASSERT_EQ(region->slice().write(0, &v, 8), Status::kOk);
        EXPECT_EQ(client.stats().frees, 0u);
    }
    // Scope exit rfree'd the page: the VA is gone for everyone.
    EXPECT_EQ(client.stats().frees, 1u);
    std::uint64_t out = 0;
    EXPECT_EQ(client.rread(addr, &out, 8), Status::kBadAddress);
}

TEST(RemotePointers, RegionReleaseDisowns)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    VirtAddr addr = 0;
    {
        auto region = RemoteRegion::alloc(client, 4 * MiB);
        ASSERT_TRUE(region.ok());
        addr = region->release();
        EXPECT_FALSE(region->valid());
    }
    // Released: still allocated, caller owns the free now.
    std::uint64_t v = 9;
    EXPECT_EQ(client.rwrite(addr, &v, 8), Status::kOk);
    EXPECT_EQ(client.rfree(addr), Status::kOk);
}

// ---------------------------------------------------------------------
// CompletionQueue semantics
// ---------------------------------------------------------------------

TEST(CompletionQueueApi, DeliversWatchedHandles)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    CompletionQueue cq(cluster.eventQueue());
    std::uint64_t v = 123, out = 0;
    cq.watch(client.rwriteAsync(addr, &v, 8), 7);
    EXPECT_EQ(cq.outstanding(), 1u);
    auto comps = cq.rpoll_cq(4);
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].tag, 7u);
    EXPECT_TRUE(comps[0].ok());
    EXPECT_EQ(cq.outstanding(), 0u);
    EXPECT_EQ(client.rread(addr, &out, 8), Status::kOk);
    EXPECT_EQ(out, 123u);
}

TEST(CompletionQueueApi, DoubleCompletionCannotRefire)
{
    // The single-shot regression the old on_done contract only
    // promised in a comment: delivering a handle twice must not
    // duplicate its completion.
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    CompletionQueue cq(cluster.eventQueue());
    std::uint64_t v = 1;
    auto handle = client.rwriteAsync(addr, &v, 8);
    cq.watch(handle, 1);
    EXPECT_EQ(cq.rpoll_cq(4).size(), 1u);
    // Force a second completion delivery: consumed latch makes it a
    // no-op instead of a re-fired continuation.
    cq.deliver(handle);
    cq.deliver(handle);
    EXPECT_EQ(cq.ready(), 0u);
    EXPECT_EQ(cq.poll(4).size(), 0u);
    EXPECT_EQ(cq.outstanding(), 0u);
}

TEST(CompletionQueueApi, WatchAfterCompletionDeliversOnce)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    std::uint64_t v = 1;
    auto handle = client.rwriteAsync(addr, &v, 8);
    ASSERT_TRUE(client.rpoll(handle)); // completes before registration
    // Let simulated time move on, then register: the completion must
    // still carry the tick the request finished, not the watch tick.
    EventQueue &eq = cluster.eventQueue();
    const Tick completed_by = eq.now();
    eq.runUntilTime(eq.now() + kMillisecond);
    CompletionQueue cq(eq);
    cq.watch(handle, 5);
    EXPECT_EQ(cq.outstanding(), 0u);
    auto comps = cq.poll(4);
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].tag, 5u);
    EXPECT_LE(comps[0].completed_at, completed_by);
    EXPECT_GT(comps[0].completed_at, 0u);
    cq.deliver(handle); // and double delivery is still inert
    EXPECT_EQ(cq.ready(), 0u);
}

TEST(CompletionQueueApi, CompletionOrderAndTimestamps)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);

    CompletionQueue cq(cluster.eventQueue());
    std::uint64_t a = 1, b = 2;
    // Conflicting writes (same page): the ordering layer serializes
    // them, so delivery order must match submission order.
    cq.watch(client.rwriteAsync(addr, &a, 8), 0);
    cq.watch(client.rwriteAsync(addr, &b, 8), 1);
    std::vector<Completion> all;
    while (all.size() < 2) {
        for (Completion &c : cq.rpoll_cq(2))
            all.push_back(std::move(c));
    }
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].tag, 0u);
    EXPECT_EQ(all[1].tag, 1u);
    EXPECT_LE(all[0].completed_at, all[1].completed_at);
    EXPECT_GT(all[0].completed_at, 0u);
}

// ---------------------------------------------------------------------
// SubmissionBatch
// ---------------------------------------------------------------------

TEST(SubmissionBatchApi, BatchedRoundTripAndStats)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);

    std::uint64_t vals[4] = {10, 20, 30, 40};
    SubmissionBatch wb(client);
    for (int i = 0; i < 4; i++)
        wb.write(addr + static_cast<std::uint64_t>(i) * 4 * MiB,
                 &vals[i], 8);
    EXPECT_EQ(wb.size(), 4u);
    const BatchOutcome wrote = wb.submitAndWait();
    EXPECT_TRUE(wrote.ok());
    ASSERT_EQ(wrote.completions.size(), 4u);

    std::uint64_t out[4] = {};
    SubmissionBatch rb(client);
    for (int i = 0; i < 4; i++)
        rb.read(addr + static_cast<std::uint64_t>(i) * 4 * MiB, &out[i],
                8);
    EXPECT_TRUE(rb.submitAndWait().ok());
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(out[i], vals[i]);

    EXPECT_EQ(client.stats().batches, 2u);
    EXPECT_EQ(client.stats().batched_ops, 8u);
}

TEST(SubmissionBatchApi, MixedOpsIncludingAllocAndFree)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);

    SubmissionBatch batch(client);
    const std::size_t a = batch.alloc(4 * MiB);
    const std::size_t f = batch.fence();
    const BatchOutcome out = batch.submitAndWait();
    ASSERT_TRUE(out.ok());
    const VirtAddr addr = out.completions[a].value;
    ASSERT_NE(addr, 0u);
    EXPECT_TRUE(out.completions[f].ok());

    SubmissionBatch batch2(client);
    std::uint64_t v = 3;
    batch2.write(addr, &v, 8);
    batch2.atomic(addr, AtomicOp::kFetchAdd, 4);
    EXPECT_TRUE(batch2.submitAndWait().ok());
    std::uint64_t now_val = 0;
    ASSERT_EQ(client.rread(addr, &now_val, 8), Status::kOk);
    EXPECT_EQ(now_val, 7u);

    SubmissionBatch batch3(client);
    batch3.free(addr);
    EXPECT_TRUE(batch3.submitAndWait().ok());
    EXPECT_EQ(client.rread(addr, &now_val, 8), Status::kBadAddress);
}

TEST(SubmissionBatchApi, FailureSurfacesFirstErrorStatus)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    std::uint64_t v = 1, out = 0;
    SubmissionBatch batch(client);
    batch.write(addr, &v, 8);
    batch.read(512 * MiB, &out, 8); // unallocated -> kBadAddress
    const BatchOutcome res = batch.submitAndWait();
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status, Status::kBadAddress);
    EXPECT_TRUE(res.completions[0].ok());
    EXPECT_EQ(res.completions[1].status, Status::kBadAddress);
}

TEST(SubmissionBatchApi, VectoredReadWrite)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);

    const std::string hello = "vectored ";
    const std::string world = "io";
    ASSERT_EQ(client.rwritev({{addr, hello.data(), hello.size()},
                              {addr + hello.size(), world.data(),
                               world.size()}}),
              Status::kOk);
    std::string a(hello.size(), '\0');
    std::string b(world.size(), '\0');
    ASSERT_EQ(client.rreadv({{addr, a.data(), a.size()},
                             {addr + hello.size(), b.data(), b.size()}}),
              Status::kOk);
    EXPECT_EQ(a + b, "vectored io");
}

// ---------------------------------------------------------------------
// Ordering layer (T2) under batched submission
// ---------------------------------------------------------------------

TEST(BatchOrdering, RawWithinOneBatch)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    // write -> read of the same page in ONE batch: the read must stall
    // behind the write and observe its value.
    std::uint64_t v = 0xD00D, out = 0;
    SubmissionBatch batch(client);
    batch.write(addr, &v, 8);
    batch.read(addr, &out, 8);
    const BatchOutcome res = batch.submitAndWait();
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(out, 0xD00Du);
    EXPECT_GE(client.stats().ordering_stalls, 1u);
    // The read completed strictly after the write.
    EXPECT_GT(res.completions[1].completed_at,
              res.completions[0].completed_at);
}

TEST(BatchOrdering, WarWithinOneBatch)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t before = 0xAAAA;
    ASSERT_EQ(client.rwrite(addr, &before, 8), Status::kOk);

    // read -> write of the same page in ONE batch: the write must wait
    // for the read, which therefore observes the OLD value.
    std::uint64_t out = 0, after = 0xBBBB;
    SubmissionBatch batch(client);
    batch.read(addr, &out, 8);
    batch.write(addr, &after, 8);
    ASSERT_TRUE(batch.submitAndWait().ok());
    EXPECT_EQ(out, 0xAAAAu);
    std::uint64_t now_val = 0;
    ASSERT_EQ(client.rread(addr, &now_val, 8), Status::kOk);
    EXPECT_EQ(now_val, 0xBBBBu);
    EXPECT_GE(client.stats().ordering_stalls, 1u);
}

TEST(BatchOrdering, WawWithinOneBatchKeepsSubmissionOrder)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    std::uint64_t first = 1, second = 2, third = 3;
    SubmissionBatch batch(client);
    batch.write(addr, &first, 8);
    batch.write(addr, &second, 8);
    batch.write(addr, &third, 8);
    ASSERT_TRUE(batch.submitAndWait().ok());
    // Last staged write wins: WAW order preserved.
    std::uint64_t out = 0;
    ASSERT_EQ(client.rread(addr, &out, 8), Status::kOk);
    EXPECT_EQ(out, 3u);
    // Two of the three writes stalled behind a predecessor.
    EXPECT_EQ(client.stats().ordering_stalls, 2u);
}

TEST(BatchOrdering, IndependentBatchMembersDontStall)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);

    std::uint64_t v = 9;
    SubmissionBatch batch(client);
    for (int i = 0; i < 4; i++)
        batch.write(addr + static_cast<std::uint64_t>(i) * 4 * MiB, &v,
                    8);
    ASSERT_TRUE(batch.submitAndWait().ok());
    EXPECT_EQ(client.stats().ordering_stalls, 0u);
}

TEST(BatchOrdering, StallsCountedAcrossBatches)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);

    CompletionQueue cq(cluster.eventQueue());
    // Batch 1 writes the page; batch 2 reads it, submitted while
    // batch 1 is still inflight: the RAW dependency crosses the batch
    // boundary and must both stall and order correctly.
    std::uint64_t v = 0xF00D, out = 0;
    SubmissionBatch b1(client);
    b1.write(addr, &v, 8);
    b1.submit(cq, 0);
    SubmissionBatch b2(client);
    b2.read(addr, &out, 8);
    b2.submit(cq, 1);
    EXPECT_EQ(client.stats().ordering_stalls, 1u);

    std::size_t seen = 0;
    while (seen < 2)
        seen += cq.rpoll_cq(2).size();
    EXPECT_EQ(out, 0xF00Du);

    // A third batch against the now-idle page does not stall.
    SubmissionBatch b3(client);
    b3.read(addr, &out, 8);
    EXPECT_TRUE(b3.submitAndWait().ok());
    EXPECT_EQ(client.stats().ordering_stalls, 1u);
}

// ---------------------------------------------------------------------
// Closed-loop runner on the CQ path
// ---------------------------------------------------------------------

TEST(RunnerCq, ActorsResumeViaCompletionQueue)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(16 * MiB).value_or(0);

    ClosedLoopRunner runner(cluster.eventQueue());
    struct ActorState
    {
        int rounds = 0;
        std::uint64_t sum = 0;
        std::vector<Completion> comps;
    };
    std::vector<ActorState> states(3);
    for (int a = 0; a < 3; a++) {
        runner.addActor([a, &states, &client, addr]() -> ActorStep {
            ActorState &st = states[static_cast<std::size_t>(a)];
            for (const Completion &c : st.comps)
                st.sum += c.ok();
            st.comps.clear();
            if (st.rounds++ == 4)
                return ActorStep::done();
            SubmissionBatch batch(client);
            std::uint64_t v = static_cast<std::uint64_t>(a);
            batch.write(addr + static_cast<std::uint64_t>(a) * 4 * MiB,
                        &v, 8);
            batch.atomic(addr + 3 * 4 * MiB, AtomicOp::kFetchAdd, 1);
            return ActorStep::waitAll(std::move(batch), &st.comps);
        });
    }
    const Tick elapsed = runner.run();
    EXPECT_GT(elapsed, 0u);
    EXPECT_EQ(runner.finished(), 3u);
    for (const ActorState &st : states)
        EXPECT_EQ(st.sum, 8u); // 4 rounds x 2 ok completions
    // All 12 fetch-adds landed exactly once.
    EXPECT_EQ(client.rfaa(addr + 3 * 4 * MiB, 0).value_or(0), 12u);
}

} // namespace
} // namespace clio
