/**
 * @file
 * Multi-rack fabric + shard map tests: leaf/spine timing, aggregation
 * contention, consistent-hash placement stability, and rack-aware
 * sharded clusters end to end.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/shard_map.hh"
#include "net/network.hh"

namespace clio {
namespace {

NetConfig
quietNet()
{
    NetConfig cfg;
    cfg.switch_jitter_mean = 0; // deterministic timing tests
    return cfg;
}

Packet
makePacket(NodeId src, NodeId dst, std::uint32_t wire_bytes,
           ReqId id = 1)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.req_id = id;
    pkt.wire_bytes = wire_bytes;
    return pkt;
}

TEST(MultiRack, CrossRackCostsTheAggregationHops)
{
    EventQueue eq;
    auto cfg = quietNet();
    Network net(eq, cfg, 1);
    NodeId src = net.addNode(nullptr, 0, 0);
    NodeId same = net.addNode([](Packet) {}, 0, 0);
    NodeId other = net.addNode([](Packet) {}, 0, 1);

    Tick intra_at = 0, cross_at = 0;
    net.send(makePacket(src, same, 1000, 1));
    eq.runAll();
    intra_at = eq.now();
    const Tick t0 = eq.now();
    net.send(makePacket(src, other, 1000, 2));
    eq.runAll();
    cross_at = eq.now() - t0;

    // Exact single-packet timings on an idle fabric.
    const Tick ser = 1000 * ticksPerByte(cfg.link_bandwidth_bps);
    const Tick agg_ser = 1000 * ticksPerByte(cfg.agg_bandwidth_bps);
    const Tick intra_expected = 2 * ser + 2 * cfg.link_propagation +
                                cfg.switch_latency;
    // A cross-rack packet traverses three switches (source ToR, spine,
    // destination ToR) instead of one, plus the two aggregation links.
    const Tick cross_expected =
        intra_expected + 2 * agg_ser + 2 * cfg.agg_link_propagation +
        cfg.switch_latency + cfg.spine_latency;
    EXPECT_EQ(intra_at, intra_expected);
    EXPECT_EQ(cross_at, cross_expected);
    EXPECT_GT(cross_at, intra_at);
    EXPECT_EQ(net.stats().cross_rack, 1u);
}

TEST(MultiRack, AggregationLinkSerializesCrossRackBursts)
{
    // Same incast, intra-rack vs cross-rack, with the uplink pinned
    // to host-link speed: the shared aggregation link must stretch
    // the cross-rack completion beyond the intra-rack one.
    auto run = [](bool cross) {
        EventQueue eq;
        auto cfg = quietNet();
        cfg.agg_bandwidth_bps = cfg.link_bandwidth_bps;
        Network net(eq, cfg, 1);
        NodeId a = net.addNode(nullptr, 0, 0);
        NodeId b = net.addNode(nullptr, 0, 0);
        net.addNode([](Packet) {}, 0, 0); // keep ids comparable
        NodeId dst = net.addNode([](Packet) {}, 0, cross ? 1 : 0);
        for (int i = 0; i < 20; i++) {
            net.send(makePacket(a, dst, 1500, ReqId(2 * i + 1)));
            net.send(makePacket(b, dst, 1500, ReqId(2 * i + 2)));
        }
        eq.runAll();
        return eq.now();
    };
    const Tick intra_done = run(false);
    const Tick cross_done = run(true);
    EXPECT_GT(cross_done, intra_done);
}

TEST(MultiRack, LossyAggregationQueueTailDrops)
{
    EventQueue eq;
    auto cfg = quietNet();
    cfg.lossless = false;
    cfg.agg_bandwidth_bps = cfg.link_bandwidth_bps / 10;
    cfg.agg_queue_packets = 2;
    Network net(eq, cfg, 1);
    std::vector<NodeId> srcs;
    for (int k = 0; k < 4; k++)
        srcs.push_back(net.addNode(nullptr, 0, 0));
    NodeId dst = net.addNode([](Packet) {}, 0, 1);
    ReqId id = 1;
    for (int i = 0; i < 25; i++) {
        for (NodeId s : srcs)
            net.send(makePacket(s, dst, 1500, id++));
    }
    eq.runAll();
    EXPECT_GT(net.stats().dropped_agg_queue, 0u);
    EXPECT_EQ(net.stats().delivered + net.stats().dropped_agg_queue,
              net.stats().sent);
}

TEST(ShardMap, RackAwareOwnerStaysLocalWheneverPossible)
{
    ShardMap map;
    for (std::uint32_t mn = 0; mn < 8; mn++)
        map.addMn(mn, mn / 2); // 4 racks x 2 MNs
    for (RackId rack = 0; rack < 4; rack++) {
        for (ProcId pid = 1; pid <= 200; pid++) {
            const std::uint32_t mn = map.ownerNear(pid, 0, rack);
            EXPECT_EQ(map.rackOf(mn), rack);
            // Deterministic: same key, same answer.
            EXPECT_EQ(map.ownerNear(pid, 0, rack), mn);
        }
    }
    // A rack with no MNs falls back to some remote owner.
    const std::uint32_t remote = map.ownerNear(7, 0, 9);
    EXPECT_LT(remote, 8u);
}

TEST(ShardMap, PlacementsAreStableUnderMnChurn)
{
    ShardMap map;
    for (std::uint32_t mn = 0; mn < 8; mn++)
        map.addMn(mn, mn / 2);

    std::map<std::pair<ProcId, std::uint64_t>, std::uint32_t> before;
    for (ProcId pid = 1; pid <= 100; pid++) {
        for (std::uint64_t region = 0; region < 10; region++)
            before[{pid, region}] = map.ownerOf(pid, region);
    }

    // Adding one MN moves only ~1/(M+1) of the keyspace.
    map.addMn(8, 0);
    std::size_t moved = 0;
    for (const auto &[key, owner] : before) {
        if (map.ownerOf(key.first, key.second) != owner)
            moved++;
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, before.size() / 3);

    // Removing it restores every original placement exactly (ring
    // points depend only on (mn, replica)).
    map.removeMn(8);
    for (const auto &[key, owner] : before)
        EXPECT_EQ(map.ownerOf(key.first, key.second), owner);
}

TEST(MultiRack, ShardedClusterPlacesProcessesRackLocally)
{
    auto cfg = ModelConfig::prototype();
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 2;
    Cluster cluster(cfg, spec);
    ASSERT_EQ(cluster.cnCount(), 3u);
    ASSERT_EQ(cluster.mnCount(), 6u);

    for (std::uint32_t cn = 0; cn < 3; cn++) {
        ClioClient &client = cluster.createClient(cn);
        const std::uint32_t home = cluster.homeMnOf(client.pid());
        const RackId cn_rack =
            cluster.network().rackOf(cluster.cn(cn).nodeId());
        EXPECT_EQ(cluster.network().rackOf(cluster.mn(home).nodeId()),
                  cn_rack);
        // The data path works end to end through the home MN.
        const VirtAddr a = client.ralloc(1 * MiB).value_or(0);
        ASSERT_NE(a, 0u);
        std::uint64_t w = 0x1234567890abcdefull + cn, r = 0;
        ASSERT_EQ(client.rwrite(a, &w, 8), Status::kOk);
        ASSERT_EQ(client.rread(a, &r, 8), Status::kOk);
        EXPECT_EQ(r, w);
    }
    // Rack-local placement means no measured op crossed the spine.
    EXPECT_EQ(cluster.network().stats().cross_rack, 0u);
}

TEST(MultiRack, SharedClientReadsAcrossTheSpine)
{
    auto cfg = ModelConfig::prototype();
    ClusterSpec spec;
    spec.racks = 2;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);

    ClioClient &owner = cluster.createClient(0);
    const VirtAddr a = owner.ralloc(1 * MiB).value_or(0);
    std::uint64_t w = 0xfeedfacecafef00dull;
    ASSERT_EQ(owner.rwrite(a, &w, 8), Status::kOk);

    // A process on the other rack attaches to the same RAS; its reads
    // must traverse the aggregation links and still return the data.
    ClioClient &peer = cluster.createSharedClient(1, owner);
    std::uint64_t r = 0;
    ASSERT_EQ(peer.rread(a, &r, 8), Status::kOk);
    EXPECT_EQ(r, w);
    EXPECT_GT(cluster.network().stats().cross_rack, 0u);
}

TEST(MultiRack, MigrationCreatesAnOwnershipException)
{
    auto cfg = ModelConfig::prototype();
    ClusterSpec spec;
    spec.racks = 2;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);

    ClioClient &client = cluster.createClient(0);
    const VirtAddr a = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t w = 0xa5a5a5a5a5a5a5a5ull;
    ASSERT_EQ(client.rwrite(a, &w, 8), Status::kOk);

    const std::uint32_t home = cluster.homeMnOf(client.pid());
    auto report = cluster.migrateRegion(client.pid(), home);
    ASSERT_TRUE(report.ok);
    EXPECT_NE(report.dst_mn, home);
    EXPECT_GT(report.pages_moved, 0u);

    // Data survives the migration and is now served by the new MN.
    std::uint64_t r = 0;
    ASSERT_EQ(client.rread(a, &r, 8), Status::kOk);
    EXPECT_EQ(r, w);
    EXPECT_EQ(client.mnFor(a), cluster.mn(report.dst_mn).nodeId());
}

} // namespace
} // namespace clio
