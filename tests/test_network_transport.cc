/**
 * @file
 * Unit tests for the network model, MTU splitting, the CN transport
 * (CNode), and the Go-Back-N reference transport.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "clib/cnode.hh"
#include "cluster/cluster.hh"
#include "net/network.hh"
#include "proto/wire.hh"
#include "sim/rng.hh"
#include "transport/go_back_n.hh"

namespace clio {
namespace {

NetConfig
quietNet()
{
    NetConfig cfg;
    cfg.switch_jitter_mean = 0; // deterministic timing tests
    return cfg;
}

Packet
makePacket(NodeId src, NodeId dst, std::uint32_t wire_bytes,
           ReqId id = 1)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.req_id = id;
    pkt.wire_bytes = wire_bytes;
    return pkt;
}

TEST(Network, DeliversWithFixedLatency)
{
    EventQueue eq;
    Network net(eq, quietNet(), 1);
    Tick delivered_at = 0;
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([&](Packet) { delivered_at = eq.now(); });

    net.send(makePacket(a, b, 100));
    eq.runAll();
    // serialization (2 stages) + 2 props + switch.
    const Tick ser = 100 * ticksPerByte(quietNet().link_bandwidth_bps);
    const Tick expected = 2 * ser + 2 * quietNet().link_propagation +
                          quietNet().switch_latency;
    EXPECT_EQ(delivered_at, expected);
    EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Network, EgressSerializationQueues)
{
    EventQueue eq;
    Network net(eq, quietNet(), 1);
    std::vector<Tick> arrivals;
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([&](Packet) { arrivals.push_back(eq.now()); });

    // Two back-to-back packets: the second waits for the first's
    // serialization on the source link.
    net.send(makePacket(a, b, 1500, 1));
    net.send(makePacket(a, b, 1500, 2));
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 2u);
    const Tick ser = 1500 * ticksPerByte(quietNet().link_bandwidth_bps);
    EXPECT_EQ(arrivals[1] - arrivals[0], ser);
}

TEST(Network, LossAndCorruptionStatistics)
{
    EventQueue eq;
    auto cfg = quietNet();
    cfg.loss_rate = 0.3;
    cfg.corrupt_rate = 0.2;
    Network net(eq, cfg, 7);
    int received = 0, corrupted = 0;
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([&](Packet pkt) {
        received++;
        corrupted += pkt.corrupted ? 1 : 0;
    });
    for (int i = 0; i < 2000; i++)
        net.send(makePacket(a, b, 100, static_cast<ReqId>(i)));
    eq.runAll();
    EXPECT_NEAR(net.stats().dropped_random, 600, 80);
    EXPECT_EQ(received, 2000 - static_cast<int>(
                                   net.stats().dropped_random));
    EXPECT_NEAR(corrupted, 0.2 * received, 80);
}

TEST(Network, SwitchEgressBacklogVisible)
{
    EventQueue eq;
    Network net(eq, quietNet(), 1);
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([](Packet) {});
    for (int i = 0; i < 10; i++)
        net.send(makePacket(a, b, 1500, static_cast<ReqId>(i)));
    EXPECT_GT(net.switchEgressBacklog(b), 0u);
    eq.runAll();
    EXPECT_EQ(net.switchEgressBacklog(b), 0u);
}

// Regression: a queue slot is freed when the packet's last byte
// leaves the switch output port (out_done), NOT at delivery. The old
// accounting held the slot through the final link propagation plus
// the (here: huge) reorder delay, so a paced stream far below the
// port rate still tail-dropped on a small queue.
TEST(Network, QueueSlotFreedAtEgressNotAtDelivery)
{
    EventQueue eq;
    auto cfg = quietNet();
    cfg.lossless = false;
    cfg.switch_queue_packets = 2;
    cfg.reorder_rate = 1.0; // every delivery delayed way past out_done
    cfg.reorder_delay = 500 * kMicrosecond;
    Network net(eq, cfg, 1);
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([](Packet) {});

    // One packet every 5 us: an out_done-accounted queue is empty at
    // each send (egress takes ~2.7 us), a delivery-accounted one
    // holds ~100 phantom packets and drops nearly everything.
    for (int i = 0; i < 50; i++) {
        const Tick at = static_cast<Tick>(i) * 5 * kMicrosecond;
        eq.schedule(at, [&net, a, b, i] {
            net.send(makePacket(a, b, 1500, static_cast<ReqId>(i + 1)));
        });
    }
    eq.runAll();
    EXPECT_EQ(net.stats().dropped_queue, 0u);
    EXPECT_EQ(net.stats().delivered, 50u);
    EXPECT_EQ(net.stats().reordered, 50u);
}

// Regression: lossless mode is bounded-queue back-pressure, not
// "skip the drop and let the queue grow". A 4-into-1 incast on a
// 4-packet queue must (a) stall senders, (b) never exceed the queue
// bound, (c) still deliver every packet.
TEST(Network, LosslessBackPressureBoundsQueue)
{
    EventQueue eq;
    auto cfg = quietNet();
    cfg.lossless = true;
    cfg.switch_queue_packets = 4;
    Network net(eq, cfg, 1);
    std::vector<NodeId> srcs;
    for (int k = 0; k < 4; k++)
        srcs.push_back(net.addNode(nullptr));
    NodeId dst = net.addNode([](Packet) {});

    ReqId id = 1;
    for (int k = 0; k < 4; k++) {
        for (int i = 0; i < 25; i++)
            net.send(makePacket(srcs[k], dst, 1500, id++));
    }
    eq.runAll();
    EXPECT_EQ(net.stats().sent, 100u);
    EXPECT_EQ(net.stats().delivered, 100u);
    EXPECT_EQ(net.stats().dropped_queue, 0u);
    EXPECT_GT(net.stats().pfc_stalls, 0u);
    EXPECT_GT(net.stats().pfc_stall_ticks, 0u);
    EXPECT_LE(net.stats().peak_queue_depth, 4u);
}

TEST(Wire, PacketCountMatchesMtu)
{
    const std::uint32_t mtu = 1500;
    const std::uint32_t payload_per = mtu - kPacketHeaderBytes;
    EXPECT_EQ(packetCount(0, mtu), 1u);
    EXPECT_EQ(packetCount(1, mtu), 1u);
    EXPECT_EQ(packetCount(payload_per, mtu), 1u);
    EXPECT_EQ(packetCount(payload_per + 1, mtu), 2u);
    EXPECT_EQ(packetCount(10 * payload_per, mtu), 10u);
}

TEST(Wire, SplitCoversPayloadExactly)
{
    EventQueue eq;
    Network net(eq, quietNet(), 1);
    std::vector<Packet> got;
    NodeId a = net.addNode(nullptr);
    NodeId b = net.addNode([&](Packet pkt) { got.push_back(pkt); });

    auto msg = std::make_shared<RequestMsg>();
    const std::uint64_t payload = 5000;
    sendSplit(eq, net, 0, a, b, 42, MsgType::kWrite, payload, msg);
    eq.runAll();
    ASSERT_EQ(got.size(), packetCount(payload, quietNet().mtu));
    std::uint64_t covered = 0;
    for (const auto &pkt : got) {
        EXPECT_EQ(pkt.req_id, 42u);
        EXPECT_EQ(pkt.total_parts, got.size());
        EXPECT_EQ(pkt.payload_offset, covered);
        covered += pkt.payload_len;
    }
    EXPECT_EQ(covered, payload);
}

TEST(CNode, RetryGetsFreshIdKeepsOriginal)
{
    // Total loss for the first attempt; capture ids at the MN.
    auto cfg = ModelConfig::prototype();
    cfg.net.loss_rate = 1.0;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    auto handle = client.rreadAsync(4 * MiB, nullptr, 8);
    // Drain: every attempt is lost; request eventually fails.
    cluster.run();
    EXPECT_TRUE(handle->done);
    // Every failure on the way out was a timeout (total loss), so the
    // exhausted request surfaces kTimeout, not kRetryExceeded.
    EXPECT_EQ(handle->status, Status::kTimeout);
    EXPECT_EQ(cluster.cn(0).stats().retries, cfg.clib.max_retries);
    EXPECT_EQ(cluster.cn(0).stats().timeouts, cfg.clib.max_retries + 1);
}

TEST(CNode, CwndGrowsOnGoodRtt)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const NodeId mn = cluster.mn(0).nodeId();
    const double before = cluster.cn(0).cwnd(mn);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 0;
    for (int i = 0; i < 50; i++)
        client.rread(addr, &v, 8);
    EXPECT_GT(cluster.cn(0).cwnd(mn), before);
}

TEST(CNode, RttHistogramPopulated)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 1;
    for (int i = 0; i < 20; i++)
        client.rwrite(addr, &v, 8);
    EXPECT_GE(cluster.cn(0).rttHistogram().count(), 20u);
    EXPECT_GT(cluster.cn(0).rttHistogram().median(), kMicrosecond);
}

// ----------------------------------------------------------------
// Go-Back-N reference transport
// ----------------------------------------------------------------

struct GbnPair
{
    EventQueue eq;
    Network net;
    std::vector<std::vector<std::uint8_t>> a_got, b_got;
    std::unique_ptr<GbnEndpoint> a, b;

    explicit GbnPair(NetConfig cfg, std::uint64_t seed = 1)
        : net(eq, cfg, seed)
    {
        a = std::make_unique<GbnEndpoint>(
            eq, net,
            [this](NodeId, std::vector<std::uint8_t> m) {
                a_got.push_back(std::move(m));
            });
        b = std::make_unique<GbnEndpoint>(
            eq, net,
            [this](NodeId, std::vector<std::uint8_t> m) {
                b_got.push_back(std::move(m));
            });
    }
};

std::vector<std::uint8_t>
blob(std::size_t n, std::uint8_t tag)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; i++)
        out[i] = static_cast<std::uint8_t>(tag + i * 7);
    return out;
}

TEST(GoBackN, DeliversInOrderLossless)
{
    GbnPair pair(quietNet());
    for (int i = 0; i < 10; i++)
        pair.a->send(pair.b->nodeId(), blob(3000, static_cast<std::uint8_t>(i)));
    pair.eq.runAll();
    ASSERT_EQ(pair.b_got.size(), 10u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(pair.b_got[static_cast<std::size_t>(i)],
                  blob(3000, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(pair.a->stats().data_retransmitted, 0u);
}

TEST(GoBackN, RecoversFromLoss)
{
    auto cfg = quietNet();
    cfg.loss_rate = 0.15;
    GbnPair pair(cfg, 23);
    for (int i = 0; i < 20; i++)
        pair.a->send(pair.b->nodeId(), blob(5000, static_cast<std::uint8_t>(i)));
    pair.eq.runAll();
    ASSERT_EQ(pair.b_got.size(), 20u);
    for (int i = 0; i < 20; i++)
        EXPECT_EQ(pair.b_got[static_cast<std::size_t>(i)],
                  blob(5000, static_cast<std::uint8_t>(i)));
    // Loss forces go-back-N retransmissions.
    EXPECT_GT(pair.a->stats().data_retransmitted, 0u);
}

TEST(GoBackN, BidirectionalFlows)
{
    GbnPair pair(quietNet());
    pair.a->send(pair.b->nodeId(), blob(100, 1));
    pair.b->send(pair.a->nodeId(), blob(200, 2));
    pair.eq.runAll();
    ASSERT_EQ(pair.b_got.size(), 1u);
    ASSERT_EQ(pair.a_got.size(), 1u);
    EXPECT_EQ(pair.a_got[0], blob(200, 2));
}

TEST(GoBackN, StateGrowsWithFlowsUnlikeClio)
{
    // The Fig. 22 argument: GBN state scales with flows and inflight
    // data; Clio's MN transport state does not exist at all.
    auto cfg = quietNet();
    EventQueue eq;
    Network net(eq, cfg, 5);
    GbnEndpoint hub(eq, net, nullptr, 16, 100 * kMicrosecond);
    std::vector<std::unique_ptr<GbnEndpoint>> peers;
    for (int i = 0; i < 8; i++) {
        peers.push_back(
            std::make_unique<GbnEndpoint>(eq, net, nullptr));
    }
    const std::uint64_t before = hub.stateBytes();
    for (auto &peer : peers)
        hub.send(peer->nodeId(), blob(8000, 9));
    // Before any delivery, per-flow retransmission buffers are held.
    EXPECT_GT(hub.stateBytes(), before + 8 * 8000);
    EXPECT_EQ(hub.flowCount(), 8u);
    eq.runAll();
}

} // namespace
} // namespace clio
