/**
 * @file
 * Chaos tier: randomized MN-kill / packet-fault schedules derived from
 * CLIO_SEED, checked for (a) linearizable recovery of a replicated
 * register and (b) byte-identical replay of the same chaotic schedule
 * on both event-queue engines. Registered under the `chaos` ctest
 * label (NOT `unit`), run by CI under several seeds.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chaos/fault_plan.hh"
#include "chaos/linearize.hh"
#include "clib/replication.hh"
#include "cluster/cluster.hh"
#include "cluster/health.hh"

namespace clio {
namespace {

// ---------------------------------------------------------------------
// Linearizability checker unit tests (hand-built histories)
// ---------------------------------------------------------------------

TEST(Linearize, AcceptsValidConcurrentHistory)
{
    // w(1) and r overlapping: the read may see 0 or 1.
    std::vector<HistOp> h = {
        {0, 10, 50, true, 1, true},
        {0, 20, 40, false, 0, true}, // overlaps the write, saw old value
        {0, 60, 70, false, 1, true}, // after the write, sees it
    };
    const auto rep = checkLinearizable(h);
    EXPECT_TRUE(rep.linearizable);
    EXPECT_EQ(rep.ops, 3u);
}

TEST(Linearize, RejectsStaleRead)
{
    // The write completed strictly before the read was invoked, yet
    // the read returned the old value.
    std::vector<HistOp> h = {
        {7, 10, 20, true, 5, true},
        {7, 30, 40, false, 0, true},
    };
    const auto rep = checkLinearizable(h);
    EXPECT_FALSE(rep.linearizable);
    EXPECT_EQ(rep.key, 7u);
}

TEST(Linearize, RejectsLostAckedWrite)
{
    // Acked write followed (non-overlapping) by a second acked write;
    // a later read must not resurrect the first value.
    std::vector<HistOp> h = {
        {3, 10, 20, true, 5, true},
        {3, 30, 40, true, 6, true},
        {3, 50, 60, false, 5, true},
    };
    EXPECT_FALSE(checkLinearizable(h).linearizable);
}

TEST(Linearize, FailedWriteIsAmbiguous)
{
    // A failed write may have applied...
    std::vector<HistOp> applied = {
        {1, 10, 20, true, 5, true},
        {1, 30, 0, true, 6, false}, // failed: completion unknown
        {1, 100, 110, false, 6, true},
    };
    EXPECT_TRUE(checkLinearizable(applied).linearizable);

    // ...or not; both continuations are legal.
    std::vector<HistOp> discarded = {
        {1, 10, 20, true, 5, true},
        {1, 30, 0, true, 6, false},
        {1, 100, 110, false, 5, true},
    };
    EXPECT_TRUE(checkLinearizable(discarded).linearizable);

    // But it cannot conjure a value nobody wrote.
    std::vector<HistOp> bogus = {
        {1, 10, 20, true, 5, true},
        {1, 30, 0, true, 6, false},
        {1, 100, 110, false, 9, true},
    };
    EXPECT_FALSE(checkLinearizable(bogus).linearizable);

    // Failed reads returned nothing and are dropped.
    std::vector<HistOp> failed_read = {
        {1, 10, 20, true, 5, true},
        {1, 30, 40, false, 0, false},
    };
    const auto rep = checkLinearizable(failed_read);
    EXPECT_TRUE(rep.linearizable);
    EXPECT_EQ(rep.ops, 1u);
}

// ---------------------------------------------------------------------
// Dead-MN timeout surfacing (regression for the no-hang guarantee)
// ---------------------------------------------------------------------

TEST(Chaos, DeadMnRequestsReturnTimeout)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);
    std::uint64_t v = 42;
    ASSERT_EQ(client.rwrite(addr, &v, 8), Status::kOk);

    // Permanent crash: every request must exhaust its retries and
    // surface kTimeout — never hang the submitting client.
    cluster.crashMn(0);
    const Tick before = cluster.eventQueue().now();
    EXPECT_EQ(client.rwrite(addr, &v, 8), Status::kTimeout);
    EXPECT_EQ(client.rread(addr, &v, 8), Status::kTimeout);
    // Retries + exponential backoff are bounded: well under a second
    // of simulated time for a data-path op.
    EXPECT_LT(cluster.eventQueue().now() - before, kSecond);
    EXPECT_GE(cluster.cn(0).stats().timeouts,
              2u * (cfg.clib.max_retries + 1));

    // The board restarts EMPTY: the old allocation is gone.
    cluster.restartMn(0);
    EXPECT_EQ(client.rread(addr, &v, 8), Status::kBadAddress);
    EXPECT_EQ(cluster.mn(0).stats().crashes, 1u);
}

// ---------------------------------------------------------------------
// Replica heal after rejoin
// ---------------------------------------------------------------------

TEST(Chaos, ReplicatedRegionHealsAfterRejoin)
{
    auto cfg = ModelConfig::prototype();
    Cluster cluster(cfg, 1, 3);
    ClioClient &client = cluster.createClient(0);
    ReplicatedRegion region(client, 4 * MiB, cluster.mn(0).nodeId(),
                            cluster.mn(1).nodeId());
    ASSERT_TRUE(region.ok());

    std::uint64_t v1 = 0xA1;
    ASSERT_EQ(region.write(0, &v1, 8), Status::kOk);

    // Primary board dies for real (port down + volatile state lost).
    cluster.crashMn(0);
    std::uint64_t out = 0;
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xA1u);
    EXPECT_EQ(region.failovers(), 1u);
    EXPECT_FALSE(region.primaryAlive());

    // Degraded write lands on the backup only.
    std::uint64_t v2 = 0xA2;
    ASSERT_EQ(region.write(8, &v2, 8), Status::kOk);

    // Rejoin + re-replicate onto the restarted (empty) board.
    cluster.restartMn(0);
    ASSERT_EQ(region.heal(cluster.mn(0).nodeId()), Status::kOk);
    EXPECT_TRUE(region.primaryAlive());
    EXPECT_EQ(region.resyncs(), 1u);

    // The healed copy serves reads directly (read-one, primary first):
    // both the pre-crash and the degraded-mode bytes must be there.
    ASSERT_EQ(region.read(0, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xA1u);
    ASSERT_EQ(region.read(8, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xA2u);
    EXPECT_EQ(region.failovers(), 1u); // no further failovers
}

// ---------------------------------------------------------------------
// Rack-level failure domain
// ---------------------------------------------------------------------

TEST(Chaos, RackKillDropsAndRecovers)
{
    auto cfg = ModelConfig::prototype();
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);
    ClioClient &client = cluster.createClient(0);
    const std::uint32_t home = cluster.homeMnOf(client.pid());
    const RackId home_rack = cluster.rackOfMn(home);

    const VirtAddr addr = client.ralloc(1 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);
    std::uint64_t v = 77;
    ASSERT_EQ(client.rwrite(addr, &v, 8), Status::kOk);

    // Killing an unrelated rack leaves rack-local traffic untouched.
    const RackId other = (home_rack + 1) % spec.racks;
    cluster.killRack(other);
    EXPECT_EQ(cluster.shardMap().mnCount(), 2u);
    std::uint64_t out = 0;
    ASSERT_EQ(client.rread(addr, &out, 8), Status::kOk);
    EXPECT_EQ(out, 77u);
    cluster.restoreRack(other);
    EXPECT_EQ(cluster.shardMap().mnCount(), 3u);

    // Killing the process' own rack (its ToR): requests can't leave
    // the NIC and surface kTimeout, not a hang.
    cluster.killRack(home_rack);
    EXPECT_EQ(client.rread(addr, &out, 8), Status::kTimeout);

    // Restore: the ring is exactly as before (deterministic vnode
    // points), the pid is homed back, but the board came back empty.
    cluster.restoreRack(home_rack);
    EXPECT_EQ(cluster.shardMap().mnCount(), 3u);
    EXPECT_EQ(cluster.homeMnOf(client.pid()), home);
    EXPECT_EQ(client.rread(addr, &out, 8), Status::kBadAddress);
    const VirtAddr addr2 = client.ralloc(1 * MiB).value_or(0);
    ASSERT_NE(addr2, 0u);
    ASSERT_EQ(client.rwrite(addr2, &v, 8), Status::kOk);
}

// ---------------------------------------------------------------------
// Randomized crash/recovery schedule, checked for linearizability
// ---------------------------------------------------------------------

struct ChaosRun
{
    std::vector<HistOp> history;
    ChaosStats chaos;
    std::uint64_t net_drops = 0;
    std::uint64_t net_corrupts = 0;
    std::uint64_t net_duplicates = 0;
    std::uint64_t cn_retries = 0;
    std::uint64_t cn_timeouts = 0;
    std::uint64_t resyncs = 0;
    Tick end_time = 0;
};

/** One full chaotic run: 3 racks, a replicated register under a
 * randomized primary-kill + packet-fault schedule, healed at the end.
 * Everything is derived from `seed`, so two runs with equal seeds must
 * produce identical histories and counters. */
ChaosRun
runChaosSchedule(std::uint64_t seed, EventQueueImpl impl)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.event_queue_impl = impl;
    cfg.clib.max_retries = 4;
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);
    ClioClient &client = cluster.createClient(0);
    const std::uint32_t primary_idx = cluster.homeMnOf(client.pid());
    const std::uint32_t backup_idx =
        (primary_idx + 1) % cluster.mnCount();
    ReplicatedRegion region(client, 1 * MiB,
                            cluster.mn(primary_idx).nodeId(),
                            cluster.mn(backup_idx).nodeId());
    EXPECT_TRUE(region.ok());

    FaultPlan::RandomOpts opts;
    opts.duration = 400 * kMicrosecond;
    opts.candidates = {primary_idx};
    opts.crashes = 1;
    opts.min_downtime = 80 * kMicrosecond;
    opts.max_downtime = 150 * kMicrosecond;
    opts.drop_rate = 0.02;
    opts.corrupt_rate = 0.03;
    opts.duplicate_rate = 0.03;
    const FaultPlan plan = FaultPlan::randomized(seed, opts);
    FaultInjector injector(cluster, plan, seed + 1);
    injector.arm();

    EventQueue &eq = cluster.eventQueue();
    Rng workload(seed + 2);
    ChaosRun run;
    constexpr std::uint64_t kKeys = 8;
    std::uint64_t wseq = 1;
    for (std::uint64_t i = 0; i < 120; i++) {
        const std::uint64_t key =
            i < kKeys ? i : workload.uniformInt(kKeys);
        const Tick invoked = eq.now();
        // Seed every key with a write first, then mix 60/40.
        if (i < kKeys || workload.chance(0.6)) {
            const std::uint64_t value = ((key + 1) << 20) + wseq++;
            const Status st = region.write(key * 8, &value, 8);
            run.history.push_back(
                {key, invoked, eq.now(), true, value, st == Status::kOk});
        } else {
            std::uint64_t out = 0;
            const Status st = region.read(key * 8, &out, 8);
            run.history.push_back(
                {key, invoked, eq.now(), false, out, st == Status::kOk});
        }
    }

    // Run past the plan horizon so the restart definitely happened,
    // then re-replicate onto the restarted board and read everything
    // back through the healed copy.
    eq.runUntilTime(std::max(eq.now(), plan.horizon()) + kMillisecond);
    EXPECT_TRUE(cluster.mnAlive(primary_idx));
    EXPECT_TRUE(cluster.mnAlive(backup_idx));
    if (!region.primaryAlive() || !region.backupAlive()) {
        const std::uint32_t dead_idx =
            region.primaryAlive() ? backup_idx : primary_idx;
        EXPECT_EQ(region.heal(cluster.mn(dead_idx).nodeId()),
                  Status::kOk);
    }
    for (std::uint64_t key = 0; key < kKeys; key++) {
        const Tick invoked = eq.now();
        std::uint64_t out = 0;
        const Status st = region.read(key * 8, &out, 8);
        run.history.push_back(
            {key, invoked, eq.now(), false, out, st == Status::kOk});
    }

    run.chaos = injector.stats();
    run.net_drops = cluster.network().stats().dropped_fault;
    run.net_corrupts = cluster.network().stats().corrupted;
    run.net_duplicates = cluster.network().stats().duplicated;
    run.cn_retries = cluster.cn(0).stats().retries;
    run.cn_timeouts = cluster.cn(0).stats().timeouts;
    run.resyncs = region.resyncs();
    run.end_time = eq.now();
    return run;
}

TEST(Chaos, RandomizedCrashRecoveryLinearizable)
{
    const std::uint64_t seed = ModelConfig::prototype().seed;
    const ChaosRun run =
        runChaosSchedule(seed, EventQueueImpl::kDefault);

    // The schedule actually did chaos: the primary died and came back.
    EXPECT_EQ(run.chaos.crashes, 1u);
    EXPECT_EQ(run.chaos.restarts, 1u);
    EXPECT_EQ(run.resyncs, 1u);

    // Post-heal reads all completed (the final 8 history entries).
    const std::size_t n = run.history.size();
    for (std::size_t i = n - 8; i < n; i++) {
        EXPECT_TRUE(run.history[i].ok)
            << "post-heal read of key " << run.history[i].key
            << " failed";
    }

    const LinearizeReport rep = checkLinearizable(run.history);
    EXPECT_TRUE(rep.linearizable)
        << "history not linearizable at key " << rep.key << " (seed "
        << seed << ")";
}

TEST(Chaos, ChaosScheduleByteIdentical)
{
    const std::uint64_t seed = ModelConfig::prototype().seed;
    const auto equal = [](const ChaosRun &a, const ChaosRun &b) {
        if (a.history.size() != b.history.size())
            return false;
        for (std::size_t i = 0; i < a.history.size(); i++) {
            const HistOp &x = a.history[i];
            const HistOp &y = b.history[i];
            if (x.key != y.key || x.invoked != y.invoked ||
                x.completed != y.completed ||
                x.is_write != y.is_write || x.value != y.value ||
                x.ok != y.ok)
                return false;
        }
        return a.chaos.crashes == b.chaos.crashes &&
               a.chaos.restarts == b.chaos.restarts &&
               a.chaos.drops == b.chaos.drops &&
               a.chaos.corrupts == b.chaos.corrupts &&
               a.chaos.duplicates == b.chaos.duplicates &&
               a.net_drops == b.net_drops &&
               a.net_corrupts == b.net_corrupts &&
               a.net_duplicates == b.net_duplicates &&
               a.cn_retries == b.cn_retries &&
               a.cn_timeouts == b.cn_timeouts &&
               a.resyncs == b.resyncs && a.end_time == b.end_time;
    };

    // Same seed, same engine: identical replay.
    const ChaosRun w1 =
        runChaosSchedule(seed, EventQueueImpl::kTimingWheel);
    const ChaosRun w2 =
        runChaosSchedule(seed, EventQueueImpl::kTimingWheel);
    EXPECT_TRUE(equal(w1, w2))
        << "same chaotic schedule diverged across two runs";

    // Same seed, other engine: the wheel and the heap order events
    // identically even under chaos.
    const ChaosRun h1 =
        runChaosSchedule(seed, EventQueueImpl::kBinaryHeap);
    EXPECT_TRUE(equal(w1, h1))
        << "wheel and heap diverged under the same chaotic schedule";

    // And a different seed explores a different schedule (sanity that
    // the seed actually drives the chaos).
    const ChaosRun other =
        runChaosSchedule(seed + 1, EventQueueImpl::kTimingWheel);
    EXPECT_FALSE(equal(w1, other));
}

// ---------------------------------------------------------------------
// Self-healing under randomized chaos: MN + CN crashes, a rack kill,
// and a heartbeat-loss window — with the controller health plane doing
// ALL recovery (zero client heal() calls).
// ---------------------------------------------------------------------

struct SelfHealRun
{
    std::vector<HistOp> history;
    ChaosStats chaos;
    std::uint64_t epoch = 0;
    std::uint64_t beacons = 0;
    std::uint64_t suspects = 0;
    std::uint64_t deaths = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t resyncs_completed = 0;
    std::uint64_t region_resyncs = 0;
    bool fully_redundant = false;
    Tick end_time = 0;
    /** (kind, tick, node, region) of every health-plane event. */
    std::vector<std::tuple<std::uint8_t, Tick, NodeId, std::uint64_t>>
        events;

    bool operator==(const SelfHealRun &o) const
    {
        if (history.size() != o.history.size())
            return false;
        for (std::size_t i = 0; i < history.size(); i++) {
            const HistOp &x = history[i];
            const HistOp &y = o.history[i];
            if (x.key != y.key || x.invoked != y.invoked ||
                x.completed != y.completed || x.is_write != y.is_write ||
                x.value != y.value || x.ok != y.ok)
                return false;
        }
        return chaos.crashes == o.chaos.crashes &&
               chaos.cn_crashes == o.chaos.cn_crashes &&
               chaos.rack_kills == o.chaos.rack_kills &&
               chaos.drops == o.chaos.drops &&
               chaos.corrupts == o.chaos.corrupts &&
               chaos.duplicates == o.chaos.duplicates &&
               epoch == o.epoch && beacons == o.beacons &&
               suspects == o.suspects && deaths == o.deaths &&
               rejoins == o.rejoins &&
               resyncs_completed == o.resyncs_completed &&
               region_resyncs == o.region_resyncs &&
               fully_redundant == o.fully_redundant &&
               end_time == o.end_time && events == o.events;
    }
};

/**
 * One self-healing chaotic run: 3 racks x (2 CN + 2 MN), health plane
 * on, a replicated register with copies in racks 0 and 1, and a
 * randomized schedule that kills the primary's MN (downtime > the
 * lease, so the death is always detected), one bystander CN, and rack
 * 2 (controller, client, and both replicas live elsewhere), plus a
 * 100 us heartbeat-only loss window (shorter than dead_after: it must
 * cause suspicion, never a false death). The client only reads and
 * writes; every repair is controller-driven.
 */
SelfHealRun
runSelfHealingSchedule(std::uint64_t seed, EventQueueImpl impl)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.event_queue_impl = impl;
    cfg.clib.max_retries = 4;
    cfg.health.enabled = true;
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 2;
    spec.mns_per_rack = 2;
    Cluster cluster(cfg, spec);
    ClioClient &client = cluster.createClient(0); // rack 0
    HealthPlane *hp = cluster.health();
    EXPECT_NE(hp, nullptr);

    // Replicas in racks 0 and 1: rack 2 stays replica-free so killing
    // it exercises membership churn without touching the region.
    std::uint32_t primary_idx = cluster.mnCount();
    std::uint32_t backup_idx = cluster.mnCount();
    for (std::uint32_t i = 0; i < cluster.mnCount(); i++) {
        if (cluster.rackOfMn(i) == 0 && primary_idx == cluster.mnCount())
            primary_idx = i;
        if (cluster.rackOfMn(i) == 1 && backup_idx == cluster.mnCount())
            backup_idx = i;
    }
    ReplicatedRegion region(client, 1 * MiB,
                            cluster.mn(primary_idx).nodeId(),
                            cluster.mn(backup_idx).nodeId());
    EXPECT_TRUE(region.ok());

    FaultPlan::RandomOpts opts;
    opts.duration = 2 * kMillisecond;
    opts.candidates = {primary_idx};
    opts.crashes = 1;
    // Downtime exceeds dead_after: the death is always detected, so
    // every schedule exercises the auto-resync path.
    opts.min_downtime = 250 * kMicrosecond;
    opts.max_downtime = 400 * kMicrosecond;
    opts.drop_rate = 0.01;
    opts.corrupt_rate = 0.02;
    opts.duplicate_rate = 0.02;
    // One bystander CN dies too (never CN 0, the app client's host).
    opts.cn_candidates = {1, 2, 3};
    opts.cn_crashes = 1;
    // Rack 2 only: rack 0 holds the controller and the client.
    opts.rack_candidates = {2};
    opts.rack_kills = 1;
    // Total heartbeat loss for 100 us: with a 20 us beacon period the
    // longest silent gap is ~120 us — past suspect_after (60 us),
    // short of dead_after (150 us).
    opts.hb_loss_rate = 1.0;
    opts.hb_loss_duration = 100 * kMicrosecond;
    const FaultPlan plan = FaultPlan::randomized(seed, opts);
    FaultInjector injector(cluster, plan, seed + 1);
    injector.arm();

    EventQueue &eq = cluster.eventQueue();
    Rng workload(seed + 2);
    SelfHealRun run;
    constexpr std::uint64_t kKeys = 8;
    std::uint64_t wseq = 1;
    for (std::uint64_t i = 0; i < 150; i++) {
        const std::uint64_t key =
            i < kKeys ? i : workload.uniformInt(kKeys);
        const Tick invoked = eq.now();
        if (i < kKeys || workload.chance(0.6)) {
            const std::uint64_t value = ((key + 1) << 20) + wseq++;
            const Status st = region.write(key * 8, &value, 8);
            run.history.push_back(
                {key, invoked, eq.now(), true, value, st == Status::kOk});
        } else {
            std::uint64_t out = 0;
            const Status st = region.read(key * 8, &out, 8);
            run.history.push_back(
                {key, invoked, eq.now(), false, out, st == Status::kOk});
        }
    }

    // Settle well past the horizon: detection (<= dead_after + a few
    // beacons), the chunked copy (~2 ms for 1 MiB), and any deferred
    // retries after a replacement died mid-copy all fit comfortably.
    eq.runUntilTime(std::max(eq.now(), plan.horizon()) +
                    15 * kMillisecond);

    // NO heal() call anywhere in this run: redundancy is restored by
    // the controller alone. Reads must see every acked write through
    // whatever replica set the plane converged on.
    for (std::uint64_t key = 0; key < kKeys; key++) {
        const Tick invoked = eq.now();
        std::uint64_t out = 0;
        const Status st = region.read(key * 8, &out, 8);
        run.history.push_back(
            {key, invoked, eq.now(), false, out, st == Status::kOk});
    }

    run.chaos = injector.stats();
    run.epoch = hp->epoch();
    run.beacons = hp->stats().beacons;
    run.suspects = hp->stats().suspects;
    run.deaths = hp->stats().deaths;
    run.rejoins = hp->stats().rejoins;
    run.resyncs_completed = hp->stats().resyncs_completed;
    run.region_resyncs = region.resyncs();
    run.fully_redundant = region.fullyRedundant();
    run.end_time = eq.now();
    for (const HealthEvent &e : hp->events())
        run.events.emplace_back(static_cast<std::uint8_t>(e.kind), e.at,
                                e.node, e.region_id);
    return run;
}

TEST(Chaos, SelfHealingRestoresRedundancyAndStaysLinearizable)
{
    const std::uint64_t seed = ModelConfig::prototype().seed;
    const SelfHealRun run =
        runSelfHealingSchedule(seed, EventQueueImpl::kDefault);

    // The schedule really was chaotic...
    EXPECT_EQ(run.chaos.crashes, 1u);
    EXPECT_EQ(run.chaos.cn_crashes, 1u);
    EXPECT_EQ(run.chaos.rack_kills, 1u);
    // ...and the plane saw it all: the primary MN, the bystander CN,
    // and rack 2's four nodes all died and rejoined.
    EXPECT_GE(run.deaths, 3u);
    EXPECT_GE(run.rejoins, 3u);
    EXPECT_GE(run.epoch, 1u + run.deaths + run.rejoins);
    // The heartbeat-loss window starved leases into suspicion, but
    // (being shorter than dead_after) never into a false death.
    EXPECT_GE(run.suspects, 1u);

    // The tentpole claim: full redundancy back with ZERO heal() calls.
    EXPECT_TRUE(run.fully_redundant) << "seed " << seed;
    EXPECT_GE(run.region_resyncs, 1u);
    EXPECT_GE(run.resyncs_completed, 1u);

    // Post-recovery reads all completed.
    const std::size_t n = run.history.size();
    for (std::size_t i = n - 8; i < n; i++) {
        EXPECT_TRUE(run.history[i].ok)
            << "post-recovery read of key " << run.history[i].key
            << " failed (seed " << seed << ")";
    }

    const LinearizeReport rep = checkLinearizable(run.history);
    EXPECT_TRUE(rep.linearizable)
        << "history not linearizable at key " << rep.key << " (seed "
        << seed << ")";
}

TEST(Chaos, SelfHealingScheduleByteIdentical)
{
    const std::uint64_t seed = ModelConfig::prototype().seed;
    const SelfHealRun w1 =
        runSelfHealingSchedule(seed, EventQueueImpl::kTimingWheel);
    const SelfHealRun w2 =
        runSelfHealingSchedule(seed, EventQueueImpl::kTimingWheel);
    EXPECT_TRUE(w1 == w2)
        << "same self-healing schedule diverged across two runs";

    const SelfHealRun h1 =
        runSelfHealingSchedule(seed, EventQueueImpl::kBinaryHeap);
    EXPECT_TRUE(w1 == h1)
        << "wheel and heap diverged under the same self-healing "
           "schedule";

    const SelfHealRun other =
        runSelfHealingSchedule(seed + 1, EventQueueImpl::kTimingWheel);
    EXPECT_FALSE(w1 == other);
}

} // namespace
} // namespace clio
