/**
 * @file
 * Unit tests for the simulation core: event queue ordering, RNG
 * determinism and distributions, histogram percentiles, types helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace clio {
namespace {

TEST(Types, UnitConstants)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMicrosecond, 1000u * 1000);
    EXPECT_EQ(kSecond, 1000ull * 1000 * 1000 * 1000);
    EXPECT_DOUBLE_EQ(ticksToUs(2500 * kNanosecond), 2.5);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
}

TEST(Types, TicksPerByteRoundsUp)
{
    // 10 Gbps: 8e12/1e10 = 800 ticks per byte exactly.
    EXPECT_EQ(ticksPerByte(10ull * 1000 * 1000 * 1000), 800u);
    // 3 bps: must round up, never undershoot the serialization time.
    EXPECT_GE(ticksPerByte(3) * 3, 8 * kSecond);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        fired++;
        eq.scheduleAfter(5, [&] { fired++; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 100; i++)
        eq.schedule(static_cast<Tick>(i), [&] { count++; });
    bool ok = eq.runUntil([&] { return count == 7; });
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 7);
    EXPECT_EQ(eq.pending(), 93u);
}

TEST(EventQueue, RunUntilTimeAdvancesClock)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&] { count++; });
    eq.schedule(200, [&] { count++; });
    eq.runUntilTime(150);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 150u);
    eq.runUntilTime(250);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    EXPECT_TRUE(eq.empty());
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; i++) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformIntInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 80000; i++)
        counts[rng.uniformInt(8)]++;
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; i++)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += rng.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Zipf, SkewsTowardHead)
{
    ZipfianGenerator zipf(1000, 0.99, 5);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; i++)
        counts[zipf.next()]++;
    // Head item should dominate any mid-range item heavily.
    EXPECT_GT(counts[0], counts[500] * 20);
    // All samples in range (indexing above would have thrown).
    int total = 0;
    for (int c : counts)
        total += c;
    EXPECT_EQ(total, 100000);
}

TEST(Zipf, SingleItemDomain)
{
    ZipfianGenerator zipf(1, 0.99, 5);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(zipf.next(), 0u);
}

TEST(Histogram, BasicStats)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 100; v++)
        h.record(v * kNanosecond);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), kNanosecond);
    EXPECT_EQ(h.max(), 100 * kNanosecond);
    EXPECT_NEAR(h.mean(), 50.5 * kNanosecond, kNanosecond);
}

TEST(Histogram, PercentileAccuracy)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 1000; v++)
        h.record(v * kMicrosecond);
    // Log-linear buckets give ~1.6% resolution; allow 3%.
    EXPECT_NEAR(static_cast<double>(h.median()),
                500.0 * kMicrosecond, 0.03 * 500 * kMicrosecond);
    EXPECT_NEAR(static_cast<double>(h.p99()),
                990.0 * kMicrosecond, 0.03 * 990 * kMicrosecond);
    EXPECT_EQ(h.percentile(100.0), 1000 * kMicrosecond);
}

TEST(Histogram, PercentileNeverUnderstates)
{
    LatencyHistogram h;
    Rng rng(3);
    std::vector<Tick> samples;
    for (int i = 0; i < 5000; i++) {
        Tick v = rng.uniformRange(1, 10 * kMicrosecond);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    // p90 from histogram >= exact p90 (upper-edge reporting).
    const Tick exact_p90 = samples[static_cast<std::size_t>(
        0.9 * static_cast<double>(samples.size())) - 1];
    EXPECT_GE(h.percentile(90.0), exact_p90);
}

TEST(Histogram, MergeAndReset)
{
    LatencyHistogram a, b;
    a.record(10);
    b.record(20);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.max(), 20u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.percentile(50), 0u);
}

TEST(Histogram, CdfMonotone)
{
    LatencyHistogram h;
    Rng rng(17);
    for (int i = 0; i < 10000; i++)
        h.record(rng.uniformRange(kNanosecond, kMillisecond));
    auto cdf = h.cdf(50);
    ASSERT_EQ(cdf.size(), 50u);
    for (std::size_t i = 1; i < cdf.size(); i++) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Throughput, GbpsComputation)
{
    ThroughputMeter m;
    m.record(1250); // 1250 B = 10^4 bits
    EXPECT_DOUBLE_EQ(m.gbps(kMicrosecond), 10.0);
    EXPECT_DOUBLE_EQ(m.mops(kSecond), 1e-6);
    m.reset();
    EXPECT_EQ(m.bytes(), 0u);
}

} // namespace
} // namespace clio
