/**
 * @file
 * Unit tests for the simulation core: event queue ordering, RNG
 * determinism and distributions, histogram percentiles, types helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace clio {
namespace {

TEST(Types, UnitConstants)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMicrosecond, 1000u * 1000);
    EXPECT_EQ(kSecond, 1000ull * 1000 * 1000 * 1000);
    EXPECT_DOUBLE_EQ(ticksToUs(2500 * kNanosecond), 2.5);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
}

TEST(Types, TicksPerByteRoundsUp)
{
    // 10 Gbps: 8e12/1e10 = 800 ticks per byte exactly.
    EXPECT_EQ(ticksPerByte(10ull * 1000 * 1000 * 1000), 800u);
    // 3 bps: must round up, never undershoot the serialization time.
    EXPECT_GE(ticksPerByte(3) * 3, 8 * kSecond);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        fired++;
        eq.scheduleAfter(5, [&] { fired++; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 100; i++)
        eq.schedule(static_cast<Tick>(i), [&] { count++; });
    bool ok = eq.runUntil([&] { return count == 7; });
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 7);
    EXPECT_EQ(eq.pending(), 93u);
}

TEST(EventQueue, RunUntilTimeAdvancesClock)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(100, [&] { count++; });
    eq.schedule(200, [&] { count++; });
    eq.runUntilTime(150);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 150u);
    eq.runUntilTime(250);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    EXPECT_TRUE(eq.empty());
}

// ----------------------------------------------------------------
// Pin tests: exact pop/FIFO/tie-break semantics the timing-wheel
// rewrite must preserve event-for-event.
// ----------------------------------------------------------------

TEST(EventQueue, SameTickFifoUnder100kEvents)
{
    EventQueue eq;
    const int n = 100000;
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        eq.schedule(42 * kMicrosecond, [&order, i] { order.push_back(i); });
    eq.runAll();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(eq.executed(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(eq.now(), 42 * kMicrosecond);
}

TEST(EventQueue, TieBreakIsInsertionOrderAcrossInterleavedTicks)
{
    // Interleave schedules across three ticks; within each tick the
    // insertion order (not the schedule-call pattern) must win.
    EventQueue eq;
    std::vector<int> order;
    int tag = 0;
    std::vector<int> expect_by_tick[3];
    for (int round = 0; round < 50; round++) {
        for (Tick t : {Tick{30}, Tick{10}, Tick{20}}) {
            const int id = tag++;
            expect_by_tick[t / 10 - 1].push_back(id);
            eq.schedule(t, [&order, id] { order.push_back(id); });
        }
    }
    eq.runAll();
    std::vector<int> expect;
    for (const auto &v : expect_by_tick)
        expect.insert(expect.end(), v.begin(), v.end());
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, MixedHorizonOrdering)
{
    // Events spread across wildly different magnitudes (all wheel
    // levels for a 64-slot hierarchy) must still pop in time order.
    EventQueue eq;
    std::vector<Tick> fired;
    std::vector<Tick> ticks;
    for (int lvl = 0; lvl < 10; lvl++) {
        const Tick base = Tick{1} << (6 * lvl);
        ticks.push_back(base);
        ticks.push_back(base + 1);
        ticks.push_back(base * 3 + 7);
    }
    Rng rng(5);
    for (std::size_t i = ticks.size(); i > 1; i--)
        std::swap(ticks[i - 1], ticks[rng.uniformInt(i)]);
    for (Tick t : ticks)
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.runAll();
    ASSERT_EQ(fired.size(), ticks.size());
    std::sort(ticks.begin(), ticks.end());
    EXPECT_EQ(fired, ticks);
    EXPECT_EQ(eq.now(), ticks.back());
}

TEST(EventQueue, ScheduleAtNowDuringCallbackRunsSameDrain)
{
    // A callback scheduling at the *current* tick must run after all
    // previously-queued same-tick events, within the same runAll.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        eq.schedule(100, [&] { order.push_back(2); });
    });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilTimeReentrancy)
{
    // Events that schedule new events at <= t must have those run
    // within the same runUntilTime(t) call; events they schedule
    // beyond t must stay pending, and now() must land exactly on t.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.schedule(50, [&] {
            order.push_back(2);
            eq.scheduleAfter(0, [&] { order.push_back(3); });
            eq.schedule(200, [&] { order.push_back(9); });
        });
    });
    eq.runUntilTime(150);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 150u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntilTime(400);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 9}));
    EXPECT_EQ(eq.now(), 400u);
    // Scheduling exactly at the advanced wall-time is legal.
    eq.schedule(400, [&] { order.push_back(4); });
    eq.runAll();
    EXPECT_EQ(order.back(), 4);
}

TEST(EventQueue, PendingAndExecutedCounters)
{
    EventQueue eq;
    for (int i = 0; i < 32; i++)
        eq.schedule(static_cast<Tick>(i * 1000), [] {});
    EXPECT_EQ(eq.pending(), 32u);
    EXPECT_EQ(eq.executed(), 0u);
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.pending(), 27u);
    EXPECT_EQ(eq.executed(), 5u);
    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 32u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RandomizedOrderMatchesStableSort)
{
    // Differential pin: a random schedule/run interleaving must pop
    // in exactly (when, insertion order), i.e. a stable sort by time.
    EventQueue eq;
    Rng rng(2022);
    struct Rec
    {
        Tick when;
        int id;
    };
    std::vector<Rec> scheduled;
    std::vector<int> fired;
    int next_id = 0;
    for (int round = 0; round < 200; round++) {
        const int burst = 1 + static_cast<int>(rng.uniformInt(8));
        for (int i = 0; i < burst; i++) {
            // Mix of near, same-tick, and far-future times.
            Tick when = eq.now();
            switch (rng.uniformInt(4)) {
            case 0: break;
            case 1: when += rng.uniformInt(3); break;
            case 2: when += rng.uniformInt(10 * kMicrosecond); break;
            default:
                when += rng.uniformInt(kSecond);
                break;
            }
            const int id = next_id++;
            scheduled.push_back({when, id});
            eq.schedule(when, [&fired, id] { fired.push_back(id); });
        }
        const int pops = static_cast<int>(rng.uniformInt(4));
        for (int i = 0; i < pops; i++)
            eq.runOne();
    }
    eq.runAll();
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const Rec &a, const Rec &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(fired.size(), scheduled.size());
    for (std::size_t i = 0; i < fired.size(); i++)
        ASSERT_EQ(fired[i], scheduled[i].id);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; i++) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformIntInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 80000; i++)
        counts[rng.uniformInt(8)]++;
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; i++)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += rng.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Zipf, SkewsTowardHead)
{
    ZipfianGenerator zipf(1000, 0.99, 5);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; i++)
        counts[zipf.next()]++;
    // Head item should dominate any mid-range item heavily.
    EXPECT_GT(counts[0], counts[500] * 20);
    // All samples in range (indexing above would have thrown).
    int total = 0;
    for (int c : counts)
        total += c;
    EXPECT_EQ(total, 100000);
}

TEST(Zipf, SingleItemDomain)
{
    ZipfianGenerator zipf(1, 0.99, 5);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(zipf.next(), 0u);
}

TEST(Histogram, BasicStats)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 100; v++)
        h.record(v * kNanosecond);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), kNanosecond);
    EXPECT_EQ(h.max(), 100 * kNanosecond);
    EXPECT_NEAR(h.mean(), 50.5 * kNanosecond, kNanosecond);
}

TEST(Histogram, PercentileAccuracy)
{
    LatencyHistogram h;
    for (Tick v = 1; v <= 1000; v++)
        h.record(v * kMicrosecond);
    // Log-linear buckets give ~1.6% resolution; allow 3%.
    EXPECT_NEAR(static_cast<double>(h.median()),
                500.0 * kMicrosecond, 0.03 * 500 * kMicrosecond);
    EXPECT_NEAR(static_cast<double>(h.p99()),
                990.0 * kMicrosecond, 0.03 * 990 * kMicrosecond);
    EXPECT_EQ(h.percentile(100.0), 1000 * kMicrosecond);
}

TEST(Histogram, PercentileNeverUnderstates)
{
    LatencyHistogram h;
    Rng rng(3);
    std::vector<Tick> samples;
    for (int i = 0; i < 5000; i++) {
        Tick v = rng.uniformRange(1, 10 * kMicrosecond);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    // p90 from histogram >= exact p90 (upper-edge reporting).
    const Tick exact_p90 = samples[static_cast<std::size_t>(
        0.9 * static_cast<double>(samples.size())) - 1];
    EXPECT_GE(h.percentile(90.0), exact_p90);
}

TEST(Histogram, MergeAndReset)
{
    LatencyHistogram a, b;
    a.record(10);
    b.record(20);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.max(), 20u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.percentile(50), 0u);
}

TEST(Histogram, EmptyAndSingleSampleEdgeCases)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(100.0), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);

    h.record(777 * kNanosecond);
    EXPECT_EQ(h.percentile(0.0), 777 * kNanosecond);
    EXPECT_EQ(h.percentile(50.0), 777 * kNanosecond);
    EXPECT_EQ(h.percentile(100.0), 777 * kNanosecond);
}

TEST(Histogram, PercentileClampsToMax)
{
    // A sample near a bucket's lower edge: the bucket's upper edge
    // exceeds the true maximum and must be clamped to max().
    LatencyHistogram h;
    const Tick v = (Tick{1} << 40) + 1;
    h.record(v);
    EXPECT_EQ(h.percentile(99.9), v);
    EXPECT_EQ(h.percentile(100.0), v);
}

TEST(Histogram, MergeEmptyKeepsExtremes)
{
    LatencyHistogram a, empty;
    a.record(5 * kMicrosecond);
    a.record(9 * kMicrosecond);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 5 * kMicrosecond);
    EXPECT_EQ(a.max(), 9 * kMicrosecond);
    // Merging INTO a fresh histogram must adopt the samples' min,
    // not keep the empty histogram's sentinel.
    LatencyHistogram b;
    b.merge(a);
    EXPECT_EQ(b.min(), 5 * kMicrosecond);
    EXPECT_EQ(b.percentile(0.0), 5 * kMicrosecond);
}

TEST(Histogram, CdfMonotone)
{
    LatencyHistogram h;
    Rng rng(17);
    for (int i = 0; i < 10000; i++)
        h.record(rng.uniformRange(kNanosecond, kMillisecond));
    auto cdf = h.cdf(50);
    ASSERT_EQ(cdf.size(), 50u);
    for (std::size_t i = 1; i < cdf.size(); i++) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Throughput, GbpsComputation)
{
    ThroughputMeter m;
    m.record(1250); // 1250 B = 10^4 bits
    EXPECT_DOUBLE_EQ(m.gbps(kMicrosecond), 10.0);
    EXPECT_DOUBLE_EQ(m.mops(kSecond), 1e-6);
    m.reset();
    EXPECT_EQ(m.bytes(), 0u);
}

} // namespace
} // namespace clio
