/**
 * @file
 * Reproducibility: identical configurations and seeds must produce
 * bit-identical simulations — including under fault injection and
 * across every stats counter. This is what makes the figure benches
 * and the fault-injection tests stable.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/kv_store.hh"
#include "chaos/fault_plan.hh"
#include "cluster/cluster.hh"
#include "offload/chain.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

struct RunResult
{
    std::vector<std::uint8_t> final_data;
    std::uint64_t retries = 0;
    std::uint64_t nacks = 0;
    std::uint64_t reordered = 0;
    std::uint64_t page_faults = 0;
    Tick end_time = 0;
    std::vector<Tick> latencies;
    /** Offload-engine occupancy (chained-offload workload): pins the
     * scheduler's arbitration order in the byte-compare. */
    Tick engine_busy = 0;
    Tick engine_wait = 0;
};

RunResult
runWorkload(std::uint64_t seed)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.net.loss_rate = 0.05;
    cfg.net.corrupt_rate = 0.03;
    cfg.net.reorder_rate = 0.15;
    cfg.clib.max_retries = 10;
    Cluster cluster(cfg, 2, 2);
    ClioClient &a = cluster.createClient(0);
    ClioClient &b = cluster.createClient(1);

    const VirtAddr pa = a.ralloc(16 * MiB).value_or(0);
    const VirtAddr pb = b.ralloc(16 * MiB).value_or(0);

    RunResult out;
    Rng rng(seed * 3 + 1);
    for (int i = 0; i < 120; i++) {
        ClioClient &client = (i % 3 == 0) ? b : a;
        const VirtAddr base = (i % 3 == 0) ? pb : pa;
        const VirtAddr at = base + rng.uniformInt(8 * MiB);
        std::uint64_t value = rng.next();
        const Tick t0 = cluster.eventQueue().now();
        if (rng.chance(0.5)) {
            client.rwrite(at, &value, 8);
        } else {
            client.rread(at, &value, 8);
        }
        out.latencies.push_back(cluster.eventQueue().now() - t0);
    }
    out.final_data.resize(64 * KiB);
    a.rread(pa, out.final_data.data(), out.final_data.size());
    out.retries =
        cluster.cn(0).stats().retries + cluster.cn(1).stats().retries;
    out.nacks =
        cluster.cn(0).stats().nacks + cluster.cn(1).stats().nacks;
    out.reordered = cluster.network().stats().reordered;
    out.page_faults = cluster.mn(0).stats().page_faults +
                      cluster.mn(1).stats().page_faults;
    out.end_time = cluster.eventQueue().now();
    return out;
}

/**
 * Append a run's recorded stats to the file named by CLIO_STATS_OUT
 * (no-op when unset). The `determinism` ctest runs this binary twice
 * in fresh processes with the same CLIO_SEED and diffs the two dumps,
 * catching nondeterminism that hides inside one process (ASLR-derived
 * hashing, static init order) which the in-process tests below cannot.
 */
void
dumpStats(const char *tag, std::uint64_t seed, const RunResult &r)
{
    const char *path = std::getenv("CLIO_STATS_OUT");
    if (!path || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    ASSERT_NE(f, nullptr) << "cannot open CLIO_STATS_OUT " << path;
    std::uint64_t data_hash = 1469598103934665603ull; // FNV-1a
    for (std::uint8_t b : r.final_data)
        data_hash = (data_hash ^ b) * 1099511628211ull;
    std::fprintf(f,
                 "%s seed=%llu data=%016llx retries=%llu nacks=%llu "
                 "reordered=%llu faults=%llu end=%llu busy=%llu "
                 "wait=%llu",
                 tag, (unsigned long long)seed,
                 (unsigned long long)data_hash,
                 (unsigned long long)r.retries, (unsigned long long)r.nacks,
                 (unsigned long long)r.reordered,
                 (unsigned long long)r.page_faults,
                 (unsigned long long)r.end_time,
                 (unsigned long long)r.engine_busy,
                 (unsigned long long)r.engine_wait);
    for (Tick t : r.latencies)
        std::fprintf(f, " %llu", (unsigned long long)t);
    std::fprintf(f, "\n");
    std::fclose(f);
}

/**
 * Multi-rack variant: a 3-rack sharded cluster under the same fault
 * injection, with one shared client forcing cross-spine traffic, so
 * the aggregation-hop code paths are covered by the byte-compare too.
 */
RunResult
runMultiRackWorkload(std::uint64_t seed)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.net.loss_rate = 0.05;
    cfg.net.corrupt_rate = 0.03;
    cfg.net.reorder_rate = 0.15;
    cfg.clib.max_retries = 10;
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);
    ClioClient &a = cluster.createClient(0);
    ClioClient &b = cluster.createClient(1);
    // A rack-2 process in rack 0's RAS: every one of its ops crosses
    // the spine.
    ClioClient &far = cluster.createSharedClient(2, a);

    const VirtAddr pa = a.ralloc(16 * MiB).value_or(0);
    const VirtAddr pb = b.ralloc(16 * MiB).value_or(0);

    RunResult out;
    Rng rng(seed * 5 + 3);
    for (int i = 0; i < 120; i++) {
        ClioClient &client =
            (i % 4 == 0) ? far : ((i % 3 == 0) ? b : a);
        const VirtAddr base = (i % 3 == 0 && i % 4 != 0) ? pb : pa;
        const VirtAddr at = base + rng.uniformInt(8 * MiB);
        std::uint64_t value = rng.next();
        const Tick t0 = cluster.eventQueue().now();
        if (rng.chance(0.5)) {
            client.rwrite(at, &value, 8);
        } else {
            client.rread(at, &value, 8);
        }
        out.latencies.push_back(cluster.eventQueue().now() - t0);
    }
    out.final_data.resize(64 * KiB);
    a.rread(pa, out.final_data.data(), out.final_data.size());
    for (std::uint32_t cn = 0; cn < cluster.cnCount(); cn++) {
        out.retries += cluster.cn(cn).stats().retries;
        out.nacks += cluster.cn(cn).stats().nacks;
    }
    out.reordered = cluster.network().stats().reordered;
    for (std::uint32_t mn = 0; mn < cluster.mnCount(); mn++)
        out.page_faults += cluster.mn(mn).stats().page_faults;
    out.end_time = cluster.eventQueue().now();
    return out;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    const std::uint64_t seed = defaultSeed(1234);
    const RunResult r1 = runWorkload(seed);
    const RunResult r2 = runWorkload(seed);
    dumpStats("identical", seed, r1);
    EXPECT_EQ(r1.final_data, r2.final_data);
    EXPECT_EQ(r1.retries, r2.retries);
    EXPECT_EQ(r1.nacks, r2.nacks);
    EXPECT_EQ(r1.reordered, r2.reordered);
    EXPECT_EQ(r1.page_faults, r2.page_faults);
    EXPECT_EQ(r1.end_time, r2.end_time);
    EXPECT_EQ(r1.latencies, r2.latencies);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const std::uint64_t seed = defaultSeed(1234);
    const RunResult r1 = runWorkload(seed);
    const RunResult r2 = runWorkload(seed + 4444);
    // Fault injection differs, so the timing trace must differ.
    EXPECT_NE(r1.latencies, r2.latencies);
}

TEST(Determinism, MultiRackIdenticalSeedsIdenticalRuns)
{
    const std::uint64_t seed = defaultSeed(4321);
    const RunResult r1 = runMultiRackWorkload(seed);
    const RunResult r2 = runMultiRackWorkload(seed);
    dumpStats("multirack", seed, r1);
    EXPECT_EQ(r1.final_data, r2.final_data);
    EXPECT_EQ(r1.retries, r2.retries);
    EXPECT_EQ(r1.nacks, r2.nacks);
    EXPECT_EQ(r1.reordered, r2.reordered);
    EXPECT_EQ(r1.page_faults, r2.page_faults);
    EXPECT_EQ(r1.end_time, r2.end_time);
    EXPECT_EQ(r1.latencies, r2.latencies);
}

TEST(Determinism, FaultInjectionActuallyFired)
{
    const std::uint64_t seed = defaultSeed(1234);
    const RunResult r = runWorkload(seed);
    dumpStats("faults", seed, r);
    EXPECT_GT(r.retries + r.nacks, 0u);
    EXPECT_GT(r.reordered, 0u);
    EXPECT_GT(r.page_faults, 0u);
}

/**
 * Chaos variant: a 3-rack sharded cluster under an EXPLICIT fault
 * plan — an MN crash + restart plus a packet drop/corrupt/duplicate
 * window — so crash recovery, board restart, shard-map remove/re-add,
 * and the fault-hook RNG stream are all inside the byte-compare.
 */
RunResult
runChaosWorkload(std::uint64_t seed, EventQueueImpl impl)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.event_queue_impl = impl;
    cfg.clib.max_retries = 6;
    ClusterSpec spec;
    spec.racks = 3;
    spec.cns_per_rack = 1;
    spec.mns_per_rack = 1;
    Cluster cluster(cfg, spec);
    ClioClient &a = cluster.createClient(0);

    const std::uint32_t victim = cluster.homeMnOf(a.pid());
    const VirtAddr pa = a.ralloc(8 * MiB).value_or(0);

    FaultPlan plan;
    plan.crashMn(120 * kMicrosecond, victim)
        .restartMn(400 * kMicrosecond, victim);
    PacketFaultWindow w;
    w.start = 0;
    w.end = 600 * kMicrosecond;
    w.drop_rate = 0.03;
    w.corrupt_rate = 0.05;
    w.duplicate_rate = 0.05;
    plan.packetFaults(w);
    FaultInjector injector(cluster, plan, seed + 9);
    injector.arm();

    RunResult out;
    Rng rng(seed * 7 + 5);
    for (int i = 0; i < 120; i++) {
        const VirtAddr at = pa + rng.uniformInt(4 * MiB);
        std::uint64_t value = rng.next();
        const Tick t0 = cluster.eventQueue().now();
        Status st;
        if (rng.chance(0.5)) {
            st = a.rwrite(at, &value, 8);
        } else {
            st = a.rread(at, &value, 8);
        }
        // Record outcome identity too: crash-window ops fail, and the
        // exact failure pattern must replay.
        out.latencies.push_back(cluster.eventQueue().now() - t0);
        out.final_data.push_back(static_cast<std::uint8_t>(st));
    }
    cluster.eventQueue().runUntilTime(
        std::max(cluster.eventQueue().now(), plan.horizon()) +
        kMillisecond);
    out.retries = cluster.cn(0).stats().retries;
    out.nacks = cluster.cn(0).stats().nacks +
                cluster.cn(0).stats().timeouts;
    // Fold every injected-fault counter into one replay-checked sum.
    out.reordered = cluster.network().stats().dropped_fault +
                    cluster.network().stats().duplicated +
                    cluster.network().stats().corrupted +
                    injector.stats().drops + injector.stats().corrupts +
                    injector.stats().duplicates;
    for (std::uint32_t mn = 0; mn < cluster.mnCount(); mn++)
        out.page_faults += cluster.mn(mn).stats().page_faults;
    out.end_time = cluster.eventQueue().now();
    return out;
}

TEST(Determinism, ChaosIdenticalSeedsIdenticalRuns)
{
    const std::uint64_t seed = defaultSeed(1234);
    const RunResult r1 = runChaosWorkload(seed, EventQueueImpl::kDefault);
    const RunResult r2 = runChaosWorkload(seed, EventQueueImpl::kDefault);
    dumpStats("chaos", seed, r1);
    EXPECT_EQ(r1.final_data, r2.final_data); // per-op status bytes
    EXPECT_EQ(r1.retries, r2.retries);
    EXPECT_EQ(r1.nacks, r2.nacks);
    EXPECT_EQ(r1.reordered, r2.reordered);
    EXPECT_EQ(r1.page_faults, r2.page_faults);
    EXPECT_EQ(r1.end_time, r2.end_time);
    EXPECT_EQ(r1.latencies, r2.latencies);
    // The plan really fired: at least one op failed inside the crash
    // window and at least one packet-level fault was injected.
    EXPECT_NE(r1.final_data,
              std::vector<std::uint8_t>(r1.final_data.size(),
                                        std::uint8_t{0}));
    EXPECT_GT(r1.reordered, 0u);
}

/**
 * Chained-offload variant: Clio-KV deployed through the typed
 * registry, concurrent chained multi-get plans racing for the two
 * offload engines. The engine scheduler's busy/wait tick totals go
 * into the compare, so arbitration order itself is pinned across runs
 * and across both event-queue engines. No packet faults here: the
 * chaos workloads cover retries, and a clean network keeps the
 * congestion window open so the chains genuinely overlap and the
 * arbiter has queueing to decide every round.
 */
RunResult
runChainedOffloadWorkload(std::uint64_t seed, EventQueueImpl impl)
{
    auto cfg = ModelConfig::prototype();
    cfg.seed = seed;
    cfg.event_queue_impl = impl;
    cfg.offload.engines = 2;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const NodeId mn = cluster.mn(0).nodeId();
    cluster.mn(0).registerOffload(ClioKvOffload::descriptor(1),
                                  std::make_shared<ClioKvOffload>(256));

    Rng rng(seed * 11 + 7);
    RunResult out;
    ClioKvClient kv(client, {mn}, 1);
    for (int i = 0; i < 40; i++) {
        const std::string key = "key-" + std::to_string(i);
        kv.put(key, key + "=" + std::to_string(rng.next() % 1000));
    }
    for (int round = 0; round < 25; round++) {
        // Four chained lookup plans in flight at once: more chains
        // than engines, so the arbiter has real queueing to decide.
        const Tick t0 = cluster.eventQueue().now();
        std::vector<HandlePtr> handles;
        for (int c = 0; c < 4; c++) {
            ChainPlan plan;
            for (int s = 0; s < 3; s++) {
                const auto pick = rng.uniformInt(50); // some misses
                plan.stage(1, kvEncode(KvOp::kGet,
                                       "key-" + std::to_string(pick)));
            }
            plan.perStageReplies();
            handles.push_back(client.rcallChainAsync(mn, plan, 4096));
        }
        client.rpoll(handles);
        out.latencies.push_back(cluster.eventQueue().now() - t0);
        for (const HandlePtr &h : handles) {
            out.final_data.push_back(static_cast<std::uint8_t>(h->status));
            for (const OffloadStageReply &stage : h->stages)
                out.final_data.push_back(
                    static_cast<std::uint8_t>(stage.value));
        }
    }
    out.retries = cluster.cn(0).stats().retries;
    out.nacks = cluster.cn(0).stats().nacks;
    out.reordered = cluster.network().stats().reordered;
    out.page_faults = cluster.mn(0).stats().page_faults;
    const EngineSchedulerStats &es =
        cluster.mn(0).offloadRuntime().scheduler().stats();
    out.engine_busy = es.busy_ticks;
    out.engine_wait = es.wait_ticks;
    out.end_time = cluster.eventQueue().now();
    return out;
}

TEST(Determinism, ChainedOffloadIdenticalSeedsIdenticalRuns)
{
    const std::uint64_t seed = defaultSeed(99);
    const RunResult r1 =
        runChainedOffloadWorkload(seed, EventQueueImpl::kDefault);
    const RunResult r2 =
        runChainedOffloadWorkload(seed, EventQueueImpl::kDefault);
    dumpStats("chains", seed, r1);
    EXPECT_EQ(r1.final_data, r2.final_data);
    EXPECT_EQ(r1.retries, r2.retries);
    EXPECT_EQ(r1.engine_busy, r2.engine_busy);
    EXPECT_EQ(r1.engine_wait, r2.engine_wait);
    EXPECT_EQ(r1.end_time, r2.end_time);
    EXPECT_EQ(r1.latencies, r2.latencies);
    // The workload exercised real contention: engines actually queued.
    EXPECT_GT(r1.engine_busy, 0u);
    EXPECT_GT(r1.engine_wait, 0u);
}

TEST(Determinism, ChainedOffloadWheelHeapIdentical)
{
    const std::uint64_t seed = defaultSeed(99);
    const RunResult wheel =
        runChainedOffloadWorkload(seed, EventQueueImpl::kTimingWheel);
    const RunResult heap =
        runChainedOffloadWorkload(seed, EventQueueImpl::kBinaryHeap);
    EXPECT_EQ(wheel.final_data, heap.final_data);
    EXPECT_EQ(wheel.retries, heap.retries);
    EXPECT_EQ(wheel.engine_busy, heap.engine_busy);
    EXPECT_EQ(wheel.engine_wait, heap.engine_wait);
    EXPECT_EQ(wheel.end_time, heap.end_time);
    EXPECT_EQ(wheel.latencies, heap.latencies);
}

TEST(Determinism, ChaosWheelHeapIdentical)
{
    // The same chaotic schedule must replay byte-identically on BOTH
    // event-queue engines: crash/restart events, fault-hook draws, and
    // retry timers interleave through the queue, so any ordering
    // divergence between the wheel and the heap shows up here.
    const std::uint64_t seed = defaultSeed(1234);
    const RunResult wheel =
        runChaosWorkload(seed, EventQueueImpl::kTimingWheel);
    const RunResult heap =
        runChaosWorkload(seed, EventQueueImpl::kBinaryHeap);
    EXPECT_EQ(wheel.final_data, heap.final_data);
    EXPECT_EQ(wheel.retries, heap.retries);
    EXPECT_EQ(wheel.nacks, heap.nacks);
    EXPECT_EQ(wheel.reordered, heap.reordered);
    EXPECT_EQ(wheel.page_faults, heap.page_faults);
    EXPECT_EQ(wheel.end_time, heap.end_time);
    EXPECT_EQ(wheel.latencies, heap.latencies);
}

} // namespace
} // namespace clio
