/**
 * @file
 * Tests for the developer simulator (§5) and cross-CN shared address
 * spaces (§3.1): processes on different CNs sharing one RAS, with
 * MN-side locks providing mutual exclusion (T3).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "apps/kv_store.hh"
#include "cluster/cluster.hh"
#include "devsim/dev_board.hh"

namespace clio {
namespace {

TEST(DevBoard, FunctionalRoundTrip)
{
    DevBoard dev;
    DevProcess proc = dev.openProcess();
    const VirtAddr addr = proc.ralloc(8 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);
    const char msg[] = "developing without hardware";
    ASSERT_EQ(proc.rwrite(addr, msg, sizeof(msg)), Status::kOk);
    char out[sizeof(msg)] = {};
    ASSERT_EQ(proc.rread(addr, out, sizeof(out)), Status::kOk);
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(proc.rfree(addr), Status::kOk);
    EXPECT_EQ(proc.rread(addr, out, 1), Status::kBadAddress);
}

TEST(DevBoard, EnforcesSameSemanticsAsCluster)
{
    DevBoard dev;
    DevProcess alice = dev.openProcess();
    DevProcess bob = dev.openProcess();
    const VirtAddr a = alice.ralloc(4 * MiB, kPermRead).value_or(0);
    ASSERT_NE(a, 0u);
    std::uint64_t v = 1;
    // Read-only page rejects writes; foreign pid rejects everything.
    EXPECT_EQ(alice.rwrite(a, &v, 8), Status::kPermDenied);
    EXPECT_EQ(bob.rread(a, &v, 8), Status::kBadAddress);
}

TEST(DevBoard, OffloadDevelopmentWorkflow)
{
    // Developing Clio-KV against the DevBoard: same offload object
    // that deploys on the cluster.
    DevBoard dev;
    dev.registerOffload(1, std::make_shared<ClioKvOffload>(64));
    std::vector<std::uint8_t> result;
    std::uint64_t found = 0;
    ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kPut, "k1", "v1")),
              Status::kOk);
    ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kGet, "k1"), &result,
                              &found),
              Status::kOk);
    EXPECT_EQ(found, 1u);
    EXPECT_EQ(std::string(result.begin(), result.end()), "v1");
}

TEST(SharedRas, CrossCnSharingThroughOneAddressSpace)
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    ClioClient &writer = cluster.createClient(0);
    ClioClient &reader = cluster.createSharedClient(1, writer);
    EXPECT_EQ(writer.pid(), reader.pid());

    const VirtAddr addr = writer.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(addr, 0u);
    std::uint64_t v = 0xFEED;
    ASSERT_EQ(writer.rwrite(addr, &v, 8), Status::kOk);

    // The reader on another CN sees the same RAS (§3.1) — it needs
    // the VA (exchanged at application level) but no re-allocation.
    std::uint64_t out = 0;
    ASSERT_EQ(reader.rread(addr, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xFEEDu);

    // And writes flow the other way too.
    std::uint64_t v2 = 0xBEEF;
    ASSERT_EQ(reader.rwrite(addr + 64, &v2, 8), Status::kOk);
    ASSERT_EQ(writer.rread(addr + 64, &out, 8), Status::kOk);
    EXPECT_EQ(out, 0xBEEFu);
}

TEST(SharedRas, MnSideLockSerializesCrossCnCriticalSections)
{
    // T3: rlock is a TAS executed at the MN, so it provides mutual
    // exclusion between CNs sharing a RAS.
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    ClioClient &c1 = cluster.createClient(0);
    ClioClient &c2 = cluster.createSharedClient(1, c1);

    const VirtAddr lock = c1.ralloc(4 * MiB).value_or(0);
    ASSERT_NE(lock, 0u);

    ASSERT_TRUE(c1.rlock(lock));
    // Held by CN0: CN1's bounded attempt must fail...
    EXPECT_FALSE(c2.rlock(lock, 3));
    c1.runlock(lock);
    // ...and succeed after release.
    EXPECT_TRUE(c2.rlock(lock, 8));
    EXPECT_FALSE(c1.rlock(lock, 3));
    c2.runlock(lock);
}

TEST(SharedRas, CountersUnderCrossCnContention)
{
    // Interleaved fetch-adds from two CNs: atomics serialize at the
    // MN; the final count is exact.
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    ClioClient &c1 = cluster.createClient(0);
    ClioClient &c2 = cluster.createSharedClient(1, c1);
    const VirtAddr counter = c1.ralloc(4 * MiB).value_or(0);

    std::vector<HandlePtr> handles;
    for (int i = 0; i < 40; i++) {
        handles.push_back(
            c1.atomicAsync(counter, AtomicOp::kFetchAdd, 1));
        handles.push_back(
            c2.atomicAsync(counter, AtomicOp::kFetchAdd, 1));
    }
    ASSERT_TRUE(c1.rpoll(handles));
    std::uint64_t final_value = 0;
    ASSERT_EQ(c1.rread(counter, &final_value, 8), Status::kOk);
    EXPECT_EQ(final_value, 80u);
    // Old values returned by the TAS chain are all distinct.
    std::set<std::uint64_t> olds;
    for (const auto &handle : handles)
        EXPECT_TRUE(olds.insert(handle->value).second);
}

TEST(SharedRas, FreedByOneGoneForAll)
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    ClioClient &c1 = cluster.createClient(0);
    ClioClient &c2 = cluster.createSharedClient(1, c1);
    const VirtAddr addr = c1.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 3;
    ASSERT_EQ(c2.rwrite(addr, &v, 8), Status::kOk);
    ASSERT_EQ(c1.rfree(addr), Status::kOk);
    EXPECT_EQ(c2.rread(addr, &v, 8), Status::kBadAddress);
}

} // namespace
} // namespace clio
