/**
 * @file
 * Tests for the five §6 applications: Clio-KV, Clio-MV, the radix
 * tree with pointer chasing, the image compression utility, and
 * Clio-DF — all running over the full simulated stack.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "apps/dataframe.hh"
#include "apps/image.hh"
#include "apps/kv_store.hh"
#include "apps/mv_store.hh"
#include "apps/radix_tree.hh"
#include "apps/runner.hh"
#include "apps/ycsb.hh"
#include "cluster/cluster.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

constexpr std::uint32_t kKvOffloadId = 1;

TEST(ClioKv, PutGetDelete)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(kKvOffloadId,
                                  std::make_shared<ClioKvOffload>());
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kKvOffloadId);

    EXPECT_FALSE(kv.get("missing").has_value());
    EXPECT_TRUE(kv.put("alpha", "one"));
    EXPECT_TRUE(kv.put("beta", "two"));
    EXPECT_EQ(kv.get("alpha").value_or(""), "one");
    EXPECT_EQ(kv.get("beta").value_or(""), "two");

    // Overwrite.
    EXPECT_TRUE(kv.put("alpha", "uno"));
    EXPECT_EQ(kv.get("alpha").value_or(""), "uno");

    // Delete.
    EXPECT_TRUE(kv.del("alpha"));
    EXPECT_FALSE(kv.get("alpha").has_value());
    EXPECT_FALSE(kv.del("alpha")); // already gone
    EXPECT_EQ(kv.get("beta").value_or(""), "two");
}

TEST(ClioKv, ManyKeysWithChaining)
{
    // Few buckets force slot chains (the §6 layout exercises slot
    // allocation and chain linking).
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    auto offload = std::make_shared<ClioKvOffload>(16);
    cluster.mn(0).registerOffload(kKvOffloadId, offload);
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kKvOffloadId);

    std::map<std::string, std::string> mirror;
    for (int i = 0; i < 300; i++) {
        const std::string key = YcsbGenerator::keyString(
            static_cast<std::uint64_t>(i * 977));
        const std::string value = "value-" + std::to_string(i);
        ASSERT_TRUE(kv.put(key, value));
        mirror[key] = value;
    }
    for (const auto &[key, value] : mirror)
        EXPECT_EQ(kv.get(key).value_or(""), value);
    EXPECT_GT(offload->slabsAllocated(), 0u);
}

TEST(ClioKv, LargeValues)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(kKvOffloadId,
                                  std::make_shared<ClioKvOffload>());
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kKvOffloadId);

    // YCSB-default 1 KB values.
    std::string big(1024, 'x');
    for (std::size_t i = 0; i < big.size(); i++)
        big[i] = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(kv.put("big", big));
    EXPECT_EQ(kv.get("big").value_or(""), big);
}

TEST(ClioKv, PartitionsAcrossMns)
{
    Cluster cluster(ModelConfig::prototype(), 1, 3);
    ClioClient &client = cluster.createClient(0);
    std::vector<NodeId> mns;
    for (std::uint32_t m = 0; m < 3; m++) {
        cluster.mn(m).registerOffload(kKvOffloadId,
                                      std::make_shared<ClioKvOffload>());
        mns.push_back(cluster.mn(m).nodeId());
    }
    ClioKvClient kv(client, mns, kKvOffloadId);

    std::set<NodeId> used;
    for (int i = 0; i < 60; i++) {
        const std::string key = "key" + std::to_string(i);
        ASSERT_TRUE(kv.put(key, "v" + std::to_string(i)));
        used.insert(kv.mnForKey(key));
    }
    EXPECT_EQ(used.size(), 3u); // all partitions hit
    for (int i = 0; i < 60; i++) {
        EXPECT_EQ(kv.get("key" + std::to_string(i)).value_or(""),
                  "v" + std::to_string(i));
    }
}

TEST(ClioKv, YcsbMixedWorkload)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(kKvOffloadId,
                                  std::make_shared<ClioKvOffload>());
    ClioKvClient kv(client, {cluster.mn(0).nodeId()}, kKvOffloadId);

    const std::uint64_t keys = 200;
    for (std::uint64_t k = 0; k < keys; k++)
        ASSERT_TRUE(kv.put(YcsbGenerator::keyString(k), "init"));

    YcsbGenerator gen(keys, YcsbWorkload::kA);
    std::map<std::string, std::string> mirror;
    for (std::uint64_t k = 0; k < keys; k++)
        mirror[YcsbGenerator::keyString(k)] = "init";
    for (int i = 0; i < 500; i++) {
        const YcsbOp op = gen.next();
        const std::string key = YcsbGenerator::keyString(op.key_index);
        if (op.is_set) {
            const std::string value = "v" + std::to_string(i);
            ASSERT_TRUE(kv.put(key, value));
            mirror[key] = value;
        } else {
            EXPECT_EQ(kv.get(key).value_or("<none>"), mirror[key]);
        }
    }
}

TEST(ClioMv, VersionLifecycle)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(
        2, std::make_shared<ClioMvOffload>(16, 64, 32));
    ClioMvClient mv(client, cluster.mn(0).nodeId(), 2, 16);

    auto id = mv.create();
    ASSERT_TRUE(id.has_value());
    EXPECT_FALSE(mv.readLatest(*id).has_value()); // no versions yet

    EXPECT_EQ(mv.append(*id, "version-1-xxxxxx").value_or(0), 1u);
    EXPECT_EQ(mv.append(*id, "version-2-xxxxxx").value_or(0), 2u);
    EXPECT_EQ(mv.append(*id, "version-3-xxxxxx").value_or(0), 3u);

    EXPECT_EQ(mv.readLatest(*id).value_or(""), "version-3-xxxxxx");
    EXPECT_EQ(mv.readVersion(*id, 1).value_or(""), "version-1-xxxxxx");
    EXPECT_EQ(mv.readVersion(*id, 2).value_or(""), "version-2-xxxxxx");
    EXPECT_FALSE(mv.readVersion(*id, 4).has_value()); // future version

    EXPECT_TRUE(mv.remove(*id));
    EXPECT_FALSE(mv.readLatest(*id).has_value());
    // Id is recycled for the next create.
    auto id2 = mv.create();
    ASSERT_TRUE(id2.has_value());
    EXPECT_EQ(*id2, *id);
}

TEST(ClioMv, ManyObjectsIndependent)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffload(
        2, std::make_shared<ClioMvOffload>(16, 128, 8));
    ClioMvClient mv(client, cluster.mn(0).nodeId(), 2, 16);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 20; i++) {
        auto id = mv.create();
        ASSERT_TRUE(id.has_value());
        ids.push_back(*id);
        char buf[17];
        std::snprintf(buf, sizeof(buf), "obj-%04d-ver-001", i);
        ASSERT_TRUE(mv.append(*id, std::string(buf, 16)).has_value());
    }
    for (int i = 0; i < 20; i++) {
        char buf[17];
        std::snprintf(buf, sizeof(buf), "obj-%04d-ver-001", i);
        EXPECT_EQ(mv.readLatest(ids[static_cast<std::size_t>(i)])
                      .value_or(""),
                  std::string(buf, 16));
    }
}

TEST(RadixTree, InsertAndSearchBothPaths)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    auto chase = std::make_shared<PointerChaseOffload>();
    cluster.mn(0).registerOffloadShared(3, chase, client.pid());

    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), 3, 16 * MiB);
    EXPECT_TRUE(tree.insert("hello", 100));
    EXPECT_TRUE(tree.insert("help", 200));
    EXPECT_TRUE(tree.insert("world", 300));
    EXPECT_TRUE(tree.insert("he", 400));

    // Offload path.
    EXPECT_EQ(tree.searchOffload("hello").value.value_or(0), 100u);
    EXPECT_EQ(tree.searchOffload("help").value.value_or(0), 200u);
    EXPECT_EQ(tree.searchOffload("world").value.value_or(0), 300u);
    EXPECT_EQ(tree.searchOffload("he").value.value_or(0), 400u);
    EXPECT_FALSE(tree.searchOffload("hel").value.has_value()); // prefix
    EXPECT_FALSE(tree.searchOffload("nope").value.has_value());

    // Direct (RDMA-style) path agrees.
    EXPECT_EQ(tree.searchDirect("hello").value.value_or(0), 100u);
    EXPECT_FALSE(tree.searchDirect("nope").value.has_value());
    EXPECT_GT(chase->nodesVisited(), 0u);
}

TEST(RadixTree, OffloadSavesRoundTrips)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        3, std::make_shared<PointerChaseOffload>(), client.pid());
    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), 3, 16 * MiB);

    // Wide fanout: many siblings per level make per-node round trips
    // expensive (Fig. 17's growth with tree size).
    Rng rng(4);
    for (int i = 0; i < 150; i++) {
        std::string key;
        for (int c = 0; c < 6; c++)
            key.push_back(
                static_cast<char>('a' + rng.uniformInt(20)));
        ASSERT_TRUE(tree.insert(key, 1000 + static_cast<unsigned>(i)));
    }
    ASSERT_TRUE(tree.insert("zzzzzz", 9999));
    auto off = tree.searchOffload("zzzzzz");
    auto direct = tree.searchDirect("zzzzzz");
    EXPECT_EQ(off.value.value_or(0), 9999u);
    EXPECT_EQ(direct.value.value_or(0), 9999u);
    // One offload call per level vs one read per visited node.
    EXPECT_EQ(off.offload_calls, 6u);
    EXPECT_GT(direct.remote_reads, off.offload_calls);
}

TEST(Rle, RoundTripAndCompression)
{
    auto img = makeSyntheticImage(256, 256, 7);
    auto compressed = rleCompress(img);
    EXPECT_EQ(rleDecompress(compressed), img);
    // Banded synthetic images must actually compress.
    EXPECT_LT(compressed.size(), img.size() / 2);

    // Edge cases: empty, single byte, anti-pattern.
    EXPECT_TRUE(rleCompress({}).empty());
    std::vector<std::uint8_t> one{42};
    EXPECT_EQ(rleDecompress(rleCompress(one)), one);
    std::vector<std::uint8_t> alternating;
    for (int i = 0; i < 99; i++)
        alternating.push_back(i % 2 ? 0xFF : 0x00);
    EXPECT_EQ(rleDecompress(rleCompress(alternating)), alternating);
}

TEST(ImageApp, CompressCollectionRoundTrip)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    ImageCompressionTask task(client, 5, 64 * KiB);
    ASSERT_TRUE(task.setup());

    ClosedLoopRunner runner(cluster.eventQueue());
    runner.addActor(task.actor());
    const Tick elapsed = runner.run();
    EXPECT_GT(elapsed, 0u);
    EXPECT_EQ(task.processed(), 5u);
    for (std::uint32_t i = 0; i < 5; i++)
        EXPECT_TRUE(task.verifyRoundTrip(i));
}

TEST(ImageApp, ConcurrentClientsAllComplete)
{
    Cluster cluster(ModelConfig::prototype(), 2, 1);
    std::vector<std::unique_ptr<ImageCompressionTask>> tasks;
    ClosedLoopRunner runner(cluster.eventQueue());
    for (int c = 0; c < 6; c++) {
        ClioClient &client =
            cluster.createClient(static_cast<std::uint32_t>(c % 2));
        tasks.push_back(std::make_unique<ImageCompressionTask>(
            client, 3, 16 * KiB, 500,
            static_cast<std::uint64_t>(c + 1)));
        ASSERT_TRUE(tasks.back()->setup());
    }
    for (auto &task : tasks)
        runner.addActor(task->actor());
    runner.run();
    for (auto &task : tasks) {
        EXPECT_EQ(task->processed(), 3u);
        EXPECT_TRUE(task->verifyRoundTrip(0));
    }
}

TEST(DataFrame, OffloadAndCnPlansAgree)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        4, std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        5, std::make_shared<AggregateOffload>(), client.pid());

    const std::uint64_t rows = 20000;
    Rng rng(21);
    std::vector<std::uint8_t> col_a(rows);
    std::vector<std::int64_t> col_b(rows);
    for (std::uint64_t i = 0; i < rows; i++) {
        col_a[i] = static_cast<std::uint8_t>(rng.uniformInt(4));
        col_b[i] = static_cast<std::int64_t>(rng.uniformInt(100));
    }
    ClioDataFrame df(client, cluster.mn(0).nodeId(), 4, 5);
    ASSERT_TRUE(df.load(col_a, col_b));

    auto off = df.runOffload(2);
    auto local = df.runAtCn(2);
    ASSERT_TRUE(off.ok);
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(off.selected, local.selected);
    EXPECT_NEAR(off.avg, local.avg, 1e-9);
    EXPECT_EQ(off.histogram, local.histogram);
    // Exact expected count from the raw data.
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < rows; i++)
        expect += col_a[i] == 2 ? 1 : 0;
    EXPECT_EQ(off.selected, expect);
}

TEST(DataFrame, OffloadShipsLessDataAtLowSelectivity)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        4, std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        5, std::make_shared<AggregateOffload>(), client.pid());

    const std::uint64_t rows = 50000;
    Rng rng(22);
    std::vector<std::uint8_t> col_a(rows);
    std::vector<std::int64_t> col_b(rows);
    for (std::uint64_t i = 0; i < rows; i++) {
        col_a[i] =
            static_cast<std::uint8_t>(rng.uniformInt(100)); // 1% each
        col_b[i] = static_cast<std::int64_t>(rng.uniformInt(1000));
    }
    ClioDataFrame df(client, cluster.mn(0).nodeId(), 4, 5);
    ASSERT_TRUE(df.load(col_a, col_b));

    auto off = df.runOffload(7);
    auto local = df.runAtCn(7);
    ASSERT_TRUE(off.ok && local.ok);
    // At ~1% selectivity the offload plan moves far less data (§7.2).
    EXPECT_LT(off.net_bytes * 10, local.net_bytes);
}

TEST(Runner, ComputeAndWaitSteps)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClosedLoopRunner runner(cluster.eventQueue());
    int steps = 0;
    runner.addActor([&]() -> ActorStep {
        if (++steps < 4)
            return ActorStep::compute(1 * kMicrosecond);
        return ActorStep::done();
    });
    const Tick elapsed = runner.run();
    EXPECT_EQ(steps, 4);
    EXPECT_GE(elapsed, 3 * kMicrosecond);
}

} // namespace
} // namespace clio
