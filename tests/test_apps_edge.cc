/**
 * @file
 * Edge cases for the §6 applications: fingerprint collisions and
 * deletes in Clio-KV, Clio-MV capacity limits, radix-tree prefix
 * semantics, chase-offload argument validation, YCSB distribution
 * sanity, and Clio-DF empty/degenerate inputs.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "apps/dataframe.hh"
#include "apps/kv_store.hh"
#include "apps/mv_store.hh"
#include "apps/radix_tree.hh"
#include "apps/ycsb.hh"
#include "cluster/cluster.hh"
#include "devsim/dev_board.hh"

namespace clio {
namespace {

TEST(KvEdge, DeleteThenReinsertSameBucket)
{
    DevBoard dev;
    dev.registerOffload(1, std::make_shared<ClioKvOffload>(4));
    // Many keys in 4 buckets: deletes punch holes in slot chains that
    // later puts must reuse.
    std::map<std::string, std::string> mirror;
    auto put = [&](const std::string &k, const std::string &v) {
        ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kPut, k, v)),
                  Status::kOk);
        mirror[k] = v;
    };
    auto del = [&](const std::string &k) {
        std::uint64_t deleted = 0;
        ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kDelete, k), nullptr,
                                  &deleted),
                  Status::kOk);
        mirror.erase(k);
    };
    auto verify = [&] {
        for (const auto &[k, v] : mirror) {
            std::vector<std::uint8_t> data;
            std::uint64_t found = 0;
            ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kGet, k), &data,
                                      &found),
                      Status::kOk);
            ASSERT_EQ(found, 1u) << k;
            EXPECT_EQ(std::string(data.begin(), data.end()), v);
        }
    };
    for (int i = 0; i < 60; i++)
        put("key" + std::to_string(i), "v" + std::to_string(i));
    for (int i = 0; i < 60; i += 3)
        del("key" + std::to_string(i));
    verify();
    for (int i = 0; i < 60; i += 3)
        put("key" + std::to_string(i), "re" + std::to_string(i));
    verify();
}

TEST(KvEdge, EmptyValueAndEmptyishKeys)
{
    DevBoard dev;
    dev.registerOffload(1, std::make_shared<ClioKvOffload>());
    ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kPut, "k", "")),
              Status::kOk);
    std::vector<std::uint8_t> data{1, 2, 3};
    std::uint64_t found = 0;
    ASSERT_EQ(dev.offloadCall(1, kvEncode(KvOp::kGet, "k"), &data,
                              &found),
              Status::kOk);
    EXPECT_EQ(found, 1u);
    EXPECT_TRUE(data.empty());
}

TEST(KvEdge, MalformedArgumentsRejected)
{
    DevBoard dev;
    dev.registerOffload(1, std::make_shared<ClioKvOffload>());
    EXPECT_EQ(dev.offloadCall(1, {}), Status::kOffloadError);
    EXPECT_EQ(dev.offloadCall(1, {0x01}), Status::kOffloadError);
    // Truncated put (klen says 10, bytes missing).
    EXPECT_EQ(dev.offloadCall(1, {0x01, 10, 0}), Status::kOffloadError);
}

TEST(MvEdge, CapacityLimits)
{
    DevBoard dev;
    dev.registerOffload(2, std::make_shared<ClioMvOffload>(16, 2, 3));
    std::uint64_t id1 = 0, id2 = 0, v = 0;
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kCreate), nullptr, &id1),
              Status::kOk);
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kCreate), nullptr, &id2),
              Status::kOk);
    // Table full.
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kCreate)),
              Status::kOutOfMemory);
    // Version array full after 3 appends.
    const std::string val(16, 'x');
    for (int i = 0; i < 3; i++) {
        EXPECT_EQ(dev.offloadCall(
                      2, mvEncode(MvOp::kAppend, id1, 0, val), nullptr,
                      &v),
                  Status::kOk);
    }
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kAppend, id1, 0, val)),
              Status::kOutOfMemory);
    // Wrong value size and unknown object are rejected.
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kAppend, id1, 0, "shrt")),
              Status::kOffloadError);
    EXPECT_EQ(dev.offloadCall(2, mvEncode(MvOp::kReadLatest, 77)),
              Status::kOffloadError);
}

TEST(RadixEdge, PrefixAndEmptyKeySemantics)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        3, std::make_shared<PointerChaseOffload>(), client.pid());
    RemoteRadixTree tree(client, cluster.mn(0).nodeId(), 3, 8 * MiB);

    ASSERT_TRUE(tree.insert("ab", 1));
    ASSERT_TRUE(tree.insert("abcd", 2));
    // "abc" exists as an interior path but has no terminal value.
    EXPECT_FALSE(tree.searchOffload("abc").value.has_value());
    EXPECT_EQ(tree.searchOffload("ab").value.value_or(0), 1u);
    EXPECT_EQ(tree.searchOffload("abcd").value.value_or(0), 2u);
    // Overwriting a key's value.
    ASSERT_TRUE(tree.insert("ab", 9));
    EXPECT_EQ(tree.searchOffload("ab").value.value_or(0), 9u);
}

TEST(RadixEdge, ChaseOffloadValidatesArguments)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        3, std::make_shared<PointerChaseOffload>(), client.pid());
    // Wrong-size argument blob.
    EXPECT_EQ(client.rcall(cluster.mn(0).nodeId(), 3, {1, 2, 3}).status(),
              Status::kOffloadError);
    // Offsets outside the node are rejected, not read.
    PointerChaseOffload::Args args;
    args.start = 4 * MiB;
    args.value_offset = 60; // 60 + 8 > 32
    args.node_bytes = 32;
    EXPECT_EQ(client
                  .rcall(cluster.mn(0).nodeId(), 3,
                         PointerChaseOffload::encode(args))
                  .status(),
              Status::kOffloadError);
    // Chasing into unallocated memory faults cleanly.
    args.value_offset = 16;
    args.next_offset = 0;
    EXPECT_EQ(client
                  .rcall(cluster.mn(0).nodeId(), 3,
                         PointerChaseOffload::encode(args))
                  .status(),
              Status::kBadAddress);
}

TEST(YcsbEdge, MixRatiosAndDeterminism)
{
    YcsbGenerator a(1000, YcsbWorkload::kA, true, 0.99, 1);
    YcsbGenerator a2(1000, YcsbWorkload::kA, true, 0.99, 1);
    int sets = 0;
    for (int i = 0; i < 10000; i++) {
        const YcsbOp op1 = a.next();
        const YcsbOp op2 = a2.next();
        EXPECT_EQ(op1.is_set, op2.is_set);
        EXPECT_EQ(op1.key_index, op2.key_index);
        sets += op1.is_set;
    }
    EXPECT_NEAR(sets, 5000, 300);

    YcsbGenerator c(1000, YcsbWorkload::kC);
    for (int i = 0; i < 1000; i++)
        EXPECT_FALSE(c.next().is_set);

    EXPECT_EQ(YcsbGenerator::keyString(42), "user0000000042");
}

TEST(DataFrameEdge, EmptySelectionAndFullSelection)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    cluster.mn(0).registerOffloadShared(
        4, std::make_shared<SelectOffload>(), client.pid());
    cluster.mn(0).registerOffloadShared(
        5, std::make_shared<AggregateOffload>(), client.pid());

    const std::uint64_t rows = 5000;
    std::vector<std::uint8_t> col_a(rows, 1);
    std::vector<std::int64_t> col_b(rows, 10);
    ClioDataFrame df(client, cluster.mn(0).nodeId(), 4, 5);
    ASSERT_TRUE(df.load(col_a, col_b));

    auto none = df.runOffload(0); // matches nothing
    ASSERT_TRUE(none.ok);
    EXPECT_EQ(none.selected, 0u);
    EXPECT_EQ(none.avg, 0.0);

    auto all = df.runOffload(1); // matches everything
    ASSERT_TRUE(all.ok);
    EXPECT_EQ(all.selected, rows);
    EXPECT_DOUBLE_EQ(all.avg, 10.0);
    EXPECT_EQ(all.histogram[0], rows); // constant values: one bin
}

} // namespace
} // namespace clio
