/**
 * @file
 * Unit tests for the VA-allocator window primitives that migration is
 * built on (addWindow / removeWindow / extractRegions / injectRegion,
 * §4.7) and for the model configuration presets.
 */

#include <gtest/gtest.h>

#include "pagetable/hash_page_table.hh"
#include "sim/config.hh"
#include "valloc/va_allocator.hh"

namespace clio {
namespace {

constexpr std::uint64_t kPage = 4 * MiB;

struct WinFixture
{
    HashPageTable pt{8 * GiB, kPage, 8, 2.0};
    VaAllocator va{kPage, 1ull << 46};
};

TEST(Windows, AllocationsConfinedToWindows)
{
    WinFixture f;
    const VirtAddr w1 = 1 * GiB;
    f.va.addWindow(1, w1, 64 * MiB);
    for (int i = 0; i < 16; i++) {
        auto res = f.va.allocate(1, kPage, kPermReadWrite, f.pt);
        ASSERT_TRUE(res.has_value());
        EXPECT_GE(res->addr, w1);
        EXPECT_LT(res->addr + kPage, w1 + 64 * MiB + 1);
        for (auto vpn : res->vpns)
            f.pt.insert(1, vpn, kPermReadWrite);
    }
    // Window full: next allocation fails until a new window arrives.
    EXPECT_FALSE(f.va.allocate(1, kPage, kPermReadWrite, f.pt)
                     .has_value());
    f.va.addWindow(1, 4 * GiB, 64 * MiB);
    auto res = f.va.allocate(1, kPage, kPermReadWrite, f.pt);
    ASSERT_TRUE(res.has_value());
    EXPECT_GE(res->addr, 4 * GiB);
}

TEST(Windows, AdjacentWindowsMergeForLargeAllocations)
{
    WinFixture f;
    f.va.addWindow(1, 1 * GiB, 32 * MiB);
    f.va.addWindow(1, 1 * GiB + 32 * MiB, 32 * MiB); // contiguous
    // A 48 MB allocation spans the merged window.
    auto res = f.va.allocate(1, 48 * MiB, kPermReadWrite, f.pt);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->vpns.size(), 12u);
}

TEST(Windows, ExtractAndInjectMoveRegionsBetweenAllocators)
{
    WinFixture src;
    WinFixture dst;
    src.va.addWindow(1, 1 * GiB, 64 * MiB);
    auto a = src.va.allocate(1, 8 * MiB, kPermReadWrite, src.pt);
    auto b = src.va.allocate(1, 4 * MiB, kPermRead, src.pt);
    ASSERT_TRUE(a && b);

    auto moved = src.va.extractRegions(1, 1 * GiB, 64 * MiB);
    ASSERT_EQ(moved.size(), 2u);
    EXPECT_EQ(src.va.allocatedBytes(1), 0u);
    src.va.removeWindow(1, 1 * GiB, 64 * MiB);

    dst.va.addWindow(1, 1 * GiB, 64 * MiB);
    for (const auto &region : moved)
        dst.va.injectRegion(1, region);
    EXPECT_EQ(dst.va.allocatedBytes(1), 12 * MiB);
    // The injected regions keep their addresses and permissions.
    const VaRegion *rb = dst.va.regionOf(1, b->addr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(rb->perm, kPermRead);
    // Freeing through the destination works.
    EXPECT_TRUE(dst.va.free(1, a->addr).has_value());
}

TEST(Windows, RemoveWindowSplitsMergedRange)
{
    WinFixture f;
    f.va.addWindow(1, 1 * GiB, 64 * MiB);
    f.va.addWindow(1, 1 * GiB + 64 * MiB, 64 * MiB); // merged
    // Remove the middle half: remaining windows still usable.
    f.va.removeWindow(1, 1 * GiB + 32 * MiB, 64 * MiB);
    EXPECT_EQ(f.va.windowBytes(1), 64 * MiB);
    auto res = f.va.allocate(1, 32 * MiB, kPermReadWrite, f.pt);
    ASSERT_TRUE(res.has_value());
    const bool in_low =
        res->addr >= 1 * GiB && res->addr + 32 * MiB <= 1 * GiB + 32 * MiB;
    const bool in_high = res->addr >= 1 * GiB + 96 * MiB &&
                         res->addr + 32 * MiB <= 1 * GiB + 128 * MiB;
    EXPECT_TRUE(in_low || in_high);
}

TEST(Config, PrototypeMatchesPaperConstants)
{
    const auto cfg = ModelConfig::prototype();
    EXPECT_EQ(cfg.fast_path.cycle, 4 * kNanosecond); // 250 MHz
    EXPECT_EQ(cfg.fast_path.datapath_bits, 512u);
    // 512 bit x 250 MHz = 128 Gbps fast-path ceiling (§5).
    EXPECT_EQ(cfg.fastPathPeakBps(), 128ull * 1000 * 1000 * 1000);
    EXPECT_EQ(cfg.datapathBytesPerCycle(), 64u);
    EXPECT_EQ(cfg.page_table.page_size, 4 * MiB);
    EXPECT_EQ(cfg.rdma.odp_page_fault, Tick(16800) * kMicrosecond);
    EXPECT_EQ(cfg.slow_path.interconnect_crossing, 40 * kMicrosecond);
    EXPECT_EQ(cfg.mn_phys_bytes, 2 * GiB);
}

TEST(Config, AsicProjectionIsStrictlyFaster)
{
    const auto proto = ModelConfig::prototype();
    const auto asic = ModelConfig::asicProjection();
    EXPECT_LT(asic.fast_path.cycle, proto.fast_path.cycle);
    EXPECT_LT(asic.dram.access_latency, proto.dram.access_latency);
    EXPECT_LT(asic.fast_path.mac_latency, proto.fast_path.mac_latency);
    EXPECT_GT(asic.net.link_bandwidth_bps, proto.net.link_bandwidth_bps);
    // 2 GHz: 0.5 ns cycle -> 1 Tbps-class datapath ceiling.
    EXPECT_EQ(asic.fast_path.cycle, 500 * kPicosecond);
    EXPECT_GT(asic.fastPathPeakBps(), 1000ull * 1000 * 1000 * 1000 - 1);
}

TEST(Config, PageTableBytesFractionSmall)
{
    // §4.2: the flat table is a tiny fraction of physical memory.
    const auto cfg = ModelConfig::prototype();
    HashPageTable pt(cfg.mn_phys_bytes, cfg.page_table.page_size,
                     cfg.page_table.bucket_slots,
                     cfg.page_table.overprovision);
    EXPECT_LT(static_cast<double>(pt.tableBytes()),
              0.004 * static_cast<double>(cfg.mn_phys_bytes));
}

} // namespace
} // namespace clio
