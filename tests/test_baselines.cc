/**
 * @file
 * Tests for the comparison-system models: RDMA RNIC caches / ODP /
 * MR limits, LegoOS, Clover, HERD(-BF), energy and FPGA-resource
 * estimators. Assertions encode the paper's qualitative shapes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/rdma.hh"
#include "baselines/systems.hh"
#include "cluster/cluster.hh"
#include "energy/energy.hh"
#include "energy/resources.hh"

namespace clio {
namespace {

ModelConfig
cfg()
{
    return ModelConfig::prototype();
}

TEST(NicCache, LruBehaviour)
{
    NicCache cache(2);
    EXPECT_FALSE(cache.touch(1));
    EXPECT_FALSE(cache.touch(2));
    EXPECT_TRUE(cache.touch(1));
    EXPECT_FALSE(cache.touch(3)); // evicts 2
    EXPECT_FALSE(cache.touch(2));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(Rdma, FunctionalDataRoundTrip)
{
    RdmaMemoryNode node(cfg(), 64 * MiB);
    Tick reg_lat = 0;
    auto mr = node.registerMr(1 * MiB, false, reg_lat);
    ASSERT_TRUE(mr.has_value());
    EXPECT_GT(reg_lat, 0u);
    QpId qp = node.createQp();

    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i);
    auto w = node.write(qp, *mr, 100, data.data(), data.size());
    ASSERT_TRUE(w.ok);
    std::vector<std::uint8_t> out(4096);
    auto r = node.read(qp, *mr, 100, out.data(), out.size());
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(out, data);
}

TEST(Rdma, QpCacheMissRaisesLatency)
{
    RdmaMemoryNode node(cfg(), 64 * MiB);
    Tick lat = 0;
    auto mr = node.registerMr(4 * MiB, false, lat);
    ASSERT_TRUE(mr);
    // More QPs than the cache holds: round-robin over 2x capacity
    // forces a miss on (nearly) every access.
    const std::uint32_t n = cfg().rdma.qp_cache_entries * 2;
    std::vector<QpId> qps;
    for (std::uint32_t i = 0; i < n; i++)
        qps.push_back(node.createQp());
    std::uint64_t v = 0;
    Tick few_total = 0, many_total = 0;
    for (int i = 0; i < 200; i++) {
        auto res = node.read(qps[0], *mr, 0, &v, 8);
        few_total += res.latency;
    }
    for (int i = 0; i < 200; i++) {
        auto res = node.read(qps[static_cast<std::size_t>(i) * 7 %
                                 qps.size()],
                             *mr, 0, &v, 8);
        many_total += res.latency;
    }
    // Fig. 4 shape: many active QPs are clearly slower.
    EXPECT_GT(many_total, few_total + 100 * cfg().rdma.pcie_dram_access);
}

TEST(Rdma, PteCacheScalability)
{
    auto c = cfg();
    RdmaMemoryNode node(c, 1 * GiB);
    Tick lat = 0;
    auto mr = node.registerMr(512 * MiB, false, lat); // 128K host pages
    ASSERT_TRUE(mr);
    QpId qp = node.createQp();
    std::uint64_t v = 0;
    Rng rng(3);

    // Working set smaller than the MTT cache: fast.
    Tick small_total = 0;
    for (int i = 0; i < 300; i++) {
        const std::uint64_t page = rng.uniformInt(512);
        small_total +=
            node.read(qp, *mr, page * RdmaMemoryNode::kHostPage, &v, 8)
                .latency;
    }
    // Working set >> cache: every access misses (Fig. 5).
    Tick big_total = 0;
    for (int i = 0; i < 300; i++) {
        const std::uint64_t page = rng.uniformInt(128 * 1024);
        big_total +=
            node.read(qp, *mr, page * RdmaMemoryNode::kHostPage, &v, 8)
                .latency;
    }
    EXPECT_GT(big_total, small_total);
}

TEST(Rdma, MrLimitEnforced)
{
    auto c = cfg();
    c.rdma.max_mrs = 64; // scaled-down limit for test speed
    RdmaMemoryNode node(c, 1 * GiB);
    Tick lat = 0;
    int created = 0;
    while (node.registerMr(4 * KiB, false, lat))
        created++;
    EXPECT_EQ(created, 64);
}

TEST(Rdma, OdpPageFaultIsCatastrophic)
{
    RdmaMemoryNode node(cfg(), 64 * MiB);
    Tick lat = 0;
    auto pinned = node.registerMr(4 * MiB, false, lat);
    const Tick pinned_reg = lat;
    auto odp = node.registerMr(4 * MiB, true, lat);
    EXPECT_LT(lat, pinned_reg); // ODP registration is cheap
    ASSERT_TRUE(pinned && odp);
    QpId qp = node.createQp();
    std::uint64_t v = 1;

    auto warm = node.write(qp, *pinned, 0, &v, 8);
    EXPECT_FALSE(warm.page_fault);

    auto faulting = node.write(qp, *odp, 0, &v, 8);
    EXPECT_TRUE(faulting.page_fault);
    // §2.2: a faulting access is ~14100x slower; at least 1000x here.
    EXPECT_GT(faulting.latency, warm.latency * 1000);

    auto again = node.write(qp, *odp, 0, &v, 8);
    EXPECT_FALSE(again.page_fault);
}

TEST(Rdma, RegistrationCostGrowsWithSize)
{
    RdmaMemoryNode node(cfg(), 4 * GiB);
    Tick small_lat = 0, big_lat = 0;
    auto a = node.registerMr(4 * MiB, false, small_lat);
    auto b = node.registerMr(1 * GiB, false, big_lat);
    ASSERT_TRUE(a && b);
    EXPECT_GT(big_lat, small_lat * 5); // Fig. 12 growth
    EXPECT_GT(node.deregisterMr(*b), node.deregisterMr(*a));
}

TEST(Systems, LegoOsSlowerThanClioFastPath)
{
    // Fig. 10: LegoOS ~2x Clio at small sizes (software MN).
    LegoOsModel lego(cfg());
    const Tick lat = lego.readLatency(16);
    EXPECT_GT(ticksToUs(lat), 3.0);
    EXPECT_LT(ticksToUs(lat), 8.0);
    EXPECT_NEAR(lego.peakGbps(), 77.0, 0.1);
}

TEST(Systems, CloverNeedsMultipleRtts)
{
    // §2.3: passive memory makes every structured operation a chain
    // of dependent round trips — both reads (index -> header -> data)
    // and writes (out-of-place data + metadata CAS).
    auto c = cfg();
    CloverModel clover(c);
    const Tick one_rtt = wireRoundTrip(c.net, 16, 16) +
                         2 * c.rdma.nic_processing;
    Tick read_total = 0, write_total = 0;
    for (int i = 0; i < 100; i++) {
        read_total += clover.readLatency(16);
        write_total += clover.writeLatency(16);
    }
    EXPECT_GT(read_total / 100, 2 * one_rtt);
    EXPECT_GT(write_total / 100, 2 * one_rtt);
}

TEST(Systems, HerdBluefieldSlowest)
{
    HerdModel herd(cfg(), false);
    HerdModel herd_bf(cfg(), true);
    Tick cpu_total = 0, bf_total = 0;
    for (int i = 0; i < 100; i++) {
        cpu_total += herd.getLatency(1024);
        bf_total += herd_bf.getLatency(1024);
    }
    // Fig. 10/18: HERD-BF is much slower than HERD on a CPU.
    EXPECT_GT(bf_total, cpu_total + 100ull * 3000 * kNanosecond);
}

TEST(Energy, RankingMatchesPaper)
{
    // Fig. 21 shape: for the same served workload, Clio cheapest-ish,
    // Clover close, HERD 1.6-3x Clio, HERD-BF the worst (slowest).
    const EnergyConfig ec;
    const std::uint64_t reqs = 100000;
    // Runtimes proportional to the per-request latencies of each
    // system (relative numbers in the prototype's ballpark).
    const Tick t_clio = reqs * (8 * kMicrosecond);
    const Tick t_clover = reqs * (10 * kMicrosecond);
    const Tick t_herd = reqs * (9 * kMicrosecond);
    const Tick t_herd_bf = reqs * (25 * kMicrosecond);

    const double clio =
        perRequestEnergy(ec, SystemKind::kClio, t_clio, reqs).total();
    const double clover =
        perRequestEnergy(ec, SystemKind::kClover, t_clover, reqs).total();
    const double herd =
        perRequestEnergy(ec, SystemKind::kHerd, t_herd, reqs).total();
    const double herd_bf =
        perRequestEnergy(ec, SystemKind::kHerdBluefield, t_herd_bf, reqs)
            .total();

    EXPECT_LT(clio, clover);
    EXPECT_GT(herd, clio * 1.6);
    EXPECT_LT(herd, clio * 4.0);
    EXPECT_GT(herd_bf, herd);
    // CN/MN split: Clover burns more at CNs than Clio does.
    const auto clio_split =
        perRequestEnergy(ec, SystemKind::kClio, t_clio, reqs);
    const auto clover_split =
        perRequestEnergy(ec, SystemKind::kClover, t_clover, reqs);
    EXPECT_GT(clover_split.cn_mj, clio_split.cn_mj);
}

TEST(Resources, MatchesPaperTable)
{
    auto rows = clioUtilization(ModelConfig::prototype());
    ASSERT_EQ(rows.size(), 4u);
    // Clio total ~31%/31%.
    EXPECT_NEAR(rows[0].lut_pct, 31.0, 4.0);
    EXPECT_NEAR(rows[0].bram_pct, 31.0, 5.0);
    // VirtMem ~5.5%/3%.
    EXPECT_NEAR(rows[1].lut_pct, 5.5, 1.0);
    EXPECT_NEAR(rows[1].bram_pct, 3.0, 1.0);
    // NetStack ~2.3%/1.7%.
    EXPECT_NEAR(rows[2].lut_pct, 2.3, 0.6);
    EXPECT_NEAR(rows[2].bram_pct, 1.7, 0.6);
    // Go-Back-N ~5.8%/2.6% -- more than Clio's whole NetStack.
    EXPECT_NEAR(rows[3].lut_pct, 5.8, 1.0);
    EXPECT_NEAR(rows[3].bram_pct, 2.6, 0.8);
    EXPECT_GT(rows[3].lut_pct, rows[2].lut_pct);

    auto cmp = comparisonUtilization();
    ASSERT_EQ(cmp.size(), 2u);
    // Clio total is below both published network-stack-only systems.
    EXPECT_LT(rows[0].lut_pct, cmp[0].lut_pct);
    EXPECT_LT(rows[0].bram_pct, cmp[0].bram_pct);
    EXPECT_LT(rows[0].lut_pct, cmp[1].lut_pct);
}

TEST(Resources, ScalesWithTlbSize)
{
    auto small = ModelConfig::prototype();
    auto big = ModelConfig::prototype();
    big.fast_path.tlb_entries = 4096;
    const auto small_rows = clioUtilization(small);
    const auto big_rows = clioUtilization(big);
    EXPECT_GT(big_rows[1].lut_pct, small_rows[1].lut_pct);
    EXPECT_GT(big_rows[1].bram_pct, small_rows[1].bram_pct);
}

TEST(Systems, ClioBeatsLegoOsEndToEnd)
{
    // Cross-check the full Clio stack against the LegoOS model on the
    // same config: hardware MN should win clearly for small reads.
    Cluster cluster(cfg(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(4 * MiB).value_or(0);
    std::uint64_t v = 5;
    client.rwrite(addr, &v, sizeof(v)); // warm

    LatencyHistogram clio_hist;
    std::uint8_t buf[16];
    for (int i = 0; i < 100; i++) {
        const Tick t0 = cluster.eventQueue().now();
        client.rread(addr, buf, 16);
        clio_hist.record(cluster.eventQueue().now() - t0);
    }
    LegoOsModel lego(cfg());
    LatencyHistogram lego_hist;
    for (int i = 0; i < 100; i++)
        lego_hist.record(lego.readLatency(16));
    EXPECT_LT(clio_hist.median() * 3 / 2, lego_hist.median());
}

} // namespace
} // namespace clio
