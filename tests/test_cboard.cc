/**
 * @file
 * Device-level CBoard tests: fast-path timing determinism, dedup
 * buffer semantics, fence gating, out-of-memory behaviour, offload VM
 * isolation, async-buffer refill, and slow-path cost model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cboard/cboard.hh"
#include "cboard/dedup_buffer.hh"
#include "cluster/cluster.hh"

namespace clio {
namespace {

struct BoardFixture
{
    EventQueue eq;
    Network net;
    CBoard board;

    explicit BoardFixture(ModelConfig cfg = ModelConfig::prototype(),
                          std::uint64_t phys = 0)
        : net(eq, cfg.net, 3), board(eq, net, cfg, phys)
    {
    }

    /** Map one page for `pid` and return its base VA. */
    VirtAddr
    mapPage(ProcId pid, std::uint64_t vpn, PhysAddr frame)
    {
        board.pageTable().insert(pid, vpn, kPermReadWrite);
        board.pageTable().bindFrame(pid, vpn, frame);
        return vpn * board.config().page_table.page_size;
    }

    RequestMsg
    makeRead(ProcId pid, VirtAddr addr, std::uint64_t size, ReqId id)
    {
        RequestMsg req;
        req.type = MsgType::kRead;
        req.pid = pid;
        req.addr = addr;
        req.size = size;
        req.req_id = id;
        req.orig_req_id = id;
        return req;
    }
};

TEST(CBoardDevice, FastPathTimingIsDeterministic)
{
    // The paper's determinism claim: identical warm requests take an
    // identical, bounded number of ticks.
    BoardFixture f;
    const VirtAddr addr = f.mapPage(1, 1, 0);
    auto req = f.makeRead(1, addr, 64, 1);
    ResponseMsg r0;
    f.board.serviceFastPath(req, 0, r0); // warm the TLB

    std::vector<Tick> durations;
    Tick start = 100 * kMicrosecond;
    for (int i = 0; i < 10; i++) {
        req.req_id = static_cast<ReqId>(i + 2);
        ResponseMsg resp;
        const Tick done = f.board.serviceFastPath(req, start, resp);
        durations.push_back(done - start);
        start += 50 * kMicrosecond; // spaced: no pipeline overlap
    }
    for (std::size_t i = 1; i < durations.size(); i++)
        EXPECT_EQ(durations[i], durations[0]);
}

TEST(CBoardDevice, TlbMissCostsExactlyOneDramAccess)
{
    BoardFixture f;
    const VirtAddr addr = f.mapPage(1, 1, 0);
    auto req = f.makeRead(1, addr, 16, 1);

    ResponseMsg warm_resp;
    f.board.serviceFastPath(req, 0, warm_resp); // includes the miss
    const Tick start = 1 * kMillisecond;
    req.req_id = 2;
    ResponseMsg hit_resp;
    const Tick hit = f.board.serviceFastPath(req, start, hit_resp) -
                     start;

    f.board.tlb().invalidate(1, 1);
    const Tick start2 = 2 * kMillisecond;
    req.req_id = 3;
    ResponseMsg miss_resp;
    const Tick miss = f.board.serviceFastPath(req, start2, miss_resp) -
                      start2;
    EXPECT_EQ(miss - hit, f.board.config().dram.access_latency);
}

TEST(CBoardDevice, PipelineOccupancyBoundsThroughput)
{
    // Back-to-back 1 KB reads cannot exceed the datapath's bytes per
    // cycle.
    BoardFixture f;
    const VirtAddr addr = f.mapPage(1, 1, 0);
    const int n = 200;
    Tick last = 0;
    for (int i = 0; i < n; i++) {
        auto req = f.makeRead(1, addr, 1024, static_cast<ReqId>(i + 1));
        ResponseMsg resp;
        last = f.board.serviceFastPath(req, 0, resp);
    }
    const double gbps = n * 1024 * 8.0 / ticksToSeconds(last) / 1e9;
    const double ceiling =
        static_cast<double>(f.board.config().fastPathPeakBps()) / 1e9;
    EXPECT_LT(gbps, ceiling);
    EXPECT_GT(gbps, 0.5 * ceiling); // and the pipeline stays busy
}

TEST(CBoardDevice, OutOfMemoryFaultReported)
{
    // 2 frames total; buffer reserves one; touching 3 pages fails.
    auto cfg = ModelConfig::prototype();
    BoardFixture f(cfg, 2 * cfg.page_table.page_size);
    for (std::uint64_t vpn = 1; vpn <= 3; vpn++) {
        std::uint64_t probe = vpn;
        while (f.board.pageTable().freeSlotsInBucket(7, probe) == 0)
            probe += 100;
        f.board.pageTable().insert(7, probe, kPermReadWrite);
        RequestMsg req;
        req.type = MsgType::kWrite;
        req.pid = 7;
        req.addr = probe * cfg.page_table.page_size;
        req.size = 8;
        req.data.resize(8, 1);
        req.req_id = vpn;
        req.orig_req_id = vpn;
        ResponseMsg resp;
        f.board.serviceFastPath(req, 0, resp);
        if (vpn <= 2) {
            EXPECT_EQ(resp.status, Status::kOk);
        } else {
            EXPECT_EQ(resp.status, Status::kOutOfMemory);
        }
    }
    EXPECT_GE(f.board.stats().out_of_memory, 1u);
}

TEST(CBoardDevice, SlowPathCostsScaleWithRetriesAndPages)
{
    BoardFixture f;
    const auto &sp = f.board.config().slow_path;
    ResponseMsg resp;
    const Tick one_page = f.board.slowPathAlloc(1, 4 * MiB, kPermRead,
                                                resp);
    ASSERT_EQ(resp.status, Status::kOk);
    ResponseMsg resp2;
    const Tick many_pages =
        f.board.slowPathAlloc(1, 40 * MiB, kPermRead, resp2);
    ASSERT_EQ(resp2.status, Status::kOk);
    EXPECT_EQ(many_pages - one_page, 9 * sp.valloc_per_page);
}

TEST(CBoardDevice, DestroyProcessReclaimsEverything)
{
    BoardFixture f;
    ResponseMsg resp;
    f.board.slowPathAlloc(5, 40 * MiB, kPermReadWrite, resp, true);
    ASSERT_EQ(resp.status, Status::kOk);
    const std::uint64_t used_before = f.board.frames().usedFrames();
    EXPECT_GT(f.board.pageTable().liveEntries(), 0u);

    f.board.destroyProcess(5);
    EXPECT_EQ(f.board.pageTable().liveEntries(), 0u);
    EXPECT_LT(f.board.frames().usedFrames(), used_before);
    EXPECT_EQ(f.board.vaAllocator().allocatedBytes(5), 0u);
}

TEST(DedupBufferUnit, RecordFindEvict)
{
    DedupBuffer buf(3);
    buf.record(1, 100);
    buf.record(2, 200);
    EXPECT_EQ(buf.find(1).value_or(0), 100u);
    EXPECT_EQ(buf.find(2).value_or(0), 200u);
    EXPECT_FALSE(buf.find(3).has_value());
    buf.record(3);
    buf.record(4); // evicts 1 (FIFO ring)
    EXPECT_FALSE(buf.find(1).has_value());
    EXPECT_TRUE(buf.find(2).has_value());
    EXPECT_EQ(buf.size(), 3u);
    // Duplicate record is idempotent.
    buf.record(2, 999);
    EXPECT_EQ(buf.find(2).value_or(0), 200u);
    EXPECT_EQ(buf.size(), 3u);
}

TEST(DedupBufferUnit, EvictionIsStrictlyFifoAcrossWraparound)
{
    DedupBuffer buf(4);
    EXPECT_EQ(buf.capacity(), 4u);
    // Fill several times over; exactly the last 4 ids must survive.
    for (ReqId id = 1; id <= 25; id++)
        buf.record(id, id * 10);
    EXPECT_EQ(buf.size(), 4u);
    for (ReqId id = 1; id <= 21; id++)
        EXPECT_FALSE(buf.find(id).has_value()) << "id " << id;
    for (ReqId id = 22; id <= 25; id++)
        EXPECT_EQ(buf.find(id).value_or(0), id * 10) << "id " << id;
}

TEST(DedupBufferUnit, WritesCacheZeroAtomicsCacheResults)
{
    DedupBuffer buf(8);
    buf.record(7); // a write: no atomic result
    buf.record(8, 0xDEADu); // an atomic: cached return value
    // Both are "found" (execution must be suppressed); only the
    // atomic carries a meaningful replay value.
    ASSERT_TRUE(buf.find(7).has_value());
    EXPECT_EQ(*buf.find(7), 0u);
    ASSERT_TRUE(buf.find(8).has_value());
    EXPECT_EQ(*buf.find(8), 0xDEADu);
}

TEST(DedupBufferUnit, SuppressedStatCountsOnlyWhenNoted)
{
    DedupBuffer buf(4);
    buf.record(1, 11);
    EXPECT_EQ(buf.suppressed(), 0u);
    // A retry hit: the MN replays the cached result and notes it.
    ASSERT_TRUE(buf.find(1).has_value());
    buf.noteSuppressed();
    buf.noteSuppressed();
    EXPECT_EQ(buf.suppressed(), 2u);
    // Lookups alone never bump the stat.
    (void)buf.find(1);
    (void)buf.find(99);
    EXPECT_EQ(buf.suppressed(), 2u);
}

TEST(DedupBufferUnit, CapacityOneKeepsOnlyNewest)
{
    // Degenerate sizing (TIMEOUT x bandwidth rounding down): the ring
    // still works, holding exactly the most recent id.
    DedupBuffer buf(1);
    buf.record(5, 55);
    EXPECT_EQ(buf.find(5).value_or(0), 55u);
    buf.record(6, 66);
    EXPECT_FALSE(buf.find(5).has_value());
    EXPECT_EQ(buf.find(6).value_or(0), 66u);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(CBoardDevice, FenceGatesLaterFastPathWork)
{
    // After a fence completes at tick T, requests arriving earlier
    // than T may not start before it (T3 gating).
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    const VirtAddr addr = client.ralloc(8 * MiB).value_or(0);
    std::uint64_t v = 1;
    client.rwrite(addr, &v, 8);

    // Launch a slow op (big write) async, then a fence, then a read:
    // the read must not complete before the fence.
    std::vector<std::uint8_t> big(256 * KiB, 0xAA);
    auto hw = client.rwriteAsync(addr + 4 * MiB, big.data(), big.size());
    auto hf = client.fenceAsync();
    std::uint64_t out = 0;
    auto hr = client.rreadAsync(addr, &out, 8);
    // The fence is a full barrier in the client ordering layer too,
    // so completion order must be: write, fence, read.
    EventQueue &eq = cluster.eventQueue();
    eq.runUntil([&] { return hr->done; });
    EXPECT_TRUE(hw->done);
    EXPECT_TRUE(hf->done);
    EXPECT_EQ(out, 1u);
}

TEST(CBoardDevice, OffloadAddressSpacesAreIsolated)
{
    // Two offloads get distinct PIDs: identical VAs name different
    // memory (R5 for the extend path).
    class Writer : public Offload
    {
      public:
        VirtAddr slot = 0;
        void
        init(OffloadVm &vm) override
        {
            slot = vm.alloc(4 * MiB);
        }
        OffloadResult
        invoke(OffloadVm &vm, const std::vector<std::uint8_t> &arg) override
        {
            OffloadResult res;
            if (arg.size() == 8) {
                std::uint64_t v;
                std::memcpy(&v, arg.data(), 8);
                vm.write64(slot, v);
            }
            res.value = vm.read64(slot).value_or(0);
            return res;
        }
    };
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    auto w1 = std::make_shared<Writer>();
    auto w2 = std::make_shared<Writer>();
    cluster.mn(0).registerOffload(10, w1);
    cluster.mn(0).registerOffload(11, w2);
    EXPECT_EQ(w1->slot, w2->slot); // same VA, separate spaces

    std::vector<std::uint8_t> arg(8);
    std::uint64_t v1 = 111, v2 = 222;
    std::memcpy(arg.data(), &v1, 8);
    client.rcall(cluster.mn(0).nodeId(), 10, arg);
    std::memcpy(arg.data(), &v2, 8);
    client.rcall(cluster.mn(0).nodeId(), 11, arg);
    // Re-read each offload's value with an empty arg.
    EXPECT_EQ(client.rcall(cluster.mn(0).nodeId(), 10, {})->value, v1);
    EXPECT_EQ(client.rcall(cluster.mn(0).nodeId(), 11, {})->value, v2);
}

TEST(CBoardDevice, AsyncBufferRefillsAfterFaultBurst)
{
    auto cfg = ModelConfig::prototype();
    cfg.mn_phys_bytes = 2 * GiB;
    Cluster cluster(cfg, 1, 1);
    ClioClient &client = cluster.createClient(0);
    const std::uint64_t page = cfg.page_table.page_size;
    const VirtAddr addr = client.ralloc(200 * page).value_or(0);
    std::uint64_t v = 1;
    for (int i = 0; i < 128; i++)
        client.rwrite(addr + static_cast<std::uint64_t>(i) * page, &v, 8);
    EXPECT_EQ(cluster.mn(0).stats().page_faults, 128u);
    // Let background refills drain, then the next fault is cheap.
    cluster.eventQueue().runUntilTime(cluster.eventQueue().now() +
                                      kMillisecond);
    const Tick t0 = cluster.eventQueue().now();
    client.rwrite(addr + 199 * page, &v, 8);
    EXPECT_LT(cluster.eventQueue().now() - t0, 10 * kMicrosecond);
}

TEST(CBoardDevice, BadOffloadIdAndBadFree)
{
    Cluster cluster(ModelConfig::prototype(), 1, 1);
    ClioClient &client = cluster.createClient(0);
    EXPECT_EQ(client.rcall(cluster.mn(0).nodeId(), 12345, {}).status(),
              Status::kOffloadError);
    EXPECT_EQ(client.rfree(123 * MiB), Status::kBadAddress);
}

} // namespace
} // namespace clio
