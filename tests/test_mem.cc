/**
 * @file
 * Unit tests for the physical memory substrate and frame allocation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "mem/frame_allocator.hh"
#include "mem/physical_memory.hh"
#include "sim/rng.hh"

namespace clio {
namespace {

TEST(PhysicalMemory, ReadWriteRoundTrip)
{
    PhysicalMemory mem(1 * MiB);
    const char msg[] = "disaggregated";
    mem.write(1000, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    mem.read(1000, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(PhysicalMemory, UntouchedReadsZero)
{
    PhysicalMemory mem(1 * MiB);
    std::uint8_t buf[64];
    std::memset(buf, 0xAB, sizeof(buf));
    mem.read(512 * KiB, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.materializedChunks(), 0u);
}

TEST(PhysicalMemory, CrossChunkAccess)
{
    PhysicalMemory mem(1 * MiB);
    // 64 KiB chunks: write straddling the first boundary.
    std::vector<std::uint8_t> data(1000);
    for (std::size_t i = 0; i < data.size(); i++)
        data[i] = static_cast<std::uint8_t>(i * 7);
    mem.write(64 * KiB - 500, data.data(), data.size());
    std::vector<std::uint8_t> out(1000);
    mem.read(64 * KiB - 500, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(mem.materializedChunks(), 2u);
}

TEST(PhysicalMemory, SparseHugeCapacity)
{
    // 4 TB capacity must not materialize anything until touched.
    PhysicalMemory mem(4 * TiB);
    mem.write64(3 * TiB, 0xDEADBEEFCAFEull);
    EXPECT_EQ(mem.read64(3 * TiB), 0xDEADBEEFCAFEull);
    EXPECT_EQ(mem.materializedChunks(), 1u);
}

TEST(PhysicalMemory, Word64Helpers)
{
    PhysicalMemory mem(1 * MiB);
    mem.write64(8, ~0ull);
    EXPECT_EQ(mem.read64(8), ~0ull);
    mem.write64(8, 1);
    EXPECT_EQ(mem.read64(8), 1u);
}

TEST(PhysicalMemory, ZeroRange)
{
    PhysicalMemory mem(1 * MiB);
    std::uint8_t ones[256];
    std::memset(ones, 0xFF, sizeof(ones));
    mem.write(100, ones, sizeof(ones));
    mem.zero(150, 50);
    std::uint8_t out[256];
    mem.read(100, out, sizeof(out));
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(out[i], 0xFF);
    for (int i = 50; i < 100; i++)
        EXPECT_EQ(out[i], 0x00);
    for (int i = 100; i < 256; i++)
        EXPECT_EQ(out[i], 0xFF);
}

TEST(PhysicalMemory, RandomizedRoundTrip)
{
    PhysicalMemory mem(8 * MiB);
    Rng rng(99);
    // Mirror model checking: random writes tracked in a host map.
    std::vector<std::uint8_t> mirror(8 * MiB, 0);
    for (int i = 0; i < 500; i++) {
        const std::uint64_t len = rng.uniformRange(1, 4096);
        const std::uint64_t addr = rng.uniformInt(8 * MiB - len);
        std::vector<std::uint8_t> data(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        mem.write(addr, data.data(), len);
        std::memcpy(mirror.data() + addr, data.data(), len);
    }
    std::vector<std::uint8_t> out(8 * MiB);
    mem.read(0, out.data(), out.size());
    EXPECT_EQ(out, mirror);
}

TEST(FrameAllocator, AllocatesDistinctAlignedFrames)
{
    FrameAllocator fa(64 * MiB, 4 * MiB);
    EXPECT_EQ(fa.totalFrames(), 16u);
    std::set<PhysAddr> seen;
    for (int i = 0; i < 16; i++) {
        auto frame = fa.allocate();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(*frame % (4 * MiB), 0u);
        EXPECT_TRUE(seen.insert(*frame).second);
    }
    EXPECT_FALSE(fa.allocate().has_value());
    EXPECT_DOUBLE_EQ(fa.utilization(), 1.0);
}

TEST(FrameAllocator, FreeMakesFrameReusable)
{
    FrameAllocator fa(16 * MiB, 4 * MiB);
    auto a = fa.allocate();
    auto b = fa.allocate();
    ASSERT_TRUE(a && b);
    fa.free(*a);
    EXPECT_EQ(fa.freeFrames(), 3u);
    // Exhaust and verify the freed frame comes back.
    std::set<PhysAddr> rest;
    while (auto f = fa.allocate())
        rest.insert(*f);
    EXPECT_TRUE(rest.count(*a));
    EXPECT_FALSE(rest.count(*b));
}

TEST(FrameAllocator, LowAddressesFirst)
{
    FrameAllocator fa(16 * MiB, 4 * MiB);
    EXPECT_EQ(*fa.allocate(), 0u);
    EXPECT_EQ(*fa.allocate(), 4 * MiB);
}

TEST(AsyncBuffer, FifoOrder)
{
    AsyncFreePageBuffer buf(4);
    EXPECT_TRUE(buf.push(100));
    EXPECT_TRUE(buf.push(200));
    EXPECT_EQ(*buf.pop(), 100u);
    EXPECT_EQ(*buf.pop(), 200u);
}

TEST(AsyncBuffer, CapacityAndUnderflow)
{
    AsyncFreePageBuffer buf(2);
    EXPECT_TRUE(buf.push(1));
    EXPECT_TRUE(buf.push(2));
    EXPECT_FALSE(buf.push(3)); // full
    EXPECT_EQ(buf.vacancy(), 0u);
    buf.pop();
    buf.pop();
    EXPECT_FALSE(buf.pop().has_value());
    EXPECT_EQ(buf.underflows(), 1u);
}

TEST(AsyncBuffer, DrainReturnsReservedFrames)
{
    AsyncFreePageBuffer buf(8);
    buf.push(10);
    buf.push(20);
    buf.push(30);
    auto drained = buf.drain();
    EXPECT_EQ(drained, (std::vector<PhysAddr>{10, 20, 30}));
    EXPECT_TRUE(buf.empty());
}

} // namespace
} // namespace clio
